package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	const n = 1000
	var marks [n]int32
	For(0, n, 7, func(start, end int) {
		for i := start; i < end; i++ {
			atomic.AddInt32(&marks[i], 1)
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times, want 1", i, m)
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	called := false
	For(5, 5, 1, func(start, end int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
	For(9, 3, 1, func(start, end int) { called = true })
	if called {
		t.Fatal("fn called for inverted range")
	}
}

func TestForSmallRangeRunsInline(t *testing.T) {
	var calls int32
	For(0, 3, 100, func(start, end int) {
		atomic.AddInt32(&calls, 1)
		if start != 0 || end != 3 {
			t.Errorf("got sub-range [%d,%d), want [0,3)", start, end)
		}
	})
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1", calls)
	}
}

func TestForNonPositiveGrain(t *testing.T) {
	var sum int64
	For(0, 100, 0, func(start, end int) {
		var local int64
		for i := start; i < end; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&sum, local)
	})
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestForEach(t *testing.T) {
	const n = 257
	var marks [n]int32
	ForEach(n, 8, func(i int) { atomic.AddInt32(&marks[i], 1) })
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times, want 1", i, m)
		}
	}
}

// Property: for any range offset and size, every index is visited exactly once
// regardless of grain.
func TestForPartitionProperty(t *testing.T) {
	f := func(loRaw, nRaw, grainRaw uint8) bool {
		lo := int(loRaw)
		n := int(nRaw)
		grain := int(grainRaw)
		hi := lo + n
		visited := make([]int32, n)
		For(lo, hi, grain, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&visited[i-lo], 1)
			}
		})
		for _, v := range visited {
			if v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
}

func BenchmarkForOverhead(b *testing.B) {
	sink := make([]float32, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(0, len(sink), 1024, func(start, end int) {
			for j := start; j < end; j++ {
				sink[j] += 1
			}
		})
	}
}
