package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cyclegan"
)

// ModelSpec is the JSON sidecar written next to a checkpoint so a
// server can rebuild the surrogate architecture before loading weights:
// checkpoint files store only the flattened parameters (nn
// serialization is shape-checked, not self-describing), so serving
// needs the cyclegan.Config that produced them.
type ModelSpec struct {
	// Model is the full architecture + geometry of the checkpointed
	// surrogate.
	Model cyclegan.Config `json:"model"`
	// Step is the training step counter at save time (informational).
	Step int64 `json:"step"`
	// Checkpoints lists the weight files this spec describes, in
	// quality order (best first) when written by ltfbtrain. Relative
	// entries are resolved against the spec file's directory, so a
	// checkpoint directory can be moved or mounted elsewhere wholesale.
	Checkpoints []string `json:"checkpoints"`
}

// SpecPath returns the conventional sidecar path for a checkpoint.
func SpecPath(checkpointPath string) string { return checkpointPath + ".spec.json" }

// SaveSpec writes the spec as indented JSON, atomically (temp file +
// rename) so a checkpoint watcher polling the path never reads a
// half-written spec.
func SaveSpec(path string, spec ModelSpec) error {
	buf, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: marshal spec: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".spec-*")
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(buf, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("serve: write spec: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: close spec: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: chmod spec: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: rename spec: %w", err)
	}
	return nil
}

// FindSpec resolves a flexible model path — the value of cmd/jagserve's
// -models name=path flag — to the spec file itself. path may be the
// spec file (*.spec.json), a checkpoint path (whose sidecar is
// returned), or a directory containing exactly one *.spec.json (the
// shape ltfbtrain -checkpoint leaves behind). The checkpoint watcher
// re-resolves through this every poll, so a spec that appears in a
// watched directory later is still found.
func FindSpec(path string) (string, error) {
	info, err := os.Stat(path)
	switch {
	case err != nil:
		return "", fmt.Errorf("serve: %w", err)
	case info.IsDir():
		matches, err := filepath.Glob(filepath.Join(path, "*.spec.json"))
		if err != nil {
			return "", fmt.Errorf("serve: %w", err)
		}
		switch len(matches) {
		case 0:
			return "", fmt.Errorf("serve: no *.spec.json in %s", path)
		case 1:
			return matches[0], nil
		default:
			return "", fmt.Errorf("serve: %s holds %d specs (%s); name one explicitly",
				path, len(matches), strings.Join(matches, ", "))
		}
	case strings.HasSuffix(path, ".spec.json"):
		return path, nil
	default:
		return SpecPath(path), nil
	}
}

// ResolveSpec loads a ModelSpec from a flexible path (see FindSpec).
func ResolveSpec(path string) (ModelSpec, error) {
	specPath, err := FindSpec(path)
	if err != nil {
		return ModelSpec{}, err
	}
	return LoadSpec(specPath)
}

// LoadSpec reads and validates a spec written by SaveSpec.
func LoadSpec(path string) (ModelSpec, error) {
	var spec ModelSpec
	buf, err := os.ReadFile(path)
	if err != nil {
		return spec, fmt.Errorf("serve: %w", err)
	}
	if err := json.Unmarshal(buf, &spec); err != nil {
		return spec, fmt.Errorf("serve: parse spec %s: %w", path, err)
	}
	if err := spec.Model.Validate(); err != nil {
		return spec, fmt.Errorf("serve: spec %s: %w", path, err)
	}
	for i, p := range spec.Checkpoints {
		if !filepath.IsAbs(p) {
			spec.Checkpoints[i] = filepath.Join(filepath.Dir(path), p)
		}
	}
	return spec, nil
}
