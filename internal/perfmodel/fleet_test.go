package perfmodel

import (
	"math"
	"testing"
	"time"
)

func fleetBase() ServingScenario {
	return ServingScenario{
		Cost:     ServingCost{PassSec: 2e-3, RowSec: 50e-6},
		Replicas: 1,
		MaxBatch: 16,
		// Wide enough that batches fill to MaxBatch below saturation, so
		// utilization checks against MaxQPS (a full-batch asymptote) are
		// exact.
		Window: 5 * time.Millisecond,
	}
}

func TestFleetMaxQPSScalesLinearly(t *testing.T) {
	per := fleetBase().MaxQPS()
	for _, n := range []int{1, 2, 3, 8} {
		f := FleetScenario{Backend: fleetBase(), Backends: n}
		if got, want := f.MaxQPS(), float64(n)*per; math.Abs(got-want) > 1e-9*want {
			t.Errorf("Backends=%d: MaxQPS = %g, want %g (linear scaling)", n, got, want)
		}
	}
	// Efficiency derates aggregate capacity proportionally.
	f := FleetScenario{Backend: fleetBase(), Backends: 4, Efficiency: 0.8}
	if got, want := f.MaxQPS(), 0.8*4*per; math.Abs(got-want) > 1e-9*want {
		t.Errorf("derated MaxQPS = %g, want %g", got, want)
	}
}

func TestFleetHopAddsToEveryLatency(t *testing.T) {
	base := FleetScenario{Backend: fleetBase(), Backends: 3}
	base.OfferedQPS = 0.5 * base.MaxQPS()
	hop := base
	hop.HopSec = 1.5e-3
	r0, r1 := base.Report(), hop.Report()
	for _, pair := range [][2]float64{
		{r0.P50, r1.P50}, {r0.P99, r1.P99}, {r0.BulkP50, r1.BulkP50}, {r0.BulkP99, r1.BulkP99},
	} {
		if got := pair[1] - pair[0]; math.Abs(got-1.5e-3) > 1e-9 {
			t.Errorf("hop added %g s, want 1.5e-3", got)
		}
	}
}

func TestFleetSplitsLoadAcrossBackends(t *testing.T) {
	// A 3-backend fleet at 90% of aggregate capacity must report each
	// backend at 90% utilization — and the same scenario with one
	// backend saturates.
	f := FleetScenario{Backend: fleetBase(), Backends: 3}
	f.OfferedQPS = 0.9 * f.MaxQPS()
	r := f.Report()
	if r.Saturated {
		t.Fatal("fleet saturated below its MaxQPS")
	}
	if math.Abs(r.Backend.Utilization-0.9) > 1e-9 {
		t.Errorf("per-backend utilization %g, want 0.9", r.Backend.Utilization)
	}
	one := FleetScenario{Backend: fleetBase(), Backends: 1, OfferedQPS: f.OfferedQPS}
	if !one.Report().Saturated {
		t.Error("one backend absorbed a 3-backend load without saturating")
	}
	// Imperfect routing shows up as extra per-backend load.
	derated := f
	derated.Efficiency = 0.5
	if got := derated.Report().Backend.Utilization; math.Abs(got-1.8) > 1e-9 || !derated.Report().Saturated {
		t.Errorf("efficiency 0.5 backend utilization %g, want 1.8 (saturated)", got)
	}
}

func TestFleetValidate(t *testing.T) {
	for name, f := range map[string]FleetScenario{
		"no backends":     {Backend: fleetBase(), Backends: 0},
		"negative hop":    {Backend: fleetBase(), Backends: 2, HopSec: -1},
		"efficiency > 1":  {Backend: fleetBase(), Backends: 2, Efficiency: 1.5},
		"negative load":   {Backend: fleetBase(), Backends: 2, OfferedQPS: -1},
		"invalid backend": {Backend: ServingScenario{}, Backends: 2},
	} {
		if f.Validate() == nil {
			t.Errorf("%s: Validate accepted %+v", name, f)
		}
	}
	ok := FleetScenario{Backend: fleetBase(), Backends: 3, HopSec: 1e-3, Efficiency: 0.9, OfferedQPS: 100}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
	// The backend's own OfferedQPS must be irrelevant (documented as
	// ignored): an absurd value there must not break fleet validation.
	ok.Backend.OfferedQPS = -5
	if err := ok.Validate(); err != nil {
		t.Errorf("backend OfferedQPS leaked into fleet validation: %v", err)
	}
}
