package perfmodel

import (
	"fmt"
	"math"
)

// Fleet-level serving capacity: c replicas *behind a router* instead of
// the single-process pool ServingScenario models. The composition is
// deliberately simple — the fleet's interesting physics live in the
// per-backend scenario, and the router adds exactly two effects:
//
//   - a per-request hop: the proxy terminates the client connection,
//     buffers the body, picks a backend, and relays a buffered reply,
//     so every request pays one routing + HTTP hop of HopSec on top of
//     whatever the backend itself takes;
//   - imperfect load spreading: least-loaded and power-of-two-choices
//     routing approach, but never reach, the single-queue ideal — plus
//     retries and hedges re-spend backend capacity. Efficiency folds
//     all of that into one derating factor on aggregate throughput.
//
// With Efficiency=1 and HopSec=0 the fleet is exactly Backends
// independent copies of the per-backend scenario fed OfferedQPS/c each
// — the M/D/c idealization's "what if the router were perfect" upper
// bound. The tier-1 fleet test (fleet_test.go) validates the model
// against a measured 3-backend fleet behind the real proxy.

// FleetScenario is a fleet of identical jagserve backends behind one
// jagproxy router.
type FleetScenario struct {
	// Backend is one replica's serving scenario. Its OfferedQPS field is
	// ignored: the fleet's OfferedQPS below is split across backends.
	Backend ServingScenario
	// Backends is the number of replicas behind the router.
	Backends int
	// HopSec is the per-request router overhead added to every latency:
	// the routing decision plus the extra HTTP hop (connect or pooled
	// reuse, serialize, transfer, parse). Measure it with
	// BenchmarkProxyOverhead (proxied minus direct single-row latency).
	HopSec float64
	// Efficiency in (0, 1] derates aggregate capacity for routing
	// imbalance, retries, and hedge double-spend; 0 means 1 (ideal).
	Efficiency float64
	// OfferedQPS is the total load offered to the router, rows/s.
	OfferedQPS float64
}

func (f FleetScenario) eff() float64 {
	if f.Efficiency == 0 {
		return 1
	}
	return f.Efficiency
}

// Validate reports whether the fleet scenario is well-formed.
func (f FleetScenario) Validate() error {
	if f.Backends < 1 {
		return fmt.Errorf("perfmodel: fleet needs at least one backend, got %d", f.Backends)
	}
	if f.HopSec < 0 || math.IsNaN(f.HopSec) {
		return fmt.Errorf("perfmodel: invalid hop cost %g", f.HopSec)
	}
	if f.Efficiency < 0 || f.Efficiency > 1 {
		return fmt.Errorf("perfmodel: routing efficiency must be in (0, 1], got %g", f.Efficiency)
	}
	if f.OfferedQPS < 0 {
		return fmt.Errorf("perfmodel: invalid offered load %g", f.OfferedQPS)
	}
	per := f.Backend
	per.OfferedQPS = 0
	return per.Validate()
}

// MaxQPS returns the fleet's sustainable offered load: the per-backend
// capacity times the backend count, derated by routing efficiency.
func (f FleetScenario) MaxQPS() float64 {
	return f.eff() * float64(f.Backends) * f.Backend.MaxQPS()
}

// FleetReport is the costed result of one fleet scenario.
type FleetReport struct {
	// Backend is the per-backend report at this fleet's split load
	// (OfferedQPS / (Efficiency · Backends) per backend — the
	// efficiency derating shows up as extra per-backend load).
	Backend ServingReport
	// Saturated is true when the fleet cannot sustain OfferedQPS.
	Saturated bool
	// MaxQPS is the fleet's sustainable offered load.
	MaxQPS float64
	// P50/P99 are interactive-lane end-to-end latencies (hop included),
	// seconds; BulkP50/BulkP99 the bulk lane's.
	P50, P99         float64
	BulkP50, BulkP99 float64
}

// Report costs the fleet. It panics on an invalid scenario, matching
// ServingScenario.Report.
func (f FleetScenario) Report() FleetReport {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	per := f.Backend
	per.OfferedQPS = f.OfferedQPS / (f.eff() * float64(f.Backends))
	r := per.Report()
	return FleetReport{
		Backend:   r,
		Saturated: r.Saturated,
		MaxQPS:    f.MaxQPS(),
		P50:       r.P50 + f.HopSec,
		P99:       r.P99 + f.HopSec,
		BulkP50:   r.BulkP50 + f.HopSec,
		BulkP99:   r.BulkP99 + f.HopSec,
	}
}
