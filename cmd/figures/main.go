// Command figures regenerates every table and figure of the paper's
// evaluation section (Figures 7–13 plus the abstract's headline numbers)
// and prints them as text tables. Systems figures (9, 10, 11) come from the
// calibrated performance model; quality figures (7, 8, 12, 13) come from
// real training runs at laptop scale. Figure S1 extends the treatment to
// the serving path: it probes the forward-pass cost on this host
// (serve.CostProbe) and prints the predicted serving capacity — QPS and
// p50/p99 latency versus replica count and batch window — plus a
// projection to the paper-scale architecture.
//
// Usage:
//
//	figures            # everything
//	figures -fig 11    # one figure
//	figures -fig S1    # serving-capacity sweep only
//	figures -scale medium   # larger (slower) quality experiments
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	fig := flag.String("fig", "all", "figure to regenerate: 7, 8, 9, 10, 11, 12, 13, S1, headline, sensitivity, or all")
	scale := flag.String("scale", "small", "quality-experiment scale: small or medium")
	flag.Parse()

	surrSteps := 2000
	surrSamples := 1024
	counts12 := []int{1, 2, 4}
	counts13 := []int{2, 4, 8}
	if *scale == "medium" {
		surrSteps = 3000
		surrSamples = 2048
		counts12 = []int{1, 2, 4, 8}
		counts13 = []int{2, 4, 8}
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }

	if want("7") || want("8") {
		cfg := cyclegan.DefaultConfig(jag.Tiny8)
		cfg.EncoderHidden = []int{48}
		cfg.ForwardHidden = []int{32, 32}
		cfg.InverseHidden = []int{16}
		cfg.DiscHidden = []int{16}
		fmt.Println("training surrogate for figures 7/8 (~1 min) ...")
		model, err := core.TrainSurrogate(cfg, surrSamples, surrSteps, 32, 7)
		if err != nil {
			log.Fatal(err)
		}
		if want("7") {
			fmt.Print(core.Figure7(model, 16).Render())
			fmt.Println()
		}
		if want("8") {
			fmt.Print(core.Figure8(model, 16).Render())
			fmt.Println()
		}
	}
	if want("9") {
		fmt.Print(core.Figure9Table().Render())
		fmt.Println()
	}
	if want("10") {
		fmt.Print(core.Figure10Table().Render())
		fmt.Println()
	}
	if want("11") {
		fmt.Print(core.Figure11Table().Render())
		fmt.Println()
	}
	if want("12") {
		fmt.Println("running figure 12 populations (~2 min) ...")
		cfg12 := core.Figure12Config()
		if *scale == "medium" {
			cfg12.Rounds = 16
		}
		tab, err := core.Figure12(counts12, cfg12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tab.Render())
		fmt.Println()
	}
	if want("13") {
		fmt.Println("running figure 13 populations (near-convergence schedule, ~1-2 min) ...")
		cfg13 := core.Figure13Config()
		if *scale == "medium" {
			cfg13.TrainSamples = 1024
			cfg13.Rounds = 16
		}
		tab, err := core.Figure13(counts13, cfg13)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tab.Render())
		fmt.Println()
	}
	if want("S1") {
		cost, probedCfg, err := core.ProbeServingCost()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(core.FigureS1Table(cost).Render())
		fmt.Println()
		paper, err := core.FigureS1PaperTable(cost, probedCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(paper.Render())
		fmt.Println()
	}
	if want("headline") || *fig == "all" {
		fmt.Print(core.HeadlineTable().Render())
	}
	if want("sensitivity") {
		fmt.Println("\nsensitivity of the 64-trainer headline to the modelled mechanisms:")
		fmt.Print(perfmodel.SensitivitySummary(perfmodel.SweepHeadline(5)))
	}
}
