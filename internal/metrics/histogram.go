package metrics

import (
	"math"
	"sync/atomic"
)

// Histogram is a streaming latency histogram: observations are counted
// into fixed buckets and quantiles are estimated from the bucket counts,
// so recording is O(log buckets) with no per-observation allocation and
// the memory cost is independent of the observation count. Observe is
// lock-free (atomic bucket counters), which is what lets the serving hot
// path record every request while a /metrics scrape reads concurrently:
// the scrape takes a Snapshot without ever blocking a recorder.
//
// Buckets are half-open ranges (lo, hi] defined by their upper bounds;
// everything above the last bound lands in an implicit +Inf bucket. Use
// ExpBuckets for the exponential spacing latency wants — constant
// relative error across decades, the same trade prometheus client
// histograms make.
type Histogram struct {
	bounds []float64       // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor: start, start·factor, start·factor², ….
// It panics on a non-positive start, n < 1, or factor <= 1 — bucket
// layouts are static program structure, not runtime input.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default layout for request-latency histograms in
// seconds: 10µs to ~84s doubling per bucket (24 buckets), which covers a
// cache hit through a saturated bulk sweep at ~2x resolution.
func LatencyBuckets() []float64 { return ExpBuckets(10e-6, 2, 24) }

// NewHistogram builds a histogram over the given upper bounds. The
// bounds must be positive and strictly increasing; NewHistogram panics
// otherwise (a malformed layout is a programming error).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	prev := 0.0
	for _, b := range bounds {
		if !(b > prev) || math.IsInf(b, 1) || math.IsNaN(b) {
			panic("metrics: histogram bounds must be finite, positive, strictly increasing")
		}
		prev = b
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. NaN observations are dropped — they carry
// no magnitude to bucket and would poison the running sum. Negative
// values count into the first bucket (durations cannot be negative, but
// clock steps can manufacture them; losing them would undercount
// requests).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.counts[h.bucketIdx(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// bucketIdx returns the index of the bucket v falls in, by binary search
// over the upper bounds.
func (h *Histogram) bucketIdx(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures the bucket counts at one instant. Concurrent
// Observe calls may land between bucket reads — a snapshot is consistent
// to within the handful of observations in flight, which is the usual
// scrape-time contract.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after NewHistogram
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Quantile estimates the q-quantile; see HistogramSnapshot.Quantile.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// HistogramSnapshot is an immutable copy of a histogram's state, the
// unit the Prometheus exposition and the stats endpoints render from.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the +Inf bucket.
	Bounds []float64
	Counts []uint64
	// Count and Sum are the observation count and value sum.
	Count uint64
	Sum   float64
}

// Mean returns the average observation, or 0 for an empty snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// holding the q·Count-th observation and interpolating linearly inside
// it — the same estimator Prometheus's histogram_quantile uses. An empty
// snapshot reports 0; a quantile landing in the +Inf bucket reports the
// last finite bound (the histogram cannot resolve beyond its layout).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			if i >= len(s.Bounds) {
				// +Inf bucket: saturate at the last finite bound.
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - seen) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		seen += float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}
