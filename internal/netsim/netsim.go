// Package netsim provides analytic communication-cost models for a
// CORAL-class machine (Lassen: IBM POWER9 nodes, 4 NVLink-connected V100s
// per node, dual-rail InfiniBand EDR between nodes — Section IV-A). The
// performance model composes these costs with the DES file-system model to
// regenerate the paper's epoch-time figures.
//
// The allreduce model is hierarchical, matching how NCCL/Aluminum run on
// this topology: a ring (reduce + broadcast) over NVLink within each node
// and a ring allreduce over InfiniBand between node leaders. This is the
// mechanism behind two results the model must reproduce: data-parallel
// efficiency falling to ~58% at 16 GPUs (Figure 9), and the 1-trainer
// baseline of Figure 11 — 16 GPUs spread across 16 nodes — paying far more
// for its allreduce than a 4-node trainer, part of LTFB's superlinear 70.2×.
package netsim

import "fmt"

// Fabric holds the interconnect and accelerator constants of the machine.
type Fabric struct {
	GPUsPerNode int
	// GPUFlops is the effective single-precision throughput of one GPU on
	// the surrogate's GEMM mix (well below peak for skinny matrices).
	GPUFlops float64
	// NVLinkBandwidth is bytes/s between GPUs within a node.
	NVLinkBandwidth float64
	NVLinkLatency   float64
	// IBBandwidth is bytes/s between nodes (dual-rail EDR).
	IBBandwidth float64
	IBLatency   float64
	// StepOverhead is the fixed software cost per ring step (kernel launch,
	// completion sync).
	StepOverhead float64
	// SparseNICPenalty models rail/socket affinity: a node running fewer
	// ranks than its physical GPU count cannot drive both IB rails. The
	// effective inter-node bandwidth is scaled by
	// (1-SparseNICPenalty) + SparseNICPenalty·perNode/GPUsPerNode.
	SparseNICPenalty float64
	// HostBandwidth is bytes/s of host-memory traffic per node, used for
	// data-store sample movement within a node.
	HostBandwidth float64
	// NodeMemory is bytes of host DRAM per node (data-store capacity).
	NodeMemory float64
	// MemoryPressure is the slowdown slope applied to host-memory traffic
	// as the data store approaches node capacity (cache/TLB thrash); the
	// inverse of the paper's "cache effects" superlinear speedup.
	MemoryPressure float64
}

// Lassen returns constants for the paper's machine.
func Lassen() Fabric {
	return Fabric{
		GPUsPerNode:      4,
		GPUFlops:         1.1e12,
		NVLinkBandwidth:  70e9,
		NVLinkLatency:    6e-6,
		IBBandwidth:      21e9,
		IBLatency:        1.5e-6,
		StepOverhead:     25e-6,
		SparseNICPenalty: 0.5,
		HostBandwidth:    110e9,
		NodeMemory:       256e9,
		MemoryPressure:   0.35,
	}
}

// Validate reports whether the fabric constants are usable.
func (f Fabric) Validate() error {
	if f.GPUsPerNode < 1 || f.GPUFlops <= 0 || f.NVLinkBandwidth <= 0 || f.IBBandwidth <= 0 {
		return fmt.Errorf("netsim: invalid fabric %+v", f)
	}
	if f.HostBandwidth <= 0 || f.NodeMemory <= 0 || f.MemoryPressure < 0 {
		return fmt.Errorf("netsim: invalid fabric %+v", f)
	}
	return nil
}

// Nodes returns the node count hosting gpus GPUs at gpusPerNode density.
func Nodes(gpus, gpusPerNode int) int {
	return (gpus + gpusPerNode - 1) / gpusPerNode
}

// ringTime is the cost of a ring reduce-scatter + allgather over n
// participants moving a total of bytes, on a link with the given bandwidth
// and per-step latency: 2(n-1) steps of (overhead + latency + bytes/n/bw).
func (f Fabric) ringTime(bytes float64, n int, bandwidth, latency float64) float64 {
	if n <= 1 {
		return 0
	}
	steps := float64(2 * (n - 1))
	return steps * (f.StepOverhead + latency + bytes/float64(n)/bandwidth)
}

// ibEff returns the effective inter-node bandwidth for a node running
// perNode ranks, applying the rail-affinity penalty for sparse placements.
func (f Fabric) ibEff(perNode int) float64 {
	frac := float64(perNode) / float64(f.GPUsPerNode)
	if frac > 1 {
		frac = 1
	}
	return f.IBBandwidth * ((1 - f.SparseNICPenalty) + f.SparseNICPenalty*frac)
}

// AllreduceTime returns the gradient-allreduce time for bytes of data across
// gpus GPUs packed gpusPerNode to a node (gpusPerNode may be less than the
// fabric's physical density, as in Figure 11's 1-GPU-per-node baseline).
func (f Fabric) AllreduceTime(bytes float64, gpus, gpusPerNode int) float64 {
	if gpus <= 1 {
		return 0
	}
	if gpusPerNode < 1 {
		gpusPerNode = 1
	}
	nodes := Nodes(gpus, gpusPerNode)
	if nodes == 1 {
		return f.ringTime(bytes, gpus, f.NVLinkBandwidth, f.NVLinkLatency)
	}
	perNode := gpus / nodes
	if perNode < 1 {
		perNode = 1
	}
	// Hierarchy: NVLink reduce within the node, IB ring across node
	// leaders, NVLink broadcast back.
	intra := f.ringTime(bytes, perNode, f.NVLinkBandwidth, f.NVLinkLatency)
	inter := f.ringTime(bytes, nodes, f.ibEff(perNode), f.IBLatency)
	return intra + inter
}

// P2PTime returns the time to move bytes between two trainers over
// InfiniBand — the LTFB generator exchange.
func (f Fabric) P2PTime(bytes float64) float64 {
	return f.IBLatency + bytes/f.IBBandwidth
}

// ComputeTime returns the time for flops of GEMM work spread evenly over
// gpus GPUs.
func (f Fabric) ComputeTime(flops float64, gpus int) float64 {
	if gpus < 1 {
		gpus = 1
	}
	return flops / (f.GPUFlops * float64(gpus))
}

// HostPressureFactor returns the host-memory slowdown multiplier when each
// node of a trainer holds storeBytesPerNode of data-store contents. Below
// half of node memory there is no pressure; beyond it the factor grows
// linearly, and this is what makes small per-trainer partitions faster per
// access (the paper's "cache effects").
func (f Fabric) HostPressureFactor(storeBytesPerNode float64) float64 {
	frac := storeBytesPerNode / f.NodeMemory
	if frac <= 0.5 {
		return 1
	}
	return 1 + f.MemoryPressure*(frac-0.5)/0.5
}

// ShuffleTime returns the per-step cost of the data-store mini-batch
// shuffle for one trainer: each of ranks ranks receives its share of the
// mini-batch from peer ranks (IB for peers on other nodes) and stages it
// through host memory under the current pressure factor.
func (f Fabric) ShuffleTime(miniBatchBytes float64, ranks, gpusPerNode int, storeBytesPerNode float64) float64 {
	if ranks < 1 {
		ranks = 1
	}
	perRank := miniBatchBytes / float64(ranks)
	pressure := f.HostPressureFactor(storeBytesPerNode)
	host := perRank / f.HostBandwidth * pressure
	if ranks == 1 {
		// Single rank: samples are already local; only host staging applies.
		return host
	}
	nodes := Nodes(ranks, gpusPerNode)
	net := f.IBLatency + perRank/f.IBBandwidth
	if nodes == 1 {
		net = f.NVLinkLatency + perRank/f.NVLinkBandwidth
	}
	return host + net
}
