package netsim

import (
	"testing"
)

func TestValidate(t *testing.T) {
	if err := Lassen().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Lassen()
	bad.GPUFlops = 0
	if bad.Validate() == nil {
		t.Fatal("zero GPU flops must be invalid")
	}
	bad = Lassen()
	bad.NodeMemory = 0
	if bad.Validate() == nil {
		t.Fatal("zero node memory must be invalid")
	}
}

func TestNodes(t *testing.T) {
	cases := []struct{ gpus, per, want int }{{1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {16, 4, 4}, {16, 1, 16}}
	for _, c := range cases {
		if got := Nodes(c.gpus, c.per); got != c.want {
			t.Fatalf("Nodes(%d,%d) = %d, want %d", c.gpus, c.per, got, c.want)
		}
	}
}

func TestAllreduceSingleGPUFree(t *testing.T) {
	f := Lassen()
	if f.AllreduceTime(1e9, 1, 4) != 0 {
		t.Fatal("single GPU allreduce must cost nothing")
	}
}

func TestAllreduceGrowsWithBytesAndRanks(t *testing.T) {
	f := Lassen()
	if !(f.AllreduceTime(2e8, 4, 4) > f.AllreduceTime(1e8, 4, 4)) {
		t.Fatal("allreduce not monotone in bytes")
	}
	if !(f.AllreduceTime(1e8, 16, 4) > f.AllreduceTime(1e8, 4, 4)) {
		t.Fatal("allreduce across nodes must exceed intra-node")
	}
}

// The Figure 11 baseline mechanism: 16 GPUs on 16 nodes must pay much more
// for allreduce than 16 GPUs on 4 nodes.
func TestSparsePlacementPenalty(t *testing.T) {
	f := Lassen()
	dense := f.AllreduceTime(1e8, 16, 4)
	sparse := f.AllreduceTime(1e8, 16, 1)
	if !(sparse > dense*1.2) {
		t.Fatalf("sparse placement %v not sufficiently worse than dense %v", sparse, dense)
	}
}

func TestComputeTimeScalesInversely(t *testing.T) {
	f := Lassen()
	t1 := f.ComputeTime(1e12, 1)
	t4 := f.ComputeTime(1e12, 4)
	if t1/t4 < 3.99 || t1/t4 > 4.01 {
		t.Fatalf("compute scaling ratio %v, want 4", t1/t4)
	}
	if f.ComputeTime(1e12, 0) != t1 {
		t.Fatal("gpus<1 must clamp to 1")
	}
}

func TestHostPressureFactor(t *testing.T) {
	f := Lassen()
	if got := f.HostPressureFactor(0.25 * f.NodeMemory); got != 1 {
		t.Fatalf("low occupancy factor %v, want 1", got)
	}
	half := f.HostPressureFactor(0.5 * f.NodeMemory)
	full := f.HostPressureFactor(1.0 * f.NodeMemory)
	if half != 1 {
		t.Fatalf("half occupancy factor %v, want 1", half)
	}
	if full <= 1 || full > 2 {
		t.Fatalf("full occupancy factor %v outside (1,2]", full)
	}
	if !(f.HostPressureFactor(0.9*f.NodeMemory) < full) {
		t.Fatal("pressure must increase with occupancy")
	}
}

func TestShuffleTime(t *testing.T) {
	f := Lassen()
	mb := 128 * 200e3 // a paper-scale mini-batch in bytes
	single := f.ShuffleTime(mb, 1, 4, 1e9)
	multi := f.ShuffleTime(mb, 16, 4, 1e9)
	if single <= 0 || multi <= 0 {
		t.Fatal("shuffle times must be positive")
	}
	// Pressure raises shuffle cost.
	pressured := f.ShuffleTime(mb, 16, 4, f.NodeMemory)
	if !(pressured > multi) {
		t.Fatalf("memory pressure should slow the shuffle: %v vs %v", pressured, multi)
	}
	// Intra-node shuffle (4 ranks, 1 node) beats cross-node at equal rank count.
	intra := f.ShuffleTime(mb, 4, 4, 1e9)
	inter := f.ShuffleTime(mb, 4, 1, 1e9)
	if !(inter > intra) {
		t.Fatalf("cross-node shuffle %v should exceed intra-node %v", inter, intra)
	}
}

func TestP2PTime(t *testing.T) {
	f := Lassen()
	small := f.P2PTime(1e3)
	big := f.P2PTime(1e9)
	if !(big > small && small > 0) {
		t.Fatalf("p2p times wrong: %v %v", small, big)
	}
}

func TestRingTimeEdgeCases(t *testing.T) {
	f := Lassen()
	if f.ringTime(1e6, 1, 1e9, 1e-6) != 0 {
		t.Fatal("ring over one participant must be free")
	}
	if !(f.ringTime(1e6, 4, 1e9, 1e-6) > 0) {
		t.Fatal("ring time must be positive")
	}
}

func TestIBEffRailAffinity(t *testing.T) {
	f := Lassen()
	if got := f.ibEff(4); got != f.IBBandwidth {
		t.Fatalf("full node ibEff = %v, want full bandwidth", got)
	}
	if got := f.ibEff(1); got >= f.IBBandwidth {
		t.Fatalf("sparse node ibEff = %v, want degraded", got)
	}
	if got := f.ibEff(8); got != f.IBBandwidth {
		t.Fatalf("oversubscribed ibEff = %v, want capped at full", got)
	}
}
