package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Network is an ordered stack of layers trained as a unit — the analogue of
// an LBANN "model". Networks are not safe for concurrent use.
type Network struct {
	Name   string
	Layers []Layer
}

// Forward runs the whole stack on mini-batch x.
func (n *Network) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x, training)
	}
	return x
}

// Backward propagates dLoss/dOutput through the stack in reverse, returning
// dLoss/dInput. Parameter gradients accumulate into each Param's Grad.
func (n *Network) Backward(dy *tensor.Matrix) *tensor.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dy = n.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W.Data)
	}
	return total
}

// CopyWeightsFrom overwrites n's weights with src's. The two networks must
// have identical parameter shapes (i.e. the same architecture); it panics
// otherwise. Gradients are not copied.
func (n *Network) CopyWeightsFrom(src *Network) {
	dst := n.Params()
	from := src.Params()
	if len(dst) != len(from) {
		panic(fmt.Sprintf("nn: CopyWeightsFrom param count %d vs %d", len(from), len(dst)))
	}
	for i, p := range dst {
		p.W.CopyFrom(from[i].W)
	}
}

// GradNorm returns the Frobenius norm of the concatenated gradient, useful
// for divergence diagnostics.
func (n *Network) GradNorm() float64 {
	var s float64
	for _, p := range n.Params() {
		v := tensor.Norm2(p.Grad)
		s += v * v
	}
	return math.Sqrt(s)
}

// Activation names an elementwise nonlinearity for Spec-driven construction.
type Activation string

// Supported activations for MLP construction.
const (
	ActNone      Activation = "none"
	ActReLU      Activation = "relu"
	ActLeakyReLU Activation = "lrelu"
	ActTanh      Activation = "tanh"
	ActSigmoid   Activation = "sigmoid"
)

// newActivation returns the layer for name, or nil for ActNone.
func newActivation(a Activation) Layer {
	switch a {
	case ActNone:
		return nil
	case ActReLU:
		return &ReLU{}
	case ActLeakyReLU:
		return &LeakyReLU{Alpha: 0.2}
	case ActTanh:
		return &Tanh{}
	case ActSigmoid:
		return &Sigmoid{}
	default:
		panic(fmt.Sprintf("nn: unknown activation %q", a))
	}
}

// MLP builds a fully-connected network with the given layer widths. dims has
// at least two entries (input and output width); hidden is applied after
// every layer except the last, output after the last (ActNone for a linear
// head). The rng seeds the weight initialization, so two MLPs built with
// identically-seeded rngs are identical.
func MLP(name string, dims []int, hidden, output Activation, rng *rand.Rand) *Network {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	net := &Network{Name: name}
	for i := 0; i+1 < len(dims); i++ {
		net.Layers = append(net.Layers, NewLinear(dims[i], dims[i+1], rng))
		last := i+2 == len(dims)
		var act Layer
		if last {
			act = newActivation(output)
		} else {
			act = newActivation(hidden)
		}
		if act != nil {
			net.Layers = append(net.Layers, act)
		}
	}
	return net
}
