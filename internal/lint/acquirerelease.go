package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AcquireRelease enforces the Registry pin protocol from PR 4: every
// Registry.Acquire / Registry.AcquireDefault call returns a release
// func that must run on all paths out of the caller — error returns and
// panics included — because a leaked pin holds Registry.Replace's drain
// hostage until the drain deadline force-closes the displaced server
// (failing that server's remaining rows with ErrClosed).
//
// The only form that survives every path is the deferred one:
//
//	s, release, ok := reg.Acquire(name)
//	if !ok { ... }
//	defer release()
//
// Reported:
//   - the release result assigned to the blank identifier,
//   - a release that is never called (or otherwise used),
//   - a direct (non-deferred) release() with a return statement between
//     the Acquire and the release — the early return skips the call.
//
// Passing release to another function is accepted: ownership moved, and
// the callee is the one on the hook.
var AcquireRelease = &Analyzer{
	Name: "acquirerelease",
	Doc:  "Registry.Acquire release funcs must run on all paths (use defer)",
	Run:  runAcquireRelease,
}

func runAcquireRelease(pass *Pass) error {
	info := pass.TypesInfo
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		idx, ok := acquireReleaseIndex(info, call)
		if !ok || idx >= len(assign.Lhs) {
			return true
		}
		lhs := assign.Lhs[idx]
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(lhs.Pos(), "release func of %s is discarded; a leaked pin stalls Registry.Replace until the drain deadline force-closes the old server", callName(call))
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id] // re-assignment to an existing variable
		}
		if obj == nil {
			return true
		}
		body := enclosingFuncBody(stack)
		if body == nil {
			return true
		}
		checkReleaseUses(pass, body, call, id, obj)
		return true
	})
	return nil
}

// acquireReleaseIndex reports whether call is Registry.Acquire or
// Registry.AcquireDefault, and at which result index the release func
// sits. The match is semantic, not path-bound: a method named
// Acquire/AcquireDefault on a type named Registry whose results include
// a niladic func() — so test fixtures and future registries are covered
// alongside serve.Registry.
func acquireReleaseIndex(info *types.Info, call *ast.CallExpr) (int, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	if sel.Sel.Name != "Acquire" && sel.Sel.Name != "AcquireDefault" {
		return 0, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0, false
	}
	if namedTypeName(sig.Recv().Type()) != "Registry" {
		return 0, false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if s, ok := sig.Results().At(i).Type().Underlying().(*types.Signature); ok &&
			s.Params().Len() == 0 && s.Results().Len() == 0 {
			return i, true
		}
	}
	return 0, false
}

// checkReleaseUses inspects every use of the release variable inside
// the acquiring function and reports the leak patterns.
func checkReleaseUses(pass *Pass, body *ast.BlockStmt, acquire *ast.CallExpr, decl *ast.Ident, obj types.Object) {
	var (
		deferred    bool // release() appears under a defer
		escapes     bool // release passed as a value (ownership moved)
		reassigned  bool // variable overwritten later (tracked elsewhere)
		firstDirect ast.Node
	)
	walk := func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == decl || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		switch parent := parentNode(stack).(type) {
		case *ast.CallExpr:
			if ast.Unparen(parent.Fun) == ast.Expr(id) {
				// release() — deferred or direct?
				if underDefer(stack) {
					deferred = true
				} else if firstDirect == nil {
					firstDirect = parent
				}
			} else {
				escapes = true // passed as an argument
			}
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if lhs == ast.Expr(id) {
					reassigned = true
				}
			}
			for i, rhs := range parent.Rhs {
				if rhs != ast.Expr(id) {
					continue
				}
				// `_ = release` silences the compiler's unused-var
				// check without calling release: still a leak, not an
				// escape.
				if len(parent.Lhs) == len(parent.Rhs) {
					if blank, ok := parent.Lhs[i].(*ast.Ident); ok && blank.Name == "_" {
						continue
					}
				}
				escapes = true
			}
		case *ast.DeferStmt:
			// `defer release` without parens is not valid Go; defer
			// release() hits the CallExpr case via the call's stack.
			deferred = true
		default:
			// Any other appearance (composite literal, return value,
			// closure capture read) moves ownership out of our sight.
			escapes = true
		}
		return true
	}
	walkWithStack(body, walk)

	switch {
	case deferred, escapes, reassigned:
		return
	case firstDirect == nil:
		pass.Reportf(decl.Pos(), "release func of %s is never called; the leaked pin stalls Registry.Replace until the drain deadline force-closes the old server", callName(acquire))
	default:
		if ret := returnBetween(body, acquire.End(), firstDirect.Pos()); ret != nil {
			pass.Reportf(firstDirect.Pos(), "release func of %s is only called after a possible return at line %d; defer it so every path (and panic) releases the pin", callName(acquire), pass.Fset.Position(ret.Pos()).Line)
		}
	}
}

// parentNode returns the innermost ancestor on the stack.
func parentNode(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// underDefer reports whether any ancestor is a defer statement.
func underDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// returnBetween finds a return statement positioned strictly between lo
// and hi inside body, i.e. a path that can exit the function after the
// acquire but before the direct release call.
func returnBetween(body *ast.BlockStmt, lo, hi token.Pos) ast.Node {
	var found ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit:
			return false // its returns exit the literal, not this func
		case *ast.ReturnStmt:
			if n.Pos() > lo && n.End() < hi {
				found = n
			}
		}
		return true
	})
	return found
}

// walkWithStack is inspectWithStack over a single subtree.
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// callName renders the call's selector for diagnostics (reg.Acquire).
func callName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return x.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return "Acquire"
}
