// Package linttest is the golden-file harness for the jaglint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library alone. A fixture directory under testdata holds
// one package of .go files annotated with expectations:
//
//	s, _, ok := reg.Acquire("m") // want "release func .* is discarded"
//
// Run loads the fixture, runs one analyzer, and fails the test for
// every expectation with no matching diagnostic (the analyzer went
// silent on a seeded violation) and every diagnostic with no matching
// expectation (the analyzer fired on the corrected form). A line may
// carry several expectations: `// want "a" "b"`. Each quoted string is
// a regexp matched against the diagnostic message on the same line.
//
// lint:ignore suppressions are applied before matching, so fixtures can
// also pin the suppression syntax itself.
package linttest

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe pulls the quoted regexps off a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` entry: a file, line, and message regexp.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture package at dir, runs the analyzer, and matches
// diagnostics against the fixture's // want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if idx < 0 || !strings.HasPrefix(strings.TrimLeft(c.Text, "/ "), "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
				}
			}
		}
	}

	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
