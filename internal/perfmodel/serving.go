package perfmodel

import (
	"fmt"
	"math"
	"time"
)

// Serving capacity model. Figures 9–11 predict epoch time from an
// analytical cost decomposition; this file gives the inference path the
// same treatment so the serve benchmarks become capacity planning: given
// the calibrated cost of one forward pass, how many requests per second
// can a replica pool sustain, and what latency does a caller see at a
// given load, replica count, and batch window?
//
// The model mirrors internal/serve's pipeline mechanically:
//
//   - arrival: callers submit rows at OfferedQPS; a CacheHitRate
//     fraction answers from the LRU without touching the queue, so only
//     the miss stream loads the model;
//   - batch-window fill: the first queued row opens a window of length
//     Window; the batch flushes at MaxBatch rows or when the window
//     closes, whichever is first. At low load the window bounds
//     occupancy (B = 1 + λ·W); at high load the size cap does
//     (B = MaxBatch, filled in (MaxBatch-1)/λ);
//   - service: one flush costs Cost.PassSec + B·Cost.RowSec — the
//     affine cost model serve.CostProbe calibrates on the running
//     binary, with the per-row slope tied to the architecture's
//     forward-only GEMM work (Arch.ServeFlopsPerRow) when projecting to
//     an uncalibrated model;
//   - parallelism: Replicas workers each run one batch at a time, so
//     the pool is an M/D/c queue of batches (Poisson batch arrivals,
//     deterministic service, c = Replicas). Queue delay uses the
//     Sakasegawa approximation;
//   - lanes: the batcher drains Interactive strictly before Bulk, which
//     the model treats as 2-class non-preemptive priority — interactive
//     waits shrink toward the empty-queue residual while bulk waits
//     inflate by 1/(1-ρ).
//
// Reported latency is the miss path (window wait + queue wait + pass);
// cache hits return in microseconds and would only flatter the
// percentiles. Like the training model, absolute numbers are only as
// good as the calibrated constants — the tier-1 capacity test validates
// prediction against a measured in-process benchmark.

// Serving method names, mirroring internal/serve (not imported: the
// model depends on costs, not on the serving runtime).
const (
	ServePredict = "predict"
	ServeInvert  = "invert"
)

// ServeFlopsPerRow returns the forward-only GEMM work of one served row
// of the given method: predict runs the forward net and the decoder
// (Dec(F(x))), invert the forward and inverse nets (G(F(x))), at ~2
// flops per parameter per row. Training's 6-flop forward+backward cost
// (FlopsPerSample) never applies to serving.
func (a Arch) ServeFlopsPerRow(method string) (float64, error) {
	_, dec, fwd, inv, _ := a.Params()
	switch method {
	case ServePredict:
		return 2 * float64(fwd+dec), nil
	case ServeInvert:
		return 2 * float64(fwd+inv), nil
	}
	return 0, fmt.Errorf("perfmodel: unknown serving method %q", method)
}

// ServingCost is the calibrated cost of one batched forward pass:
// t(B) = PassSec + B·RowSec. serve.CostProbe measures both constants on
// the running binary; ServingCostFromArch projects them for a model too
// large to probe.
type ServingCost struct {
	// PassSec is the fixed per-dispatch cost, paid once per flush.
	PassSec float64
	// RowSec is the marginal cost of one batch row.
	RowSec float64
}

// Cost returns the modeled duration of one forward pass of b rows.
func (c ServingCost) Cost(b float64) float64 { return c.PassSec + b*c.RowSec }

// ServingCostFromArch projects a serving cost for an architecture from
// first principles: the method's forward-only GEMM work divided by the
// host's effective GEMM throughput (calibrate flopsPerSec by probing
// any model on the same host: RowSec·flops/row of the probed net), plus
// a fixed per-pass cost.
func ServingCostFromArch(a Arch, method string, flopsPerSec, passSec float64) (ServingCost, error) {
	if flopsPerSec <= 0 {
		return ServingCost{}, fmt.Errorf("perfmodel: flopsPerSec must be positive, got %g", flopsPerSec)
	}
	flops, err := a.ServeFlopsPerRow(method)
	if err != nil {
		return ServingCost{}, err
	}
	return ServingCost{PassSec: passSec, RowSec: flops / flopsPerSec}, nil
}

// ServingScenario describes one serving configuration to be costed, the
// serving analogue of Scenario: workload (offered load, cache hit rate,
// lane mix) plus machine (calibrated pass cost, replica pool) plus
// tuning (batch size cap, batch window).
type ServingScenario struct {
	Cost ServingCost
	// Replicas is the pool width: concurrent forward passes.
	Replicas int
	// MaxBatch caps rows per forward pass (serve.Config.MaxBatch).
	MaxBatch int
	// Window is the batch-fill window (serve.Config.MaxDelay).
	Window time.Duration
	// OfferedQPS is the total request arrival rate, rows/s, including
	// rows the cache will answer.
	OfferedQPS float64
	// CacheHitRate is the fraction of offered rows answered from the
	// LRU response cache without a forward pass, in [0, 1).
	CacheHitRate float64
	// BulkFraction is the share of offered rows in the Bulk lane, in
	// [0, 1]; the remainder is Interactive.
	BulkFraction float64
}

// Validate reports whether the scenario is well-formed.
func (s ServingScenario) Validate() error {
	if s.Cost.RowSec <= 0 || s.Cost.PassSec < 0 {
		return fmt.Errorf("perfmodel: invalid serving cost %+v", s.Cost)
	}
	if s.Replicas < 1 || s.MaxBatch < 1 || s.Window <= 0 {
		return fmt.Errorf("perfmodel: invalid serving shape %+v", s)
	}
	if s.OfferedQPS < 0 || s.CacheHitRate < 0 || s.CacheHitRate >= 1 ||
		s.BulkFraction < 0 || s.BulkFraction > 1 {
		return fmt.Errorf("perfmodel: invalid serving workload %+v", s)
	}
	return nil
}

// ServingReport is the costed result of one serving scenario. Latencies
// are for rows that miss the cache and reach the model; a saturated
// scenario (offered misses beyond MaxQPS·(1-hit)) reports infinite
// latencies.
type ServingReport struct {
	// Saturated is true when the miss stream exceeds the pool's service
	// capacity: the queue grows without bound (in the real server,
	// backpressure converts the excess into ErrOverloaded).
	Saturated bool

	// Occupancy is the expected rows per forward pass at this load.
	Occupancy float64
	// FillSec is how long the first row of a batch waits for its flush.
	FillSec float64
	// PassSec is the duration of one forward pass at this occupancy.
	PassSec float64
	// Utilization is the pool's busy fraction, 0..1 (≥1 ⇒ Saturated).
	Utilization float64

	// P50/P99 are interactive-lane latencies, seconds; BulkP50/BulkP99
	// the bulk lane's, inflated by priority starvation.
	P50, P99         float64
	BulkP50, BulkP99 float64

	// MaxQPS is the highest offered load (rows/s, cache hits included)
	// this configuration can sustain: the size-capped pass rate times
	// the pool width, corrected for the cache.
	MaxQPS float64
}

// MaxQPS returns the scenario's sustainable offered load independent of
// OfferedQPS: at saturation every pass is full (MaxBatch rows), each
// replica completes one per Cost(MaxBatch), and the cache multiplies
// the miss capacity back into offered rows.
func (s ServingScenario) MaxQPS() float64 {
	b := float64(s.MaxBatch)
	missCap := float64(s.Replicas) * b / s.Cost.Cost(b)
	return missCap / (1 - s.CacheHitRate)
}

// expTail is the p99/mean ratio of an exponential tail (ln 100): the
// queue-wait distribution of a loaded M/D/c is approximately
// exponential beyond its mean, which is the standard heavy-traffic
// approximation.
const expTail = 4.605170185988091

// Report costs the scenario. It panics on an invalid scenario, matching
// Scenario.Epoch.
func (s ServingScenario) Report() ServingReport {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	r := ServingReport{MaxQPS: s.MaxQPS()}
	lam := s.OfferedQPS * (1 - s.CacheHitRate) // miss rows/s into the queue
	w := s.Window.Seconds()

	// Batch-window fill: does the size cap or the window close the
	// batch first?
	bmax := float64(s.MaxBatch)
	if lam*w >= bmax-1 {
		r.Occupancy = bmax
		if lam > 0 {
			r.FillSec = (bmax - 1) / lam
		}
	} else {
		r.Occupancy = 1 + lam*w
		r.FillSec = w
	}
	r.PassSec = s.Cost.Cost(r.Occupancy)

	// M/D/c occupancy: batches arrive at lam/B and each of Replicas
	// workers serves one in PassSec.
	mu := float64(s.Replicas) * r.Occupancy / r.PassSec // rows/s service capacity
	r.Utilization = 1
	if mu > 0 {
		r.Utilization = lam / mu
	}
	if r.Utilization >= 1 {
		r.Saturated = true
		inf := math.Inf(1)
		r.P50, r.P99, r.BulkP50, r.BulkP99 = inf, inf, inf, inf
		return r
	}

	// Sakasegawa mean queue wait for M/D/c, in units of one pass:
	// Wq ≈ ρ^(√(2(c+1))-1)/(c(1-ρ)) · T · (Ca²+Cs²)/2 with Ca²=1,
	// Cs²=0 — at c=1 this is the exact M/D/1 wait ρT/(2(1-ρ)).
	c := float64(s.Replicas)
	rho := r.Utilization
	wq := math.Pow(rho, math.Sqrt(2*(c+1))-1) / (c * (1 - rho)) * r.PassSec / 2

	// 2-class non-preemptive priority: scale the single-class wait so
	// the interactive lane only queues behind interactive work (plus
	// the residual of the pass in progress) while the bulk lane also
	// absorbs everything the interactive lane displaced. With no bulk
	// traffic the interactive wait collapses to wq.
	rhoI := rho * (1 - s.BulkFraction)
	w0 := wq * (1 - rho)
	wInteractive := w0 / (1 - rhoI)
	wBulk := w0 / ((1 - rhoI) * (1 - rho))

	// A row waits for its batch to fill (uniformly distributed over the
	// fill span), for a free replica, and for the pass itself. The p99
	// rides the exponential tail of the queue wait.
	r.P50 = r.FillSec/2 + wInteractive + r.PassSec
	r.P99 = r.FillSec + expTail*wInteractive + r.PassSec
	r.BulkP50 = r.FillSec/2 + wBulk + r.PassSec
	r.BulkP99 = r.FillSec + expTail*wBulk + r.PassSec
	return r
}

// FigureS1Point is one cell of the serving-capacity sweep: a replica
// count and batch window, the sustainable QPS, and the latency a caller
// sees at a utilization-targeted operating point.
type FigureS1Point struct {
	Replicas int
	Window   time.Duration
	// MaxQPS is the sustainable offered load of this configuration.
	MaxQPS float64
	// OfferedQPS is the operating point (util · MaxQPS) the latencies
	// below are quoted at.
	OfferedQPS float64
	Occupancy  float64
	// P50Ms/P99Ms are interactive-lane latencies at the operating
	// point, milliseconds.
	P50Ms, P99Ms float64
	// BulkP99Ms is the bulk lane's p99 at the same point.
	BulkP99Ms float64
}

// FigureS1 sweeps serving capacity over replica counts and batch
// windows — the serving analogue of Figure 11's trainer sweep. Each
// point reports the configuration's sustainable QPS and its latency at
// util·MaxQPS offered load (util in (0,1), e.g. 0.6 for a production
// headroom target) with the given cache hit rate and bulk share.
func FigureS1(cost ServingCost, maxBatch int, replicas []int, windows []time.Duration,
	util, cacheHit, bulkFrac float64) []FigureS1Point {
	var out []FigureS1Point
	for _, rep := range replicas {
		for _, win := range windows {
			s := ServingScenario{
				Cost:         cost,
				Replicas:     rep,
				MaxBatch:     maxBatch,
				Window:       win,
				CacheHitRate: cacheHit,
				BulkFraction: bulkFrac,
			}
			s.OfferedQPS = util * s.MaxQPS()
			r := s.Report()
			out = append(out, FigureS1Point{
				Replicas:   rep,
				Window:     win,
				MaxQPS:     r.MaxQPS,
				OfferedQPS: s.OfferedQPS,
				Occupancy:  r.Occupancy,
				P50Ms:      1e3 * r.P50,
				P99Ms:      1e3 * r.P99,
				BulkP99Ms:  1e3 * r.BulkP99,
			})
		}
	}
	return out
}
