package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkServeBatched-8   \t    1929\t    617294 ns/op\t   103.7 rows/sec")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "ServeBatched" || r.CPU != 8 || r.Iterations != 1929 {
		t.Fatalf("parsed %+v", r)
	}
	if m := r.Metrics["ns/op"]; m.Value != 617294 {
		t.Fatalf("ns/op = %+v", m)
	}
	if m := r.Metrics["rows/sec"]; m.Value != 103.7 {
		t.Fatalf("rows/sec = %+v", m)
	}
}

func TestParseLineNoCPUSuffix(t *testing.T) {
	r, ok := parseLine("BenchmarkWire 100 12.5 ns/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "Wire" || r.CPU != 1 {
		t.Fatalf("parsed %+v", r)
	}
}

func TestParseLineRejectsNonBenchmarks(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t2.5s",
		"",
		"BenchmarkBroken-4 notanumber ns/op",
		"--- BENCH: BenchmarkX",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q wrongly parsed as a benchmark", line)
		}
	}
}
