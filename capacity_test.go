package repro

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/perfmodel"
	"repro/internal/serve"
)

// Validation of the serving capacity model (perfmodel.ServingScenario)
// against the real pipeline, the way the Figure 9–11 calibration tests
// validate the training model against the paper's ratios. The contract:
// with cost constants probed from the running binary (serve.CostProbe),
// the model's sustainable-QPS prediction must land within a factor of
// WITHIN of a measured saturated in-process benchmark, and its low-load
// latency prediction must bracket a measured idle-server request.
//
// Tolerances are deliberately wide — the measured side shares one CPU
// with its own load generators and the model ignores queue-hop and
// scheduler costs — but they are real bounds: a regression that makes
// the model drift past 3.3x optimistic or pessimistic (a lost
// amortization term, a misplaced factor of MaxBatch) fails here.
const (
	capWithin   = 3.3 // measured/predicted throughput must be in [1/capWithin, capWithin]
	capMaxBatch = 64
	capWindow   = 2 * time.Millisecond
	// Low-load latency brackets, per quantile, comparing the serving
	// pipeline's measured histogram quantiles (StatsSnapshot.LatencyP50Ms
	// / P99Ms) against ServingScenario.Report's predictions. Tighter than
	// the historical single check (measured MEAN inside [p50/3, 3·p99])
	// in both directions: each quantile is bracketed above AND below
	// against its own prediction. p50 gets 2.8x because the measured side
	// is sequential — every lone request waits the FULL batch window
	// where the model's p50 assumes uniform arrival (half the window), a
	// structural factor of ~2 before any noise, and under -race on a
	// one-CPU host the detector's overhead lands on top of that (2.5x
	// proved marginal there). p99 gets 3x: both sides pay the full
	// window, but the tail eats scheduler jitter.
	capP50Within = 2.8 // measured p50 / predicted P50 ∈ [1/2.8, 2.8]
	capP99Within = 3.0 // measured p99 / predicted P99 ∈ [1/3, 3]
)

// capPool builds the single-replica Tiny8 pool both sides share. One
// replica keeps the comparison honest on single-core hosts: the model's
// Replicas means concurrent execution units, which a CPU-bound Go
// process cannot exceed GOMAXPROCS of.
func capPool(t *testing.T) *serve.Pool {
	t.Helper()
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{48}
	cfg.ForwardHidden = []int{32, 32}
	cfg.InverseHidden = []int{16}
	cfg.DiscHidden = []int{16}
	pool, err := serve.NewPool([]*cyclegan.Surrogate{cyclegan.New(cfg, 11)}, false)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestServingCapacityModelVsMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based validation")
	}
	pool := capPool(t)
	probe, err := serve.CostProbe(pool, serve.MethodPredict, capMaxBatch)
	if err != nil {
		t.Fatal(err)
	}
	scenario := perfmodel.ServingScenario{
		Cost:     perfmodel.ServingCost{PassSec: probe.PassSec, RowSec: probe.RowSec},
		Replicas: 1,
		MaxBatch: capMaxBatch,
		Window:   capWindow,
	}
	predicted := scenario.MaxQPS()
	if predicted <= 0 {
		t.Fatalf("degenerate prediction from probe %+v", probe)
	}

	// Measured side: the probed pool behind the real batching queue,
	// saturated by closed-loop clients (enough to keep full batches
	// queued, few enough not to drown the worker on small hosts).
	srv := serve.NewServer(pool, serve.Config{
		MaxBatch:   capMaxBatch,
		MaxDelay:   capWindow,
		QueueDepth: 1024,
		Workers:    1,
	})
	defer srv.Close()
	const clients, perClient = 2 * capMaxBatch, 150
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			x := make([]float32, jag.InputDim)
			for i := 0; i < perClient; i++ {
				for d := range x {
					x[d] = float32((c*perClient+i*7+d*13)%997) / 997
				}
				if _, err := srv.Predict(x); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	measured := float64(clients*perClient) / time.Since(start).Seconds()
	snap := srv.Stats()
	if snap.MeanBatch < capMaxBatch/4 {
		t.Fatalf("saturation never reached (mean batch %.1f); measurement invalid", snap.MeanBatch)
	}

	if ratio := measured / predicted; ratio < 1/capWithin || ratio > capWithin {
		t.Fatalf("capacity model missed: measured %.0f req/s vs predicted %.0f (ratio %.2f, tolerance %.1fx); probe %+v",
			measured, predicted, ratio, capWithin, probe)
	}

	// Low-load latency: an idle server's lone request waits out the
	// batch window plus one single-row pass. The pipeline's streaming
	// latency histogram gives measured p50/p99 directly, and each must
	// land inside its own multiplicative bracket of the model's
	// prediction — quantile against quantile, not mean against band.
	lowSrv := serve.NewServer(capPool(t), serve.Config{
		MaxBatch: capMaxBatch,
		MaxDelay: capWindow,
		Workers:  1,
	})
	defer lowSrv.Close()
	// Enough observations that the p99 is a real quantile rather than
	// the sample max: with 40 requests one scheduler or GC spike (an
	// everyday event under -race on a one-CPU host) WAS the p99; with
	// 200 it takes a cluster of them to move the bracket.
	const lowN = 200
	x := make([]float32, jag.InputDim)
	for i := 0; i < lowN; i++ {
		x[0] = float32(i) / lowN // unique rows: no cache, no coalescing
		if _, err := lowSrv.Predict(x); err != nil {
			t.Fatal(err)
		}
	}
	lowSnap := lowSrv.Stats()
	hist := lowSrv.LatencyHistogram()
	if hist.Count != lowN {
		t.Fatalf("latency histogram saw %d observations, want %d", hist.Count, lowN)
	}
	measuredP50 := lowSnap.LatencyP50Ms / 1e3
	measuredP99 := lowSnap.LatencyP99Ms / 1e3
	low := scenario
	low.OfferedQPS = 50 // well under capacity: window-bound regime
	rep := low.Report()
	if rep.Saturated {
		t.Fatalf("low-load scenario saturated: %+v", rep)
	}
	if r := measuredP50 / rep.P50; r < 1/capP50Within || r > capP50Within {
		t.Fatalf("latency model p50 missed: measured %.3fms vs predicted %.3fms (ratio %.2f, tolerance %.1fx)",
			1e3*measuredP50, 1e3*rep.P50, r, capP50Within)
	}
	if r := measuredP99 / rep.P99; r < 1/capP99Within || r > capP99Within {
		t.Fatalf("latency model p99 missed: measured %.3fms vs predicted %.3fms (ratio %.2f, tolerance %.1fx)",
			1e3*measuredP99, 1e3*rep.P99, r, capP99Within)
	}
	// The stage decomposition must account for the end-to-end number:
	// queue_wait p50 alone (the window fill) is a lower bound on the
	// total, and no stage can exceed it.
	stage, ok := lowSnap.Stages[serve.StageQueueWait]
	if !ok || stage.Count != lowN {
		t.Fatalf("queue_wait stage histogram missing or short: %+v", lowSnap.Stages)
	}
	if stage.P50Ms > lowSnap.LatencyP50Ms {
		t.Fatalf("queue_wait p50 %.3fms exceeds end-to-end p50 %.3fms", stage.P50Ms, lowSnap.LatencyP50Ms)
	}
}
