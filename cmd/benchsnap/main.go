// Command benchsnap converts `go test -bench` text output into a
// machine-readable JSON snapshot, so the serving benchmarks
// (BenchmarkServeBatched, BenchmarkServeUnbatched,
// BenchmarkWireBinaryVsJSON, BenchmarkProxyOverhead) leave an artifact
// that scripts and CI can diff instead of a transient log line. The
// checked-in BENCH_8.json at the repo root is one such snapshot; CI
// regenerates it every run and uploads the fresh copy, so a perf
// regression is visible as a JSON diff against the committed baseline.
//
// Usage:
//
//	go test -bench 'ServeBatched|ServeUnbatched|WireBinaryVsJSON|ProxyOverhead' -run '^$' . ./internal/serve/ \
//	    | benchsnap -out BENCH_8.json
//
// Input is the standard benchmark line format:
//
//	BenchmarkServeBatched-8   	    1929	    617294 ns/op	   103.7 rows/sec ...
//
// Every value/unit pair is kept verbatim (ns/op, B/op, allocs/op, and
// custom ReportMetric units alike); non-benchmark lines pass through to
// stderr so interleaved test output stays visible. The snapshot records
// GOOS/GOARCH and the benchmark's -cpu suffix but deliberately no
// timestamp: reruns on identical code and hardware should produce
// byte-identical JSON.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one value/unit pair of a benchmark line.
type Measurement struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Result is one benchmark's parsed line.
type Result struct {
	// Name is the benchmark name with the -cpu suffix stripped
	// (BenchmarkServeBatched-8 → ServeBatched).
	Name string `json:"name"`
	// CPU is the -cpu suffix (GOMAXPROCS during the run), 1 if absent.
	CPU int `json:"cpu"`
	// Iterations is the b.N the reported values are averaged over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every pair on the line.
	Metrics map[string]Measurement `json:"metrics"`
}

// Snapshot is the emitted JSON document.
type Snapshot struct {
	// Schema names this document's shape, versioned independently of
	// the repo, so downstream parsers can reject what they don't know.
	Schema  string   `json:"schema"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	Results []Result `json:"results"`
}

// benchLine matches "BenchmarkName[-cpu] <iterations> <pairs...>".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

// parseLine parses one benchmark output line, or returns false for
// headers, pass/fail trailers, and interleaved log output.
func parseLine(line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return Result{}, false
	}
	r := Result{
		Name:    strings.TrimPrefix(m[1], "Benchmark"),
		CPU:     1,
		Metrics: map[string]Measurement{},
	}
	// m[2] and m[3] matched \d+ in benchLine, so these cannot fail.
	if m[2] != "" {
		r.CPU, _ = strconv.Atoi(m[2])
	}
	r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
	fields := strings.Fields(m[4])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false // malformed pair: not a benchmark line after all
		}
		r.Metrics[fields[i+1]] = Measurement{Value: v, Unit: fields[i+1]}
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsnap: ")
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		} else if strings.TrimSpace(line) != "" {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines on stdin (run with: go test -bench ... | benchsnap)")
	}
	// Deterministic order regardless of package interleaving.
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })

	snap := Snapshot{Schema: "jag-bench/v1", GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Results: results}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(buf); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d benchmarks)", *out, len(results))
}
