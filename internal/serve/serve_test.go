package serve

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/tensor"
)

// testModelCfg is a tiny architecture that predicts instantly.
func testModelCfg() cyclegan.Config {
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{16}
	cfg.ForwardHidden = []int{8}
	cfg.InverseHidden = []int{8}
	cfg.DiscHidden = []int{8}
	return cfg
}

// newTestServer builds a single-replica server over a fresh surrogate.
func newTestServer(t *testing.T, cfg Config) (*Server, *cyclegan.Surrogate) {
	t.Helper()
	model := cyclegan.New(testModelCfg(), 42)
	pool, err := NewPool([]*cyclegan.Surrogate{model}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(pool, cfg)
	t.Cleanup(s.Close)
	return s, model
}

// testInput returns a deterministic in-cube input distinct per i.
func testInput(i int) []float32 {
	x := make([]float32, jag.InputDim)
	for d := range x {
		x[d] = float32((i*7+d*13)%101) / 101
	}
	return x
}

// TestPredictMatchesModel checks that a served prediction equals a
// direct forward pass of an identically-seeded reference model. With
// MaxBatch 1 the served batch has the same shape as the reference
// batch, so equality is bitwise.
func TestPredictMatchesModel(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 1})
	ref := cyclegan.New(testModelCfg(), 42)

	x := testInput(3)
	got, err := s.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	xm := tensor.New(1, jag.InputDim)
	copy(xm.Row(0), x)
	want := ref.Predict(xm)
	if len(got) != want.Cols {
		t.Fatalf("output dim %d, want %d", len(got), want.Cols)
	}
	for j, v := range got {
		if v != want.At(0, j) {
			t.Fatalf("output[%d] = %v, want %v", j, v, want.At(0, j))
		}
	}
}

// TestFlushOnFull submits exactly MaxBatch concurrent requests under a
// long deadline: the batch must flush on occupancy, in one forward pass.
func TestFlushOnFull(t *testing.T) {
	const n = 8
	s, _ := newTestServer(t, Config{MaxBatch: n, MaxDelay: time.Minute})

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Predict(testInput(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	snap := s.Stats()
	if snap.Requests != n {
		t.Fatalf("requests = %d, want %d", snap.Requests, n)
	}
	if snap.Batches != 1 || snap.MeanBatch != n {
		t.Fatalf("batches = %d (mean %v), want 1 full batch of %d",
			snap.Batches, snap.MeanBatch, n)
	}
}

// TestFlushOnDeadline submits fewer requests than MaxBatch: the partial
// batch must flush once MaxDelay elapses rather than waiting forever.
func TestFlushOnDeadline(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 64, MaxDelay: 5 * time.Millisecond})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Predict(testInput(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	snap := s.Stats()
	if snap.Requests != 3 {
		t.Fatalf("requests = %d, want 3", snap.Requests)
	}
	if snap.MaxBatch > 3 {
		t.Fatalf("max batch = %v, want <= 3", snap.MaxBatch)
	}
}

// TestBackpressure fills QueueDepth with requests parked behind a long
// flush deadline, then checks that the next caller fails fast with
// ErrOverloaded and that the parked requests still complete.
func TestBackpressure(t *testing.T) {
	const depth = 4
	s, _ := newTestServer(t, Config{
		MaxBatch:   64,
		MaxDelay:   300 * time.Millisecond,
		QueueDepth: depth,
	})

	var wg sync.WaitGroup
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Predict(testInput(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	// Wait until all depth requests are in flight.
	deadline := time.Now().Add(2 * time.Second)
	for s.inflight.Load() < depth {
		if time.Now().After(deadline) {
			t.Fatal("requests never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Predict(testInput(99)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow Predict error = %v, want ErrOverloaded", err)
	}
	wg.Wait()

	snap := s.Stats()
	if snap.Overloads != 1 {
		t.Fatalf("overloads = %d, want 1", snap.Overloads)
	}
	if snap.Requests != depth {
		t.Fatalf("requests = %d, want %d", snap.Requests, depth)
	}
}

// TestConcurrentStress hammers the queue from many goroutines and
// verifies every response against an identically-seeded reference model
// (tolerance-based: batch shape affects nothing but is kept loose in
// case kernel blocking ever becomes shape-dependent).
func TestConcurrentStress(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 16, MaxDelay: time.Millisecond})
	// The reference model is shared across checker goroutines and
	// nn.Network is not concurrency-safe, so serialize its use.
	ref := cyclegan.New(testModelCfg(), 42)
	var refMu sync.Mutex

	const goroutines, perG = 32, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				x := testInput(g*perG + k)
				got, err := s.Predict(x)
				if err != nil {
					t.Error(err)
					return
				}
				xm := tensor.New(1, jag.InputDim)
				copy(xm.Row(0), x)
				refMu.Lock()
				want := ref.Predict(xm)
				refMu.Unlock()
				for j, v := range got {
					d := v - want.At(0, j)
					if d < 0 {
						d = -d
					}
					if d > 1e-5 {
						t.Errorf("req %d output[%d] = %v, want %v", g*perG+k, j, v, want.At(0, j))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	snap := s.Stats()
	if snap.Requests != goroutines*perG {
		t.Fatalf("requests = %d, want %d", snap.Requests, goroutines*perG)
	}
	if snap.MeanBatch <= 1 && snap.Batches == goroutines*perG {
		t.Log("warning: no coalescing observed under stress (timing-dependent)")
	}
}

// TestPassOverheadLatency checks that the modeled dispatch overhead is
// paid once per batch and shows up in the latency meter.
func TestPassOverheadLatency(t *testing.T) {
	s, _ := newTestServer(t, Config{
		MaxBatch:     4,
		MaxDelay:     time.Minute,
		PassOverhead: 500 * time.Microsecond,
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Predict(testInput(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	snap := s.Stats()
	if snap.Batches != 1 {
		t.Fatalf("batches = %d, want 1", snap.Batches)
	}
	if snap.MeanLatMs < 0.3 {
		t.Fatalf("mean latency %.3fms, want >= 0.3ms of modeled overhead", snap.MeanLatMs)
	}
}

// TestCacheAccounting checks hit/miss counters and that a cache hit
// returns the same prediction without another forward pass.
func TestCacheAccounting(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 1, CacheSize: 8})

	x := testInput(5)
	first, err := s.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range first {
		if first[j] != second[j] {
			t.Fatalf("cached output differs at %d", j)
		}
	}

	snap := s.Stats()
	if snap.CacheMisses != 1 || snap.CacheHits != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
	if snap.Requests != 1 {
		t.Fatalf("model requests = %d, want 1 (second served from cache)", snap.Requests)
	}
}

// TestPredictAfterClose checks the ErrClosed path.
func TestPredictAfterClose(t *testing.T) {
	model := cyclegan.New(testModelCfg(), 1)
	pool, err := NewPool([]*cyclegan.Surrogate{model}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(pool, Config{})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Predict(testInput(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after Close = %v, want ErrClosed", err)
	}
}

// TestPredictBadDim checks input validation.
func TestPredictBadDim(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if _, err := s.Predict([]float32{1, 2}); err == nil {
		t.Fatal("short input accepted")
	}
	nan := float32(math.NaN())
	if _, err := s.Predict([]float32{nan, 0, 0, 0, 0}); err == nil {
		t.Fatal("NaN input accepted")
	}
	inf := float32(math.Inf(1))
	if _, err := s.Predict([]float32{0, inf, 0, 0, 0}); err == nil {
		t.Fatal("Inf input accepted")
	}
}
