// Package ltfb implements "Let a Thousand Flowers Bloom" (Section III-C),
// the paper's tournament algorithm for training generative models at scale.
//
// K trainers train independently on disjoint partitions of the dataset. At
// fixed mini-batch intervals a tournament round runs: trainers are randomly
// paired, partners exchange their generator networks (discriminators stay
// local — the GAN extension this paper contributes over Jacobs et al. 2017),
// each trainer evaluates its own and the incoming generator on a local
// held-out tournament set, and the better one survives. A surviving model
// carries an encoded representation of the data silos it has visited, which
// is what lets LTFB strong-scale without a loss of generalization.
//
// The implementation is rank-level: every rank of every trainer calls
// Tournament collectively. Only trainer masters (trainer-rank 0) exchange
// weights across trainers, then broadcast the verdict and the winning
// weights to their replicas — exactly the communication structure of
// Figure 6b. Pairing decisions are derived from a shared seed, so no global
// coordination is needed.
package ltfb

import (
	"fmt"
	"math/rand"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// Pairing returns the tournament pairs for the given round: a random
// perfect matching of the k trainers (the last one sits out when k is odd).
// It is a pure function of (k, seed, round), so every rank computes the
// same matching locally.
func Pairing(k int, seed int64, round int) [][2]int {
	if k < 2 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed ^ (int64(round)+1)*0x5DEECE66D))
	perm := rng.Perm(k)
	var pairs [][2]int
	for i := 0; i+1 < k; i += 2 {
		pairs = append(pairs, [2]int{perm[i], perm[i+1]})
	}
	return pairs
}

// PartnerOf returns trainer id's partner in pairs, or -1 if it sits out.
func PartnerOf(pairs [][2]int, id int) int {
	for _, p := range pairs {
		if p[0] == id {
			return p[1]
		}
		if p[1] == id {
			return p[0]
		}
	}
	return -1
}

// Metric selects how tournament candidates are scored (lower wins).
type Metric int

const (
	// MetricEval scores candidates with Model.Eval on the tournament set —
	// the forward+inverse validation loss of Section IV.
	MetricEval Metric = iota
	// MetricAdversarial scores a candidate generator by how well it fools
	// the local discriminator (Figure 6b's "evaluate them against their
	// local discriminators"); requires the model to implement
	// AdversarialScorer, else falls back to MetricEval.
	MetricAdversarial
)

// AdversarialScorer is implemented by GAN models that can judge a generator
// with their local discriminator. Lower scores are better.
type AdversarialScorer interface {
	AdversarialScore(x, y *tensor.Matrix) float64
}

// Config fixes the tournament behaviour shared by all trainers.
type Config struct {
	NumTrainers int
	// RoundSteps is the number of mini-batch steps each trainer runs
	// between tournaments.
	RoundSteps int
	// PairSeed seeds the per-round pairings; identical on all ranks.
	PairSeed int64
	Metric   Metric
	// ExchangeFull ships every network instead of the generator subset —
	// the exchange-volume ablation.
	ExchangeFull bool
	// ResetOptimOnAdopt clears optimizer state when adopting an incoming
	// model, since the moments belonged to the losing weights.
	ResetOptimOnAdopt bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumTrainers < 1 {
		return fmt.Errorf("ltfb: %d trainers", c.NumTrainers)
	}
	if c.RoundSteps < 1 {
		return fmt.Errorf("ltfb: round steps %d", c.RoundSteps)
	}
	return nil
}

// Member is one rank's participation in the LTFB population. World ranks
// must be laid out in contiguous trainer blocks: world rank =
// trainerID·ranksPerTrainer + trainerRank (Figure 4's layout).
type Member struct {
	Cfg       Config
	TrainerID int
	World     *comm.Comm
	T         *trainer.Trainer
	// Scratch is a same-architecture model used to evaluate incoming
	// weights against local context (encoder/discriminator).
	Scratch trainer.Model
	// TournX/TournY hold the local tournament dataset, already split into
	// inputs and outputs.
	TournX, TournY *tensor.Matrix
	// lineage records the data silos this member's current model has been
	// trained on; it is created lazily and merged on every adoption.
	lineage Lineage
}

// Lineage returns the silos the member's current model has trained on.
func (m *Member) Lineage() Lineage {
	if m.lineage == nil {
		m.lineage = NewLineage(m.Cfg.NumTrainers, m.TrainerID)
	}
	return m.lineage
}

// ltfbTagBase keeps tournament traffic clear of data-store tags.
const ltfbTagBase = 1 << 19

// RoundResult records one trainer's view of a tournament round.
type RoundResult struct {
	Round     int
	Partner   int     // -1 when sitting out
	LocalLoss float64 // local candidate's tournament score
	PeerLoss  float64 // incoming candidate's tournament score
	Adopted   bool    // whether the incoming candidate replaced ours
}

// exchangeSet returns the networks shipped in tournaments for model.
func (m *Member) exchangeSet(model trainer.Model) []*nn.Network {
	if m.Cfg.ExchangeFull {
		return model.Nets()
	}
	return model.ExchangeNets()
}

// score evaluates a candidate model on the local tournament set.
func (m *Member) score(model trainer.Model) float64 {
	if m.Cfg.Metric == MetricAdversarial {
		if s, ok := model.(AdversarialScorer); ok {
			return s.AdversarialScore(m.TournX, m.TournY)
		}
	}
	return model.Eval(m.TournX, m.TournY)
}

// copyAllWeights clones src's weights into dst net-by-net.
func copyAllWeights(dst, src trainer.Model) {
	dNets, sNets := dst.Nets(), src.Nets()
	for i := range dNets {
		dNets[i].CopyWeightsFrom(sNets[i])
	}
}

// Tournament runs one round. Collective: every rank of every trainer must
// call it with the same round number. It returns this trainer's result.
func (m *Member) Tournament(round int) (RoundResult, error) {
	res := RoundResult{Round: round, Partner: -1}
	pairs := Pairing(m.Cfg.NumTrainers, m.Cfg.PairSeed, round)
	partner := PartnerOf(pairs, m.TrainerID)
	res.Partner = partner
	if partner < 0 {
		return res, nil // odd trainer count: sit out, keep training
	}

	ranksPer := m.World.Size() / m.Cfg.NumTrainers
	lin := m.Lineage()
	netsLen := len(nn.MarshalNetworks(m.exchangeSet(m.T.Model)))
	payloadLen := netsLen + len(lin)
	verdict := make([]byte, 1+payloadLen)

	if m.T.C.Rank() == 0 {
		// Masters swap generator payloads across trainers (Figure 6b); the
		// model's lineage bitset rides along after the weights.
		tag := ltfbTagBase + round%(1<<10)
		myBytes := append(nn.MarshalNetworks(m.exchangeSet(m.T.Model)), lin...)
		partnerMaster := partner * ranksPer
		incoming := m.World.SendrecvBytes(partnerMaster, myBytes, partnerMaster, tag)
		if len(incoming) != payloadLen {
			return res, fmt.Errorf("ltfb: trainer %d got %d payload bytes, want %d", m.TrainerID, len(incoming), payloadLen)
		}

		// Judge the incoming generator against local context: the scratch
		// model keeps our encoder and discriminator, adopts their
		// generator.
		copyAllWeights(m.Scratch, m.T.Model)
		if err := nn.UnmarshalNetworks(m.exchangeSet(m.Scratch), incoming[:netsLen]); err != nil {
			return res, fmt.Errorf("ltfb: trainer %d: %w", m.TrainerID, err)
		}
		res.LocalLoss = m.score(m.T.Model)
		res.PeerLoss = m.score(m.Scratch)
		if res.PeerLoss < res.LocalLoss {
			verdict[0] = 1
			copy(verdict[1:], incoming)
		} else {
			copy(verdict[1:], myBytes)
		}
	}

	// The verdict (and winning weights plus lineage) propagate to every
	// replica.
	m.T.C.BcastBytes(0, verdict)
	adopted := verdict[0] == 1
	res.Adopted = adopted
	if adopted {
		if err := nn.UnmarshalNetworks(m.exchangeSet(m.T.Model), verdict[1:1+netsLen]); err != nil {
			return res, fmt.Errorf("ltfb: trainer %d adopt: %w", m.TrainerID, err)
		}
		if m.Cfg.ResetOptimOnAdopt {
			m.T.Model.ResetOptim()
		}
		// The adopted model has seen its previous silos; from now on it
		// also trains here.
		m.lineage.Merge(Lineage(verdict[1+netsLen:]))
		m.lineage.Add(m.TrainerID)
	}

	// Non-master ranks learn the scores too, for uniform logging.
	scores := []float32{float32(res.LocalLoss), float32(res.PeerLoss)}
	m.T.C.Bcast(0, scores)
	res.LocalLoss = float64(scores[0])
	res.PeerLoss = float64(scores[1])
	return res, nil
}

// Loop alternates RoundSteps of training with a tournament, for the given
// number of rounds, returning the per-round results.
func (m *Member) Loop(rounds int) ([]RoundResult, error) {
	if err := m.Cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([]RoundResult, 0, rounds)
	for r := 0; r < rounds; r++ {
		if err := m.T.Advance(m.Cfg.RoundSteps); err != nil {
			return out, err
		}
		res, err := m.Tournament(r)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
