package tensor

import (
	"math"
	"math/rand"
)

// Add computes dst = a + b elementwise. All shapes must match; dst may alias
// a or b.
func Add(dst, a, b *Matrix) {
	dst.mustSameShape(a, "Add")
	dst.mustSameShape(b, "Add")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a - b elementwise.
func Sub(dst, a, b *Matrix) {
	dst.mustSameShape(a, "Sub")
	dst.mustSameShape(b, "Sub")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Hadamard computes dst = a ⊙ b (elementwise product).
func Hadamard(dst, a, b *Matrix) {
	dst.mustSameShape(a, "Hadamard")
	dst.mustSameShape(b, "Hadamard")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Scale multiplies every element of m by s in place.
func Scale(m *Matrix, s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled computes dst += s*src (axpy over whole matrices).
func AddScaled(dst *Matrix, s float32, src *Matrix) {
	dst.mustSameShape(src, "AddScaled")
	axpy(s, src.Data, dst.Data)
}

// Apply sets dst[i] = fn(src[i]) for every element. dst may alias src.
func Apply(dst, src *Matrix, fn func(float32) float32) {
	dst.mustSameShape(src, "Apply")
	for i, v := range src.Data {
		dst.Data[i] = fn(v)
	}
}

// AddRowVector adds the 1×Cols row vector v to every row of m in place,
// implementing bias addition.
func AddRowVector(m *Matrix, v []float32) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVector length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ColSums returns the per-column sums of m as a length-Cols slice,
// implementing bias gradients.
func ColSums(m *Matrix) []float32 {
	out := make([]float32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
func Sum(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements, or 0 for an empty matrix.
func Mean(m *Matrix) float64 {
	n := len(m.Data)
	if n == 0 {
		return 0
	}
	return Sum(m) / float64(n)
}

// Dot returns the Frobenius inner product of a and b.
func Dot(a, b *Matrix) float64 {
	a.mustSameShape(b, "Dot")
	var s float64
	for i, v := range a.Data {
		s += float64(v) * float64(b.Data[i])
	}
	return s
}

// Norm2 returns the Frobenius norm of m.
func Norm2(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// matrix.
func MaxAbs(m *Matrix) float32 {
	var best float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > best {
			best = v
		}
	}
	return best
}

// FillGaussian fills m with N(mean, std²) samples from rng.
func FillGaussian(m *Matrix, rng *rand.Rand, mean, std float64) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64()*std + mean)
	}
}

// FillUniform fills m with samples drawn uniformly from [lo, hi).
func FillUniform(m *Matrix, rng *rand.Rand, lo, hi float64) {
	for i := range m.Data {
		m.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}
