package perfmodel

import (
	"math/rand"

	"repro/internal/des"
	"repro/internal/pfs"
)

// ingestWindow is the number of steps the naive-ingestion simulation
// samples before extrapolating; per-step ingestion is stationary (uniform
// random file access every step), so a short window converges.
const ingestWindow = 30

// NaiveIngestPerStep simulates the naive data-reader access pattern on the
// file-system model and returns the mean per-step ingestion time: each of
// the trainer's ranks opens and randomly reads its mini-batch share, one
// sample at a time (Section IV-C's "significant burden on the parallel file
// system").
func (s Scenario) NaiveIngestPerStep() float64 {
	sim := des.New()
	fs := pfs.New(sim, s.FS)
	ranks := s.GPUsPerTrainer
	files := s.TrainSamples / s.SamplesPerFile
	if files < 1 {
		files = 1
	}
	rng := rand.New(rand.NewSource(12345))

	var total float64
	for w := 0; w < ingestWindow; w++ {
		start := sim.Now()
		for r := 0; r < ranks; r++ {
			share := s.BatchSize / ranks
			if r < s.BatchSize%ranks {
				share++
			}
			// Each rank's reads are a sequential chain: open the sample's
			// file, seek-read the sample, move on.
			var next func(k int)
			next = func(k int) {
				if k >= share {
					return
				}
				f := rng.Intn(files)
				fs.Open(f, func(float64) {
					fs.ReadRandom(f, s.SampleBytes, func(float64) { next(k + 1) })
				})
			}
			next(0)
		}
		// The trainer cannot start the step before every rank has its
		// shard: run the chains to completion (the inter-step barrier).
		sim.Run()
		total += sim.Now() - start
	}
	return total / ingestWindow
}

// PreloadMakespan simulates every trainer concurrently preloading its data
// partition (train share plus validation share) from the shared file
// system and returns the time until the last trainer finishes — the
// "Data preload" series of Figure 11. Files are assigned contiguously to
// trainers and round-robin to ranks within a trainer; each rank reads its
// files sequentially and wholly, the paper's one-process-per-file pattern.
// Past ~32 trainers the per-OST in-flight depth exceeds saturation and
// effective bandwidth degrades — the inter-trainer GPFS interference the
// paper reports at 64 trainers.
func (s Scenario) PreloadMakespan() float64 {
	sim := des.New()
	fs := pfs.New(sim, s.FS)
	trainFiles := s.TrainSamples / s.SamplesPerFile
	valFiles := s.ValSamples / s.SamplesPerFile
	fileBytes := float64(s.SamplesPerFile) * s.SampleBytes

	for tr := 0; tr < s.Trainers; tr++ {
		// Contiguous file ranges per trainer, for train and val alike.
		lo := tr * trainFiles / s.Trainers
		hi := (tr + 1) * trainFiles / s.Trainers
		vlo := trainFiles + tr*valFiles/s.Trainers
		vhi := trainFiles + (tr+1)*valFiles/s.Trainers
		var owned []int
		for f := lo; f < hi; f++ {
			owned = append(owned, f)
		}
		for f := vlo; f < vhi; f++ {
			owned = append(owned, f)
		}
		for r := 0; r < s.GPUsPerTrainer; r++ {
			var mine []int
			for k, f := range owned {
				if k%s.GPUsPerTrainer == r {
					mine = append(mine, f)
				}
			}
			var next func(k int)
			next = func(k int) {
				if k >= len(mine) {
					return
				}
				f := mine[k]
				fs.Open(f, func(float64) {
					fs.ReadSequential(f, fileBytes, func(float64) { next(k + 1) })
				})
			}
			next(0)
		}
	}
	return sim.Run()
}
