package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"repro/internal/jag"
)

// statusClientClosedRequest is the nginx convention for "the client
// went away before we answered" — the HTTP face of ErrCancelled.
const statusClientClosedRequest = 499

// PriorityHeader is the request header consulted for the queue lane
// when the JSON body carries no "priority" field.
const PriorityHeader = "X-Priority"

// PredictRequest is the /predict JSON body: either one input or a list.
type PredictRequest struct {
	// Input is a single 5-D parameter vector.
	Input []float32 `json:"input,omitempty"`
	// Inputs is a batch of 5-D parameter vectors; each row is submitted
	// to the batching queue independently, so one HTTP batch and many
	// concurrent single-input calls coalesce identically.
	Inputs [][]float32 `json:"inputs,omitempty"`
	// ScalarsOnly trims each output row to the 15 scalar observables,
	// dropping the X-ray image pixels (which dominate the payload).
	ScalarsOnly bool `json:"scalars_only,omitempty"`
	// Priority selects the queue lane: "interactive" (default) or
	// "bulk". The X-Priority header is the fallback when this is empty.
	Priority string `json:"priority,omitempty"`
	// DeadlineMs bounds this request's time in the pipeline; rows still
	// queued when it passes are dropped without a forward pass and
	// reported as status-504 row errors. 0 uses the handler's default.
	DeadlineMs int `json:"deadline_ms,omitempty"`
}

// RowError reports one failed row of a /predict batch.
type RowError struct {
	// Status is the HTTP status the row would have had on its own.
	Status int `json:"status"`
	// Error is the row's error message.
	Error string `json:"error"`
}

// PredictResponse is the /predict JSON reply, rows aligned with the
// request inputs. When every row succeeds Errors is omitted; otherwise
// Errors has one entry per input (null for rows that succeeded) and the
// failed rows' Outputs entries are null — one poisoned row no longer
// discards its siblings' completed work.
type PredictResponse struct {
	Outputs [][]float32 `json:"outputs"`
	Errors  []*RowError `json:"errors,omitempty"`
}

// healthResponse is the /healthz JSON reply.
type healthResponse struct {
	Status    string `json:"status"`
	Replicas  int    `json:"replicas"`
	Ensemble  bool   `json:"ensemble"`
	OutputDim int    `json:"output_dim"`
}

// HandlerConfig tunes NewHandlerConfig.
type HandlerConfig struct {
	// DefaultDeadline is applied to /predict requests that don't carry
	// their own deadline_ms; 0 leaves them unbounded.
	DefaultDeadline time.Duration
}

// NewHandler exposes a Server over HTTP JSON with default handler
// options: POST /predict, GET /healthz, GET /stats. cmd/jagserve mounts
// exactly this handler; tests drive it through httptest.
func NewHandler(s *Server) http.Handler { return NewHandlerConfig(s, HandlerConfig{}) }

// NewHandlerConfig is NewHandler with explicit options.
func NewHandlerConfig(s *Server, hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req PredictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
			return
		}
		priority := req.Priority
		if priority == "" {
			priority = r.Header.Get(PriorityHeader)
		}
		class, err := ParsePriority(priority)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		inputs := req.Inputs
		if req.Input != nil {
			inputs = append([][]float32{req.Input}, inputs...)
		}
		if len(inputs) == 0 {
			httpError(w, http.StatusBadRequest, "no inputs")
			return
		}
		// The rows live and die with the HTTP request: a disconnecting
		// client or an elapsed deadline turns still-queued rows stale,
		// and the batcher drops them before the forward pass.
		ctx := r.Context()
		deadline := hc.DefaultDeadline
		if req.DeadlineMs > 0 {
			deadline = time.Duration(req.DeadlineMs) * time.Millisecond
		}
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		outputs := make([][]float32, len(inputs))
		errs := make([]error, len(inputs))
		// Submit rows concurrently so one HTTP batch benefits from the
		// same coalescing as independent clients — but throttled to half
		// the queue depth, so a single large batch cannot trip its own
		// backpressure (ErrOverloaded is for contention between clients,
		// not for one request's row count).
		limit := s.cfg.QueueDepth / 2
		if limit < 1 {
			limit = 1
		}
		sem := make(chan struct{}, limit)
		var wg sync.WaitGroup
		for i := range inputs {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outputs[i], errs[i] = s.PredictPriority(ctx, inputs[i], class)
				<-sem
			}(i)
		}
		wg.Wait()
		rowErrs, failed := collectRowErrors(errs)
		if req.ScalarsOnly {
			for i, row := range outputs {
				if len(row) > jag.ScalarDim {
					outputs[i] = row[:jag.ScalarDim]
				}
			}
		}
		resp := PredictResponse{Outputs: outputs}
		if failed > 0 {
			resp.Errors = rowErrs
		}
		if failed == len(inputs) {
			// Nothing succeeded: surface the severest row status at the
			// top level (the body still carries the per-row detail).
			writeJSONStatus(w, batchStatus(rowErrs), resp)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status, code := "ok", http.StatusOK
		if s.Closed() {
			status, code = "closed", http.StatusServiceUnavailable
		}
		writeJSONStatus(w, code, healthResponse{
			Status:    status,
			Replicas:  s.Pool().Replicas(),
			Ensemble:  s.Pool().Ensemble(),
			OutputDim: s.OutputDim(),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	return mux
}

// collectRowErrors maps per-row Predict errors onto aligned RowError
// entries and counts the failures.
func collectRowErrors(errs []error) (rowErrs []*RowError, failed int) {
	rowErrs = make([]*RowError, len(errs))
	for i, err := range errs {
		if err == nil {
			continue
		}
		rowErrs[i] = &RowError{Status: rowStatus(err), Error: err.Error()}
		failed++
	}
	return rowErrs, failed
}

// rowStatus maps one row's Predict error to its HTTP status.
func rowStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrExpired):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrCancelled):
		return statusClientClosedRequest
	default:
		return http.StatusBadRequest
	}
}

// severity ranks row statuses for the all-rows-failed top-level status:
// 503 (capacity / shutdown — retry elsewhere) > 504 (deadline) > 499
// (client gone) > 400 (caller bug). The ordering is a fixed property of
// the status, never of slice iteration order, so the top-level status
// of a mixed-failure batch is deterministic.
func severity(status int) int {
	switch status {
	case http.StatusServiceUnavailable:
		return 4
	case http.StatusGatewayTimeout:
		return 3
	case statusClientClosedRequest:
		return 2
	case http.StatusBadRequest:
		return 1
	}
	return 0
}

// batchStatus returns the severest status among the row errors.
func batchStatus(rowErrs []*RowError) int {
	worst := http.StatusInternalServerError // only if no row carries an error
	rank := -1
	for _, re := range rowErrs {
		if re != nil && severity(re.Status) > rank {
			worst, rank = re.Status, severity(re.Status)
		}
	}
	return worst
}

// writeJSON renders v as a JSON response body with status 200.
func writeJSON(w http.ResponseWriter, v any) { writeJSONStatus(w, http.StatusOK, v) }

// writeJSONStatus renders v as a JSON body with an explicit status.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already out; an encode error can only be
	// logged by the caller's middleware, not reported.
	_ = json.NewEncoder(w).Encode(v)
}

// httpError renders a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSONStatus(w, status, struct {
		Error string `json:"error"`
	}{msg})
}
