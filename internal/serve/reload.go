package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/tensor"
)

// Reloader keeps one registered model current with the checkpoints on
// disk: the LTFB training loop continuously promotes new tournament
// winners, so a serving process that must restart to pick one up is
// always stale. The reloader polls a spec/checkpoint path (the same
// flexible path cmd/jagserve's -models flag takes), fingerprints the
// spec file and every checkpoint it lists, and when the content
// changes it builds a fresh replica pool, smoke-tests it with a canary
// forward pass per method, and promotes it with Registry.Replace —
// new requests route to the new model while the old server drains its
// in-flight batches and closes. A replacement that fails to load or
// fails the canary is rolled back: the old model keeps serving, the
// failure is recorded in the reload state (surfaced via /healthz), and
// the next content change retries.
//
// Change detection is two-stage: a cheap stat signature (path, size,
// mtime of spec + checkpoints) decides whether to hash at all, and the
// SHA-256 content fingerprint decides whether to reload — so a file
// rewritten with identical bytes (or merely touched) never triggers a
// swap, and an idle poll costs a few stat calls.
type Reloader struct {
	reg  *Registry
	name string
	path string
	cfg  ReloaderConfig

	mu         sync.Mutex
	sig        string // last stat signature seen
	hash       string // content fingerprint of the serving generation
	reloads    int64  // successful swaps performed by this reloader
	rejections int64  // failed attempts: load error or canary rejection
	lastCheck  time.Time
	lastSwap   time.Time
	lastErr    string
}

// ReloaderConfig tunes a Reloader.
type ReloaderConfig struct {
	// Interval is the Run polling period (default 2s).
	Interval time.Duration
	// Replicas and Ensemble shape the rebuilt pool, like the matching
	// cmd/jagserve flags (Replicas is raised to the checkpoint count).
	Replicas int
	Ensemble bool
	// Server configures the rebuilt Server; zero values take the
	// Config defaults.
	Server Config
	// Logf, when set, receives one line per swap and per failed
	// attempt (e.g. log.Printf). nil silences the reloader.
	Logf func(format string, args ...any)
	// Baseline is the SpecFingerprint of the content the currently
	// serving model was built from. Set it when the files may change
	// between building the serving pool and constructing the reloader
	// (compute the fingerprint before loading the checkpoints, as
	// cmd/jagserve -watch does); a checkpoint written in that window
	// is then promoted on the first poll instead of being silently
	// adopted as already-serving. Empty fingerprints the path at
	// construction time.
	Baseline string
}

// ReloadState is a reloader's reportable state, embedded in the
// /healthz reply next to the model's readiness.
type ReloadState struct {
	// Path is the watched spec/checkpoint path.
	Path string `json:"path"`
	// Generation mirrors the registry's swap generation for the name.
	Generation int64 `json:"generation"`
	// Reloads counts successful hot swaps performed by this reloader.
	Reloads int64 `json:"reloads"`
	// Rejections counts failed reload attempts — a checkpoint that
	// would not load or failed its canary pass — each of which left the
	// previous generation serving. Exposed as jag_reload_rejected_total
	// on /metrics, so a training loop writing poison checkpoints pages
	// someone instead of silently never promoting.
	Rejections int64 `json:"rejected_reloads"`
	// Fingerprint is the content hash of the serving generation's spec
	// + checkpoints.
	Fingerprint string `json:"fingerprint,omitempty"`
	// LastCheck is when the watcher last polled the path.
	LastCheck time.Time `json:"last_check,omitzero"`
	// LastSwap is when the model was last hot-swapped.
	LastSwap time.Time `json:"last_swap,omitzero"`
	// LastError is the most recent failed reload attempt (load error
	// or canary rejection). It persists while the rejected content
	// remains on disk — no-change polls do not clear it — and empties
	// once a poll examines clean content or swaps. A non-empty value
	// means an intended update was NOT promoted and the previous
	// generation is still serving.
	LastError string `json:"last_error,omitempty"`
}

// NewReloader attaches a watcher for the named (already registered)
// model to the registry and fingerprints the path's current content as
// the baseline, so the first poll only swaps if the files changed
// after the serving model was built. It does not start polling: call
// Run (or Check, for explicit single polls).
func NewReloader(reg *Registry, name, path string, cfg ReloaderConfig) (*Reloader, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	rl := &Reloader{reg: reg, name: name, path: path, cfg: cfg}
	if err := reg.attachWatcher(name, rl); err != nil {
		return nil, err
	}
	if cfg.Baseline != "" {
		// The caller pinned what is actually serving; the stat
		// signature stays empty so the first poll compares content.
		rl.hash = cfg.Baseline
	} else if sig, hash, _, err := rl.fingerprint(); err == nil {
		// Best-effort: if the path is unreadable now, leave the
		// fingerprint empty and let the first successful poll load it.
		rl.sig, rl.hash = sig, hash
	}
	return rl, nil
}

// State returns a snapshot of the reloader's bookkeeping.
func (rl *Reloader) State() ReloadState {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return ReloadState{
		Path:        rl.path,
		Generation:  rl.reg.Generation(rl.name),
		Reloads:     rl.reloads,
		Rejections:  rl.rejections,
		Fingerprint: rl.hash,
		LastCheck:   rl.lastCheck,
		LastSwap:    rl.lastSwap,
		LastError:   rl.lastErr,
	}
}

// Run polls until ctx is cancelled, logging swaps and failures through
// the configured Logf.
func (rl *Reloader) Run(ctx context.Context) {
	tick := time.NewTicker(rl.cfg.Interval)
	defer tick.Stop()
	// Bad-content failures are latched by the stat signature (no
	// re-attempt until the files change), but a fingerprint/stat error
	// fires on every poll — a static misconfiguration (deleted
	// checkpoint, ambiguous spec dir) must log once, not every
	// interval forever.
	var lastLogged string
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			swapped, err := rl.Check()
			switch {
			case err != nil:
				if msg := err.Error(); msg != lastLogged {
					lastLogged = msg
					rl.logf("model %s: reload rejected, generation %d keeps serving: %v",
						rl.name, rl.reg.Generation(rl.name), err)
				}
			case swapped:
				lastLogged = ""
				rl.logf("model %s: hot-swapped to generation %d from %s",
					rl.name, rl.reg.Generation(rl.name), rl.path)
			default:
				lastLogged = ""
			}
		}
	}
}

func (rl *Reloader) logf(format string, args ...any) {
	if rl.cfg.Logf != nil {
		rl.cfg.Logf(format, args...)
	}
}

// Check runs one poll step: detect change, rebuild, canary, promote.
// It returns whether a swap happened. An error means the old model
// kept serving — unreadable path, failed load, or canary rejection —
// and stays recorded in State while the rejected content remains on
// disk: a later no-change poll must not wipe the evidence, only a
// poll that examined new (or reverted) content clears it.
func (rl *Reloader) Check() (swapped bool, err error) {
	swapped, examined, err := rl.check()
	rl.mu.Lock()
	rl.lastCheck = time.Now()
	switch {
	case err != nil:
		rl.lastErr = err.Error()
		rl.rejections++
	case examined:
		rl.lastErr = ""
	}
	if swapped {
		rl.lastSwap = rl.lastCheck
	}
	rl.mu.Unlock()
	return swapped, err
}

// check reports whether it swapped and whether it got far enough to
// examine content (sig moved and the fingerprint was compared) —
// no-change polls leave the recorded error standing.
func (rl *Reloader) check() (swapped, examined bool, err error) {
	rl.mu.Lock()
	lastSig, lastHash := rl.sig, rl.hash
	rl.mu.Unlock()

	sig, hash, spec, err := rl.fingerprint()
	if err != nil {
		return false, false, err
	}
	if sig == lastSig {
		return false, false, nil // nothing moved on disk
	}
	// The stat signature changed; remember it so an unchanged or bad
	// content state is not re-hashed/re-attempted every poll — the
	// next actual write changes the signature again and retries.
	rl.mu.Lock()
	rl.sig = sig
	rl.mu.Unlock()
	if hash == lastHash {
		return false, true, nil // touched or rewritten with identical bytes
	}

	pool, err := NewPoolFromCheckpoints(spec.Model, spec.Checkpoints, rl.cfg.Replicas, rl.cfg.Ensemble)
	if err != nil {
		return false, true, fmt.Errorf("serve: reload %s: %w", rl.name, err)
	}
	if err := canary(pool); err != nil {
		return false, true, fmt.Errorf("serve: reload %s: %w", rl.name, err)
	}
	srv := NewServer(pool, rl.cfg.Server)
	if err := rl.reg.Replace(rl.name, srv); err != nil {
		srv.Close()
		return false, true, fmt.Errorf("serve: reload %s: %w", rl.name, err)
	}
	rl.mu.Lock()
	rl.hash = hash
	rl.reloads++
	rl.mu.Unlock()
	return true, true, nil
}

// fingerprint resolves the watched path and returns the stat signature
// and content hash over the spec file plus every checkpoint it lists,
// along with the loaded spec (so a changed poll does not re-parse it).
func (rl *Reloader) fingerprint() (sig, hash string, spec ModelSpec, err error) {
	specPath, err := FindSpec(rl.path)
	if err != nil {
		return "", "", ModelSpec{}, err
	}
	spec, err = LoadSpec(specPath)
	if err != nil {
		return "", "", ModelSpec{}, err
	}
	if len(spec.Checkpoints) == 0 {
		return "", "", ModelSpec{}, fmt.Errorf("serve: spec %s lists no checkpoints", specPath)
	}
	files := append([]string{specPath}, spec.Checkpoints...)
	sig, err = statSignature(files)
	if err != nil {
		return "", "", ModelSpec{}, err
	}
	hash, err = contentFingerprint(files)
	if err != nil {
		return "", "", ModelSpec{}, err
	}
	return sig, hash, spec, nil
}

// SpecFingerprint returns the content fingerprint of a flexible model
// path (see FindSpec): one hex SHA-256 over the spec file and every
// checkpoint it lists. Two paths with equal fingerprints would build
// bitwise-identical models.
func SpecFingerprint(path string) (string, error) {
	specPath, err := FindSpec(path)
	if err != nil {
		return "", err
	}
	spec, err := LoadSpec(specPath)
	if err != nil {
		return "", err
	}
	return contentFingerprint(append([]string{specPath}, spec.Checkpoints...))
}

// statSignature is the cheap change detector: a string over each
// file's path, size, and mtime. Checkpoint and spec writes are both
// atomic renames, so any content change moves the signature.
func statSignature(paths []string) (string, error) {
	var b strings.Builder
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			return "", fmt.Errorf("serve: %w", err)
		}
		fmt.Fprintf(&b, "%s|%d|%d;", p, fi.Size(), fi.ModTime().UnixNano())
	}
	return b.String(), nil
}

// contentFingerprint hashes each file's content fingerprint into one
// digest, bound to its path so renaming files around is a change.
func contentFingerprint(paths []string) (string, error) {
	h := sha256.New()
	for _, p := range paths {
		digest, err := checkpoint.Fingerprint(p)
		if err != nil {
			return "", fmt.Errorf("serve: %w", err)
		}
		fmt.Fprintf(h, "%s %s\n", p, digest)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// canary smoke-tests a freshly built model before it is promoted: one
// single-row forward pass per method with a mid-cube input. The output
// must have the declared shape and carry only finite values — a
// checkpoint whose weights decode but compute garbage (NaN/Inf) is
// rejected here, before any caller sees it.
func canary(m Model) error {
	dims := m.Dims()
	methods := make([]string, 0, len(dims))
	for method := range dims {
		methods = append(methods, method)
	}
	sort.Strings(methods)
	for _, method := range methods {
		d := dims[method]
		x := tensor.New(1, d.In)
		row := x.Row(0)
		for j := range row {
			row[j] = 0.5
		}
		y, err := m.Run(method, x)
		if err != nil {
			return fmt.Errorf("canary %s: %w", method, err)
		}
		if y == nil || y.Rows != 1 || y.Cols != d.Out {
			rows, cols := 0, 0
			if y != nil {
				rows, cols = y.Rows, y.Cols
			}
			return fmt.Errorf("canary %s: output %dx%d, want 1x%d", method, rows, cols, d.Out)
		}
		for j, v := range y.Row(0) {
			if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("canary %s: non-finite output %v at col %d", method, v, j)
			}
		}
	}
	return nil
}
