// Package regressor implements a traditional (non-adversarial) surrogate:
// a single fully-connected network regressing the output bundle directly
// from the 5-D inputs. The paper's tournament method trains "traditional as
// well as generative adversarial networks"; this model is the traditional
// case — classic LTFB exchanges the whole model rather than a generator
// subset, so ExchangeNets returns everything.
//
// It implements the trainer.Model contract structurally and can be dropped
// into trainers, LTFB populations, and the K-independent baseline anywhere
// the CycleGAN surrogate can.
package regressor

import (
	"fmt"
	"math/rand"

	"repro/internal/jag"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// Config describes the regression network.
type Config struct {
	Geometry jag.Config
	Hidden   []int
	LR       float64
}

// DefaultConfig returns a laptop-scale regressor for the geometry.
func DefaultConfig(g jag.Config) Config {
	return Config{Geometry: g, Hidden: []int{64, 64}, LR: 0.002}
}

// Validate reports whether the configuration is trainable.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.LR <= 0 {
		return fmt.Errorf("regressor: learning rate %v", c.LR)
	}
	return nil
}

// Model is one replica of the regressor with its optimizer.
type Model struct {
	Cfg Config
	Net *nn.Network
	opt opt.Optimizer
}

// New builds a model with weights drawn from seed; same (cfg, seed) gives
// bitwise-identical replicas.
func New(cfg Config, seed int64) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	dims := append([]int{jag.InputDim}, cfg.Hidden...)
	dims = append(dims, cfg.Geometry.OutputDim())
	return &Model{
		Cfg: cfg,
		Net: nn.MLP("regressor", dims, nn.ActLeakyReLU, nn.ActSigmoid, rng),
		opt: opt.NewAdam(cfg.LR),
	}
}

// TrainStep runs one MSE step on the mini-batch, reducing gradients through
// r before the optimizer update.
func (m *Model) TrainStep(x, y *tensor.Matrix, r nn.Reducer) map[string]float64 {
	m.Net.ZeroGrad()
	pred := m.Net.Forward(x, true)
	loss, dy := nn.MSE(pred, y)
	m.Net.Backward(dy)
	params := m.Net.Params()
	r.Reduce(params)
	m.opt.Step(params)
	return map[string]float64{"mse": loss}
}

// Eval returns the MAE of predictions on a batch (lower is better).
func (m *Model) Eval(x, y *tensor.Matrix) float64 {
	return nn.MAEValue(m.Net.Forward(x, false), y)
}

// Predict returns the output bundles for a batch of inputs.
func (m *Model) Predict(x *tensor.Matrix) *tensor.Matrix {
	return m.Net.Forward(x, false)
}

// Nets returns the single network.
func (m *Model) Nets() []*nn.Network { return []*nn.Network{m.Net} }

// ExchangeNets returns the whole model: classic LTFB (Jacobs et al. 2017)
// exchanges everything; there is no discriminator to keep local.
func (m *Model) ExchangeNets() []*nn.Network { return m.Nets() }

// ResetOptim clears the Adam moments.
func (m *Model) ResetOptim() { m.opt.Reset() }
