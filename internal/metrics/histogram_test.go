package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", b)
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 4) },
		func() { ExpBuckets(1, 1, 4) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad layout must panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{-5, 0.5, 1, 1.5, 9, 50, 1000, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// NaN dropped; -5 and 0.5 and 1 in (≤1]; 1.5 and 9 in (1,10]; 50 in
	// (10,100]; 1000 in +Inf.
	wantCounts := []uint64{3, 2, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket counts = %v, want %v", s.Counts, wantCounts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if got := s.Sum; math.Abs(got-(-5+0.5+1+1.5+9+50+1000)) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// 1000 observations uniform over (0, 1]: quantile(q) ≈ q.
	h := NewHistogram(ExpBuckets(0.001, 1.3, 40))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := s.Quantile(q)
		// Exponential buckets at factor 1.3 bound the relative error by
		// the bucket width.
		if got < q/1.3 || got > q*1.3 {
			t.Fatalf("quantile(%v) = %v, want within 1.3x", q, got)
		}
	}
	if p0 := s.Quantile(0); p0 < 0 || p0 > 0.01 {
		t.Fatalf("quantile(0) = %v", p0)
	}
	if m := s.Mean(); math.Abs(m-0.5005) > 1e-6 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram([]float64{1})
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram not zero-valued: %+v", s)
	}
}

func TestHistogramOverflowSaturates(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(1e9) // all in +Inf bucket
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("+Inf-bucket quantile = %v, want last bound 2", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	// Sum of 0..N-1 µs, exact in float64 at this size.
	n := float64(goroutines * per)
	if want := n * (n - 1) / 2 * 1e-6; math.Abs(s.Sum-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
}
