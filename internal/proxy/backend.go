package proxy

import (
	"fmt"
	"math"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
)

// Backend is one jagserve replica behind the front door. The hot path
// touches only its atomics (in-flight count for routing, health bit for
// candidate selection, capacity bits for weighting); the mutex guards
// the cold bookkeeping the health machinery reads and writes — breaker
// windows and probe streaks. Backends are created once at proxy
// construction and only ever handled by pointer.
type Backend struct {
	name string // host:port — the metrics label and log handle
	base string // normalized base URL, no trailing slash

	inflight atomic.Int64
	healthy  atomic.Bool
	// capacity holds the float64 bits of the backend's probed
	// sustainable row rate (rows/s), refreshed from its stats route;
	// 0 until the first successful capacity sweep.
	capacity atomic.Uint64

	mu sync.Mutex
	// consecFails counts consecutive forward failures (transport error
	// or 5xx); the passive breaker trips at Config.BreakerFails.
	consecFails int
	// probeOKs / probeFails count consecutive active-probe outcomes;
	// FailAfter probe failures drop the backend, RecoverAfter probe
	// successes reinstate it. Any forward or probe failure resets the
	// success streak, so reinstatement needs genuinely consecutive
	// healthy probes.
	probeOKs   int
	probeFails int
	// window is a ring of recent forward outcomes (true = failure) for
	// the error-rate trip: a backend failing half its traffic is down
	// even if successes keep interleaving.
	window     []bool
	windowPos  int
	windowFill int
	lastErr    string
}

// newBackend validates and normalizes one backend URL.
func newBackend(raw string, window int) (*Backend, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("proxy: backend %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("proxy: backend %q: want an http(s) URL", raw)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("proxy: backend %q: missing host", raw)
	}
	b := &Backend{
		name:   u.Host,
		base:   strings.TrimRight(u.String(), "/"),
		window: make([]bool, window),
	}
	b.healthy.Store(true) // optimistic until the first probe says otherwise
	return b, nil
}

// Name returns the backend's host:port handle.
func (b *Backend) Name() string { return b.name }

// Healthy reports whether the router currently offers this backend.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// Inflight returns the number of proxied requests outstanding on this
// backend right now.
func (b *Backend) Inflight() int64 { return b.inflight.Load() }

// CapacityQPS returns the backend's last-seen probed capacity, 0 when
// the backend never reported one.
func (b *Backend) CapacityQPS() float64 {
	return math.Float64frombits(b.capacity.Load())
}

func (b *Backend) setCapacity(qps float64) {
	if qps < 0 || math.IsNaN(qps) || math.IsInf(qps, 0) {
		qps = 0
	}
	b.capacity.Store(math.Float64bits(qps))
}

// lastError returns the most recent failure detail, for /healthz.
func (b *Backend) lastError() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}

// noteForward records one forwarded request's outcome for the passive
// circuit breaker and reports whether the breaker just tripped: the
// backend was healthy and either BreakerFails consecutive forwards
// failed or the rolling window's error rate reached rateThresh.
func (b *Backend) noteForward(failed bool, detail string, breakerFails int, rateThresh float64) (trip bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if failed {
		b.consecFails++
		b.probeOKs = 0
		if detail != "" {
			b.lastErr = detail
		}
	} else {
		b.consecFails = 0
	}
	if len(b.window) > 0 {
		b.window[b.windowPos] = failed
		b.windowPos = (b.windowPos + 1) % len(b.window)
		if b.windowFill < len(b.window) {
			b.windowFill++
		}
	}
	if !failed || !b.healthy.Load() {
		return false
	}
	if b.consecFails >= breakerFails {
		return true
	}
	if b.windowFill == len(b.window) && len(b.window) > 0 {
		errs := 0
		for _, bad := range b.window {
			if bad {
				errs++
			}
		}
		if float64(errs)/float64(len(b.window)) >= rateThresh {
			return true
		}
	}
	return false
}

// noteProbe records one active-probe outcome and reports whether the
// health state should flip: down after failAfter consecutive probe
// failures, up after recoverAfter consecutive successes.
func (b *Backend) noteProbe(ok bool, detail string, failAfter, recoverAfter int) (down, up bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.probeFails = 0
		b.probeOKs++
		if !b.healthy.Load() && b.probeOKs >= recoverAfter {
			// Give the reinstated backend a clean slate: stale breaker
			// state must not re-trip it on its first request back.
			b.consecFails = 0
			b.windowFill, b.windowPos = 0, 0
			return false, true
		}
		return false, false
	}
	b.probeOKs = 0
	b.probeFails++
	if detail != "" {
		b.lastErr = detail
	}
	if b.healthy.Load() && b.probeFails >= failAfter {
		return true, false
	}
	return false, false
}
