package datastore

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/bundle"
	"repro/internal/comm"
	"repro/internal/reader"
)

// makeBundleDS writes files×perFile samples of width dim; sample i has
// row[0] = i so content is verifiable.
func makeBundleDS(t testing.TB, files, perFile, dim int) *reader.BundleDataset {
	t.Helper()
	dir := t.TempDir()
	var paths []string
	g := 0
	for f := 0; f < files; f++ {
		recs := make([][]float32, perFile)
		for i := range recs {
			recs[i] = make([]float32, dim)
			recs[i][0] = float32(g)
			recs[i][dim-1] = float32(g * 2)
			g++
		}
		p := filepath.Join(dir, fmt.Sprintf("%04d.jagb", f))
		if err := bundle.Write(p, dim, recs); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	ds, err := reader.OpenBundles(paths)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

// partsFor splits batch across ranks contiguously.
func partsFor(batch []int, ranks int) [][]int {
	parts := make([][]int, ranks)
	for r := 0; r < ranks; r++ {
		parts[r] = reader.PartitionContiguousOf(batch, ranks, r)
	}
	return parts
}

// runEpoch fetches every batch and verifies each rank got the rows it asked
// for, returning per-rank stats.
func runEpoch(t *testing.T, w *comm.World, ds reader.Dataset, mode Mode, batches [][]int, stores []*Store) {
	t.Helper()
	ranks := w.Size()
	var mu sync.Mutex
	w.Run(func(c *comm.Comm) {
		s := stores[c.Rank()]
		for _, batch := range batches {
			parts := partsFor(batch, ranks)
			m, err := s.Fetch(parts)
			if err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
				return
			}
			mine := parts[c.Rank()]
			if m.Rows != len(mine) {
				t.Errorf("rank %d got %d rows, want %d", c.Rank(), m.Rows, len(mine))
				return
			}
			for r, i := range mine {
				if m.At(r, 0) != float32(i) || m.At(r, m.Cols-1) != float32(2*i) {
					mu.Lock()
					t.Errorf("rank %d row %d: content for sample %d wrong: %v", c.Rank(), r, i, m.Row(r))
					mu.Unlock()
					return
				}
			}
		}
	})
}

func newStores(w *comm.World, ds reader.Dataset, mode Mode) []*Store {
	stores := make([]*Store, w.Size())
	w.Run(func(c *comm.Comm) { stores[c.Rank()] = New(c, ds, mode) })
	return stores
}

func epochBatches(n, batch int, seed int64, epoch int) [][]int {
	sh := reader.NewShuffler(n, seed)
	perm := append([]int(nil), sh.Epoch(epoch)...)
	return reader.Batches(perm, batch, false)
}

func TestModeNoneAlwaysReadsBacking(t *testing.T) {
	ds := makeBundleDS(t, 4, 8, 6)
	w := comm.NewWorld(4)
	stores := newStores(w, ds, ModeNone)
	for epoch := 0; epoch < 2; epoch++ {
		runEpoch(t, w, ds, ModeNone, epochBatches(32, 8, 1, epoch), stores)
	}
	var reads int64
	for _, s := range stores {
		st := s.Stats()
		reads += st.BackingReads
		if st.RemoteSamples != 0 || st.BytesSent != 0 {
			t.Fatalf("naive mode must not exchange: %+v", st)
		}
	}
	if reads != 64 { // 32 samples × 2 epochs
		t.Fatalf("backing reads = %d, want 64", reads)
	}
}

func TestDynamicCachesAfterFirstEpoch(t *testing.T) {
	ds := makeBundleDS(t, 4, 8, 6)
	w := comm.NewWorld(4)
	stores := newStores(w, ds, ModeDynamic)
	// Epoch 0: identity order → all reads hit backing once.
	runEpoch(t, w, ds, ModeDynamic, epochBatches(32, 8, 1, 0), stores)
	var reads0 int64
	for _, s := range stores {
		reads0 += s.Stats().BackingReads
	}
	if reads0 != 32 {
		t.Fatalf("epoch-0 backing reads = %d, want 32", reads0)
	}
	// Epochs 1-3: shuffled → zero further backing reads, exchange instead.
	for epoch := 1; epoch <= 3; epoch++ {
		runEpoch(t, w, ds, ModeDynamic, epochBatches(32, 8, 1, epoch), stores)
	}
	var reads, remote int64
	for _, s := range stores {
		reads += s.Stats().BackingReads
		remote += s.Stats().RemoteSamples
	}
	if reads != 32 {
		t.Fatalf("steady-state backing reads = %d, want 32 (no new reads)", reads)
	}
	if remote == 0 {
		t.Fatal("shuffled epochs must exchange samples between ranks")
	}
}

func TestPreloadOwnershipByFile(t *testing.T) {
	ds := makeBundleDS(t, 6, 4, 5)
	w := comm.NewWorld(3)
	stores := newStores(w, ds, ModePreload)
	w.Run(func(c *comm.Comm) {
		if err := stores[c.Rank()].Preload(); err != nil {
			t.Error(err)
		}
	})
	// Files round-robin over 3 ranks: rank r owns files r, r+3.
	for r, s := range stores {
		if s.OwnedSamples() != 8 {
			t.Fatalf("rank %d owns %d samples, want 8", r, s.OwnedSamples())
		}
		if s.Stats().FilesPreread != 2 {
			t.Fatalf("rank %d preread %d files, want 2", r, s.Stats().FilesPreread)
		}
	}
	// Sample 0 lives in file 0 → rank 0; sample 4 in file 1 → rank 1.
	if stores[0].Owner(0) != 0 || stores[0].Owner(4) != 1 || stores[0].Owner(20) != 2 {
		t.Fatalf("ownership wrong: %d %d %d", stores[0].Owner(0), stores[0].Owner(4), stores[0].Owner(20))
	}
	// Training epochs read nothing from the files.
	before := stores[0].Stats().BackingReads
	runEpoch(t, w, ds, ModePreload, epochBatches(24, 6, 2, 1), stores)
	if stores[0].Stats().BackingReads != before {
		t.Fatal("preloaded store must not touch the backing dataset during training")
	}
}

func TestPreloadRequiresPreloadMode(t *testing.T) {
	ds := makeBundleDS(t, 2, 2, 5)
	w := comm.NewWorld(2)
	stores := newStores(w, ds, ModeDynamic)
	if err := stores[0].Preload(); err == nil {
		t.Fatal("Preload outside ModePreload must error")
	}
}

func TestFetchPartCountValidation(t *testing.T) {
	ds := makeBundleDS(t, 2, 4, 5)
	w := comm.NewWorld(2)
	stores := newStores(w, ds, ModePreload)
	w.Run(func(c *comm.Comm) {
		if c.Rank() == 0 {
			if _, err := stores[0].FetchAsync([][]int{{0}}); err == nil {
				t.Error("wrong part count must error")
			}
		}
	})
}

func TestFetchOverlapAsync(t *testing.T) {
	ds := makeBundleDS(t, 2, 8, 5)
	w := comm.NewWorld(2)
	stores := newStores(w, ds, ModePreload)
	w.Run(func(c *comm.Comm) {
		if err := stores[c.Rank()].Preload(); err != nil {
			t.Error(err)
			return
		}
	})
	w.Run(func(c *comm.Comm) {
		s := stores[c.Rank()]
		batches := epochBatches(16, 4, 3, 1)
		pending, err := s.FetchAsync(partsFor(batches[0], 2))
		if err != nil {
			t.Error(err)
			return
		}
		// "Compute" happens here, then the batch must still assemble.
		m, err := pending.Wait()
		if err != nil {
			t.Error(err)
			return
		}
		if m.Rows != 2 {
			t.Errorf("rows = %d", m.Rows)
		}
	})
}

func TestUnevenBatchParts(t *testing.T) {
	// 7 samples over 2 ranks: parts of 4 and 3.
	ds := makeBundleDS(t, 1, 7, 5)
	w := comm.NewWorld(2)
	stores := newStores(w, ds, ModePreload)
	w.Run(func(c *comm.Comm) {
		if err := stores[c.Rank()].Preload(); err != nil {
			t.Error(err)
		}
	})
	runEpoch(t, w, ds, ModePreload, [][]int{{6, 5, 4, 3, 2, 1, 0}}, stores)
}

func TestSingleRankStoreLocalOnly(t *testing.T) {
	ds := makeBundleDS(t, 2, 4, 5)
	w := comm.NewWorld(1)
	stores := newStores(w, ds, ModePreload)
	w.Run(func(c *comm.Comm) {
		s := stores[0]
		if err := s.Preload(); err != nil {
			t.Error(err)
			return
		}
		m, err := s.Fetch([][]int{{3, 1, 7}})
		if err != nil {
			t.Error(err)
			return
		}
		if m.At(0, 0) != 3 || m.At(2, 0) != 7 {
			t.Errorf("content wrong: %v", m)
		}
	})
	st := stores[0].Stats()
	if st.BytesSent != 0 || st.RemoteSamples != 0 {
		t.Fatalf("single rank must not communicate: %+v", st)
	}
}

func TestDynamicOwnershipConsistentAcrossRanks(t *testing.T) {
	ds := makeBundleDS(t, 2, 8, 5)
	w := comm.NewWorld(4)
	stores := newStores(w, ds, ModeDynamic)
	runEpoch(t, w, ds, ModeDynamic, epochBatches(16, 8, 9, 0), stores)
	for i := 0; i < 16; i++ {
		o := stores[0].Owner(i)
		if o < 0 {
			t.Fatalf("sample %d unowned after epoch 0", i)
		}
		for r := 1; r < 4; r++ {
			if stores[r].Owner(i) != o {
				t.Fatalf("sample %d: rank %d thinks owner %d, rank 0 thinks %d", i, r, stores[r].Owner(i), o)
			}
		}
	}
}

func TestStoreBytesAndImbalance(t *testing.T) {
	ds := makeBundleDS(t, 4, 4, 5)
	w := comm.NewWorld(2)
	stores := newStores(w, ds, ModePreload)
	w.Run(func(c *comm.Comm) {
		s := stores[c.Rank()]
		if err := s.Preload(); err != nil {
			t.Error(err)
			return
		}
		if got := s.StoreBytes(); got != float64(8*4*5) {
			t.Errorf("StoreBytes = %v, want %v", got, 8*4*5)
		}
		if f := s.ImbalanceFactor(); f != 1 {
			t.Errorf("balanced preload imbalance = %v, want 1", f)
		}
	})
}

func TestModeStrings(t *testing.T) {
	if ModeNone.String() == "" || ModeDynamic.String() == "" || ModePreload.String() == "" {
		t.Fatal("modes must have names")
	}
	if Mode(42).String() == "" {
		t.Fatal("unknown mode must still render")
	}
}

func BenchmarkFetchPreloaded4Ranks(b *testing.B) {
	ds := makeBundleDS(b, 4, 64, 32)
	w := comm.NewWorld(4)
	stores := make([]*Store, 4)
	w.Run(func(c *comm.Comm) {
		stores[c.Rank()] = New(c, ds, ModePreload)
		if err := stores[c.Rank()].Preload(); err != nil {
			b.Error(err)
		}
	})
	batches := epochBatches(256, 32, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := batches[i%len(batches)]
		w.Run(func(c *comm.Comm) {
			if _, err := stores[c.Rank()].Fetch(partsFor(batch, 4)); err != nil {
				b.Error(err)
			}
		})
	}
}

func TestCapacityPreloadFailsWhenTooSmall(t *testing.T) {
	ds := makeBundleDS(t, 4, 4, 5)
	w := comm.NewWorld(2)
	errs := make([]error, 2)
	w.Run(func(c *comm.Comm) {
		s := New(c, ds, ModePreload)
		s.SetCapacity(3) // each rank owns 8 samples
		errs[c.Rank()] = s.Preload()
	})
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d preload should fail over capacity", r)
		}
	}
}

func TestCapacityDynamicEvictsAndRereads(t *testing.T) {
	ds := makeBundleDS(t, 2, 16, 5)
	w := comm.NewWorld(1)
	var st Stats
	w.Run(func(c *comm.Comm) {
		s := New(c, ds, ModeDynamic)
		s.SetCapacity(8)
		if s.Capacity() != 8 {
			t.Error("capacity not recorded")
			return
		}
		// Two epochs over 32 samples with only 8 cache slots: the second
		// epoch must re-read evicted samples from the backing store.
		for epoch := 0; epoch < 2; epoch++ {
			for _, b := range epochBatches(32, 8, 4, epoch) {
				if _, err := s.Fetch(partsFor(b, 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}
		if s.OwnedSamples() > 8 {
			t.Errorf("cache grew to %d despite capacity 8", s.OwnedSamples())
		}
		st = s.Stats()
	})
	if st.Evictions == 0 {
		t.Fatal("expected evictions under the capacity bound")
	}
	if st.BackingReads <= 32 {
		t.Fatalf("expected re-reads after eviction, got %d backing reads", st.BackingReads)
	}
}

func TestCapacityUnlimitedByDefault(t *testing.T) {
	ds := makeBundleDS(t, 2, 8, 5)
	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		s := New(c, ds, ModeDynamic)
		for _, b := range epochBatches(16, 8, 4, 0) {
			if _, err := s.Fetch(partsFor(b, 1)); err != nil {
				t.Error(err)
				return
			}
		}
		if s.Stats().Evictions != 0 {
			t.Error("unlimited store must not evict")
		}
	})
}
