// Command ltfbtrain runs a complete LTFB training session at laptop scale:
// K trainers (goroutine groups over the in-process MPI layer) train CycleGAN
// surrogates on disjoint partitions of a synthetic JAG corpus, holding
// tournaments every few steps, and the per-round population losses are
// printed as a table.
//
// With -checkpoint the population's best models (by final-round
// validation loss) are saved for serving: the best trainer's weights go
// to the given path, trainers ranked 2..k (under -top k) to suffixed
// paths, and a JSON model spec goes next to the first checkpoint so
// cmd/jagserve can rebuild the architecture.
//
// Usage:
//
//	ltfbtrain -trainers 4 -ranks 2 -rounds 8 -round-steps 8 -samples 1024
//	ltfbtrain -trainers 4 -checkpoint model.ckpt -top 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/ltfb"
	"repro/internal/metrics"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltfbtrain: ")
	trainers := flag.Int("trainers", 4, "number of LTFB trainers")
	ranks := flag.Int("ranks", 1, "data-parallel ranks (simulated GPUs) per trainer")
	samples := flag.Int("samples", 512, "total training samples (partitioned across trainers)")
	batch := flag.Int("batch", 16, "mini-batch size per trainer")
	rounds := flag.Int("rounds", 6, "tournament rounds")
	roundSteps := flag.Int("round-steps", 8, "mini-batch steps between tournaments")
	seed := flag.Int64("seed", 1, "experiment seed")
	adversarial := flag.Bool("adversarial-metric", false, "judge tournaments with the local discriminator instead of validation loss")
	lrJitter := flag.Float64("lr-jitter", 0, "spread per-trainer learning rates by this factor (population-based training)")
	ckptPath := flag.String("checkpoint", "", "save the population-best model(s) here for serving")
	topK := flag.Int("top", 1, "with -checkpoint, save this many best models (an ensemble for jagserve)")
	flag.Parse()

	cfg := core.DefaultQualityConfig(*trainers)
	cfg.RanksPerTrainer = *ranks
	cfg.TrainSamples = *samples
	cfg.BatchSize = *batch
	cfg.Rounds = *rounds
	cfg.RoundSteps = *roundSteps
	cfg.Seed = *seed
	if *adversarial {
		cfg.Metric = ltfb.MetricAdversarial
	}
	cfg.LRJitter = *lrJitter

	res, err := core.RunPopulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	tab := metrics.NewTable(
		fmt.Sprintf("LTFB: %d trainers x %d ranks, %d rounds x %d steps, %d samples",
			*trainers, *ranks, *rounds, *roundSteps, *samples),
		"round", "best_val_loss", "mean_val_loss")
	for r := range res.RoundLosses {
		tab.AddRow(r+1, res.BestSeries[r], res.MeanSeries[r])
	}
	fmt.Print(tab.Render())
	fmt.Printf("best-loss trajectory: %s\n", metrics.Sparkline(res.BestSeries))
	fmt.Printf("tournament adoptions: %d\n", res.Adoptions)
	fmt.Printf("final population-best validation loss: %.5f\n", res.FinalBest)

	if *ckptPath != "" {
		if err := saveCheckpoints(*ckptPath, *topK, cfg, res); err != nil {
			log.Fatal(err)
		}
	}
}

// rankedCheckpointPath returns the file for the i-th best model: the
// base path for i=0, base.{i+1}.ext for the rest.
func rankedCheckpointPath(path string, i int) string {
	if i == 0 {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + fmt.Sprintf(".%d", i+1) + ext
}

// saveCheckpoints writes the top-k models by final-round validation
// loss plus the serving spec sidecar.
func saveCheckpoints(path string, k int, cfg core.QualityConfig, res *core.QualityResult) error {
	if k < 1 {
		k = 1
	}
	if k > len(res.Models) {
		k = len(res.Models)
	}
	// A fresh checkout has no checkpoint directory yet; create it so the
	// documented one-liner works without a mkdir.
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}
	final := res.RoundLosses[len(res.RoundLosses)-1]
	order := make([]int, len(res.Models))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return final[order[a]] < final[order[b]] })

	step := int64(cfg.Rounds * cfg.RoundSteps)
	paths := make([]string, k)
	for i := 0; i < k; i++ {
		paths[i] = rankedCheckpointPath(path, i)
		m := res.Models[order[i]]
		if err := checkpoint.Save(paths[i], step, m.Nets()); err != nil {
			return err
		}
		fmt.Printf("saved trainer %d (val loss %.5f) to %s\n", order[i], final[order[i]], paths[i])
	}
	// Spec entries are spec-relative (the checkpoints are siblings of
	// the spec file), so the whole directory can be moved or mounted
	// elsewhere and still serve.
	rel := make([]string, len(paths))
	for i, p := range paths {
		rel[i] = filepath.Base(p)
	}
	spec := serve.ModelSpec{Model: cfg.Model, Step: step, Checkpoints: rel}
	if err := serve.SaveSpec(serve.SpecPath(path), spec); err != nil {
		return err
	}
	fmt.Printf("saved model spec to %s\n", serve.SpecPath(path))
	return nil
}
