package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Registry maps model names to independently configured Servers — one
// process serving several surrogates (per-geometry, per-campaign, or
// top-k ensembles side by side), each with its own pool, batching
// queues, cache, and stats. The first registered model is the default
// unless SetDefault overrides it; the default is what the deprecated
// unversioned endpoints (/predict, /stats) answer for.
//
// Beyond lookup, the registry is the hot-reload point: Replace
// atomically swaps the server behind a name, so a long-running process
// picks up new LTFB tournament winners without dropping traffic. The
// swap protocol is reference-counted — callers that hold a server
// across a multi-row call use Acquire, and Replace drains those
// references before closing the displaced server — so an in-flight
// request never observes ErrClosed because of a reload. Every name
// carries a generation counter (1 at Register, +1 per Replace) that
// the HTTP surface reports in stats and health.
type Registry struct {
	mu       sync.RWMutex
	servers  map[string]*regEntry
	watchers map[string]*Reloader
	def      string
	closed   bool
	// drainDeadline bounds how long Replace waits for Acquire holders
	// before force-closing the displaced server; 0 waits forever.
	drainDeadline time.Duration
	// forcedCloses counts, per name, the Replace drains that hit the
	// deadline and closed the old server out from under its holders.
	forcedCloses map[string]int64
}

// regEntry is one registered server plus the bookkeeping Replace needs:
// the reference count of in-flight Acquire holders and the name's swap
// generation.
type regEntry struct {
	srv *Server
	gen int64
	// refs counts Acquire holders. Adds happen under the registry read
	// lock while the entry is still reachable, so by the time Replace
	// (which swaps the entry out under the write lock) calls Wait, no
	// new holder can appear.
	refs sync.WaitGroup
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		servers:      make(map[string]*regEntry),
		watchers:     make(map[string]*Reloader),
		forcedCloses: make(map[string]int64),
	}
}

// SetDrainDeadline bounds the drain phase of every later Replace: if
// Acquire holders of the displaced server have not all released it
// within d, the server is closed anyway — stragglers' in-flight Calls
// fail with ErrClosed and the forced close is counted (ForcedCloses,
// surfaced as forced_closes in the per-model stats). The zero value
// restores the default of waiting indefinitely.
//
// This is the availability-vs-correctness trade of a rolling deploy: an
// unbounded drain can never fail a request, but one stuck caller (a
// client that never reads its response, a bulk sweep with no deadline)
// then pins the old generation — and its memory — forever. A bounded
// drain guarantees the swap finishes; the cost is that requests still
// riding the old server past the deadline are cut off.
func (r *Registry) SetDrainDeadline(d time.Duration) {
	r.mu.Lock()
	r.drainDeadline = d
	r.mu.Unlock()
}

// validModelName reports whether name is usable as the {name} path
// segment of the v1 API: non-empty, URL-safe without escaping, and
// unambiguous in logs (letters, digits, '.', '_', '-'; must start with
// a letter or digit).
func validModelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case i > 0 && (c == '.' || c == '_' || c == '-'):
		default:
			return false
		}
	}
	return true
}

// Register adds a named server at generation 1. The name must be
// URL-safe ([A-Za-z0-9][A-Za-z0-9._-]*) and not already taken. The
// first registered server becomes the default.
func (r *Registry) Register(name string, s *Server) error {
	if !validModelName(name) {
		return fmt.Errorf("serve: invalid model name %q", name)
	}
	if s == nil {
		return fmt.Errorf("serve: nil server for model %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("serve: cannot register %q: registry closed", name)
	}
	if _, ok := r.servers[name]; ok {
		return fmt.Errorf("serve: model %q already registered", name)
	}
	r.servers[name] = &regEntry{srv: s, gen: 1}
	if r.def == "" {
		r.def = name
	}
	return nil
}

// Replace atomically swaps the server behind an already-registered
// name: requests admitted after Replace route to s, the name's
// generation increments, and the displaced server is drained — Replace
// blocks until every Acquire holder has released it and its in-flight
// batches have completed — then closed. When a drain deadline is set
// (SetDrainDeadline), the wait is bounded: holders that outlive it are
// force-closed and counted. The new server must be open and distinct
// from the current one; on any error the registration is untouched.
func (r *Registry) Replace(name string, s *Server) error {
	if s == nil {
		return fmt.Errorf("serve: nil replacement server for model %q", name)
	}
	if s.Closed() {
		return fmt.Errorf("serve: replacement server for model %q is already closed", name)
	}
	r.mu.Lock()
	if r.closed {
		// A swap racing shutdown (e.g. a Reloader check already past
		// its cancellation point) must not slip a live server into a
		// closed registry; the caller still owns s and closes it.
		r.mu.Unlock()
		return fmt.Errorf("serve: cannot replace model %q: registry closed", name)
	}
	old, ok := r.servers[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("serve: cannot replace unregistered model %q", name)
	}
	if old.srv == s {
		r.mu.Unlock()
		return fmt.Errorf("serve: model %q replaced with itself", name)
	}
	r.servers[name] = &regEntry{srv: s, gen: old.gen + 1}
	deadline := r.drainDeadline
	r.mu.Unlock()

	// The old entry is unreachable now, so its refcount can only fall.
	// Wait for the last holder, then drain the pipeline: requests the
	// holders already admitted complete against the old model. With a
	// drain deadline set, a holder that outlives it is not waited for:
	// the old server closes anyway (its remaining Calls fail with
	// ErrClosed) so a stuck caller cannot pin the displaced generation
	// forever. The waiting goroutine lives until the last straggler
	// releases — bounded by the holders' own lifetimes.
	if deadline <= 0 {
		old.refs.Wait()
	} else {
		released := make(chan struct{})
		go func() {
			old.refs.Wait()
			close(released)
		}()
		timer := time.NewTimer(deadline)
		select {
		case <-released:
			timer.Stop()
		case <-timer.C:
			r.mu.Lock()
			r.forcedCloses[name]++
			r.mu.Unlock()
		}
	}
	old.srv.Close()
	return nil
}

// ForcedCloses returns how many Replace drains for name hit the drain
// deadline and force-closed the displaced server (see SetDrainDeadline).
func (r *Registry) ForcedCloses(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.forcedCloses[name]
}

// SetDefault names the model the deprecated unversioned endpoints
// answer for. The name must already be registered.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.servers[name]; !ok {
		return fmt.Errorf("serve: cannot default to unregistered model %q", name)
	}
	r.def = name
	return nil
}

// Get returns the named server. The snapshot is not protected against
// a concurrent Replace — a caller that submits requests to the server
// should use Acquire instead, so a swap drains it first. Get is for
// read-only peeks (listings, stats) where racing a swap is harmless.
func (r *Registry) Get(name string) (*Server, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.servers[name]
	if !ok {
		return nil, false
	}
	return e.srv, true
}

// Acquire returns the named server pinned against hot swaps: a
// concurrent Replace routes new work elsewhere immediately but will
// not close this server until release is called. Callers must call
// release exactly once, after their last use of the server; release is
// idempotent so a defer is always safe.
func (r *Registry) Acquire(name string) (s *Server, release func(), ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.servers[name]
	if !ok {
		return nil, nil, false
	}
	return e.srv, e.releaseFunc(), true
}

// AcquireDefault is Acquire for the default model; ok is false for an
// empty registry.
func (r *Registry) AcquireDefault() (name string, s *Server, release func(), ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.servers[r.def]
	if !ok {
		return "", nil, nil, false
	}
	return r.def, e.srv, e.releaseFunc(), true
}

// releaseFunc takes one reference on the entry and returns the
// idempotent closure that drops it. Callers hold the registry lock.
func (e *regEntry) releaseFunc() func() {
	e.refs.Add(1)
	var once sync.Once
	return func() { once.Do(e.refs.Done) }
}

// Generation returns the name's swap generation: 1 from Register,
// incremented by every successful Replace. Unregistered names report 0.
func (r *Registry) Generation(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.servers[name]; ok {
		return e.gen
	}
	return 0
}

// Default returns the default model's name and server; ok is false for
// an empty registry.
func (r *Registry) Default() (string, *Server, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.servers[r.def]
	if !ok {
		return r.def, nil, false
	}
	return r.def, e.srv, true
}

// Names returns the registered model names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.servers))
	for n := range r.servers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.servers)
}

// attachWatcher records the reloader watching a name, so the health
// surface can report reload state next to readiness. One watcher per
// name; NewReloader calls this.
func (r *Registry) attachWatcher(name string, rl *Reloader) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.servers[name]; !ok {
		return fmt.Errorf("serve: cannot watch unregistered model %q", name)
	}
	if _, ok := r.watchers[name]; ok {
		return fmt.Errorf("serve: model %q already has a reloader", name)
	}
	r.watchers[name] = rl
	return nil
}

// ReloadState reports the watching reloader's state for a name; ok is
// false when the name has no reloader attached.
func (r *Registry) ReloadState(name string) (ReloadState, bool) {
	r.mu.RLock()
	rl, ok := r.watchers[name]
	r.mu.RUnlock()
	if !ok {
		return ReloadState{}, false
	}
	return rl.State(), true
}

// Close shuts down every registered server, draining their pipelines.
// Close is terminal: later Register and Replace calls fail, so a
// Replace racing shutdown (e.g. a Reloader check already in flight
// when its Run context was cancelled) cannot slip a live server into
// the closed registry — the rejected caller closes its own server.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	servers := make([]*Server, 0, len(r.servers))
	for _, e := range r.servers {
		servers = append(servers, e.srv)
	}
	r.mu.Unlock()
	for _, s := range servers {
		s.Close()
	}
}
