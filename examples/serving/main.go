// Serving quickstart: the full path from training to answering
// prediction requests — train a tiny surrogate, checkpoint it, load it
// into the micro-batching server, and hit it with a burst of
// concurrent clients carrying deadlines, while a bulk parameter scan
// soaks up leftover capacity in the low-priority lane. This is the
// workflow cmd/ltfbtrain + cmd/jagserve run across two processes,
// condensed into one.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/metrics"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serving: ")

	// 1. Train a small surrogate (a single trainer, no tournaments;
	// see examples/ltfb_scaling for the population workflow).
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{32}
	cfg.ForwardHidden = []int{16}
	cfg.InverseHidden = []int{12}
	cfg.DiscHidden = []int{12}
	fmt.Println("training a tiny surrogate...")
	model, err := core.TrainSurrogate(cfg, 256, 120, 16, 3)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Checkpoint it with the serving spec sidecar, as ltfbtrain
	// -checkpoint does.
	dir, err := os.MkdirTemp("", "serving-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "model.ckpt")
	if err := checkpoint.Save(ckpt, 120, model.Nets()); err != nil {
		log.Fatal(err)
	}
	spec := serve.ModelSpec{Model: cfg, Step: 120, Checkpoints: []string{ckpt}}
	if err := serve.SaveSpec(serve.SpecPath(ckpt), spec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed to %s\n", ckpt)

	// 3. Load the checkpoint into a 2-replica serving pool behind the
	// micro-batching queue (cmd/jagserve adds the HTTP layer on top).
	loaded, err := serve.LoadSpec(serve.SpecPath(ckpt))
	if err != nil {
		log.Fatal(err)
	}
	pool, err := serve.NewPoolFromCheckpoints(loaded.Model, loaded.Checkpoints, 2, false)
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.NewServer(pool, serve.Config{
		MaxBatch:  32,
		MaxDelay:  2 * time.Millisecond,
		CacheSize: 256,
	})
	defer srv.Close()

	// 4. Query it from 64 concurrent interactive clients, like
	// simultaneous users exploring the design space. Each call carries
	// a deadline through PredictContext: a row still queued when its
	// context expires is dropped before the forward pass and the caller
	// sees serve.ErrExpired instead of a late answer. Repeated design
	// points hit the LRU cache instead of the model. Meanwhile one bulk
	// scan sweeps the first input axis in the low-priority lane, which
	// the batcher drains only after the interactive lane is empty.
	const clients, perClient = 64, 8
	var expired int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 64; i++ {
			x := []float32{float32(i) / 64, 0.5, 0.5, 0.5, 0.5}
			if _, err := srv.PredictPriority(context.Background(), x, serve.Bulk); err != nil {
				log.Fatal(err)
			}
		}
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				x := []float32{
					float32(c%8) / 8,
					float32(i) / perClient,
					0.5, 0.25, 0.75,
				}
				ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
				_, err := srv.PredictContext(ctx, x)
				cancel()
				if errors.Is(err, serve.ErrExpired) {
					mu.Lock()
					expired++
					mu.Unlock()
					continue
				}
				if err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()

	snap := srv.Stats()
	tab := metrics.NewTable("serving a checkpointed surrogate",
		"requests", "batches", "mean_batch", "cache_hits", "expired", "mean_latency_ms")
	tab.AddRow(snap.Requests, snap.Batches, snap.MeanBatch, snap.CacheHits, snap.Expired, snap.MeanLatMs)
	fmt.Print(tab.Render())
	fmt.Printf("throughput: %.0f predictions/sec (replicas=%d, %d interactive calls gave up)\n",
		snap.ThroughputPS, pool.Replicas(), expired)
}
