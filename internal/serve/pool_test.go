package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/tensor"
)

// testBatch builds a deterministic input batch.
func testBatch(n int) *tensor.Matrix {
	x := tensor.New(n, jag.InputDim)
	for i := 0; i < n; i++ {
		copy(x.Row(i), testInput(i))
	}
	return x
}

// TestCheckpointRoundTripBitwise saves a surrogate, reloads it through
// the serve pool, and requires bitwise-identical predictions — the
// guarantee that deploying a checkpoint serves exactly the model that
// was trained.
func TestCheckpointRoundTripBitwise(t *testing.T) {
	cfg := testModelCfg()
	model := cyclegan.New(cfg, 7)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := checkpoint.Save(path, 123, model.Nets()); err != nil {
		t.Fatal(err)
	}

	pool, err := NewPoolFromCheckpoints(cfg, []string{path}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Replicas() != 2 {
		t.Fatalf("replicas = %d, want 2", pool.Replicas())
	}

	x := testBatch(6)
	want := model.Predict(x)
	for rep := 0; rep < pool.Replicas(); rep++ { // round-robin hits both
		got, err := pool.Run(MethodPredict, x)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("replica pass %d: reloaded prediction differs from in-memory model", rep)
		}
	}
	// The inverse pass round-trips the same way.
	wantInv := model.Invert(x)
	gotInv, err := pool.Run(MethodInvert, x)
	if err != nil {
		t.Fatal(err)
	}
	if !gotInv.Equal(wantInv) {
		t.Fatal("reloaded invert differs from in-memory model")
	}
}

// TestPoolDims pins the method vocabulary the registry and HTTP layer
// route on.
func TestPoolDims(t *testing.T) {
	cfg := testModelCfg()
	pool, err := NewPool([]*cyclegan.Surrogate{cyclegan.New(cfg, 3)}, false)
	if err != nil {
		t.Fatal(err)
	}
	dims := pool.Dims()
	if d := dims[MethodPredict]; d.In != jag.InputDim || d.Out != cfg.Geometry.OutputDim() {
		t.Fatalf("predict dims = %+v", d)
	}
	if d := dims[MethodInvert]; d.In != jag.InputDim || d.Out != jag.InputDim {
		t.Fatalf("invert dims = %+v", d)
	}
	if _, err := pool.Run("embed", testBatch(1)); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method error = %v, want ErrUnknownMethod", err)
	}
}

// TestPoolEnsembleAverages checks that ensemble mode returns the
// elementwise mean of the member predictions.
func TestPoolEnsembleAverages(t *testing.T) {
	cfg := testModelCfg()
	a := cyclegan.New(cfg, 1)
	b := cyclegan.New(cfg, 2)
	pool, err := NewPool([]*cyclegan.Surrogate{a, b}, true)
	if err != nil {
		t.Fatal(err)
	}

	x := testBatch(4)
	got, err := pool.Run(MethodPredict, x)
	if err != nil {
		t.Fatal(err)
	}
	ya, yb := a.Predict(x), b.Predict(x)
	want := tensor.New(ya.Rows, ya.Cols)
	tensor.Add(want, ya, yb)
	tensor.Scale(want, 0.5)
	if !got.ApproxEqual(want, 1e-6) {
		t.Fatal("ensemble output is not the replica mean")
	}

	gotInv, err := pool.Run(MethodInvert, x)
	if err != nil {
		t.Fatal(err)
	}
	ia, ib := a.Invert(x), b.Invert(x)
	wantInv := tensor.New(ia.Rows, ia.Cols)
	tensor.Add(wantInv, ia, ib)
	tensor.Scale(wantInv, 0.5)
	if !gotInv.ApproxEqual(wantInv, 1e-6) {
		t.Fatal("ensemble invert output is not the replica mean")
	}
}

// TestPoolEnsembleLeavesReplicasIntact is a regression test for the
// in-place ensemble average: the first replica's prediction matrix is
// also its decoder's cached final-layer activation (nn.Sigmoid keeps
// the matrix it returns for the backward pass), so averaging into it
// corrupted any later training or evaluation of that replica. A
// backward pass through replica 0's decoder must match a bitwise twin
// that never served an ensemble batch.
func TestPoolEnsembleLeavesReplicasIntact(t *testing.T) {
	cfg := testModelCfg()
	a := cyclegan.New(cfg, 1)
	b := cyclegan.New(cfg, 2)
	twin := cyclegan.New(cfg, 1) // bitwise-identical to a
	pool, err := NewPool([]*cyclegan.Surrogate{a, b}, true)
	if err != nil {
		t.Fatal(err)
	}

	x := testBatch(4)
	if _, err := pool.Run(MethodPredict, x); err != nil {
		t.Fatal(err)
	}
	// Prime the twin's cached activations with the same forward pass
	// replica a ran inside the ensemble.
	twin.Predict(x)

	dy := tensor.New(4, cfg.Geometry.OutputDim())
	for i := range dy.Data {
		dy.Data[i] = 1
	}
	ga := a.Decoder.Backward(dy)
	gt := twin.Decoder.Backward(dy)
	if !ga.Equal(gt) {
		t.Fatal("ensemble Run corrupted replica 0's cached activations")
	}
}

// TestPoolEnsembleFromCheckpoints loads two distinct checkpoints and
// checks the ensemble differs from either member (i.e. both contribute).
func TestPoolEnsembleFromCheckpoints(t *testing.T) {
	cfg := testModelCfg()
	dir := t.TempDir()
	var paths []string
	models := []*cyclegan.Surrogate{cyclegan.New(cfg, 11), cyclegan.New(cfg, 22)}
	for i, m := range models {
		p := filepath.Join(dir, "m"+string(rune('0'+i))+".ckpt")
		if err := checkpoint.Save(p, 0, m.Nets()); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	// Ensemble mode clamps to one replica per checkpoint: duplicates
	// would bias the average and waste compute.
	pool, err := NewPoolFromCheckpoints(cfg, paths, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Replicas() != 2 {
		t.Fatalf("replicas = %d, want 2 (one per checkpoint in ensemble mode)", pool.Replicas())
	}
	x := testBatch(3)
	got, err := pool.Run(MethodPredict, x)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(models[0].Predict(x)) || got.Equal(models[1].Predict(x)) {
		t.Fatal("ensemble output equals a single member")
	}
}

// TestPoolValidation covers the error paths.
func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(nil, false); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := NewPoolFromCheckpoints(testModelCfg(), nil, 1, false); err == nil {
		t.Fatal("no-path pool accepted")
	}
	if _, err := NewPoolFromCheckpoints(testModelCfg(), []string{"/nonexistent.ckpt"}, 1, false); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

// TestSpecRoundTrip checks the JSON sidecar survives a save/load cycle.
func TestSpecRoundTrip(t *testing.T) {
	cfg := testModelCfg()
	path := filepath.Join(t.TempDir(), "model.ckpt")
	spec := ModelSpec{Model: cfg, Step: 42, Checkpoints: []string{path}}
	if err := SaveSpec(SpecPath(path), spec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(SpecPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 42 || len(got.Checkpoints) != 1 || got.Checkpoints[0] != path {
		t.Fatalf("spec mismatch: %+v", got)
	}
	if got.Model.LatentDim != cfg.LatentDim || got.Model.Geometry != cfg.Geometry {
		t.Fatalf("model config mismatch: %+v", got.Model)
	}
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing spec accepted")
	}
}

// TestResolveSpec covers the three path shapes the -models flag
// accepts: the spec file itself, a checkpoint path, and a directory
// holding exactly one spec (ambiguous and empty directories error).
func TestResolveSpec(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "model.ckpt")
	// ResolveSpec stats the checkpoint path before looking for its
	// sidecar, so the weights file must exist like it would on disk.
	if err := os.WriteFile(ckpt, []byte("weights"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := ModelSpec{Model: testModelCfg(), Step: 9, Checkpoints: []string{"model.ckpt"}}
	if err := SaveSpec(SpecPath(ckpt), spec); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{SpecPath(ckpt), ckpt, dir} {
		got, err := ResolveSpec(path)
		if err != nil {
			t.Fatalf("ResolveSpec(%q): %v", path, err)
		}
		if got.Step != 9 || len(got.Checkpoints) != 1 || got.Checkpoints[0] != ckpt {
			t.Fatalf("ResolveSpec(%q) = %+v", path, got)
		}
	}

	if _, err := ResolveSpec(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("missing path resolved")
	}
	if _, err := ResolveSpec(t.TempDir()); err == nil {
		t.Fatal("spec-less directory resolved")
	}
	if err := SaveSpec(filepath.Join(dir, "second.ckpt.spec.json"), spec); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveSpec(dir); err == nil {
		t.Fatal("ambiguous directory resolved")
	}
}

// TestSpecRelativeCheckpoints checks that relative checkpoint entries
// resolve against the spec file's directory, so a checkpoint directory
// can be relocated wholesale.
func TestSpecRelativeCheckpoints(t *testing.T) {
	dir := t.TempDir()
	specFile := filepath.Join(dir, "model.ckpt.spec.json")
	spec := ModelSpec{Model: testModelCfg(), Checkpoints: []string{"model.ckpt", "model.2.ckpt"}}
	if err := SaveSpec(specFile, spec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(specFile)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "model.ckpt"), filepath.Join(dir, "model.2.ckpt")}
	for i, p := range got.Checkpoints {
		if p != want[i] {
			t.Fatalf("checkpoint[%d] = %q, want %q", i, p, want[i])
		}
	}
}
