package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeter(t *testing.T) {
	var m Meter
	if m.Count() != 0 || m.Mean() != 0 {
		t.Fatal("zero meter must be empty")
	}
	for _, v := range []float64{2, 4, 6} {
		m.Add(v)
	}
	if m.Count() != 3 || m.Mean() != 4 || m.Min() != 2 || m.Max() != 6 {
		t.Fatalf("meter state wrong: n=%d mean=%v min=%v max=%v", m.Count(), m.Mean(), m.Min(), m.Max())
	}
}

func TestMeterEmptyIsDefined(t *testing.T) {
	var m Meter
	if m.Count() != 0 || m.Mean() != 0 || m.Min() != 0 || m.Max() != 0 {
		t.Fatalf("empty meter must report zeros: n=%d mean=%v min=%v max=%v",
			m.Count(), m.Mean(), m.Min(), m.Max())
	}
	m.Add(math.NaN()) // dropped: must not poison the meter
	if m.Count() != 0 || m.Mean() != 0 {
		t.Fatalf("NaN observation must be dropped: n=%d mean=%v", m.Count(), m.Mean())
	}
	m.Add(-3)
	if m.Count() != 1 || m.Mean() != -3 || m.Min() != -3 || m.Max() != -3 {
		t.Fatalf("single observation wrong: %+v", m)
	}
}

// TestMeterMeanAdversarial compares the running mean against a direct
// average on series built to break naive accumulation: a huge common
// offset with a tiny spread (catastrophic cancellation), alternating
// large positive/negative values, and long runs of identical values.
func TestMeterMeanAdversarial(t *testing.T) {
	cases := map[string][]float64{
		"offset-dominated": func() []float64 {
			v := make([]float64, 1000)
			for i := range v {
				v[i] = 1e12 + float64(i%7)
			}
			return v
		}(),
		"alternating-huge": func() []float64 {
			v := make([]float64, 1000)
			for i := range v {
				v[i] = 1e9
				if i%2 == 1 {
					v[i] = -1e9 + 1
				}
			}
			return v
		}(),
		"constant-run": func() []float64 {
			v := make([]float64, 10000)
			for i := range v {
				v[i] = 0.1
			}
			return v
		}(),
	}
	for name, vals := range cases {
		var m Meter
		var sum float64
		for _, v := range vals {
			m.Add(v)
			sum += v
		}
		direct := sum / float64(len(vals))
		scale := 1.0
		for _, v := range vals {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if math.Abs(m.Mean()-direct) > 1e-9*scale {
			t.Errorf("%s: running mean %v vs direct %v (scale %v)", name, m.Mean(), direct, scale)
		}
	}
}

func TestMeterMeanMatchesDirectAverage(t *testing.T) {
	f := func(vals []float64) bool {
		var m Meter
		var sum float64
		ok := 0
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			m.Add(v)
			sum += v
			ok++
		}
		if ok == 0 {
			return m.Count() == 0
		}
		return math.Abs(m.Mean()-sum/float64(ok)) < 1e-6*(1+math.Abs(sum))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	sp := Speedup(100, []float64{100, 50, 25, 0})
	want := []float64{1, 2, 4, 0}
	for i := range want {
		if sp[i] != want[i] {
			t.Fatalf("speedup = %v", sp)
		}
	}
	eff := Efficiency([]float64{1, 2, 4}, []float64{1, 2, 8})
	if eff[0] != 1 || eff[1] != 1 || eff[2] != 0.5 {
		t.Fatalf("efficiency = %v", eff)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := Pearson(a, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	if got := Pearson(a, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(a, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant series correlation = %v", got)
	}
	if got := Pearson(a, []float64{1}); got != 0 {
		t.Fatalf("mismatched lengths = %v", got)
	}
}

func TestMAE(t *testing.T) {
	if got := MAE([]float64{1, 2}, []float64{2, 4}); got != 1.5 {
		t.Fatalf("MAE = %v", got)
	}
	if got := MAE(nil, nil); got != 0 {
		t.Fatalf("empty MAE = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Figure 9", "GPUs", "Epoch (s)", "Speedup")
	tb.AddRow(1, 100.0, 1.0)
	tb.AddRow(16, float32(10.7), "9.36x")
	out := tb.Render()
	if !strings.Contains(out, "Figure 9") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "GPUs") || !strings.Contains(out, "9.36x") {
		t.Fatalf("table content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and rows share the separator positions.
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("missing rule line:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty series must render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length wrong: %q", s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("extremes wrong: %q", s)
	}
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	if flat[0] != flat[1] || flat[1] != flat[2] {
		t.Fatalf("constant series must be uniform: %q", string(flat))
	}
}
