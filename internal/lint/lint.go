// Package lint is the project's static-analysis layer: five analyzers
// that enforce the serving stack's concurrency and metrics invariants —
// conventions the compiler cannot see and that have each produced (or
// nearly produced) a real bug:
//
//   - acquirerelease: every Registry.Acquire/AcquireDefault release
//     func must run on all paths, or Registry.Replace drains stall
//     until the drain deadline force-closes the displaced server.
//   - atomicfield: structs holding sync/atomic fields (metrics.Histogram
//     and friends) must never be copied; fields tagged `// lint:atomic`
//     must only be touched through sync/atomic calls.
//   - metricname: metric registrations use compile-time-constant names
//     matching ^jag_[a-z0-9_]+$ with literal label keys, and a
//     name registered under two kinds — a runtime panic today — is a
//     build-time report.
//   - ctxflow: a function that receives a context.Context must not
//     manufacture context.Background()/TODO() or drop its ctx when
//     calling a context-taking API.
//   - tensoralias: passing one *tensor.Matrix as two arguments of a
//     call is flagged unless the callee is documented alias-safe (the
//     PR 2 ensemble in-place-averaging bug class).
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built on the standard library
// alone — go/ast, go/types, and export data from the build cache — so
// the module stays dependency-free. cmd/jaglint is the multichecker
// driver; docs/STATIC_ANALYSIS.md is the operator-facing reference.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, the unit cmd/jaglint runs and
// linttest.Run tests.
type Analyzer struct {
	// Name identifies the analyzer in reports and lint:ignore comments.
	Name string
	// Doc is the one-paragraph invariant statement.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information through an
// analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding: a position and a message, attributed to
// the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the go-vet-style "file:line:col: analyzer: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreRe matches suppression comments:
//
//	// lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A suppression applies to findings on its own line (trailing comment)
// and on the line directly below (standalone comment above the code).
// The reason is mandatory: a bare lint:ignore suppresses nothing.
var ignoreRe = regexp.MustCompile(`lint:ignore\s+([a-z0-9_,]+)\s+\S`)

// suppressions maps file -> line -> set of suppressed analyzer names
// ("all" suppresses every analyzer).
type suppressions map[string]map[int]map[string]bool

// collectSuppressions scans every comment of the files for lint:ignore
// directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	add := func(file string, line int, names []string) {
		byLine, ok := sup[file]
		if !ok {
			byLine = map[int]map[string]bool{}
			sup[file] = byLine
		}
		for _, l := range []int{line, line + 1} {
			set, ok := byLine[l]
			if !ok {
				set = map[string]bool{}
				byLine[l] = set
			}
			for _, n := range names {
				set[n] = true
			}
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, strings.Split(m[1], ","))
			}
		}
	}
	return sup
}

// suppressed reports whether a finding by analyzer at pos is covered by
// a lint:ignore comment.
func (s suppressions) suppressed(d Diagnostic) bool {
	set := s[d.Pos.Filename][d.Pos.Line]
	return set != nil && (set[d.Analyzer] || set["all"])
}

// RunAnalyzers runs every analyzer over the package, filters findings
// through the package's lint:ignore comments, and returns them sorted
// by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
		for _, d := range pass.diags {
			if !sup.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// All returns the project's analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AcquireRelease,
		AtomicField,
		MetricName,
		CtxFlow,
		TensorAlias,
	}
}

// --- shared AST/type helpers -------------------------------------------

// inspectWithStack walks every node of the files depth-first, calling
// fn with the node and the stack of its ancestors (outermost first,
// excluding the node itself). Returning false skips the subtree.
func inspectWithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// namedTypeName returns the name of t's core named type, unwrapping
// pointers and aliases; "" when t has no name.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	if a, ok := t.(*types.Alias); ok {
		return a.Obj().Name()
	}
	return ""
}

// calleeFunc resolves the called function or method object of a call,
// or nil for indirect calls and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether the call invokes a function from the given
// package path (matched on path suffix so vendored and test-stub
// packages qualify) with one of the given names.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	if p != pkgPath && !strings.HasSuffix(p, "/"+pkgPath) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}
