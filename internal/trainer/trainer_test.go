package trainer

import (
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/cyclegan"
	"repro/internal/datastore"
	"repro/internal/jag"
	"repro/internal/reader"
)

// jagSliceDataset materializes n flattened JAG samples in memory.
func jagSliceDataset(t testing.TB, cfg jag.Config, start, n int) *reader.SliceDataset {
	t.Helper()
	recs := make([][]float32, n)
	for i := range recs {
		recs[i] = jag.SimulateAt(cfg, start+i).Flatten()
	}
	ds, err := reader.NewSliceDataset(cfg.SampleDim(), recs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func tinySurrogate(seed int64) *cyclegan.Surrogate {
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{24}
	cfg.ForwardHidden = []int{16}
	cfg.InverseHidden = []int{12}
	cfg.DiscHidden = []int{12}
	return cyclegan.New(cfg, seed)
}

// buildTrainers constructs one trainer spanning all ranks of a world.
func buildTrainers(t *testing.T, w *comm.World, ds reader.Dataset, batch int) []*Trainer {
	t.Helper()
	trainers := make([]*Trainer, w.Size())
	w.Run(func(c *comm.Comm) {
		store := datastore.New(c, ds, datastore.ModeDynamic)
		tr, err := New(Config{ID: 0, BatchSize: batch, XDim: jag.InputDim, ShuffleSeed: 42}, c, tinySurrogate(7), store, ds)
		if err != nil {
			t.Error(err)
			return
		}
		trainers[c.Rank()] = tr
	})
	return trainers
}

func TestNewValidation(t *testing.T) {
	ds := jagSliceDataset(t, jag.Tiny8, 0, 32)
	w := comm.NewWorld(4)
	w.Run(func(c *comm.Comm) {
		store := datastore.New(c, ds, datastore.ModeNone)
		if _, err := New(Config{BatchSize: 2, XDim: 5, ShuffleSeed: 1}, c, tinySurrogate(1), store, ds); err == nil {
			t.Error("batch < ranks must error")
		}
		if _, err := New(Config{BatchSize: 64, XDim: 5, ShuffleSeed: 1}, c, tinySurrogate(1), store, ds); err == nil {
			t.Error("dataset < batch must error")
		}
		if _, err := New(Config{BatchSize: 8, XDim: 0, ShuffleSeed: 1}, c, tinySurrogate(1), store, ds); err == nil {
			t.Error("xDim 0 must error")
		}
	})
}

func TestDataParallelReplicasStayIdentical(t *testing.T) {
	ds := jagSliceDataset(t, jag.Tiny8, 0, 64)
	w := comm.NewWorld(4)
	trainers := buildTrainers(t, w, ds, 16)
	w.Run(func(c *comm.Comm) {
		if err := trainers[c.Rank()].Advance(6); err != nil {
			t.Error(err)
		}
	})
	ref := trainers[0].Model.Nets()
	for r := 1; r < 4; r++ {
		nets := trainers[r].Model.Nets()
		for i := range ref {
			pa, pb := ref[i].Params(), nets[i].Params()
			for j := range pa {
				if !pa[j].W.Equal(pb[j].W) {
					t.Fatalf("rank %d net %d param %d diverged from rank 0", r, i, j)
				}
			}
		}
	}
}

// Data parallelism must be algorithmically equivalent to serial training:
// a 2-rank trainer and a 1-rank trainer see the same batches and must end
// with (nearly) the same weights. Gradients differ only by float summation
// order in shard-mean averaging, so allow a small tolerance.
func TestDataParallelMatchesSerial(t *testing.T) {
	ds := jagSliceDataset(t, jag.Tiny8, 0, 32)

	serialT := make([]*Trainer, 1)
	w1 := comm.NewWorld(1)
	w1.Run(func(c *comm.Comm) {
		store := datastore.New(c, ds, datastore.ModeDynamic)
		tr, err := New(Config{BatchSize: 16, XDim: jag.InputDim, ShuffleSeed: 5}, c, tinySurrogate(3), store, ds)
		if err != nil {
			t.Error(err)
			return
		}
		serialT[0] = tr
		if err := tr.Advance(4); err != nil {
			t.Error(err)
		}
	})

	parT := make([]*Trainer, 2)
	w2 := comm.NewWorld(2)
	w2.Run(func(c *comm.Comm) {
		store := datastore.New(c, ds, datastore.ModeDynamic)
		tr, err := New(Config{BatchSize: 16, XDim: jag.InputDim, ShuffleSeed: 5}, c, tinySurrogate(3), store, ds)
		if err != nil {
			t.Error(err)
			return
		}
		parT[c.Rank()] = tr
		if err := tr.Advance(4); err != nil {
			t.Error(err)
		}
	})

	sNets := serialT[0].Model.Nets()
	pNets := parT[0].Model.Nets()
	for i := range sNets {
		ps, pp := sNets[i].Params(), pNets[i].Params()
		for j := range ps {
			if !ps[j].W.ApproxEqual(pp[j].W, 5e-2) {
				t.Fatalf("net %d param %d: serial and 2-rank training diverged beyond tolerance", i, j)
			}
		}
	}
}

func TestAdvanceCrossesEpochs(t *testing.T) {
	ds := jagSliceDataset(t, jag.Tiny8, 0, 32)
	w := comm.NewWorld(2)
	trainers := buildTrainers(t, w, ds, 16)
	// 2 steps per epoch; advancing 5 steps crosses 2 epoch boundaries.
	w.Run(func(c *comm.Comm) {
		if err := trainers[c.Rank()].Advance(5); err != nil {
			t.Error(err)
		}
	})
	st := trainers[0].Stats()
	if st.Steps != 5 {
		t.Fatalf("steps = %d, want 5", st.Steps)
	}
	if st.Epochs != 2 {
		t.Fatalf("epochs = %d, want 2", st.Epochs)
	}
}

func TestRunEpochStepCount(t *testing.T) {
	ds := jagSliceDataset(t, jag.Tiny8, 0, 48)
	w := comm.NewWorld(2)
	trainers := buildTrainers(t, w, ds, 16)
	w.Run(func(c *comm.Comm) {
		if err := trainers[c.Rank()].RunEpoch(); err != nil {
			t.Error(err)
		}
	})
	if got := trainers[0].Stats().Steps; got != 3 {
		t.Fatalf("RunEpoch took %d steps, want 3", got)
	}
	if got := trainers[0].StepsPerEpoch(); got != 3 {
		t.Fatalf("StepsPerEpoch = %d, want 3", got)
	}
}

func TestTrainingReducesLossAndEval(t *testing.T) {
	ds := jagSliceDataset(t, jag.Tiny8, 0, 64)
	val := jagSliceDataset(t, jag.Tiny8, 2000, 32)
	w := comm.NewWorld(2)
	trainers := buildTrainers(t, w, ds, 32)
	evals := make([]float64, 2)
	var before, after float64
	w.Run(func(c *comm.Comm) {
		tr := trainers[c.Rank()]
		b, err := tr.Evaluate(val, 16)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			before = b
		}
		if err := tr.Advance(60); err != nil {
			t.Error(err)
			return
		}
		a, err := tr.Evaluate(val, 16)
		if err != nil {
			t.Error(err)
			return
		}
		evals[c.Rank()] = a
		if c.Rank() == 0 {
			after = a
		}
	})
	if evals[0] != evals[1] {
		t.Fatalf("Evaluate must agree across ranks: %v vs %v", evals[0], evals[1])
	}
	if !(after < before*0.95) {
		t.Fatalf("training did not improve eval: %v -> %v", before, after)
	}
	losses := trainers[0].Stats().Losses
	if losses["autoencoder"] <= 0 || losses["fidelity"] <= 0 {
		t.Fatalf("running losses missing: %v", losses)
	}
}

func TestEvaluateConsistentAcrossStoreModes(t *testing.T) {
	// Evaluation bypasses the store and must not depend on its mode.
	ds := jagSliceDataset(t, jag.Tiny8, 0, 32)
	val := jagSliceDataset(t, jag.Tiny8, 500, 16)
	results := map[datastore.Mode]float64{}
	var mu sync.Mutex
	for _, mode := range []datastore.Mode{datastore.ModeNone, datastore.ModeDynamic, datastore.ModePreload} {
		w := comm.NewWorld(2)
		w.Run(func(c *comm.Comm) {
			store := datastore.New(c, ds, mode)
			if mode == datastore.ModePreload {
				if err := store.Preload(); err != nil {
					t.Error(err)
					return
				}
			}
			tr, err := New(Config{BatchSize: 8, XDim: jag.InputDim, ShuffleSeed: 3}, c, tinySurrogate(11), store, ds)
			if err != nil {
				t.Error(err)
				return
			}
			v, err := tr.Evaluate(val, 8)
			if err != nil {
				t.Error(err)
				return
			}
			if c.Rank() == 0 {
				mu.Lock()
				results[mode] = v
				mu.Unlock()
			}
		})
	}
	if results[datastore.ModeNone] != results[datastore.ModeDynamic] ||
		results[datastore.ModeNone] != results[datastore.ModePreload] {
		t.Fatalf("eval differs by store mode: %v", results)
	}
}

func TestAllreduceReducerAverages(t *testing.T) {
	w := comm.NewWorld(4)
	results := make([]float32, 4)
	w.Run(func(c *comm.Comm) {
		m := tinySurrogate(2)
		params := m.Forward.Params()
		for _, p := range params {
			p.Grad.Fill(float32(c.Rank() + 1)) // ranks contribute 1,2,3,4
		}
		AllreduceReducer{C: c}.Reduce(params)
		results[c.Rank()] = params[0].Grad.Data[0]
	})
	for r, v := range results {
		if v != 2.5 { // mean of 1..4
			t.Fatalf("rank %d reduced grad = %v, want 2.5", r, v)
		}
	}
}

func TestAllreduceReducerSingleRankNoop(t *testing.T) {
	w := comm.NewWorld(1)
	w.Run(func(c *comm.Comm) {
		m := tinySurrogate(2)
		params := m.Forward.Params()
		params[0].Grad.Fill(3)
		AllreduceReducer{C: c}.Reduce(params)
		if params[0].Grad.Data[0] != 3 {
			t.Error("single-rank reduce must be identity")
		}
	})
}
