// Package repro is a from-scratch Go reproduction of "Parallelizing
// Training of Deep Generative Models on Massive Scientific Datasets"
// (Jacobs et al., CLUSTER 2019): the LTFB tournament algorithm for training
// GANs at scale, the LBANN-style training engine it extends, the
// distributed in-memory data store, and simulated substitutes for the
// hardware and data the paper used (the Lassen supercomputer, GPFS, and the
// 10M-sample JAG ICF corpus).
//
// Beyond training, the repository covers the deployment step the paper
// motivates: trained surrogates replacing the JAG simulator for
// downstream consumers. internal/serve coalesces concurrent requests
// into single batched forward passes (the serving-side twin of the
// paper's ingest batching), spreads them over a pool of model replicas
// with optional ensemble averaging across tournament winners, caches
// repeated design points in an LRU, and sheds overload via bounded
// backpressure. The pipeline serves any serve.Model — named methods
// with per-method tensor widths; a pool of CycleGAN replicas serves
// "predict" (forward bundles) and "invert" (inverse design via the
// G(F(x)) self-consistency path), batched separately so methods never
// share a forward pass — and a serve.Registry maps model names to
// independently configured servers, so one process hosts many models.
// Requests have a context-aware lifecycle: calls carry a per-request
// deadline, an interactive lane preempts bulk scans in the batching
// queue, rows whose caller already gave up are dropped before the
// forward pass, and batched replies report aligned per-row errors so
// one bad row cannot fail a batch.
//
// Serving is also live across model updates: the LTFB loop keeps
// promoting new tournament winners, so serve.Registry.Replace
// atomically swaps the server behind a name — requests in flight drain
// against the old pool (the HTTP layer pins its server per request via
// Registry.Acquire, and Replace waits for the last holder before
// closing it) while new requests answer from the new one, with a
// per-name generation counter recording each swap. A serve.Reloader
// automates the swap from disk: it polls a spec/checkpoint path
// (cheap stat signature first, SHA-256 content fingerprint second, so
// a touched-but-identical file never reloads), rebuilds the replica
// pool from the new winner, smoke-tests it with a canary forward pass
// per method, and promotes it only if the canary passes — a corrupt or
// NaN-weight checkpoint is rejected, the old generation keeps serving,
// and the failure is reported under "reload" in /healthz.
//
// cmd/jagserve exposes the registry over the versioned v1 HTTP API —
// GET /v1/models (listing + readiness + generation), POST
// /v1/models/{name}/{method} (content-negotiated JSON or binary
// little-endian float32 tensor frames, serve/wire.go), GET
// /v1/models/{name}/stats, and /healthz with per-model readiness and
// reload state; the unversioned /predict and /stats remain as
// deprecated aliases onto the default model, -watch -reload-interval
// runs a Reloader per model, and -drain-deadline bounds how long a
// swap waits for stragglers before force-closing the old model.
// cmd/ltfbtrain -checkpoint saves a trained population's best models
// with the spec sidecar jagserve -models loads; serve.Client is the Go
// client; and examples/serving walks the whole train → checkpoint →
// register → query → hot-reload path (both transports, both methods)
// in one process.
//
// The performance model closes the loop: internal/perfmodel
// regenerates the paper's training figures (9–11) analytically and
// extends the same treatment to serving — a capacity model of the
// batching queue (batch-window fill, replica parallelism, cache hit
// rate, priority lanes) calibrated by serve.CostProbe on the running
// binary, predicting sustainable QPS and p50/p99 latency per replica
// count (cmd/figures -fig S1, examples/capacity), and validated
// against a measured in-process benchmark in capacity_test.go.
//
// Past one process, cmd/jagproxy scales the serving tier by
// replication — the paper's strong-scaling argument applied to
// inference. internal/proxy fronts N jagserve replicas with active
// health probing and passive circuit breaking, weighted least-loaded
// routing seeded by each backend's probed capacity, bounded retries
// with interactive-lane hedging, and per-client rate limiting;
// perfmodel.FleetScenario extends the capacity model to the fleet and
// fleet_test.go validates it against a measured 3-backend fleet,
// backend kill included (docs/FLEET.md, examples/fleet).
//
// The conventions this stack depends on are machine-checked:
// cmd/jaglint runs internal/lint's five analyzers (released
// Registry.Acquire pins, uncopied atomic-holding structs, canonical
// jag_* metric names, flowing contexts, non-aliased tensor
// destinations) over every package, in CI and inside tier-1 via
// TestSuiteCleanOnRepo; docs/STATIC_ANALYSIS.md documents each
// invariant and the lint:ignore suppression syntax.
//
// Start with README.md for the layout and quickstart, docs/SERVING.md
// and docs/FLEET.md for the serving and fleet operator guides, and
// EXPERIMENTS.md for
// paper-vs-measured results. The benchmarks in bench_test.go
// regenerate every figure of the paper's evaluation section;
// cmd/figures prints them as tables.
package repro
