// Package comm is an in-process message-passing library modelled on the
// MPI/Aluminum layer of the paper's software stack (Figure 3). Ranks are
// goroutines; each rank holds a Comm handle through which it sends tagged
// messages, posts non-blocking receives, and participates in collectives
// (ring allreduce, broadcast, barrier) and communicator splits.
//
// The semantics follow MPI where it matters to the reproduction:
//
//   - Point-to-point messages are matched by (source, tag) with the MPI
//     non-overtaking guarantee: two messages from the same source with the
//     same tag arrive in send order.
//   - Sends are eager and buffered: Send never blocks, so Sendrecv-style
//     exchanges (the LTFB generator swap) cannot deadlock.
//   - Collectives must be called by every rank of a communicator in the same
//     order, exactly like MPI.
//
// Allreduce uses the ring algorithm (reduce-scatter + allgather), the same
// family NCCL/Aluminum use on NVLink/InfiniBand; a naive gather+broadcast
// variant is retained for the ablation benchmarks.
package comm

import (
	"fmt"
	"sync"
)

// AnySource matches a message from any rank, like MPI_ANY_SOURCE.
const AnySource = -1

// AnyTag matches a message with any tag, like MPI_ANY_TAG.
const AnyTag = -1

// message is one in-flight point-to-point payload. Exactly one of floats and
// bytes is non-nil.
type message struct {
	src    int // global source rank
	tag    int
	floats []float32
	bytes  []byte
}

// mailbox buffers unmatched messages for one global rank.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.msgs = append(m.msgs, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// get blocks until a message matching (src, tag) is available and removes it.
// Scanning front-to-back preserves the non-overtaking order.
func (m *mailbox) get(src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.msgs {
			if (src == AnySource || msg.src == src) && (tag == AnyTag || msg.tag == tag) {
				m.msgs = append(m.msgs[:i], m.msgs[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// World is the set of all ranks in a run — the analogue of MPI_COMM_WORLD's
// underlying process set. Create one per training job with NewWorld.
type World struct {
	size      int
	mailboxes []*mailbox
}

// NewWorld creates a world with n ranks. It panics if n < 1.
func NewWorld(n int) *World {
	if n < 1 {
		panic(fmt.Sprintf("comm: world size %d < 1", n))
	}
	w := &World{size: n, mailboxes: make([]*mailbox, n)}
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Comm returns the world communicator handle for global rank r. Each rank
// goroutine must use only its own handle.
func (w *World) Comm(r int) *Comm {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("comm: rank %d outside world of size %d", r, w.size))
	}
	group := make([]int, w.size)
	for i := range group {
		group[i] = i
	}
	return &Comm{world: w, rank: r, group: group, coord: worldCoord(w)}
}

// worldCoords caches one coordination structure per world so every rank's
// world communicator shares it.
var (
	worldCoordMu sync.Mutex
	worldCoords  = map[*World]*coord{}
)

func worldCoord(w *World) *coord {
	worldCoordMu.Lock()
	defer worldCoordMu.Unlock()
	c, ok := worldCoords[w]
	if !ok {
		c = newCoord(w.size)
		worldCoords[w] = c
	}
	return c
}

// Run spawns fn on one goroutine per rank, passing each its world
// communicator, and blocks until all return. A panic in any rank is
// re-raised in the caller with the rank attached, so tests fail loudly
// instead of deadlocking.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make([]any, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
				}
			}()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	for rank, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("comm: rank %d panicked: %v", rank, p))
		}
	}
}

// Comm is one rank's handle on a communicator: a subset of world ranks with
// its own rank numbering, like an MPI communicator. Handles are cheap; each
// rank owns one per communicator and must not share it across goroutines.
type Comm struct {
	world *World
	rank  int   // local rank within group
	group []int // local rank -> global rank
	coord *coord
	seq   int // collective sequence number, advances identically on all ranks
}

// Rank returns the caller's rank within this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return len(c.group) }

// GlobalRank returns the world rank of local rank r in this communicator.
func (c *Comm) GlobalRank(r int) int { return c.group[r] }

// Send delivers a copy of data to local rank dst with the given tag. It
// never blocks. Tags must be non-negative; negative tags are reserved for
// collectives.
func (c *Comm) Send(dst, tag int, data []float32) {
	c.checkUserTag(tag)
	c.sendRaw(dst, tag, append([]float32(nil), data...), nil)
}

// SendBytes delivers a copy of data to local rank dst with the given tag.
func (c *Comm) SendBytes(dst, tag int, data []byte) {
	c.checkUserTag(tag)
	c.sendRaw(dst, tag, nil, append([]byte(nil), data...))
}

func (c *Comm) sendRaw(dst, tag int, floats []float32, bytes []byte) {
	g := c.group[dst]
	c.world.mailboxes[g].put(message{src: c.group[c.rank], tag: tag, floats: floats, bytes: bytes})
}

// Recv blocks until a float payload with matching source and tag arrives and
// returns it. src may be AnySource and tag may be AnyTag. Receiving a byte
// payload with Recv is a programming error and panics.
func (c *Comm) Recv(src, tag int) []float32 {
	msg := c.recvRaw(src, tag)
	if msg.bytes != nil {
		panic(fmt.Sprintf("comm: Recv matched a byte message (src=%d tag=%d); use RecvBytes", msg.src, msg.tag))
	}
	return msg.floats
}

// RecvBytes blocks until a byte payload with matching source and tag arrives.
func (c *Comm) RecvBytes(src, tag int) []byte {
	msg := c.recvRaw(src, tag)
	if msg.floats != nil {
		panic(fmt.Sprintf("comm: RecvBytes matched a float message (src=%d tag=%d); use Recv", msg.src, msg.tag))
	}
	return msg.bytes
}

func (c *Comm) recvRaw(src, tag int) message {
	gsrc := AnySource
	if src != AnySource {
		gsrc = c.group[src]
	}
	return c.world.mailboxes[c.group[c.rank]].get(gsrc, tag)
}

// Request is a pending non-blocking receive, created by Irecv/IrecvBytes.
type Request struct {
	ch chan message
}

// Irecv posts a non-blocking receive for a float payload. The matching runs
// on a background goroutine; Wait returns the payload. The data store uses
// this to overlap shuffles with compute, as LBANN does (Section III-B).
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{ch: make(chan message, 1)}
	gsrc := AnySource
	if src != AnySource {
		gsrc = c.group[src]
	}
	box := c.world.mailboxes[c.group[c.rank]]
	go func() { r.ch <- box.get(gsrc, tag) }()
	return r
}

// IrecvBytes posts a non-blocking receive for a byte payload.
func (c *Comm) IrecvBytes(src, tag int) *Request { return c.Irecv(src, tag) }

// Wait blocks until the request completes and returns the float payload; it
// panics if the matched message carried bytes.
func (r *Request) Wait() []float32 {
	msg := <-r.ch
	if msg.bytes != nil {
		panic("comm: Wait matched a byte message; use WaitBytes")
	}
	return msg.floats
}

// WaitBytes blocks until the request completes and returns the byte payload.
func (r *Request) WaitBytes() []byte {
	msg := <-r.ch
	if msg.floats != nil {
		panic("comm: WaitBytes matched a float message; use Wait")
	}
	return msg.bytes
}

// Sendrecv sends sendData to dst and receives from src with the same tag —
// the primitive behind the LTFB pairwise generator exchange. Eager sends make
// it deadlock-free even when both sides target each other.
func (c *Comm) Sendrecv(dst int, sendData []float32, src, tag int) []float32 {
	c.Send(dst, tag, sendData)
	return c.Recv(src, tag)
}

// SendrecvBytes is Sendrecv for byte payloads.
func (c *Comm) SendrecvBytes(dst int, sendData []byte, src, tag int) []byte {
	c.SendBytes(dst, tag, sendData)
	return c.RecvBytes(src, tag)
}

func (c *Comm) checkUserTag(tag int) {
	if tag < 0 {
		panic(fmt.Sprintf("comm: user tag %d must be non-negative", tag))
	}
}

// nextCollTag reserves a block of negative tags for the next collective.
// Every rank calls collectives in the same order, so sequence numbers agree.
func (c *Comm) nextCollTag() int {
	c.seq++
	return -c.seq * collTagStride
}

// collTagStride bounds the number of distinct tags a single collective may
// use (steps of a ring, fan-in rounds, etc.).
const collTagStride = 1 << 16
