package repro

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/cyclegan"
	"repro/internal/datastore"
	"repro/internal/ensemble"
	"repro/internal/jag"
	"repro/internal/ltfb"
	"repro/internal/reader"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// TestEndToEndDiskBackedLTFB exercises the full production path the paper
// describes: the ensemble workflow writes bundle files to disk, trainers
// open them as a dataset, each trainer's preloaded distributed data store
// populates from its file partition, data-parallel ranks train CycleGAN
// replicas with ring-allreduced gradients, and LTFB tournaments exchange
// generators between trainers — then validation improves and the replicas
// agree.
func TestEndToEndDiskBackedLTFB(t *testing.T) {
	const (
		trainers = 2
		ranksPer = 2
		files    = 8
		perFile  = 16
	)
	res, err := ensemble.Run(ensemble.Config{
		Geometry:       jag.Tiny8,
		Samples:        files * perFile,
		SamplesPerFile: perFile,
		OutDir:         t.TempDir(),
		Workers:        2,
	})
	if err != nil {
		t.Fatal(err)
	}

	modelCfg := cyclegan.DefaultConfig(jag.Tiny8)
	modelCfg.EncoderHidden = []int{24}
	modelCfg.ForwardHidden = []int{16}
	modelCfg.InverseHidden = []int{12}
	modelCfg.DiscHidden = []int{12}

	val, err := reader.NewSliceDataset(jag.Tiny8.SampleDim(),
		ensemble.GenerateInMemory(jag.Tiny8, 4000, 48))
	if err != nil {
		t.Fatal(err)
	}
	tourn := ensemble.GenerateInMemory(jag.Tiny8, 5000, 16)
	tx := tensor.New(16, jag.InputDim)
	ty := tensor.New(16, jag.Tiny8.OutputDim())
	for i, rec := range tourn {
		copy(tx.Row(i), rec[:jag.InputDim])
		copy(ty.Row(i), rec[jag.InputDim:])
	}

	w := comm.NewWorld(trainers * ranksPer)
	before := make([]float64, trainers)
	after := make([]float64, trainers)
	members := make([]*ltfb.Member, trainers*ranksPer)
	w.Run(func(wc *comm.Comm) {
		trainerID := wc.Rank() / ranksPer
		tc := wc.Split(trainerID, 0)

		// Each trainer opens the whole corpus but trains on its contiguous
		// file partition, exactly the paper's data layout.
		ds, err := reader.OpenBundles(res.Paths)
		if err != nil {
			t.Error(err)
			return
		}
		defer ds.Close()
		idx := reader.PartitionContiguous(ds.Len(), trainers, trainerID)
		sub, err := reader.NewSubset(ds, idx)
		if err != nil {
			t.Error(err)
			return
		}

		store := datastore.New(tc, sub, datastore.ModeDynamic)
		model := cyclegan.New(modelCfg, int64(10+trainerID))
		tr, err := trainer.New(trainer.Config{
			ID: trainerID, BatchSize: 16, XDim: jag.InputDim, ShuffleSeed: int64(trainerID),
		}, tc, model, store, sub)
		if err != nil {
			t.Error(err)
			return
		}
		m := &ltfb.Member{
			Cfg:       ltfb.Config{NumTrainers: trainers, RoundSteps: 6, PairSeed: 5},
			TrainerID: trainerID,
			World:     wc,
			T:         tr,
			Scratch:   cyclegan.New(modelCfg, 0),
			TournX:    tx,
			TournY:    ty,
		}
		members[wc.Rank()] = m

		loss, err := tr.Evaluate(val, 16)
		if err != nil {
			t.Error(err)
			return
		}
		if tc.Rank() == 0 {
			before[trainerID] = loss
		}
		if _, err := m.Loop(4); err != nil {
			t.Error(err)
			return
		}
		loss, err = tr.Evaluate(val, 16)
		if err != nil {
			t.Error(err)
			return
		}
		if tc.Rank() == 0 {
			after[trainerID] = loss
		}
	})

	for k := 0; k < trainers; k++ {
		if !(after[k] < before[k]) {
			t.Fatalf("trainer %d did not improve: %v -> %v", k, before[k], after[k])
		}
	}
	// Replicas of each trainer hold identical models after tournaments.
	for k := 0; k < trainers; k++ {
		a := members[k*ranksPer].T.Model.Nets()
		bNets := members[k*ranksPer+1].T.Model.Nets()
		for i := range a {
			pa, pb := a[i].Params(), bNets[i].Params()
			for j := range pa {
				if !pa[j].W.Equal(pb[j].W) {
					t.Fatalf("trainer %d replicas diverged (net %d)", k, i)
				}
			}
		}
	}
}

// TestFiguresRegenerateQuickly is the smoke test for the figure harness the
// benches and cmd/figures rely on.
func TestFiguresRegenerate(t *testing.T) {
	if len(core.Figure9Table().Render()) == 0 ||
		len(core.Figure10Table().Render()) == 0 ||
		len(core.Figure11Table().Render()) == 0 ||
		len(core.HeadlineTable().Render()) == 0 {
		t.Fatal("figure tables empty")
	}
}
