package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/jag"
)

// statusClientClosedRequest is the nginx convention for "the client
// went away before we answered" — the HTTP face of ErrCancelled.
const statusClientClosedRequest = 499

// Request headers of the v1 API. The JSON body fields take precedence
// where both exist; the binary tensor transport carries no envelope, so
// these headers are its only way to set per-request options.
const (
	// PriorityHeader selects the queue lane ("interactive" or "bulk")
	// when the body carries no "priority" field.
	PriorityHeader = "X-Priority"
	// DeadlineHeader bounds the request's time in the pipeline, in
	// milliseconds, when the body carries no "deadline_ms" field.
	DeadlineHeader = "X-Deadline-Ms"
	// ScalarsOnlyHeader ("true"/"1") trims predict rows to the leading
	// scalar observables when the body carries no "scalars_only" field.
	ScalarsOnlyHeader = "X-Scalars-Only"
	// RequestIDHeader carries the request's correlation ID. A caller-set
	// value is propagated (so a proxy or client can stitch its own trace
	// together); absent one, the handler assigns a fresh ID. Either way
	// the response echoes it and the structured access log records it.
	RequestIDHeader = "X-Request-Id"
)

// PredictRequest is the JSON body of a model-method call: either one
// input row or a list.
type PredictRequest struct {
	// Input is a single parameter vector (the method's input width).
	Input []float32 `json:"input,omitempty"`
	// Inputs is a batch of parameter vectors; each row is submitted to
	// the batching queue independently, so one HTTP batch and many
	// concurrent single-input calls coalesce identically.
	Inputs [][]float32 `json:"inputs,omitempty"`
	// ScalarsOnly trims each predict output row to the 15 scalar
	// observables, dropping the X-ray image pixels (which dominate the
	// payload). Ignored for methods whose rows carry no image tail.
	ScalarsOnly bool `json:"scalars_only,omitempty"`
	// Priority selects the queue lane: "interactive" (default) or
	// "bulk". The X-Priority header is the fallback when this is empty.
	Priority string `json:"priority,omitempty"`
	// DeadlineMs bounds this request's time in the pipeline; rows still
	// queued when it passes are dropped without a forward pass and
	// reported as status-504 row errors. 0 uses the handler's default.
	DeadlineMs int `json:"deadline_ms,omitempty"`
}

// RowError reports one failed row of a batched call.
type RowError struct {
	// Status is the HTTP status the row would have had on its own.
	Status int `json:"status"`
	// Error is the row's error message.
	Error string `json:"error"`
}

// PredictResponse is the JSON reply of a model-method call, rows
// aligned with the request inputs. When every row succeeds Errors is
// omitted; otherwise Errors has one entry per input (null for rows that
// succeeded) and the failed rows' Outputs entries are null — one
// poisoned row no longer discards its siblings' completed work.
type PredictResponse struct {
	Outputs [][]float32 `json:"outputs"`
	Errors  []*RowError `json:"errors,omitempty"`
}

// ModelInfo is one model's entry in the GET /v1/models listing.
type ModelInfo struct {
	Name string `json:"name"`
	// Default marks the model the deprecated unversioned endpoints
	// answer for.
	Default bool `json:"default,omitempty"`
	// Ready is false once the model's server has been closed.
	Ready    bool            `json:"ready"`
	Replicas int             `json:"replicas,omitempty"`
	Ensemble bool            `json:"ensemble,omitempty"`
	Methods  map[string]Dims `json:"methods"`
	// Generation is the model's hot-swap generation: 1 at Register,
	// +1 per Registry.Replace (e.g. a reloader promoting a new LTFB
	// winner).
	Generation int64 `json:"generation"`
}

// ModelStats is the GET /v1/models/{name}/stats reply: the server's
// counters plus the registry-level reload bookkeeping. The counters
// reset on a hot swap (each generation's Server owns its own Stats);
// Generation and Reloads say when that happened.
type ModelStats struct {
	StatsSnapshot
	// Generation is the serving generation the counters belong to.
	Generation int64 `json:"generation"`
	// Reloads counts the hot swaps this name has been through
	// (Generation - 1).
	Reloads int64 `json:"reloads"`
	// ForcedCloses counts the hot swaps whose drain hit the registry's
	// drain deadline: the displaced server was closed while callers
	// still held it, failing their remaining rows with 503s. Non-zero
	// means swaps are outpacing the slowest callers — raise the drain
	// deadline or put deadlines on the slow requests.
	ForcedCloses int64 `json:"forced_closes"`
	// CapacityQPS is the probed sustainable row rate published by
	// Server.SetCapacityQPS (jagserve -probe), 0 when never probed.
	// A fleet router reads it to weight least-loaded routing; it
	// resets to 0 when a hot swap installs an unprobed generation.
	CapacityQPS float64 `json:"capacity_qps,omitempty"`
}

// ModelsResponse is the GET /v1/models JSON reply.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// ModelHealth is one model's entry in the /healthz reply.
type ModelHealth struct {
	// Status is "ok" while the model's server accepts requests and
	// "closed" after shutdown.
	Status   string `json:"status"`
	Replicas int    `json:"replicas,omitempty"`
	Ensemble bool   `json:"ensemble,omitempty"`
	// Generation is the model's hot-swap generation (see ModelInfo).
	Generation int64 `json:"generation"`
	// Reload is the checkpoint watcher's state when the model has one:
	// watched path, last check/swap times, and the last rejected
	// reload (a non-empty last_error means a new checkpoint failed its
	// canary or load and the previous generation kept serving).
	Reload *ReloadState `json:"reload,omitempty"`
}

// HealthResponse is the /healthz JSON reply: per-model readiness, plus
// an overall status that is "ok" only while every registered model is
// serving (any closed model turns the endpoint 503 so load balancers
// stop routing here).
type HealthResponse struct {
	Status string                 `json:"status"`
	Models map[string]ModelHealth `json:"models"`
}

// HandlerConfig tunes NewRegistryHandler.
type HandlerConfig struct {
	// DefaultDeadline is applied to calls that don't carry their own
	// deadline_ms; 0 leaves them unbounded.
	DefaultDeadline time.Duration
	// AccessLog, when non-nil, receives one structured "request" record
	// per HTTP request: method, path, status, duration, response bytes,
	// the request's correlation ID, and — for call routes — the
	// per-stage trace spans (queue wait, batch assembly, forward,
	// encode) and batch size. jagserve -log-format json wires a
	// slog.JSONHandler here.
	AccessLog *slog.Logger
}

// NewHandler exposes a single Server over the full v1 HTTP surface by
// wrapping it as the sole (and default) model, named "default", of a
// fresh Registry. Tests and single-model deployments mount exactly
// this handler.
func NewHandler(s *Server) http.Handler { return NewHandlerConfig(s, HandlerConfig{}) }

// NewHandlerConfig is NewHandler with explicit options.
func NewHandlerConfig(s *Server, hc HandlerConfig) http.Handler {
	reg := NewRegistry()
	if err := reg.Register("default", s); err != nil {
		panic(err) // unreachable: the name is valid and the registry fresh
	}
	return NewRegistryHandler(reg, hc)
}

// NewRegistryHandler exposes every model of a Registry over HTTP:
//
//	GET  /v1/models                    model listing: methods, dims, readiness, generation
//	POST /v1/models/{name}/{method}    batched call (JSON or binary tensor body)
//	GET  /v1/models/{name}/stats       per-model serving counters + reload generation
//	GET  /metrics                      Prometheus text exposition, every model
//	GET  /healthz                      per-model readiness + reload state; 503 if any model closed
//	POST /predict                      deprecated: default model's "predict"
//	GET  /stats                        deprecated: default model's counters
//
// Every request is assigned (or propagates) an X-Request-Id correlation
// ID, echoed on the response; call routes additionally emit a
// Server-Timing header with the request's stage spans. With
// HandlerConfig.AccessLog set, each request also produces one
// structured log record carrying the same ID and spans.
//
// Call routes pin their server with Registry.Acquire, so a hot swap
// (Registry.Replace, e.g. a Reloader promoting a new checkpoint)
// drains in-flight calls against the old model instead of failing
// them; requests admitted after the swap answer from the new one.
//
// Call bodies are content-negotiated: a JSON PredictRequest, or a
// binary tensor frame (Content-Type ContentTypeTensor, options via the
// X-* headers). Responses mirror the request transport — binary when
// the client accepts ContentTypeTensor (or sent binary and stated no
// preference) and every row succeeded; JSON otherwise, so the aligned
// per-row error array survives regardless of transport. The per-model
// stats route does not collide with a model method named "stats":
// stats is GET-only and calls are POST-only, so Go's method-qualified
// mux patterns keep both reachable.
func NewRegistryHandler(reg *Registry, hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		def, _, _ := reg.Default()
		resp := ModelsResponse{Models: []ModelInfo{}}
		for _, name := range reg.Names() {
			s, ok := reg.Get(name)
			if !ok {
				continue
			}
			info := ModelInfo{
				Name:       name,
				Default:    name == def,
				Ready:      !s.Closed(),
				Methods:    s.Dims(),
				Generation: reg.Generation(name),
			}
			info.Replicas, info.Ensemble = poolShape(s.Model())
			resp.Models = append(resp.Models, info)
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/models/{name}/{method}", func(w http.ResponseWriter, r *http.Request) {
		name, method := r.PathValue("name"), r.PathValue("method")
		// Acquire, not Get: the handler may hold the server across a
		// long batched call, and a concurrent hot swap must drain it
		// before closing rather than fail its rows with ErrClosed.
		s, release, ok := reg.Acquire(name)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q (have: %s)",
				name, strings.Join(reg.Names(), ", ")))
			return
		}
		defer release()
		if _, ok := s.Dims()[method]; !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("model %q has no method %q (serves: %s)",
				name, method, strings.Join(s.Methods(), ", ")))
			return
		}
		serveCall(w, r, s, method, hc)
	})
	mux.HandleFunc("GET /v1/models/{name}/stats", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		s, ok := reg.Get(name)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("unknown model %q", name))
			return
		}
		gen := reg.Generation(name)
		writeJSON(w, ModelStats{StatsSnapshot: s.Stats(), Generation: gen, Reloads: gen - 1,
			ForcedCloses: reg.ForcedCloses(name), CapacityQPS: s.CapacityQPS()})
	})
	mux.Handle("GET /metrics", MetricsHandler(reg))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		resp := HealthResponse{Status: "ok", Models: map[string]ModelHealth{}}
		code := http.StatusOK
		for _, name := range reg.Names() {
			s, ok := reg.Get(name)
			if !ok {
				continue
			}
			mh := ModelHealth{Status: "ok", Generation: reg.Generation(name)}
			mh.Replicas, mh.Ensemble = poolShape(s.Model())
			if rs, ok := reg.ReloadState(name); ok {
				mh.Reload = &rs
			}
			if s.Closed() {
				// One dead model degrades the whole process: load
				// balancers should stop routing here rather than let
				// that model's callers 503 at the call route.
				mh.Status = "closed"
				resp.Status = "closed"
				code = http.StatusServiceUnavailable
			}
			resp.Models[name] = mh
		}
		writeJSONStatus(w, code, resp)
	})
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		markDeprecated(w)
		name, s, release, ok := reg.AcquireDefault()
		if !ok {
			httpError(w, http.StatusServiceUnavailable, "no models registered")
			return
		}
		defer release()
		if _, ok := s.Dims()[MethodPredict]; !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("default model %q has no predict method", name))
			return
		}
		serveCall(w, r, s, MethodPredict, hc)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		markDeprecated(w)
		name, s, ok := reg.Default()
		if !ok {
			httpError(w, http.StatusServiceUnavailable, "no models registered")
			return
		}
		gen := reg.Generation(name)
		writeJSON(w, ModelStats{StatsSnapshot: s.Stats(), Generation: gen, Reloads: gen - 1,
			ForcedCloses: reg.ForcedCloses(name), CapacityQPS: s.CapacityQPS()})
	})
	return withObservability(mux, hc.AccessLog)
}

// poolShape extracts the replica count and ensemble flag from models
// that expose them (as *Pool does); other Model implementations report
// zero values.
func poolShape(m Model) (replicas int, ensemble bool) {
	if r, ok := m.(interface{ Replicas() int }); ok {
		replicas = r.Replicas()
	}
	if e, ok := m.(interface{ Ensemble() bool }); ok {
		ensemble = e.Ensemble()
	}
	return replicas, ensemble
}

// markDeprecated stamps the deprecation headers on the unversioned
// legacy endpoints, pointing clients at the v1 surface.
func markDeprecated(w http.ResponseWriter) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/models>; rel="successor-version"`)
}

// serveCall is the transport-agnostic core of a batched model-method
// call: decode the inputs (JSON envelope or binary tensor frame),
// submit every row to the method's batching queue under one lifecycle,
// and render the aligned results over the negotiated transport.
func serveCall(w http.ResponseWriter, r *http.Request, s *Server, method string, hc HandlerConfig) {
	dims := s.Dims()[method]
	binaryReq := strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeTensor)

	var inputs [][]float32
	priority := r.Header.Get(PriorityHeader)
	deadline := hc.DefaultDeadline
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, err := strconv.Atoi(h)
		if err != nil || ms <= 0 {
			// A malformed deadline must not silently become "no
			// deadline": the caller asked for shedding and would get
			// unbounded queueing instead.
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad %s %q: want a positive integer", DeadlineHeader, h))
			return
		}
		deadline = time.Duration(ms) * time.Millisecond
	}
	scalarsOnly := isTrue(r.Header.Get(ScalarsOnlyHeader))
	if binaryReq {
		// Cap the declared row count so one small request frame cannot
		// demand an output allocation beyond the frame budget: the
		// input side is bounded by MaxFrameElems on its own, but with
		// a wide output (predict is ~49k cols at Default64) the reply
		// is the amplified dimension.
		maxRows := MaxFrameElems / dims.Out
		if maxRows < 1 {
			maxRows = 1
		}
		rows, err := DecodeFrame(r.Body, dims.In, maxRows)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad tensor frame: "+err.Error())
			return
		}
		inputs = rows
	} else {
		var req PredictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
			return
		}
		inputs = req.Inputs
		if req.Input != nil {
			inputs = append([][]float32{req.Input}, inputs...)
		}
		if req.Priority != "" {
			priority = req.Priority
		}
		if req.DeadlineMs > 0 {
			deadline = time.Duration(req.DeadlineMs) * time.Millisecond
		}
		if req.ScalarsOnly {
			scalarsOnly = true
		}
	}
	class, err := ParsePriority(priority)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(inputs) == 0 {
		httpError(w, http.StatusBadRequest, "no inputs")
		return
	}

	// The rows live and die with the HTTP request: a disconnecting
	// client or an elapsed deadline turns still-queued rows stale, and
	// the batcher drops them before the forward pass.
	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	outputs := make([][]float32, len(inputs))
	errs := make([]error, len(inputs))
	traces := make([]Trace, len(inputs))
	// Submit rows concurrently so one HTTP batch benefits from the same
	// coalescing as independent clients — but throttled to half the
	// queue depth, so a single large batch cannot trip its own
	// backpressure (ErrOverloaded is for contention between clients,
	// not for one request's row count).
	limit := s.cfg.QueueDepth / 2
	if limit < 1 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := range inputs {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outputs[i], traces[i], errs[i] = s.CallTrace(ctx, method, inputs[i], class)
			<-sem
		}(i)
	}
	wg.Wait()
	rowErrs, failed := collectRowErrors(errs)
	if agg, ok := mergeTraces(traces, errs); ok {
		// Before the status line: headers are frozen at first write. The
		// access-log middleware reads the same spans from the context.
		w.Header().Set("Server-Timing", serverTimingValue(agg))
		if tc := traceFrom(r.Context()); tc != nil {
			tc.setCall(agg)
		}
	}
	// recordEncode charges a response-rendering span to the encode stage
	// histogram and the request's trace, on whichever transport path the
	// response takes.
	recordEncode := func(start time.Time) {
		d := time.Since(start)
		s.stats.observeStage(StageEncode, d.Seconds())
		if tc := traceFrom(r.Context()); tc != nil {
			tc.setEncode(d)
		}
	}
	if scalarsOnly && method == MethodPredict {
		for i, row := range outputs {
			if len(row) > jag.ScalarDim {
				outputs[i] = row[:jag.ScalarDim]
			}
		}
	}

	// Respond binary when the client accepts the tensor media type, or
	// sent binary and expressed no preference — but only when every row
	// succeeded: the frame has no error channel, so mixed results fall
	// back to the JSON body and its aligned errors array.
	accept := r.Header.Get("Accept")
	wantBinary := strings.Contains(accept, ContentTypeTensor)
	if accept == "" || accept == "*/*" {
		wantBinary = binaryReq
	}
	if failed == 0 && wantBinary {
		encStart := time.Now()
		buf, err := EncodeFrame(outputs)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", ContentTypeTensor)
		// The status line is already out; a short write means the
		// client disconnected and there is nothing left to report.
		_, _ = w.Write(buf)
		recordEncode(encStart)
		return
	}
	resp := PredictResponse{Outputs: outputs}
	if failed > 0 {
		resp.Errors = rowErrs
	}
	encStart := time.Now()
	if failed == len(inputs) {
		// Nothing succeeded: surface the severest row status at the
		// top level (the body still carries the per-row detail).
		writeJSONStatus(w, batchStatus(rowErrs), resp)
		recordEncode(encStart)
		return
	}
	writeJSON(w, resp)
	recordEncode(encStart)
}

// mergeTraces folds per-row traces into one request-level span record:
// the maximum of each stage across the rows that ran the model. Rows of
// one HTTP batch move through the pipeline concurrently, so maxima —
// not sums — bound the request's critical path. A request answered
// entirely from cache reports only the CacheHit marker; a request with
// no successful rows reports nothing.
func mergeTraces(traces []Trace, errs []error) (Trace, bool) {
	var agg Trace
	succeeded, ran := 0, 0
	for i, t := range traces {
		if errs[i] != nil {
			continue
		}
		succeeded++
		if t.CacheHit {
			continue
		}
		ran++
		if t.QueueWait > agg.QueueWait {
			agg.QueueWait = t.QueueWait
		}
		if t.Assembly > agg.Assembly {
			agg.Assembly = t.Assembly
		}
		if t.Forward > agg.Forward {
			agg.Forward = t.Forward
		}
		if t.Batch > agg.Batch {
			agg.Batch = t.Batch
		}
	}
	if succeeded == 0 {
		return Trace{}, false
	}
	if ran == 0 {
		return Trace{CacheHit: true}, true
	}
	return agg, true
}

// isTrue parses a permissive boolean header value.
func isTrue(s string) bool {
	switch strings.ToLower(s) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// collectRowErrors maps per-row Call errors onto aligned RowError
// entries and counts the failures.
func collectRowErrors(errs []error) (rowErrs []*RowError, failed int) {
	rowErrs = make([]*RowError, len(errs))
	for i, err := range errs {
		if err == nil {
			continue
		}
		rowErrs[i] = &RowError{Status: rowStatus(err), Error: err.Error()}
		failed++
	}
	return rowErrs, failed
}

// rowStatus maps one row's Call error to its HTTP status.
func rowStatus(err error) int {
	switch {
	case errors.Is(err, ErrModelFailure):
		return http.StatusInternalServerError
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrExpired):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrCancelled):
		return statusClientClosedRequest
	case errors.Is(err, ErrUnknownMethod):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// severity ranks row statuses for the all-rows-failed top-level status:
// 500 (model failure) > 503 (capacity / shutdown — retry elsewhere) >
// 504 (deadline) > 499 (client gone) > 404 (no such method) > 400
// (caller bug). The ordering is a fixed property of the status, never
// of slice iteration order, so the top-level status of a mixed-failure
// batch is deterministic.
func severity(status int) int {
	switch status {
	case http.StatusInternalServerError:
		return 6
	case http.StatusServiceUnavailable:
		return 5
	case http.StatusGatewayTimeout:
		return 4
	case statusClientClosedRequest:
		return 3
	case http.StatusNotFound:
		return 2
	case http.StatusBadRequest:
		return 1
	}
	return 0
}

// batchStatus returns the severest status among the row errors.
func batchStatus(rowErrs []*RowError) int {
	worst := http.StatusInternalServerError // only if no row carries an error
	rank := -1
	for _, re := range rowErrs {
		if re != nil && severity(re.Status) > rank {
			worst, rank = re.Status, severity(re.Status)
		}
	}
	return worst
}

// writeJSON renders v as a JSON response body with status 200.
func writeJSON(w http.ResponseWriter, v any) { writeJSONStatus(w, http.StatusOK, v) }

// writeJSONStatus renders v as a JSON body with an explicit status.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already out; an encode error can only be
	// logged by the caller's middleware, not reported.
	_ = json.NewEncoder(w).Encode(v)
}

// httpError renders a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSONStatus(w, status, struct {
		Error string `json:"error"`
	}{msg})
}
