// Package proxy is the fleet front door: an HTTP load balancer over N
// jagserve replicas, turning the single-process serving stack into the
// strong-scaled serving tier the paper's training side argues for —
// once one replica runs as fast as the hardware allows, throughput only
// grows by routing across many.
//
// The proxy keeps one Backend per replica and combines:
//
//   - active health probing: every Config.HealthInterval each backend's
//     /healthz is probed; Config.FailAfter consecutive probe failures
//     drop it from routing and Config.RecoverAfter consecutive
//     successes reinstate it;
//   - passive circuit breaking: transport errors, timeouts, and 5xx on
//     forwarded traffic trip a backend after Config.BreakerFails
//     consecutive failures or a Config.ErrorRate fraction of its recent
//     window — the prober then owns reinstatement;
//   - weighted least-loaded routing: when every candidate reports a
//     probed capacity (jagserve -probe publishes CostProbe-derived QPS
//     on its stats route; the proxy refreshes it every
//     Config.CapacityInterval), requests go to the backend with the
//     lowest (inflight+1)/capacity; otherwise power-of-two-choices on
//     in-flight counts;
//   - bounded retries and hedging: a failed attempt (connect error,
//     broken reply, retryable status — see serve.RetryableStatus) is
//     retried on an untried backend up to Config.MaxRetries times;
//     interactive-lane requests additionally hedge after
//     Config.HedgeDelay, racing a second backend (bulk never hedges);
//   - per-client token-bucket rate limiting with 429 + Retry-After;
//   - observability: jag_proxy_* metric families on GET /metrics,
//     X-Request-Id assignment/propagation so one correlation ID traces
//     a request proxy→backend, and an optional structured access log.
//
// docs/FLEET.md is the operator guide; perfmodel.FleetScenario is the
// matching capacity model.
package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// Config tunes the proxy; the zero value serves with the defaults noted
// on each field.
type Config struct {
	// HealthInterval is the active /healthz probe period (default 1s).
	HealthInterval time.Duration
	// ProbeTimeout bounds one probe or capacity refresh (default 2s).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive probe failures that drop a backend
	// (default 2).
	FailAfter int
	// RecoverAfter is the consecutive probe successes that reinstate a
	// dropped backend (default 2).
	RecoverAfter int
	// BreakerFails is the consecutive forward failures (transport error
	// or 5xx) that trip the passive breaker (default 3).
	BreakerFails int
	// ErrorRate is the failure fraction of the recent-forwards window
	// that trips the breaker even without a consecutive run
	// (default 0.5); ErrorWindow is the window size (default 20).
	ErrorRate   float64
	ErrorWindow int
	// CapacityInterval is the period between capacity refreshes from
	// backend stats routes (default 15s). CapacityModel names the model
	// whose capacity_qps seeds routing weights; "" uses each backend's
	// first listed model.
	CapacityInterval time.Duration
	CapacityModel    string
	// MaxRetries is the extra attempts (retries and hedges combined)
	// after the first, each on a backend the request has not tried yet
	// (default 2).
	MaxRetries int
	// HedgeDelay races a second backend when an interactive request has
	// not answered within it; 0 disables hedging. Bulk-lane requests
	// (X-Priority: bulk) never hedge. Note the proxy reads only the
	// header: a priority set inside a JSON body selects the backend's
	// bulk lane but does not suppress hedging.
	HedgeDelay time.Duration
	// AttemptTimeout bounds one backend attempt; 0 leaves only the
	// client's own context/deadline.
	AttemptTimeout time.Duration
	// RatePerSec enables per-client token-bucket rate limiting on call
	// routes at this refill rate; 0 disables. Burst is the bucket size
	// (default max(1, ceil(RatePerSec))).
	RatePerSec float64
	Burst      int
	// MaxBodyBytes caps a call request body (default 64 MiB).
	MaxBodyBytes int64
	// AccessLog, when non-nil, gets one structured record per request.
	AccessLog *slog.Logger
	// Logf, when non-nil, receives health-transition log lines
	// (default: discarded).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 2
	}
	if c.BreakerFails <= 0 {
		c.BreakerFails = 3
	}
	if c.ErrorRate <= 0 || c.ErrorRate > 1 {
		c.ErrorRate = 0.5
	}
	if c.ErrorWindow <= 0 {
		c.ErrorWindow = 20
	}
	if c.CapacityInterval <= 0 {
		c.CapacityInterval = 15 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.Burst <= 0 {
		c.Burst = int(c.RatePerSec)
		if float64(c.Burst) < c.RatePerSec {
			c.Burst++
		}
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// Proxy fronts a set of jagserve backends. It is an http.Handler;
// Start launches the health/capacity maintenance loops.
type Proxy struct {
	cfg      Config
	backends []*Backend
	m        *metrics.Registry
	limiter  *rateLimiter
	hc       *http.Client // forwards: no global timeout, per-attempt ctx
	probeHC  *http.Client // probes + capacity refresh: ProbeTimeout
	mux      *http.ServeMux
}

// New builds a proxy over the given backend base URLs (such as
// "http://127.0.0.1:8081"). All backends start healthy; call Start to
// begin probing.
func New(backendURLs []string, cfg Config) (*Proxy, error) {
	cfg = cfg.withDefaults()
	if len(backendURLs) == 0 {
		return nil, fmt.Errorf("proxy: no backends")
	}
	p := &Proxy{
		cfg: cfg,
		m:   metrics.NewRegistry(),
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}},
		probeHC: &http.Client{Timeout: cfg.ProbeTimeout},
	}
	seen := map[string]bool{}
	for _, raw := range backendURLs {
		b, err := newBackend(raw, cfg.ErrorWindow)
		if err != nil {
			return nil, err
		}
		if seen[b.base] {
			return nil, fmt.Errorf("proxy: duplicate backend %s", b.base)
		}
		seen[b.base] = true
		p.backends = append(p.backends, b)
	}
	if cfg.RatePerSec > 0 {
		p.limiter = newRateLimiter(cfg.RatePerSec, cfg.Burst)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/models/{name}/{method}", p.serveCall)
	mux.HandleFunc("POST /predict", p.serveCall) // deprecated alias, forwarded as-is
	mux.HandleFunc("GET /v1/models", p.servePass)
	mux.HandleFunc("GET /v1/models/{name}/stats", p.servePass)
	mux.HandleFunc("GET /stats", p.servePass) // deprecated alias
	mux.HandleFunc("GET /healthz", p.serveHealthz)
	mux.HandleFunc("GET /metrics", p.serveMetrics)
	p.mux = mux
	return p, nil
}

// Start launches the maintenance loops — active health probing,
// capacity refresh, rate-limiter cleanup — until ctx is cancelled. It
// runs one synchronous probe + capacity sweep first, so a proxy whose
// backends are already up routes with fresh state from its first
// request.
func (p *Proxy) Start(ctx context.Context) {
	p.probeSweep(ctx)
	p.capacitySweep(ctx)
	go p.maintain(ctx)
}

// Backends exposes the backend set (for /healthz and tests).
func (p *Proxy) Backends() []*Backend { return p.backends }

// Metrics exposes the proxy's metric registry (for tests and embedding
// scrapes).
func (p *Proxy) Metrics() *metrics.Registry { return p.m }

func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// ServeHTTP dispatches to the proxy's route set:
//
//	POST /v1/models/{name}/{method}  forwarded with retries (+ hedging)
//	GET  /v1/models, .../stats       forwarded to one healthy backend
//	GET  /healthz                    the proxy's own fleet health
//	GET  /metrics                    jag_proxy_* Prometheus exposition
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := sanitizeID(r.Header.Get(serve.RequestIDHeader))
	if id == "" {
		id = newID()
	}
	w.Header().Set(serve.RequestIDHeader, id)
	r.Header.Set(serve.RequestIDHeader, id) // forwarded verbatim to the backend
	if p.cfg.AccessLog == nil {
		p.mux.ServeHTTP(w, r)
		return
	}
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	p.mux.ServeHTTP(sw, r)
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	p.cfg.AccessLog.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.String("backend", sw.Header().Get(backendHeader)),
		slog.Float64("duration_ms", float64(time.Since(start))/float64(time.Millisecond)),
		slog.String("request_id", id))
}

// pick selects a backend for the next attempt, excluding tried ones.
// Healthy candidates are preferred; when none remain (fleet-wide
// outage, or every healthy backend already tried) it falls back to any
// untried backend — health state can be stale, and a desperate attempt
// beats a certain failure. Among candidates: weighted least-loaded by
// (inflight+1)/capacity when every candidate has a probed capacity,
// else power-of-two-choices on in-flight counts.
func (p *Proxy) pick(tried map[*Backend]bool) *Backend {
	cands := make([]*Backend, 0, len(p.backends))
	for _, b := range p.backends {
		if b.Healthy() && !tried[b] {
			cands = append(cands, b)
		}
	}
	if len(cands) == 0 {
		for _, b := range p.backends {
			if !tried[b] {
				cands = append(cands, b)
			}
		}
	}
	switch len(cands) {
	case 0:
		return nil
	case 1:
		return cands[0]
	}
	weighted := true
	for _, b := range cands {
		if b.CapacityQPS() <= 0 {
			weighted = false
			break
		}
	}
	if weighted {
		best, bestScore := cands[0], 0.0
		for i, b := range cands {
			score := float64(b.inflight.Load()+1) / b.CapacityQPS()
			if i == 0 || score < bestScore {
				best, bestScore = b, score
			}
		}
		return best
	}
	i := rand.IntN(len(cands))
	j := rand.IntN(len(cands) - 1)
	if j >= i {
		j++
	}
	if cands[j].inflight.Load() < cands[i].inflight.Load() {
		return cands[j]
	}
	return cands[i]
}

// serveCall forwards one batched model call with rate limiting,
// retries, and (interactive-lane only) hedging.
func (p *Proxy) serveCall(w http.ResponseWriter, r *http.Request) {
	if p.limiter != nil {
		if ok, retryAfter := p.limiter.allow(clientKey(r), time.Now()); !ok {
			p.m.Counter("jag_proxy_rate_limited_total",
				"Requests shed by per-client frontend rate limiting.", nil).Inc()
			sec := int(retryAfter.Seconds() + 0.999)
			if sec < 1 {
				sec = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(sec))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("rate limit exceeded; retry after %ds", sec))
			return
		}
	}
	body, ok := readBody(w, r, p.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	class, err := serve.ParsePriority(r.Header.Get(serve.PriorityHeader))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hedge := class == serve.Interactive && p.cfg.HedgeDelay > 0
	out := p.dispatch(r, body, hedge)
	p.relay(w, r, out)
}

// servePass forwards one read-only route (model listing, stats) with
// retries but no hedging or rate limiting.
func (p *Proxy) servePass(w http.ResponseWriter, r *http.Request) {
	out := p.dispatch(r, nil, false)
	p.relay(w, r, out)
}

// outcome is one attempt's fully-buffered result. Buffering the whole
// reply before relaying is what makes mid-body backend deaths
// retryable: the client never sees bytes from an attempt that later
// broke.
type outcome struct {
	b      *Backend
	status int
	header http.Header
	body   []byte
	err    error
	hedged bool
}

// relayable reports whether this outcome ends the dispatch: a reply
// arrived and it is not a "not now" status worth trying elsewhere.
func (o outcome) relayable() bool {
	return o.err == nil && !serve.RetryableStatus(o.status)
}

// dispatch runs the attempt state machine: route, forward, retry on
// retryable failures against untried backends, and — when hedge is set
// — race a second backend after HedgeDelay. At most 1+MaxRetries
// attempts are launched (hedges included); the first relayable outcome
// wins and pending attempts are cancelled.
func (p *Proxy) dispatch(r *http.Request, body []byte, hedge bool) outcome {
	ctx := r.Context()
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	maxAttempts := 1 + p.cfg.MaxRetries
	results := make(chan outcome, maxAttempts)
	tried := make(map[*Backend]bool, len(p.backends))
	launched := 0
	launch := func(hedged bool) bool {
		if launched >= maxAttempts {
			return false
		}
		b := p.pick(tried)
		if b == nil {
			return false
		}
		tried[b] = true
		launched++
		go func() { results <- p.attempt(actx, b, r, body, hedged) }()
		return true
	}

	if !launch(false) {
		return outcome{err: errNoBackend}
	}
	var hedgeC <-chan time.Time
	if hedge {
		t := time.NewTimer(p.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	pending := 1
	var last outcome
	for {
		select {
		case out := <-results:
			pending--
			if out.relayable() {
				if out.hedged {
					p.m.Counter("jag_proxy_hedge_wins_total",
						"Hedged attempts that answered first.", nil).Inc()
				}
				return out
			}
			last = out
			if ctx.Err() == nil && launch(false) {
				p.m.Counter("jag_proxy_retries_total",
					"Attempts relaunched on another backend after a retryable failure.", nil).Inc()
				pending++
				continue
			}
			if pending > 0 {
				continue // a raced attempt may still come back relayable
			}
			return last
		case <-hedgeC:
			hedgeC = nil
			if launch(true) {
				p.m.Counter("jag_proxy_hedges_total",
					"Second attempts raced for slow interactive requests.", nil).Inc()
				pending++
			}
		case <-ctx.Done():
			return outcome{err: ctx.Err()}
		}
	}
}

// errNoBackend is dispatch's "nothing to route to" sentinel.
var errNoBackend = fmt.Errorf("proxy: no backend available")

// forwardHeaders is the request-header whitelist forwarded to backends.
var forwardHeaders = []string{
	"Content-Type", "Accept",
	serve.PriorityHeader, serve.DeadlineHeader, serve.ScalarsOnlyHeader,
	serve.RequestIDHeader,
}

// attempt forwards the request to one backend, buffers the whole reply,
// and feeds the passive breaker with the observed outcome.
func (p *Proxy) attempt(ctx context.Context, b *Backend, r *http.Request, body []byte, hedged bool) outcome {
	if p.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.AttemptTimeout)
		defer cancel()
	}
	req, err := newBackendRequest(ctx, b, r, body)
	if err != nil {
		return outcome{b: b, err: err, hedged: hedged}
	}
	lbl := metrics.Labels{"backend": b.name}
	b.inflight.Add(1)
	start := time.Now()
	resp, err := p.hc.Do(req)
	var status int
	var header http.Header
	var raw []byte
	if err == nil {
		status, header = resp.StatusCode, resp.Header
		raw, err = readAllBody(resp)
	}
	elapsed := time.Since(start).Seconds()
	b.inflight.Add(-1)
	p.m.Histogram("jag_proxy_request_latency_seconds",
		"Backend attempt latency (connect to full reply), per backend.",
		metrics.LatencyBuckets(), lbl).Observe(elapsed)

	if err != nil {
		// Transport failure: connect refused, timeout, or a reply that
		// died mid-body. Don't hold it against the backend when our own
		// client vanished — the cancellation is the caller's, not the
		// backend's.
		p.m.Counter("jag_proxy_requests_total",
			"Forwarded attempts per backend and status class.",
			metrics.Labels{"backend": b.name, "code": "error"}).Inc()
		if r.Context().Err() == nil && ctx.Err() != context.Canceled {
			p.noteForward(b, true, err.Error())
			p.m.Counter("jag_proxy_errors_total",
				"Backend attempt failures by kind.",
				metrics.Labels{"backend": b.name, "kind": errKind(err)}).Inc()
		}
		return outcome{b: b, err: err, hedged: hedged}
	}
	p.m.Counter("jag_proxy_requests_total",
		"Forwarded attempts per backend and status class.",
		metrics.Labels{"backend": b.name, "code": fmt.Sprintf("%dxx", status/100)}).Inc()
	if status >= 500 {
		p.noteForward(b, true, fmt.Sprintf("HTTP %d", status))
		p.m.Counter("jag_proxy_errors_total",
			"Backend attempt failures by kind.",
			metrics.Labels{"backend": b.name, "kind": "status_5xx"}).Inc()
	} else {
		p.noteForward(b, false, "")
	}
	return outcome{b: b, status: status, header: header, body: raw, hedged: hedged}
}

// noteForward feeds the passive breaker and performs the trip.
func (p *Proxy) noteForward(b *Backend, failed bool, detail string) {
	if b.noteForward(failed, detail, p.cfg.BreakerFails, p.cfg.ErrorRate) {
		p.setHealth(b, false, "breaker: "+detail)
	}
}

// setHealth flips one backend's health bit, counting and logging real
// transitions exactly once (Swap makes concurrent trips idempotent).
func (p *Proxy) setHealth(b *Backend, up bool, reason string) {
	if b.healthy.Swap(up) == up {
		return
	}
	to := "down"
	if up {
		to = "up"
	}
	p.m.Counter("jag_proxy_health_transitions_total",
		"Backend health flips, labeled by direction.",
		metrics.Labels{"backend": b.name, "to": to}).Inc()
	p.logf("proxy: backend %s %s (%s)", b.name, to, reason)
}

// backendHeader names the replica that served the relayed reply, for
// debugging and tests.
const backendHeader = "X-Jag-Backend"

// relayHeaders is the response-header whitelist copied back to the
// client. X-Request-Id is not copied: the proxy already set its own
// (which the backend echoed, since it was forwarded).
var relayHeaders = []string{
	"Content-Type", "Retry-After", "Server-Timing", "Deprecation", "Link",
}

// relay writes the winning outcome to the client.
func (p *Proxy) relay(w http.ResponseWriter, r *http.Request, out outcome) {
	switch {
	case out.err == errNoBackend:
		p.m.Counter("jag_proxy_no_backend_total",
			"Requests failed because no backend was available.", nil).Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no backend available")
		return
	case out.err != nil:
		if r.Context().Err() != nil {
			return // client is gone; nobody reads this reply
		}
		if out.b != nil {
			w.Header().Set(backendHeader, out.b.name)
		}
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("backend attempt failed: %v", out.err))
		return
	}
	for _, h := range relayHeaders {
		if v := out.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(backendHeader, out.b.name)
	w.WriteHeader(out.status)
	w.Write(out.body)
}

// FleetHealth is the GET /healthz reply: the proxy's view of the fleet.
type FleetHealth struct {
	// Status is "ok" with every backend healthy, "degraded" with some
	// down, "down" (and HTTP 503) with none left.
	Status   string                   `json:"status"`
	Healthy  int                      `json:"healthy"`
	Backends map[string]BackendHealth `json:"backends"`
}

// BackendHealth is one backend's entry in the fleet /healthz reply.
type BackendHealth struct {
	Healthy     bool    `json:"healthy"`
	Inflight    int64   `json:"inflight"`
	CapacityQPS float64 `json:"capacity_qps,omitempty"`
	LastError   string  `json:"last_error,omitempty"`
}

// FleetHealth snapshots the proxy's view of the fleet — the same
// document GET /healthz serves, for in-process embedders.
func (p *Proxy) FleetHealth() FleetHealth {
	resp := FleetHealth{Backends: make(map[string]BackendHealth, len(p.backends))}
	for _, b := range p.backends {
		h := BackendHealth{
			Healthy:     b.Healthy(),
			Inflight:    b.Inflight(),
			CapacityQPS: b.CapacityQPS(),
			LastError:   b.lastError(),
		}
		if h.Healthy {
			resp.Healthy++
		}
		resp.Backends[b.name] = h
	}
	switch {
	case resp.Healthy == len(p.backends):
		resp.Status = "ok"
	case resp.Healthy > 0:
		resp.Status = "degraded"
	default:
		resp.Status = "down"
	}
	return resp
}

func (p *Proxy) serveHealthz(w http.ResponseWriter, r *http.Request) {
	resp := p.FleetHealth()
	status := http.StatusOK
	if resp.Status == "down" {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

// serveMetrics refreshes the scrape-time gauges and renders the
// registry. Counters and histograms are written on the hot path; only
// the point-in-time backend gauges are computed here.
func (p *Proxy) serveMetrics(w http.ResponseWriter, r *http.Request) {
	for _, b := range p.backends {
		lbl := metrics.Labels{"backend": b.name}
		up := 0.0
		if b.Healthy() {
			up = 1
		}
		p.m.Gauge("jag_proxy_backend_healthy", "1 while the backend is routed to.", lbl).Set(up)
		p.m.Gauge("jag_proxy_backend_inflight", "Proxied requests outstanding on the backend.", lbl).
			Set(float64(b.Inflight()))
		p.m.Gauge("jag_proxy_backend_capacity_qps",
			"Backend's probed sustainable row rate (rows/s), 0 until reported.", lbl).
			Set(b.CapacityQPS())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.m.WritePrometheus(w)
}
