// Package fixture seeds metricname violations and their corrected
// forms. The stub Registry mirrors metrics.Registry's registration
// surface; the analyzer matches it the same way (method name + receiver
// named Registry + leading string parameter).
package fixture

// Labels mirrors metrics.Labels.
type Labels map[string]string

// Counter, Gauge, and Histogram mirror the metric handle types.
type (
	Counter   struct{}
	Gauge     struct{}
	Histogram struct{}
)

// Registry mirrors metrics.Registry.
type Registry struct{}

// Counter mirrors metrics.Registry.Counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter { return &Counter{} }

// Gauge mirrors metrics.Registry.Gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge { return &Gauge{} }

// Histogram mirrors metrics.Registry.Histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	return &Histogram{}
}

// --- corrected forms first: these register the canonical families ------

const batchesName = "jag_batches_total"

func good(r *Registry) {
	r.Counter("jag_requests_total", "completed rows", Labels{"model": "jag", "lane": "bulk"})
	r.Counter(batchesName, "forward passes", nil) // named constants resolve at compile time
	r.Gauge("jag_queue_depth", "in-flight rows", nil)
	r.Histogram("jag_request_latency_seconds", "end to end", []float64{0.1, 1}, nil)
	// Re-registering the same (name, kind) is the look-up-per-update
	// pattern and stays silent.
	r.Counter("jag_requests_total", "completed rows", nil)
}

// --- violations --------------------------------------------------------

func badNames(r *Registry) {
	r.Counter("requests_total", "no prefix", nil) // want "does not match"
	r.Gauge("jag_QueueDepth", "upper case", nil)  // want "does not match"
	r.Counter("jag_", "empty stem", nil)          // want "does not match"
}

func computedName(r *Registry, which string) {
	r.Counter("jag_"+which, "computed", nil) // want "compile-time string constant"
}

func kindConflict(r *Registry) {
	r.Gauge("jag_requests_total", "now a gauge", nil) // want "registered as a gauge here but as a counter"
}

func badLabels(r *Registry, key string) {
	r.Counter("jag_cache_hits_total", "h", Labels{key: "v"}) // want "label key must be a literal string"
	r.Counter("jag_cache_misses_total", "h", Labels{
		"Model-Name": "jag", // want "does not match"
	})
}
