package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a named-metric registry: counters, gauges, and histograms
// keyed by (name, labels), rendered in the Prometheus text exposition
// format. It is the aggregation point between instrumented code (which
// holds the returned metric handles and updates them lock-free) and a
// /metrics scrape (which walks the registry and writes every family).
//
// Labels follow the Prometheus conventions the serving stack uses:
// model, method, lane, stage. A (name, label-set) pair resolves to the
// same handle every time, so both "create once, hold the handle" and
// "look up per update" callers see one shared series.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is every series of one metric name, sharing a type and help.
type family struct {
	name, help string
	kind       string // "counter", "gauge", "histogram"
	series     map[string]*series
}

// series is one (name, labels) sample: exactly one of the value kinds is
// live, matching the family kind.
type series struct {
	labels Labels
	val    atomic.Uint64 // counter count / gauge float bits
	hist   *Histogram
	// snap, when set, is a pre-aggregated histogram published via
	// SetHistogram — exposition state for histograms whose live half
	// lives elsewhere (e.g. a serve.Server's per-stage instruments).
	snap *HistogramSnapshot
}

// Labels is one metric's label set. The zero value labels nothing.
type Labels map[string]string

// key renders the canonical (sorted) form used for series identity and
// exposition.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslash, quote, and newline — exactly the
		// exposition-format label escapes.
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter is a monotonically increasing count. Updates are lock-free.
type Counter struct{ s *series }

// Add increments the counter by n (non-negative).
func (c *Counter) Add(n uint64) { c.s.val.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.s.val.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.s.val.Load() }

// Gauge is a value that can go up and down. Updates are lock-free.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.s.val.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.val.Load()) }

// Counter returns the counter for (name, labels), creating it at zero on
// first use. It panics if the name is already registered as another
// metric kind — one name, one type is a Prometheus invariant.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return &Counter{s: r.series(name, help, "counter", labels, nil)}
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return &Gauge{s: r.series(name, help, "gauge", labels, nil)}
}

// Histogram returns the live histogram for (name, labels), creating it
// with the given bucket bounds on first use (later calls ignore bounds
// and return the existing instrument).
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	s := r.series(name, help, "histogram", labels, func() *series {
		return &series{hist: NewHistogram(bounds)}
	})
	return s.hist
}

// SetHistogram publishes a pre-aggregated histogram snapshot under
// (name, labels), replacing any earlier snapshot. It is the exposition
// path for histograms owned and updated elsewhere: the owner snapshots
// its live instrument at scrape time and hands the copy over here.
func (r *Registry) SetHistogram(name, help string, labels Labels, snap HistogramSnapshot) {
	s := r.series(name, help, "histogram", labels, func() *series { return &series{} })
	r.mu.Lock()
	s.snap = &snap
	r.mu.Unlock()
}

// series resolves or creates the series for (name, labels); make, when
// non-nil, builds the new series value.
func (r *Registry) series(name, help, kind string, labels Labels, make_ func() *series) *series {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s already registered as a %s, not a %s", name, f.kind, kind))
	}
	key := labels.key()
	s, ok := f.series[key]
	if !ok {
		if make_ != nil {
			s = make_()
		} else {
			s = &series{}
		}
		// Copy the labels: the caller may reuse its map.
		if len(labels) > 0 {
			s.labels = make(Labels, len(labels))
			for k, v := range labels {
				s.labels[k] = v
			}
		}
		f.series[key] = s
	}
	return s
}

// validMetricName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): families sorted by name,
// series sorted by label key, histograms as cumulative _bucket/_sum/
// _count series. The write is a point-in-time view; lock-free updates
// racing it shift a sample by at most the in-flight handful.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		rows := make([]*series, len(keys))
		for i, k := range keys {
			rows[i] = f.series[k]
		}
		r.mu.Unlock()
		for i, s := range rows {
			var err error
			switch f.kind {
			case "counter":
				err = writeSample(w, f.name, keys[i], "", float64(s.val.Load()))
			case "gauge":
				err = writeSample(w, f.name, keys[i], "", math.Float64frombits(s.val.Load()))
			case "histogram":
				err = writeHistogram(w, f.name, keys[i], histSnapshot(s))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// histSnapshot returns the series' exposition state: the published
// snapshot if one was set, else a fresh snapshot of the live histogram.
func histSnapshot(s *series) HistogramSnapshot {
	if s.snap != nil {
		return *s.snap
	}
	if s.hist != nil {
		return s.hist.Snapshot()
	}
	return HistogramSnapshot{}
}

// writeSample renders one "name{labels} value" line; extraLabel, when
// non-empty, is appended to the label set (the histogram le= label).
func writeSample(w io.Writer, name, labelKey, extraLabel string, v float64) error {
	labels := labelKey
	if extraLabel != "" {
		if labels != "" {
			labels += ","
		}
		labels += extraLabel
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(v))
	return err
}

// writeHistogram renders the cumulative bucket series plus sum/count.
func writeHistogram(w io.Writer, name, labelKey string, snap HistogramSnapshot) error {
	var cum uint64
	for i, b := range snap.Bounds {
		if i < len(snap.Counts) {
			cum += snap.Counts[i]
		}
		le := `le="` + formatValue(b) + `"`
		if err := writeSample(w, name+"_bucket", labelKey, le, float64(cum)); err != nil {
			return err
		}
	}
	if err := writeSample(w, name+"_bucket", labelKey, `le="+Inf"`, float64(snap.Count)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labelKey, "", snap.Sum); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labelKey, "", float64(snap.Count))
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip decimal, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
