// Package pfs models a parallel file system (Lustre/GPFS class) as a set of
// object storage targets (OSTs) with FIFO service queues, per-open and
// per-seek latencies, and client-count interference. It runs on the
// deterministic DES kernel and supplies the I/O side of the paper's
// evaluation: the data-ingestion bottleneck of naive training (Section
// IV-C), the preload-versus-dynamic data-store comparison (Figure 10), and
// the preload-time degradation from inter-trainer interference at 64
// trainers that the paper attributes to GPFS contention (Figure 11).
//
// Files map to OSTs round-robin. A request's service time is its byte count
// divided by the OST's effective bandwidth — degraded once the OST's
// in-flight request count exceeds the saturation threshold, modelling the
// seek/metadata thrash of many clients interleaving on one target — plus
// open/seek latencies, and is floored by the client NIC bandwidth.
package pfs

import (
	"fmt"

	"repro/internal/des"
)

// Params fixes the file-system geometry and service model.
type Params struct {
	NumOSTs         int     // object storage targets
	OSTBandwidth    float64 // bytes/s per OST at low load
	OSTChannels     int     // concurrent streams one OST serves at full rate
	OpenLatency     float64 // seconds per file open (metadata RPC)
	SeekLatency     float64 // seconds per random intra-file access
	ClientBandwidth float64 // bytes/s cap per client process
	// SaturationInFlight is the per-OST in-flight request count beyond
	// which effective bandwidth degrades.
	SaturationInFlight int
	// Interference is the bandwidth degradation slope past saturation:
	// effBW = OSTBandwidth / (1 + Interference·overload).
	Interference float64
}

// GPFSLike returns parameters resembling the Lassen collaboration-zone file
// system: tens of OSTs, ~GB/s each, millisecond metadata ops.
func GPFSLike() Params {
	return Params{
		NumOSTs:            48,
		OSTBandwidth:       2.0e9,
		OSTChannels:        6,
		OpenLatency:        5e-3,
		SeekLatency:        1.5e-3,
		ClientBandwidth:    1.2e9,
		SaturationInFlight: 16,
		Interference:       0.6,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.NumOSTs < 1 || p.OSTChannels < 1 || p.OSTBandwidth <= 0 || p.ClientBandwidth <= 0 {
		return fmt.Errorf("pfs: invalid params %+v", p)
	}
	if p.SaturationInFlight < 1 || p.Interference < 0 || p.OpenLatency < 0 || p.SeekLatency < 0 {
		return fmt.Errorf("pfs: invalid params %+v", p)
	}
	return nil
}

// Stats accumulates traffic counters for assertions and reporting.
type Stats struct {
	Opens     int64
	Reads     int64
	BytesRead int64
}

// FS is one simulated file system attached to a des.Sim.
type FS struct {
	sim   *des.Sim
	p     Params
	osts  []*des.Server
	stats Stats
}

// New creates a file system on sim; it panics on invalid params.
func New(sim *des.Sim, p Params) *FS {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	fs := &FS{sim: sim, p: p, osts: make([]*des.Server, p.NumOSTs)}
	for i := range fs.osts {
		fs.osts[i] = des.NewServer(sim, p.OSTChannels)
	}
	return fs
}

// Params returns the file system's configuration.
func (fs *FS) Params() Params { return fs.p }

// Stats returns a snapshot of the traffic counters.
func (fs *FS) Stats() Stats { return fs.stats }

// OSTFor returns the OST index file fileID is stored on.
func (fs *FS) OSTFor(fileID int) int {
	if fileID < 0 {
		fileID = -fileID
	}
	return fileID % fs.p.NumOSTs
}

// effBandwidth returns the service bandwidth an OST grants a new request
// given its instantaneous load. The stream rate is the lesser of the OST
// and client NIC rates; past the saturation depth the whole delivered
// stream degrades (seek and metadata thrash affect every byte served, not
// just the OST-side ceiling).
func (fs *FS) effBandwidth(ost *des.Server) float64 {
	bw := fs.p.OSTBandwidth
	if fs.p.ClientBandwidth < bw {
		bw = fs.p.ClientBandwidth
	}
	if over := ost.InFlight - fs.p.SaturationInFlight; over > 0 {
		bw = bw / (1 + fs.p.Interference*float64(over)/float64(fs.p.SaturationInFlight))
	}
	return bw
}

// Open charges a file-open (metadata) operation and fires done at the
// completion instant.
func (fs *FS) Open(fileID int, done func(t float64)) {
	fs.stats.Opens++
	ost := fs.osts[fs.OSTFor(fileID)]
	ost.Submit(fs.p.OpenLatency, func(_, end float64) {
		if done != nil {
			done(end)
		}
	})
}

// ReadSequential charges a streaming read of bytes from fileID — the preload
// access pattern — and fires done at completion.
func (fs *FS) ReadSequential(fileID int, bytes float64, done func(t float64)) {
	fs.read(fileID, bytes, 0, done)
}

// ReadRandom charges a random intra-file read (one seek plus the transfer) —
// the naive per-sample access pattern — and fires done at completion.
func (fs *FS) ReadRandom(fileID int, bytes float64, done func(t float64)) {
	fs.read(fileID, bytes, fs.p.SeekLatency, done)
}

func (fs *FS) read(fileID int, bytes, extraLatency float64, done func(t float64)) {
	if bytes < 0 {
		panic(fmt.Sprintf("pfs: negative read size %v", bytes))
	}
	fs.stats.Reads++
	fs.stats.BytesRead += int64(bytes)
	ost := fs.osts[fs.OSTFor(fileID)]
	dur := extraLatency + bytes/fs.effBandwidth(ost)
	ost.Submit(dur, func(_, end float64) {
		if done != nil {
			done(end)
		}
	})
}

// InFlight returns the current total in-flight requests across all OSTs,
// for contention assertions in tests.
func (fs *FS) InFlight() int {
	total := 0
	for _, o := range fs.osts {
		total += o.InFlight
	}
	return total
}
