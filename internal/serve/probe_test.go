package serve

import (
	"testing"
	"time"

	"repro/internal/tensor"
)

// spinModel burns a deterministic amount of CPU per pass and per row,
// so the probe's fitted constants have a known ground truth.
type spinModel struct {
	passCost time.Duration
	rowCost  time.Duration
}

func (m *spinModel) Dims() map[string]Dims {
	return map[string]Dims{MethodPredict: {In: 3, Out: 2}}
}

func (m *spinModel) Run(method string, x *tensor.Matrix) (*tensor.Matrix, error) {
	spin(m.passCost + time.Duration(x.Rows)*m.rowCost)
	return tensor.New(x.Rows, 2), nil
}

// spin busy-waits (sleeping would vanish from wall-clock minima under
// timer coalescing far less predictably than spinning does).
func spin(d time.Duration) {
	for start := time.Now(); time.Since(start) < d; {
	}
}

func TestCostProbeRecoversKnownCosts(t *testing.T) {
	m := &spinModel{passCost: 400 * time.Microsecond, rowCost: 30 * time.Microsecond}
	res, err := CostProbe(m, MethodPredict, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodPredict || res.Passes < 2*probeMinReps {
		t.Fatalf("unexpected probe bookkeeping: %+v", res)
	}
	// Loose windows: the probe also pays real allocation/copy cost on
	// top of the synthetic spin, so it may only overshoot.
	if got, want := res.PassSec, m.passCost.Seconds(); got < 0.5*want || got > 3*want {
		t.Fatalf("PassSec = %v, want ~%v", got, want)
	}
	if got, want := res.RowSec, m.rowCost.Seconds(); got < 0.5*want || got > 3*want {
		t.Fatalf("RowSec = %v, want ~%v", got, want)
	}
	// The affine model must reproduce the timed endpoints.
	if c := res.Cost(1); c <= 0 {
		t.Fatalf("Cost(1) = %v", c)
	}
	if res.Cost(32) <= res.Cost(1) {
		t.Fatal("cost must grow with batch size")
	}
}

func TestCostProbeErrors(t *testing.T) {
	m := &spinModel{}
	if _, err := CostProbe(m, "nope", 32); err == nil {
		t.Fatal("unknown method must fail")
	}
	if _, err := CostProbe(m, MethodPredict, 1); err == nil {
		t.Fatal("maxBatch < 2 must fail")
	}
}
