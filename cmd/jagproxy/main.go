// Command jagproxy is the fleet front door: a load balancer over N
// jagserve backends, scaling the serving tier from one process to a
// replica fleet the way the paper strong-scales training — once one
// process runs as fast as the hardware allows, throughput only grows by
// adding replicas and routing well across them.
//
// Each backend is probed actively (GET /healthz every -health-interval;
// -fail-after consecutive failures drop it, -recover-after consecutive
// successes reinstate it) and watched passively (transport errors and
// 5xx trip a circuit breaker after -breaker-fails consecutive failures
// or an -error-rate fraction of the recent window). Routing is weighted
// least-loaded using each backend's probed capacity — jagserve -probe
// publishes its CostProbe-derived sustainable rows/s as capacity_qps on
// the stats route, which the proxy refreshes every -capacity-interval —
// falling back to power-of-two-choices on in-flight counts until every
// backend reports one.
//
// A failed attempt (connect error, reply that died mid-body, or a
// retryable 429/502/503/504) is retried on a backend the request has
// not tried yet, up to -retries extra attempts. Interactive-lane
// requests (no X-Priority header, or "interactive") additionally hedge:
// if the first backend has not answered within -hedge-after, a second
// race starts and the first full reply wins. Bulk requests never hedge.
// -rate enables per-client token-bucket rate limiting with graceful
// 429 + Retry-After replies.
//
// Endpoints mirror a single jagserve, so clients need no changes:
//
//	POST /v1/models/{name}/{method}  forwarded with retries/hedging
//	GET  /v1/models, .../stats       forwarded to one healthy backend
//	GET  /healthz                    the proxy's fleet view (per-backend health)
//	GET  /metrics                    jag_proxy_* Prometheus exposition
//
// Every request carries an X-Request-Id (caller-supplied IDs propagate
// to the chosen backend and back), and the relayed response names the
// serving replica in X-Jag-Backend. docs/FLEET.md is the operator
// guide, including capacity planning with perfmodel.FleetScenario.
//
// Usage:
//
//	jagserve -addr 127.0.0.1:8081 -models jag=ckpts/jag.ckpt &
//	jagserve -addr 127.0.0.1:8082 -models jag=ckpts/jag.ckpt &
//	jagproxy -addr :8090 \
//	    -backend http://127.0.0.1:8081 -backend http://127.0.0.1:8082
//	curl -d '{"input":[0.5,0.5,0.5,0.5,0.5]}' localhost:8090/v1/models/jag/predict
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/proxy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jagproxy: ")
	addr := flag.String("addr", ":8090", "HTTP listen address")
	var backends []string
	flag.Func("backend", "backend base URL such as http://127.0.0.1:8081; repeatable or comma-separated", func(v string) error {
		for _, u := range strings.Split(v, ",") {
			if u = strings.TrimSpace(u); u != "" {
				backends = append(backends, u)
			}
		}
		return nil
	})
	healthInterval := flag.Duration("health-interval", time.Second, "active /healthz probe period per backend")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "timeout for one health probe or capacity refresh")
	failAfter := flag.Int("fail-after", 2, "consecutive probe failures before a backend is dropped")
	recoverAfter := flag.Int("recover-after", 2, "consecutive probe successes before a dropped backend is reinstated")
	breakerFails := flag.Int("breaker-fails", 3, "consecutive forward failures (transport error or 5xx) tripping the passive breaker")
	errorRate := flag.Float64("error-rate", 0.5, "failure fraction of the recent-forwards window tripping the breaker")
	capacityInterval := flag.Duration("capacity-interval", 15*time.Second, "period between capacity_qps refreshes from backend stats routes")
	capacityModel := flag.String("capacity-model", "", "model whose capacity_qps weights routing (empty: each backend's first model)")
	retries := flag.Int("retries", 2, "extra attempts (retries and hedges combined) after the first, each on an untried backend")
	hedgeAfter := flag.Duration("hedge-after", 0, "race a second backend when an interactive request is unanswered after this long (0 disables; bulk never hedges)")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "timeout for one backend attempt (0: only the client's own deadline)")
	rate := flag.Float64("rate", 0, "per-client token-bucket rate limit on call routes, requests/s (0 disables)")
	burst := flag.Int("burst", 0, "rate-limit bucket size (0: max(1, ceil(rate)))")
	maxBody := flag.Int64("max-body", 64<<20, "max call request body bytes (413 beyond)")
	logFormat := flag.String("log-format", "", "structured access log on stderr: \"text\" or \"json\" (empty disables)")
	flag.Parse()

	if len(backends) == 0 {
		log.Fatal("need at least one -backend URL")
	}
	var accessLog *slog.Logger
	switch *logFormat {
	case "":
	case "text":
		accessLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		accessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		log.Fatalf("-log-format %q: want \"text\" or \"json\"", *logFormat)
	}

	p, err := proxy.New(backends, proxy.Config{
		HealthInterval:   *healthInterval,
		ProbeTimeout:     *probeTimeout,
		FailAfter:        *failAfter,
		RecoverAfter:     *recoverAfter,
		BreakerFails:     *breakerFails,
		ErrorRate:        *errorRate,
		CapacityInterval: *capacityInterval,
		CapacityModel:    *capacityModel,
		MaxRetries:       *retries,
		HedgeDelay:       *hedgeAfter,
		AttemptTimeout:   *attemptTimeout,
		RatePerSec:       *rate,
		Burst:            *burst,
		MaxBodyBytes:     *maxBody,
		AccessLog:        accessLog,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Start(ctx)

	// Listen before logging so "-addr :0" reports the real bound port,
	// same as jagserve.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: p}
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down: draining in-flight requests")
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = hs.Shutdown(sctx)
		cancel() // stop probing once no more traffic will be routed
		close(done)
	}()

	healthy := 0
	for _, b := range p.Backends() {
		if b.Healthy() {
			healthy++
		}
	}
	log.Printf("fronting %d backend(s) (%d healthy after first probe) on %s",
		len(p.Backends()), healthy, ln.Addr())
	for _, b := range p.Backends() {
		state := "down"
		if b.Healthy() {
			state = "up"
		}
		detail := ""
		if qps := b.CapacityQPS(); qps > 0 {
			detail = fmt.Sprintf(", capacity %.0f rows/s", qps)
		}
		log.Printf("backend %s: %s%s", b.BaseURL(), state, detail)
	}
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
