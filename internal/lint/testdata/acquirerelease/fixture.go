// Package fixture seeds acquirerelease violations and their corrected
// forms. The stub Registry mirrors serve.Registry's pin protocol: a
// release func in the results that must run on every path.
package fixture

// Server stands in for serve.Server.
type Server struct{ name string }

// Registry stands in for serve.Registry.
type Registry struct{}

// Acquire mirrors serve.Registry.Acquire.
func (r *Registry) Acquire(name string) (*Server, func(), bool) {
	return &Server{name}, func() {}, true
}

// AcquireDefault mirrors serve.Registry.AcquireDefault.
func (r *Registry) AcquireDefault() (string, *Server, func(), bool) {
	return "default", &Server{}, func() {}, true
}

func use(*Server) {}

// --- violations --------------------------------------------------------

func discarded(reg *Registry) {
	s, _, ok := reg.Acquire("m") // want "release func of reg.Acquire is discarded"
	if !ok {
		return
	}
	use(s)
}

func discardedDefault(reg *Registry) {
	_, s, _, _ := reg.AcquireDefault() // want "release func of reg.AcquireDefault is discarded"
	use(s)
}

func neverCalled(reg *Registry) {
	s, release, ok := reg.Acquire("m") // want "release func of reg.Acquire is never called"
	if !ok {
		return
	}
	use(s)
	_ = release
}

func earlyReturn(reg *Registry, cond bool) {
	s, release, ok := reg.Acquire("m")
	if !ok {
		return
	}
	if cond {
		return // skips the release below
	}
	use(s)
	release() // want "only called after a possible return"
}

// --- corrected forms (no diagnostics) ----------------------------------

func deferred(reg *Registry) {
	s, release, ok := reg.Acquire("m")
	if !ok {
		return
	}
	defer release()
	use(s)
}

func deferredDefault(reg *Registry) {
	_, s, release, ok := reg.AcquireDefault()
	if !ok {
		return
	}
	defer release()
	use(s)
}

// directNoBranches releases without defer, but no return can intervene.
func directNoBranches(reg *Registry) {
	s, release, ok := reg.Acquire("m")
	if ok {
		use(s)
	}
	release()
}

// handoff moves ownership: the callee is responsible for releasing.
func handoff(reg *Registry, done func(func())) {
	_, release, ok := reg.Acquire("m")
	if !ok {
		return
	}
	done(release)
}

// suppressed documents an intentional leak for the drain-deadline test.
func suppressed(reg *Registry) {
	s, _, _ := reg.Acquire("m") // lint:ignore acquirerelease deliberate leak to exercise ForcedCloses
	use(s)
}
