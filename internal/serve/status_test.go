package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// These tests pin the typed-error contract jagproxy's retry loop builds
// on: whole-request failures from Client.Call and the GET helpers must
// surface as *StatusError with the right Code and Retryable verdict,
// and a shedding backend must keep row errors aligned with the request
// rows rather than escalating to a whole-request failure.

// TestClientStatusErrorTyped checks that non-2xx replies come back as
// *StatusError reachable through errors.As, carrying the status, the
// Retry-After hint, and the right retryability class.
func TestClientStatusErrorTyped(t *testing.T) {
	ctx := context.Background()

	// A backpressuring reply — bare 503 with a Retry-After hint, no
	// JSON body — is retryable and keeps the hint.
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer shed.Close()
	_, _, err := NewClient(shed.URL).Call(ctx, "m", MethodPredict, [][]float32{{0.5}})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("503 reply error = %v, want a *StatusError in the chain", err)
	}
	if se.Code != http.StatusServiceUnavailable || se.RetryAfter != 2*time.Second {
		t.Fatalf("typed 503 = %+v, want Code 503 RetryAfter 2s", se)
	}
	if !se.Retryable() {
		t.Error("503 must be retryable")
	}

	// A hard 4xx from the real server — unknown model — is typed too,
	// but non-retryable: every replica serves the same model set.
	ts, _ := newV1TestServer(t)
	_, _, err = NewClient(ts.URL).Call(ctx, "ghost", MethodPredict, [][]float32{testInput(0)})
	se = nil
	if !errors.As(err, &se) {
		t.Fatalf("unknown-model error = %v, want a *StatusError in the chain", err)
	}
	if se.Code != http.StatusNotFound || se.Retryable() {
		t.Fatalf("typed 404 = %+v, want non-retryable Code 404", se)
	}
	if se.Detail == "" {
		t.Error("404 from the real server lost its error detail")
	}

	// The GET helpers share the typed path.
	if _, err := NewClient(ts.URL).Stats(ctx, "ghost"); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("Stats unknown-model error = %v, want typed 404", err)
	}
}

// TestClientMidBodyDropRetryable kills the connection partway through
// the reply on both transports. The client must fail with a retryable
// 502 StatusError — the request may never have reached a forward pass,
// so a retry loop is entitled to try another replica.
func TestClientMidBodyDropRetryable(t *testing.T) {
	ctx := context.Background()
	for name, tc := range map[string]struct {
		binary  bool
		handler http.HandlerFunc
	}{
		// A tensor frame whose header promises more floats than the
		// connection delivers.
		"binary": {true, func(w http.ResponseWriter, r *http.Request) {
			hdr := make([]byte, frameHeader)
			copy(hdr, frameMagic)
			binary.LittleEndian.PutUint32(hdr[4:], frameVersion)
			binary.LittleEndian.PutUint32(hdr[8:], 1)
			binary.LittleEndian.PutUint32(hdr[12:], 8)
			w.Header().Set("Content-Type", ContentTypeTensor)
			_, _ = w.Write(hdr) // promised 8 floats never arrive
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		}},
		// A chunked JSON reply aborted before the body completes.
		"json": {false, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"outputs":[[0.1,`))
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		}},
	} {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(tc.handler)
			defer ts.Close()
			c := NewClient(ts.URL)
			c.Binary = tc.binary
			_, _, err := c.Call(ctx, "m", MethodPredict, [][]float32{{0.5}})
			var se *StatusError
			if !errors.As(err, &se) {
				t.Fatalf("mid-body drop error = %v, want a *StatusError", err)
			}
			if se.Code != http.StatusBadGateway || !se.Retryable() {
				t.Fatalf("mid-body drop = %+v, want retryable 502", se)
			}
		})
	}
}

// slowModel sleeps per pass so a tiny QueueDepth genuinely sheds under
// concurrent load. Sleeping (not spinning) keeps the test honest on a
// one-CPU host: requests pile up in the queue, not on the scheduler.
type slowModel struct{ pass time.Duration }

func (m slowModel) Dims() map[string]Dims {
	return map[string]Dims{MethodPredict: {In: 2, Out: 2}}
}

func (m slowModel) Run(method string, x *tensor.Matrix) (*tensor.Matrix, error) {
	time.Sleep(m.pass)
	y := tensor.New(x.Rows, 2)
	copy(y.Data, x.Data)
	return y, nil
}

// TestClientSheddingBackendRowErrors drives a concurrent burst at a
// real server with a one-deep queue. Shed rows must come back as
// aligned per-row 503s with err == nil — never a whole-request error,
// and never misaligned outputs — while at least one row still succeeds.
func TestClientSheddingBackendRowErrors(t *testing.T) {
	reg := NewRegistry()
	s := NewServer(slowModel{pass: 20 * time.Millisecond}, Config{
		MaxBatch:   1,
		MaxDelay:   time.Millisecond,
		QueueDepth: 1,
		Workers:    1,
	})
	if err := reg.Register("slow", s); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryHandler(reg, HandlerConfig{}))
	defer func() {
		ts.Close()
		reg.Close()
	}()

	const clients = 8
	inputs := [][]float32{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}}
	type result struct {
		outs    [][]float32
		rowErrs []*RowError
		err     error
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(ts.URL)
			c.DeadlineMs = 5000
			r := &results[i]
			r.outs, r.rowErrs, r.err = c.Call(context.Background(), "slow", MethodPredict, inputs)
		}(i)
	}
	wg.Wait()

	shedRows, okRows := 0, 0
	for i, r := range results {
		// Shedding is row-granular backpressure, not a request verdict:
		// even a fully shed batch decodes into row errors with err==nil.
		if r.err != nil {
			t.Fatalf("client %d: whole-request error %v, want per-row errors", i, r.err)
		}
		if r.rowErrs != nil && len(r.rowErrs) != len(inputs) {
			t.Fatalf("client %d: %d row errors for %d inputs, alignment lost", i, len(r.rowErrs), len(inputs))
		}
		for j := range inputs {
			var re *RowError
			if r.rowErrs != nil {
				re = r.rowErrs[j]
			}
			switch {
			case re == nil:
				okRows++
				if j >= len(r.outs) || len(r.outs[j]) != 2 {
					t.Fatalf("client %d row %d: succeeded without an aligned output", i, j)
				}
			case re.Status == http.StatusServiceUnavailable:
				shedRows++
				if !RetryableStatus(re.Status) {
					t.Fatalf("shed row status %d not retryable", re.Status)
				}
			default:
				t.Fatalf("client %d row %d: unexpected row error %+v", i, j, re)
			}
		}
	}
	if shedRows == 0 {
		t.Fatalf("a %d-client burst at a QueueDepth-1 server shed nothing (ok=%d)", clients, okRows)
	}
	if okRows == 0 {
		t.Fatal("every row shed; the server served nothing")
	}
}
