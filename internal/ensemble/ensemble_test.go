package ensemble

import (
	"testing"
	"time"

	"repro/internal/jag"
	"repro/internal/reader"
)

func TestRunWritesReadableBundles(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Config{
		Geometry:       jag.Tiny8,
		Samples:        25,
		SamplesPerFile: 10,
		OutDir:         dir,
		Workers:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 3 {
		t.Fatalf("wrote %d files, want 3 (10+10+5)", len(res.Paths))
	}
	ds, err := reader.OpenBundles(res.Paths)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Len() != 25 || ds.Dim() != jag.Tiny8.SampleDim() {
		t.Fatalf("dataset %dx%d", ds.Len(), ds.Dim())
	}
	// Content matches a direct simulation of the same plan point.
	dst := make([]float32, ds.Dim())
	if err := ds.Sample(17, dst); err != nil {
		t.Fatal(err)
	}
	want := jag.SimulateAt(jag.Tiny8, 17).Flatten()
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("sample 17 differs at %d", i)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	gen := func(workers int) []float32 {
		dir := t.TempDir()
		res, err := Run(Config{Geometry: jag.Tiny8, Samples: 20, SamplesPerFile: 5, OutDir: dir, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ds, err := reader.OpenBundles(res.Paths)
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		dst := make([]float32, ds.Dim())
		if err := ds.Sample(13, dst); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), dst...)
	}
	a, b := gen(1), gen(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("worker count changed output bytes")
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Geometry: jag.Tiny8, Samples: 0, SamplesPerFile: 5, OutDir: t.TempDir()}); err == nil {
		t.Fatal("0 samples must error")
	}
	if _, err := Run(Config{Geometry: jag.Tiny8, Samples: 5, SamplesPerFile: 5}); err == nil {
		t.Fatal("missing out dir must error")
	}
	bad := Config{Geometry: jag.Config{}, Samples: 5, SamplesPerFile: 5, OutDir: t.TempDir()}
	if _, err := Run(bad); err == nil {
		t.Fatal("invalid geometry must error")
	}
}

func TestTaskOverheadSlowsCampaign(t *testing.T) {
	base := Config{Geometry: jag.Tiny8, Samples: 8, SamplesPerFile: 2, OutDir: t.TempDir(), Workers: 1}
	fast, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	slowCfg := base
	slowCfg.OutDir = t.TempDir()
	slowCfg.TaskOverhead = 30 * time.Millisecond
	slow, err := Run(slowCfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Elapsed < fast.Elapsed+100*time.Millisecond {
		t.Fatalf("scheduler overhead not visible: %v vs %v", slow.Elapsed, fast.Elapsed)
	}
}

func TestGenerateInMemoryMatchesPlan(t *testing.T) {
	recs := GenerateInMemory(jag.Tiny8, 100, 12)
	if len(recs) != 12 {
		t.Fatalf("got %d records", len(recs))
	}
	want := jag.SimulateAt(jag.Tiny8, 105).Flatten()
	for i := range want {
		if recs[5][i] != want[i] {
			t.Fatal("offset handling wrong")
		}
	}
}
