// Command jagserve serves surrogate predictions over HTTP from a
// checkpoint produced by cmd/ltfbtrain — the deployment step of the
// paper's workflow, where the trained generative model stands in for
// the JAG simulator. Concurrent requests are coalesced by the
// internal/serve micro-batching queue and answered by a pool of model
// replicas, optionally ensemble-averaged across the top-k tournament
// checkpoints.
//
// Endpoints:
//
//	POST /predict  {"input":[5 floats]} or {"inputs":[[...],...]}
//	               (+ "scalars_only":true to drop image pixels)
//	GET  /healthz  liveness + pool shape
//	GET  /stats    latency / batch-occupancy / cache counters
//
// Usage:
//
//	ltfbtrain -trainers 4 -checkpoint model.ckpt -top 2
//	jagserve -checkpoint model.ckpt -replicas 4            # throughput: 4 copies
//	jagserve -checkpoint model.ckpt,model.2.ckpt -ensemble # quality: top-2 average
//	curl -d '{"input":[0.5,0.5,0.5,0.5,0.5],"scalars_only":true}' localhost:8080/predict
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jagserve: ")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	ckpt := flag.String("checkpoint", "", "checkpoint path(s), comma-separated; overrides the spec's list")
	specPath := flag.String("spec", "", "model spec path (default <first checkpoint>.spec.json)")
	replicas := flag.Int("replicas", 1, "model replicas (raised to the checkpoint count if lower; ignored with -ensemble, which uses one per checkpoint)")
	ensemble := flag.Bool("ensemble", false, "average predictions across the checkpoints instead of round-robin")
	maxBatch := flag.Int("max-batch", 64, "max requests coalesced into one forward pass")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "max wait before flushing a partial batch")
	queueDepth := flag.Int("queue-depth", 0, "max in-flight requests before 503 (0 = 4*max-batch)")
	cacheSize := flag.Int("cache-size", 1024, "LRU response-cache entries (0 disables)")
	flag.Parse()

	var paths []string
	for _, p := range strings.Split(*ckpt, ",") {
		if p = strings.TrimSpace(p); p != "" {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 && *specPath == "" {
		log.Fatal("need -checkpoint or -spec")
	}
	sp := *specPath
	if sp == "" {
		sp = serve.SpecPath(paths[0])
	}
	spec, err := serve.LoadSpec(sp)
	if err != nil {
		log.Fatal(err)
	}
	if len(paths) == 0 {
		paths = spec.Checkpoints
	}
	if len(paths) == 0 {
		log.Fatalf("spec %s lists no checkpoints and none given via -checkpoint", sp)
	}

	pool, err := serve.NewPoolFromCheckpoints(spec.Model, paths, *replicas, *ensemble)
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.NewServer(pool, serve.Config{
		MaxBatch:   *maxBatch,
		MaxDelay:   *maxDelay,
		QueueDepth: *queueDepth,
		CacheSize:  *cacheSize,
	})
	defer srv.Close()

	log.Printf("serving %d replica(s) of %d checkpoint(s) (ensemble=%v, output dim %d) on %s",
		pool.Replicas(), len(paths), *ensemble, srv.OutputDim(), *addr)
	if err := http.ListenAndServe(*addr, serve.NewHandler(srv)); err != nil {
		log.Fatal(err)
	}
}
