// LTFB scaling example: runs the tournament algorithm with growing trainer
// populations on a partitioned corpus (Figure 12's experiment) and compares
// the final population against partitioned K-independent training
// (Figure 13's experiment), all with real training over the in-process MPI
// layer.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	base := core.Figure12Config()
	base.Rounds = 6 // shortened for the example; cmd/figures runs the full schedule

	fmt.Println("figure 12 experiment: LTFB quality vs trainer count (equal per-trainer steps)")
	tab, err := core.Figure12([]int{1, 2, 4}, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.Render())
	fmt.Println("\n(values above 1 mean the population-best model beats the single-trainer baseline)")

	fmt.Println("\nfigure 13 experiment: LTFB vs partitioned K-independent training")
	cfg13 := core.Figure13Config()
	cfg13.Rounds = 8 // shortened for the example; cmd/figures runs the full schedule
	tab, err = core.Figure13([]int{2, 4}, cfg13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.Render())
	fmt.Println("\n(advantage above 1 means LTFB generalizes better than K-independent)")

	fmt.Println("\nmodelled strong scaling at paper scale (Figure 11):")
	fmt.Print(core.Figure11Table().Render())
	fmt.Println()
	fmt.Print(core.HeadlineTable().Render())
}
