package comm

import (
	"fmt"
	"sort"
	"sync"
)

// coord is the shared coordination structure behind barriers and splits —
// the role MPI's shared-memory collectives play inside a node. One coord is
// shared by every rank handle of a communicator.
type coord struct {
	mu           sync.Mutex
	cond         *sync.Cond
	size         int
	depositCount int
	readCount    int
	slots        []any
}

func newCoord(size int) *coord {
	c := &coord{size: size, slots: make([]any, size)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// exchange deposits val at the caller's slot, waits for every rank to
// deposit, and returns a snapshot of all slots. It is a reusable all-to-all
// rendezvous: the round resets after every rank has read its snapshot.
func (c *coord) exchange(rank int, val any) []any {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.depositCount == c.size {
		c.cond.Wait()
	}
	c.slots[rank] = val
	c.depositCount++
	if c.depositCount == c.size {
		c.cond.Broadcast()
	}
	for c.depositCount != c.size {
		c.cond.Wait()
	}
	snap := make([]any, c.size)
	copy(snap, c.slots)
	c.readCount++
	if c.readCount == c.size {
		c.depositCount = 0
		c.readCount = 0
		c.cond.Broadcast()
	}
	return snap
}

// coordRegistry hands out one coord per (world, communicator key) so that
// all rank handles of a split communicator share state.
var (
	coordRegMu sync.Mutex
	coordReg   = map[*World]map[string]*coord{}
)

func coordFor(w *World, key string, size int) *coord {
	coordRegMu.Lock()
	defer coordRegMu.Unlock()
	m, ok := coordReg[w]
	if !ok {
		m = map[string]*coord{}
		coordReg[w] = m
	}
	c, ok := m[key]
	if !ok {
		c = newCoord(size)
		m[key] = c
	}
	return c
}

// Barrier blocks until every rank of the communicator has entered it.
func (c *Comm) Barrier() {
	c.seq++
	c.coord.exchange(c.rank, nil)
}

// splitEntry is one rank's contribution to a Split.
type splitEntry struct {
	color, key, localRank int
}

// Split partitions the communicator into disjoint sub-communicators, one per
// distinct color, ordering ranks within each by (key, old rank) — the
// semantics of MPI_Comm_split. Every rank must call Split collectively; each
// receives the handle for its color's communicator. This is how LBANN carves
// the world into trainers (Figure 4).
func (c *Comm) Split(color, key int) *Comm {
	c.seq++
	entries := c.coord.exchange(c.rank, splitEntry{color: color, key: key, localRank: c.rank})
	var mine []splitEntry
	for _, e := range entries {
		se := e.(splitEntry)
		if se.color == color {
			mine = append(mine, se)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].localRank < mine[j].localRank
	})
	group := make([]int, len(mine))
	newRank := -1
	for i, se := range mine {
		group[i] = c.group[se.localRank]
		if se.localRank == c.rank {
			newRank = i
		}
	}
	key2 := fmt.Sprintf("split#%d:c%d:%v", c.seq, color, group)
	return &Comm{
		world: c.world,
		rank:  newRank,
		group: group,
		coord: coordFor(c.world, key2, len(group)),
	}
}

// segBounds returns the i-th of n contiguous ring segments of a length-m
// buffer; leading segments absorb the remainder.
func segBounds(m, n, i int) (lo, hi int) {
	base := m / n
	rem := m % n
	lo = i*base + min(i, rem)
	size := base
	if i < rem {
		size++
	}
	return lo, lo + size
}

// AllreduceSum replaces buf on every rank with the elementwise sum across
// ranks, using the bandwidth-optimal ring algorithm (reduce-scatter followed
// by allgather). The result is bitwise identical on every rank, which the
// data-parallel trainer relies on to keep model replicas in lockstep.
func (c *Comm) AllreduceSum(buf []float32) { c.allreduceRing(buf, opSum) }

// AllreduceMax replaces buf on every rank with the elementwise maximum.
func (c *Comm) AllreduceMax(buf []float32) { c.allreduceRing(buf, opMax) }

type reduceOp int

const (
	opSum reduceOp = iota
	opMax
)

func (c *Comm) allreduceRing(buf []float32, op reduceOp) {
	n := c.Size()
	if n == 1 {
		return
	}
	base := c.nextCollTag()
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	m := len(buf)

	// Reduce-scatter: after step s, segment (r-s-1 mod n) on rank r holds
	// partial sums of s+2 contributions; after n-1 steps rank r owns the
	// fully reduced segment (r+1 mod n).
	for s := 0; s < n-1; s++ {
		sendSeg := ((c.rank-s)%n + n) % n
		recvSeg := ((c.rank-s-1)%n + n) % n
		lo, hi := segBounds(m, n, sendSeg)
		c.sendRaw(right, base-s, append([]float32(nil), buf[lo:hi]...), nil)
		in := c.recvRaw(left, base-s).floats
		lo, hi = segBounds(m, n, recvSeg)
		dst := buf[lo:hi]
		switch op {
		case opSum:
			for i := range dst {
				dst[i] += in[i]
			}
		case opMax:
			for i := range dst {
				if in[i] > dst[i] {
					dst[i] = in[i]
				}
			}
		}
	}
	// Allgather: circulate the reduced segments.
	for s := 0; s < n-1; s++ {
		sendSeg := ((c.rank+1-s)%n + n) % n
		recvSeg := ((c.rank-s)%n + n) % n
		lo, hi := segBounds(m, n, sendSeg)
		c.sendRaw(right, base-(n-1)-s, append([]float32(nil), buf[lo:hi]...), nil)
		in := c.recvRaw(left, base-(n-1)-s).floats
		lo, hi = segBounds(m, n, recvSeg)
		copy(buf[lo:hi], in)
	}
}

// AllreduceSumNaive is the gather-at-root + broadcast reference
// implementation kept for the allreduce ablation bench.
func (c *Comm) AllreduceSumNaive(buf []float32) {
	n := c.Size()
	if n == 1 {
		return
	}
	base := c.nextCollTag()
	if c.rank == 0 {
		for src := 1; src < n; src++ {
			in := c.recvRaw(src, base).floats
			for i := range buf {
				buf[i] += in[i]
			}
		}
	} else {
		c.sendRaw(0, base, append([]float32(nil), buf...), nil)
	}
	c.bcastWithTag(0, buf, base-1)
}

// Bcast overwrites buf on every rank with root's contents using a binomial
// tree, so latency grows as log₂(n).
func (c *Comm) Bcast(root int, buf []float32) {
	c.bcastWithTag(root, buf, c.nextCollTag())
}

func (c *Comm) bcastWithTag(root int, buf []float32, tag int) {
	n := c.Size()
	if n == 1 {
		return
	}
	rel := (c.rank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + root) % n
			in := c.recvRaw(src, tag).floats
			copy(buf, in)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (rel + mask + root) % n
			c.sendRaw(dst, tag, append([]float32(nil), buf...), nil)
		}
		mask >>= 1
	}
}

// BcastBytes overwrites buf on every rank with root's bytes via the same
// binomial tree; used to distribute a tournament winner inside a trainer.
func (c *Comm) BcastBytes(root int, buf []byte) {
	tag := c.nextCollTag()
	n := c.Size()
	if n == 1 {
		return
	}
	rel := (c.rank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + root) % n
			in := c.recvRaw(src, tag).bytes
			copy(buf, in)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (rel + mask + root) % n
			c.sendRaw(dst, tag, nil, append([]byte(nil), buf...))
		}
		mask >>= 1
	}
}

// Gather collects each rank's contribution at root, which receives them
// indexed by rank; other ranks receive nil.
func (c *Comm) Gather(root int, data []float32) [][]float32 {
	tag := c.nextCollTag()
	n := c.Size()
	if c.rank != root {
		c.sendRaw(root, tag, append([]float32(nil), data...), nil)
		return nil
	}
	out := make([][]float32, n)
	out[root] = append([]float32(nil), data...)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		out[r] = c.recvRaw(r, tag).floats
	}
	return out
}

// AllgatherFloat64 exchanges one float64 per rank and returns the full
// vector on every rank; used for tournament metric comparison.
func (c *Comm) AllgatherFloat64(v float64) []float64 {
	c.seq++
	vals := c.coord.exchange(c.rank, v)
	out := make([]float64, len(vals))
	for i, x := range vals {
		out[i] = x.(float64)
	}
	return out
}

// ReduceSum accumulates every rank's buf elementwise at root (other ranks'
// buffers are left untouched), using rank order for deterministic rounding.
func (c *Comm) ReduceSum(root int, buf []float32) {
	tag := c.nextCollTag()
	n := c.Size()
	if n == 1 {
		return
	}
	if c.rank != root {
		c.sendRaw(root, tag, append([]float32(nil), buf...), nil)
		return
	}
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		in := c.recvRaw(r, tag).floats
		for i := range buf {
			buf[i] += in[i]
		}
	}
}
