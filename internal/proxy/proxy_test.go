package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// fakeBackend is an httptest stand-in for one jagserve replica with a
// scriptable call handler and a healthz switch.
type fakeBackend struct {
	srv     *httptest.Server
	healthy atomic.Bool
	calls   atomic.Int64
	handler atomic.Value // func(w http.ResponseWriter, r *http.Request)
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	f := &fakeBackend{}
	f.healthy.Store(true)
	f.handler.Store(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"outputs":[[1]]}`)
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !f.healthy.Load() {
			http.Error(w, "closed", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/models/{name}/{method}", func(w http.ResponseWriter, r *http.Request) {
		f.calls.Add(1)
		f.handler.Load().(func(http.ResponseWriter, *http.Request))(w, r)
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"models":[{"name":"jag","ready":true,"methods":{}}]}`)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func newTestProxy(t *testing.T, cfg Config, backends ...*fakeBackend) (*Proxy, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.srv.URL
	}
	p, err := New(urls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return p, front
}

func postCall(t *testing.T, base string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/models/jag/predict",
		strings.NewReader(`{"inputs":[[0.5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func counterValue(p *Proxy, name string, labels metrics.Labels) uint64 {
	return p.m.Counter(name, "", labels).Value()
}

func TestPickWeightedLeastLoaded(t *testing.T) {
	b1, _ := newBackend("http://a:1", 4)
	b2, _ := newBackend("http://b:2", 4)
	p := &Proxy{backends: []*Backend{b1, b2}}
	// b1: high capacity, some load; b2: low capacity, same load. Score
	// (inflight+1)/capacity favors b1.
	b1.setCapacity(1000)
	b2.setCapacity(10)
	b1.inflight.Store(5)
	b2.inflight.Store(5)
	for i := 0; i < 10; i++ {
		if got := p.pick(map[*Backend]bool{}); got != b1 {
			t.Fatalf("pick chose %s, want high-capacity backend %s", got.Name(), b1.Name())
		}
	}
	// Load b1 far beyond its capacity advantage and the choice flips.
	b1.inflight.Store(10_000)
	if got := p.pick(map[*Backend]bool{}); got != b2 {
		t.Fatalf("pick chose %s under overload, want %s", got.Name(), b2.Name())
	}
	// Excluding the best leaves the other.
	if got := p.pick(map[*Backend]bool{b2: true}); got != b1 {
		t.Fatalf("pick with exclusion chose %v, want %s", got, b1.Name())
	}
}

func TestPickPowerOfTwoFallback(t *testing.T) {
	// No capacities: P2C on inflight. With a 0-load and a loaded backend
	// the 0-load one must win every draw that offers both, i.e. always
	// (two candidates means both are always compared).
	b1, _ := newBackend("http://a:1", 4)
	b2, _ := newBackend("http://b:2", 4)
	b2.inflight.Store(50)
	p := &Proxy{backends: []*Backend{b1, b2}}
	for i := 0; i < 20; i++ {
		if got := p.pick(map[*Backend]bool{}); got != b1 {
			t.Fatalf("P2C chose loaded backend %s", got.Name())
		}
	}
	// Unhealthy backends are not candidates while a healthy one remains.
	b1.healthy.Store(false)
	if got := p.pick(map[*Backend]bool{}); got != b2 {
		t.Fatalf("pick chose unhealthy backend")
	}
	// ...but with every backend down, routing falls back to untried ones
	// rather than failing outright.
	b2.healthy.Store(false)
	if got := p.pick(map[*Backend]bool{}); got == nil {
		t.Fatalf("pick returned nil with untried (if unhealthy) backends remaining")
	}
	if got := p.pick(map[*Backend]bool{b1: true, b2: true}); got != nil {
		t.Fatalf("pick fabricated a backend: %v", got)
	}
}

func TestActiveProbeDropAndReinstate(t *testing.T) {
	f := newFakeBackend(t)
	p, err := New([]string{f.srv.URL}, Config{FailAfter: 2, RecoverAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := p.Backends()[0]
	ctx := context.Background()

	p.probeSweep(ctx)
	if !b.Healthy() {
		t.Fatal("backend unhealthy after a passing probe")
	}
	f.healthy.Store(false)
	p.probeSweep(ctx)
	if !b.Healthy() {
		t.Fatal("one probe failure dropped the backend; FailAfter=2 requires two")
	}
	p.probeSweep(ctx)
	if b.Healthy() {
		t.Fatal("backend still healthy after FailAfter consecutive probe failures")
	}
	f.healthy.Store(true)
	p.probeSweep(ctx)
	if b.Healthy() {
		t.Fatal("one probe success reinstated the backend; RecoverAfter=2 requires two")
	}
	p.probeSweep(ctx)
	if !b.Healthy() {
		t.Fatal("backend not reinstated after RecoverAfter consecutive probe successes")
	}
	down := counterValue(p, "jag_proxy_health_transitions_total", metrics.Labels{"backend": b.Name(), "to": "down"})
	up := counterValue(p, "jag_proxy_health_transitions_total", metrics.Labels{"backend": b.Name(), "to": "up"})
	if down != 1 || up != 1 {
		t.Fatalf("transitions down=%d up=%d, want 1 and 1", down, up)
	}
}

func TestRetryOnRetryableStatus(t *testing.T) {
	bad := newFakeBackend(t)
	good := newFakeBackend(t)
	bad.handler.Store(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
	})
	// Pin routing order: give bad lower load... P2C with two candidates
	// compares both, so drive every request and require that all succeed
	// regardless of which backend each tries first.
	p, front := newTestProxy(t, Config{MaxRetries: 1, BreakerFails: 100}, bad, good)
	for i := 0; i < 8; i++ {
		resp := postCall(t, front.URL, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 via retry", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Jag-Backend"); got == "" || !strings.Contains(good.srv.URL, got) {
			t.Fatalf("request %d relayed from %q, want the good backend", i, got)
		}
	}
	if v := counterValue(p, "jag_proxy_retries_total", nil); v == 0 {
		t.Fatal("no retries counted despite a 503-ing backend in rotation")
	}
}

func TestPassiveBreakerTripsOnConsecutiveFailures(t *testing.T) {
	bad := newFakeBackend(t)
	good := newFakeBackend(t)
	bad.handler.Store(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	p, front := newTestProxy(t, Config{MaxRetries: 2, BreakerFails: 2}, bad, good)
	badB := p.Backends()[0]
	for i := 0; i < 12 && badB.Healthy(); i++ {
		postCall(t, front.URL, nil)
	}
	if badB.Healthy() {
		t.Fatal("passive breaker never tripped a backend failing every request")
	}
	// 500 is not a retryable status; the winning reply may legitimately
	// be the bad backend's when it was tried last. What matters is the
	// breaker took it out of rotation: traffic now flows only to good.
	before := bad.calls.Load()
	for i := 0; i < 5; i++ {
		resp := postCall(t, front.URL, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d after breaker isolated the bad backend", resp.StatusCode)
		}
	}
	if bad.calls.Load() != before {
		t.Fatal("tripped backend still receiving traffic")
	}
}

func TestHedgeInteractiveOnly(t *testing.T) {
	slow := newFakeBackend(t)
	fast := newFakeBackend(t)
	slow.handler.Store(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		fmt.Fprint(w, `{"outputs":[[1]]}`)
	})
	fast.handler.Store(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"outputs":[[2]]}`)
	})
	// Weight routing so the first pick is deterministic: the slow
	// backend advertises far more capacity, so least-loaded prefers it.
	p, front := newTestProxy(t, Config{HedgeDelay: 30 * time.Millisecond, MaxRetries: 1}, slow, fast)
	p.Backends()[0].setCapacity(1000)
	p.Backends()[1].setCapacity(1)

	start := time.Now()
	resp := postCall(t, front.URL, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if d := time.Since(start); d > 300*time.Millisecond {
		t.Fatalf("interactive request took %v; the hedge should have answered first", d)
	}
	if got := counterValue(p, "jag_proxy_hedges_total", nil); got != 1 {
		t.Fatalf("hedges_total = %d, want 1", got)
	}
	if got := counterValue(p, "jag_proxy_hedge_wins_total", nil); got != 1 {
		t.Fatalf("hedge_wins_total = %d, want 1", got)
	}

	// The bulk lane never hedges: the same slow first pick must run to
	// completion.
	start = time.Now()
	resp = postCall(t, front.URL, map[string]string{"X-Priority": "bulk"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk status %d", resp.StatusCode)
	}
	if d := time.Since(start); d < 300*time.Millisecond {
		t.Fatalf("bulk request answered in %v; it must not hedge off the slow backend", d)
	}
	if got := counterValue(p, "jag_proxy_hedges_total", nil); got != 1 {
		t.Fatalf("hedges_total = %d after bulk request, want still 1", got)
	}
}

func TestRateLimit429WithRetryAfter(t *testing.T) {
	f := newFakeBackend(t)
	p, front := newTestProxy(t, Config{RatePerSec: 0.5, Burst: 1}, f)
	if resp := postCall(t, front.URL, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp.StatusCode)
	}
	resp := postCall(t, front.URL, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 reply missing Retry-After")
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("429 body not the JSON error envelope: %v %q", err, body.Error)
	}
	if got := counterValue(p, "jag_proxy_rate_limited_total", nil); got != 1 {
		t.Fatalf("rate_limited_total = %d, want 1", got)
	}
	// GET routes are exempt: health checks and dashboards must not spend
	// the client's call budget.
	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under rate limit: %v %v", err, hresp.Status)
	}
	hresp.Body.Close()
}

func TestRequestIDPropagation(t *testing.T) {
	f := newFakeBackend(t)
	var seen atomic.Value
	f.handler.Store(func(w http.ResponseWriter, r *http.Request) {
		seen.Store(r.Header.Get("X-Request-Id"))
		fmt.Fprint(w, `{"outputs":[[1]]}`)
	})
	_, front := newTestProxy(t, Config{}, f)
	resp := postCall(t, front.URL, map[string]string{"X-Request-Id": "trace-me-42"})
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-42" {
		t.Fatalf("echoed request id %q, want trace-me-42", got)
	}
	if got, _ := seen.Load().(string); got != "trace-me-42" {
		t.Fatalf("backend saw request id %q, want trace-me-42", got)
	}
	// Without a caller ID the proxy mints one and still propagates it.
	resp = postCall(t, front.URL, nil)
	minted := resp.Header.Get("X-Request-Id")
	if minted == "" {
		t.Fatal("proxy did not mint a request id")
	}
	if got, _ := seen.Load().(string); got != minted {
		t.Fatalf("backend saw %q, proxy echoed %q", got, minted)
	}
}

func TestPassthroughAndFleetHealthz(t *testing.T) {
	f := newFakeBackend(t)
	p, front := newTestProxy(t, Config{}, f)
	resp, err := http.Get(front.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var models struct {
		Models []struct {
			Name string `json:"name"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models.Models) != 1 || models.Models[0].Name != "jag" {
		t.Fatalf("passthrough listing: %+v", models)
	}

	hresp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health FleetHealth
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Healthy != 1 {
		t.Fatalf("fleet health %+v, want ok/1", health)
	}

	// Every backend down: fleet /healthz degrades to 503 "down".
	p.Backends()[0].healthy.Store(false)
	hresp2, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp2.Body.Close()
	if hresp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-down healthz status %d, want 503", hresp2.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	f := newFakeBackend(t)
	_, front := newTestProxy(t, Config{}, f)
	postCall(t, front.URL, nil)
	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"jag_proxy_requests_total{",
		"jag_proxy_request_latency_seconds_bucket{",
		"jag_proxy_backend_healthy{",
		"jag_proxy_backend_inflight{",
		"jag_proxy_backend_capacity_qps{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
