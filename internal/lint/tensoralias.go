package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// TensorAlias flags the PR 2 bug class: passing one tensor as both an
// input and an output argument of a call. The ensemble in-place
// averaging bug corrupted a replica's cached activations exactly this
// way — the kernel read elements its own earlier iterations had already
// overwritten. A GEMM with c aliasing a or b is the canonical instance:
// tensor.Gemm writes c while still reading a and b.
//
// A call is reported when the destination tensor — by the tensor
// package's convention the first pointer-to-Matrix/Dense argument, or
// the method receiver — is passed again as a later argument (the same
// variable or the same field chain), unless the callee is alias-safe:
//
//   - elementwise kernels whose doc comment says so ("may alias" /
//     "in place"), or marked with a `// lint:inplace` comment — checked
//     when the callee is declared in the analyzed package;
//   - the tensor package's documented elementwise set (Add, Sub,
//     Hadamard, Apply, AddScaled, Scale, CopyFrom), whose dst-may-alias
//     contract is part of their API docs.
//
// Distinct variables that alias the same backing array are out of
// scope — that needs escape analysis; the analyzer catches the form the
// bug actually shipped with.
var TensorAlias = &Analyzer{
	Name: "tensoralias",
	Doc:  "one tensor passed as both input and output of a non-in-place call",
	Run:  runTensorAlias,
}

// aliasSafeNames are cross-package callees documented alias-safe: the
// tensor package's elementwise kernels iterate index-by-index with no
// cross-element reads.
var aliasSafeNames = map[string]bool{
	"Add":       true,
	"Sub":       true,
	"Hadamard":  true,
	"Apply":     true,
	"AddScaled": true,
	"Scale":     true,
	"CopyFrom":  true,
}

func runTensorAlias(pass *Pass) error {
	info := pass.TypesInfo
	safeLocal := localAliasSafeFuncs(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			if aliasSafeNames[fn.Name()] || safeLocal[fn] {
				return true
			}
			// Collect tensor-typed argument expressions, including a
			// method receiver (m.CopyInto(m) aliases too).
			args := make([]ast.Expr, 0, len(call.Args)+1)
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				args = append(args, sel.X)
			}
			args = append(args, call.Args...)
			var keys []string
			var exprs []ast.Expr
			for _, arg := range args {
				if !isTensorPtr(info.TypeOf(arg)) {
					continue
				}
				if key, ok := exprKey(info, arg); ok {
					keys = append(keys, key)
					exprs = append(exprs, arg)
				}
			}
			// By the tensor package's convention the first tensor
			// argument (or the receiver) is the destination; only a
			// later argument aliasing IT is the read-after-overwrite
			// bug. Two identical later arguments are plain shared
			// inputs — MatMul(c, a, a) squares a matrix legitimately.
			for j := 1; j < len(keys); j++ {
				if keys[j] == keys[0] {
					pass.Reportf(exprs[j].Pos(), "%s is passed to %s as both destination and input; the callee is not marked in-place (lint:inplace) and may read elements it already overwrote",
						exprString(exprs[j]), fn.Name())
					return true // one report per call
				}
			}
			return true
		})
	}
	return nil
}

// isTensorPtr reports whether t is a pointer to a struct named Matrix
// or Dense — the repo's tensor type and the name the paper-adjacent
// ecosystems (gonum, gorgonia) use for the same shape.
func isTensorPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return false
	}
	name := n.Obj().Name()
	return name == "Matrix" || name == "Dense"
}

// exprKey canonicalizes an argument expression for identity comparison:
// an identifier resolves to its object, a field chain to the root
// object plus the field path. Calls, indexing, and anything else with
// evaluation effects return !ok.
func exprKey(info *types.Info, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return "", false
		}
		return objKey(obj), true
	case *ast.SelectorExpr:
		base, ok := exprKey(info, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// objKey names a types.Object uniquely within the package.
func objKey(obj types.Object) string {
	return obj.Name() + "@" + strconv.Itoa(int(obj.Pos()))
}

// exprString renders the argument as it appears in source, for
// diagnostics (x, m.w).
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "tensor"
}

// localAliasSafeFuncs collects functions declared in this package whose
// doc comment opts them out: a lint:inplace marker or prose declaring
// the aliasing contract ("may alias", "in place", "in-place").
func localAliasSafeFuncs(pass *Pass) map[*types.Func]bool {
	safe := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			text := fd.Doc.Text()
			if !strings.Contains(text, "lint:inplace") &&
				!strings.Contains(text, "may alias") &&
				!strings.Contains(text, "in place") &&
				!strings.Contains(text, "in-place") {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				safe[fn] = true
			}
		}
	}
	return safe
}
