package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// numericGrad estimates dLoss/dparam by central differences for a scalar
// loss function of the whole network output.
func numericGrad(net *Network, x, target *tensor.Matrix, loss func(pred, target *tensor.Matrix) (float64, *tensor.Matrix), p *Param, idx int) float64 {
	const eps = 1e-3
	orig := p.W.Data[idx]
	p.W.Data[idx] = orig + eps
	up, _ := loss(net.Forward(x, false), target)
	p.W.Data[idx] = orig - eps
	down, _ := loss(net.Forward(x, false), target)
	p.W.Data[idx] = orig
	return (up - down) / (2 * eps)
}

func gradCheck(t *testing.T, net *Network, lossFn func(pred, target *tensor.Matrix) (float64, *tensor.Matrix), inDim, outDim int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	x := tensor.New(5, inDim)
	tensor.FillGaussian(x, rng, 0, 1)
	target := tensor.New(5, outDim)
	tensor.FillUniform(target, rng, 0.1, 0.9)

	net.ZeroGrad()
	pred := net.Forward(x, false)
	_, dy := lossFn(pred, target)
	net.Backward(dy)

	for _, p := range net.Params() {
		stride := len(p.W.Data)/5 + 1
		for idx := 0; idx < len(p.W.Data); idx += stride {
			want := numericGrad(net, x, target, lossFn, p, idx)
			got := float64(p.Grad.Data[idx])
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %s[%d]: analytic %g vs numeric %g", p.Name, idx, got, want)
			}
		}
	}
}

func TestGradientCheckLinearMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := MLP("lin", []int{4, 3}, ActNone, ActNone, rng)
	gradCheck(t, net, MSE, 4, 3, 1e-2)
}

func TestGradientCheckDeepTanhMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := MLP("deep", []int{6, 8, 8, 2}, ActTanh, ActNone, rng)
	gradCheck(t, net, MSE, 6, 2, 2e-2)
}

func TestGradientCheckLeakyReLUBCE(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := MLP("disc", []int{5, 8, 1}, ActLeakyReLU, ActNone, rng)
	gradCheck(t, net, BCEWithLogits, 5, 1, 2e-2)
}

func TestGradientCheckSigmoidHead(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := MLP("sig", []int{3, 6, 2}, ActReLU, ActSigmoid, rng)
	gradCheck(t, net, MSE, 3, 2, 2e-2)
}

func TestMLPDeterministicConstruction(t *testing.T) {
	a := MLP("a", []int{5, 7, 3}, ActReLU, ActNone, rand.New(rand.NewSource(9)))
	b := MLP("b", []int{5, 7, 3}, ActReLU, ActNone, rand.New(rand.NewSource(9)))
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !pa[i].W.Equal(pb[i].W) {
			t.Fatalf("same seed produced different weights at param %d", i)
		}
	}
	c := MLP("c", []int{5, 7, 3}, ActReLU, ActNone, rand.New(rand.NewSource(10)))
	if c.Params()[0].W.Equal(pa[0].W) {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	src := MLP("src", []int{4, 6, 2}, ActTanh, ActNone, rand.New(rand.NewSource(11)))
	dst := MLP("dst", []int{4, 6, 2}, ActTanh, ActNone, rand.New(rand.NewSource(12)))
	dst.CopyWeightsFrom(src)
	ps, pd := src.Params(), dst.Params()
	for i := range ps {
		if !ps[i].W.Equal(pd[i].W) {
			t.Fatalf("param %d not copied", i)
		}
	}
	// The copy must be deep: mutating dst must not touch src.
	pd[0].W.Data[0] += 1
	if ps[0].W.Data[0] == pd[0].W.Data[0] {
		t.Fatal("CopyWeightsFrom aliased storage")
	}
}

func TestCopyWeightsMismatchPanics(t *testing.T) {
	src := MLP("src", []int{4, 2}, ActNone, ActNone, rand.New(rand.NewSource(13)))
	dst := MLP("dst", []int{4, 6, 2}, ActNone, ActNone, rand.New(rand.NewSource(14)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched architectures")
		}
	}()
	dst.CopyWeightsFrom(src)
}

func TestWeightsRoundTrip(t *testing.T) {
	net := MLP("rt", []int{7, 9, 4}, ActLeakyReLU, ActTanh, rand.New(rand.NewSource(15)))
	buf := net.MarshalWeights()
	if len(buf) != net.WeightsSize() {
		t.Fatalf("WeightsSize %d != marshalled %d", net.WeightsSize(), len(buf))
	}
	clone := MLP("clone", []int{7, 9, 4}, ActLeakyReLU, ActTanh, rand.New(rand.NewSource(16)))
	if err := clone.UnmarshalWeights(buf); err != nil {
		t.Fatal(err)
	}
	po, pc := net.Params(), clone.Params()
	for i := range po {
		if !po[i].W.Equal(pc[i].W) {
			t.Fatalf("param %d differs after round trip", i)
		}
	}
}

func TestUnmarshalWeightsErrors(t *testing.T) {
	net := MLP("err", []int{3, 2}, ActNone, ActNone, rand.New(rand.NewSource(17)))
	buf := net.MarshalWeights()

	if err := net.UnmarshalWeights(buf[:3]); err == nil {
		t.Fatal("want error for truncated magic")
	}
	bad := append([]byte("XXXX"), buf[4:]...)
	if err := net.UnmarshalWeights(bad); err == nil {
		t.Fatal("want error for wrong magic")
	}
	if err := net.UnmarshalWeights(buf[:len(buf)-2]); err == nil {
		t.Fatal("want error for truncated data")
	}
	if err := net.UnmarshalWeights(append(buf, 0)); err == nil {
		t.Fatal("want error for trailing bytes")
	}
	other := MLP("other", []int{3, 5}, ActNone, ActNone, rand.New(rand.NewSource(18)))
	if err := other.UnmarshalWeights(buf); err == nil {
		t.Fatal("want error for shape mismatch")
	}
}

// Property: marshal→unmarshal is the identity for arbitrary architectures.
func TestWeightsRoundTripProperty(t *testing.T) {
	f := func(seed int64, d1, d2 uint8) bool {
		dims := []int{int(d1%7) + 1, int(d2%9) + 1, int(d1%3) + 1}
		a := MLP("a", dims, ActReLU, ActNone, rand.New(rand.NewSource(seed)))
		b := MLP("b", dims, ActReLU, ActNone, rand.New(rand.NewSource(seed+1)))
		if err := b.UnmarshalWeights(a.MarshalWeights()); err != nil {
			return false
		}
		pa, pb := a.Params(), b.Params()
		for i := range pa {
			if !pa[i].W.Equal(pb[i].W) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLossValuesKnownInputs(t *testing.T) {
	pred := tensor.FromSlice(1, 2, []float32{1, -1})
	target := tensor.FromSlice(1, 2, []float32{0, 1})
	mae, g := MAE(pred, target)
	if math.Abs(mae-1.5) > 1e-6 {
		t.Fatalf("MAE = %v, want 1.5", mae)
	}
	if g.Data[0] != 0.5 || g.Data[1] != -0.5 {
		t.Fatalf("MAE grad = %v", g.Data)
	}
	mse, g2 := MSE(pred, target)
	if math.Abs(mse-2.5) > 1e-6 {
		t.Fatalf("MSE = %v, want 2.5", mse)
	}
	if g2.Data[0] != 1 || g2.Data[1] != -2 {
		t.Fatalf("MSE grad = %v", g2.Data)
	}
	if v := MAEValue(pred, target); math.Abs(v-1.5) > 1e-6 {
		t.Fatalf("MAEValue = %v", v)
	}
}

func TestBCEWithLogitsStability(t *testing.T) {
	// Extreme logits must not overflow to Inf/NaN.
	logits := tensor.FromSlice(1, 2, []float32{100, -100})
	target := tensor.FromSlice(1, 2, []float32{1, 0})
	loss, g := BCEWithLogits(logits, target)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct predictions should have ~0 loss, got %v", loss)
	}
	if g.HasNaN() {
		t.Fatal("gradient has NaN")
	}
}

func TestBCEWithLogitsChanceLevel(t *testing.T) {
	logits := tensor.New(4, 1) // all zeros → p = 0.5
	target := tensor.FromSlice(4, 1, []float32{1, 0, 1, 0})
	loss, _ := BCEWithLogits(logits, target)
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("chance-level BCE = %v, want ln2", loss)
	}
}

func TestDropoutSemantics(t *testing.T) {
	d := &Dropout{Rate: 0.5, Rng: rand.New(rand.NewSource(19))}
	x := tensor.New(10, 10)
	x.Fill(1)
	// Evaluation is the identity and must not allocate a mask.
	y := d.Forward(x, false)
	if !y.Equal(x) {
		t.Fatal("eval-mode dropout must be identity")
	}
	dy := tensor.New(10, 10)
	dy.Fill(1)
	if !d.Backward(dy).Equal(dy) {
		t.Fatal("eval-mode backward must be identity")
	}
	// Training keeps survivors scaled by 1/(1-rate).
	y = d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Fatalf("dropout should both keep and drop: zeros=%d twos=%d", zeros, twos)
	}
	dx := d.Backward(dy)
	for i, v := range dx.Data {
		if y.Data[i] == 0 && v != 0 {
			t.Fatal("gradient must be gated by dropout mask")
		}
	}
}

func TestReinitializeChangesWeights(t *testing.T) {
	net := MLP("reinit", []int{4, 5, 2}, ActReLU, ActNone, rand.New(rand.NewSource(20)))
	before := net.MarshalWeights()
	Reinitialize(net, rand.New(rand.NewSource(21)), HeNormal)
	after := net.MarshalWeights()
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Reinitialize left weights unchanged")
	}
	for _, l := range net.Layers {
		if lin, ok := l.(*Linear); ok {
			if tensor.MaxAbs(lin.Bias.W) != 0 {
				t.Fatal("Reinitialize must zero biases")
			}
		}
	}
}

func TestNumParamsAndGradNorm(t *testing.T) {
	net := MLP("np", []int{3, 4, 2}, ActReLU, ActNone, rand.New(rand.NewSource(22)))
	want := 3*4 + 4 + 4*2 + 2
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	if net.GradNorm() != 0 {
		t.Fatal("fresh network must have zero grad norm")
	}
	x := tensor.New(2, 3)
	x.Fill(1)
	target := tensor.New(2, 2)
	pred := net.Forward(x, true)
	_, dy := MSE(pred, target)
	net.Backward(dy)
	if net.GradNorm() <= 0 {
		t.Fatal("grad norm must be positive after backward")
	}
	net.ZeroGrad()
	if net.GradNorm() != 0 {
		t.Fatal("ZeroGrad must clear gradients")
	}
}

func TestForwardTrainingFlagReachesLayers(t *testing.T) {
	d := &Dropout{Rate: 0.9, Rng: rand.New(rand.NewSource(23))}
	net := &Network{Name: "flag", Layers: []Layer{d}}
	x := tensor.New(4, 4)
	x.Fill(1)
	if !net.Forward(x, false).Equal(x) {
		t.Fatal("training=false must reach dropout")
	}
}

func BenchmarkMLPForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	net := MLP("bench", []int{64, 256, 256, 64}, ActLeakyReLU, ActNone, rng)
	x := tensor.New(128, 64)
	tensor.FillGaussian(x, rng, 0, 1)
	target := tensor.New(128, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		pred := net.Forward(x, true)
		_, dy := MSE(pred, target)
		net.Backward(dy)
	}
}
