// Command jaglint is the project's static-analysis multichecker: five
// analyzers (internal/lint) that enforce the serving stack's
// concurrency and metrics invariants — release-on-all-paths for
// Registry.Acquire pins, no copies of lock-free metric structs,
// compile-time-validated metric names, intact context chains, and no
// input/output tensor aliasing. docs/STATIC_ANALYSIS.md documents each
// invariant with bad/good examples and the suppression syntax.
//
// Usage:
//
//	jaglint [packages]      # default ./...
//	jaglint -list           # print the analyzer suite and exit
//	jaglint -only ctxflow,metricname ./internal/serve/...
//
// jaglint exits 1 when any analyzer reports a finding, 2 on usage or
// load errors — the same convention as go vet, so CI treats it as a
// gate. Suppress a single finding with an explanation:
//
//	s, release, _ := reg.Acquire(name) // lint:ignore acquirerelease release escapes via closure
//
// The driver typechecks from source against build-cache export data
// (`go list -export`), so it needs no network and no modules beyond
// the standard library.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jaglint [-list] [-only a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "jaglint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jaglint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jaglint:", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jaglint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "jaglint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
