package reader

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bundle"
)

func sliceDS(t *testing.T, n, dim int) *SliceDataset {
	t.Helper()
	recs := make([][]float32, n)
	for i := range recs {
		recs[i] = make([]float32, dim)
		for j := range recs[i] {
			recs[i][j] = float32(i*100 + j)
		}
	}
	ds, err := NewSliceDataset(dim, recs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func bundleDS(t *testing.T, filesSizes []int, dim int) *BundleDataset {
	t.Helper()
	dir := t.TempDir()
	var paths []string
	global := 0
	for f, size := range filesSizes {
		recs := make([][]float32, size)
		for i := range recs {
			recs[i] = make([]float32, dim)
			recs[i][0] = float32(global) // tag with the global index
			global++
		}
		p := filepath.Join(dir, fmt.Sprintf("f%03d.jagb", f))
		if err := bundle.Write(p, dim, recs); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	ds, err := OpenBundles(paths)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

func TestSliceDatasetBasics(t *testing.T) {
	ds := sliceDS(t, 5, 3)
	if ds.Len() != 5 || ds.Dim() != 3 {
		t.Fatalf("len/dim = %d/%d", ds.Len(), ds.Dim())
	}
	dst := make([]float32, 3)
	if err := ds.Sample(2, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 200 || dst[2] != 202 {
		t.Fatalf("sample 2 = %v", dst)
	}
	if err := ds.Sample(5, dst); err == nil {
		t.Fatal("out-of-range must error")
	}
	if err := ds.Sample(0, make([]float32, 2)); err == nil {
		t.Fatal("wrong width must error")
	}
	if _, err := NewSliceDataset(3, [][]float32{{1, 2}}); err == nil {
		t.Fatal("mismatched record width must error")
	}
}

func TestBundleDatasetGlobalIndexing(t *testing.T) {
	ds := bundleDS(t, []int{3, 5, 2}, 4)
	if ds.Len() != 10 || ds.NumFiles() != 3 {
		t.Fatalf("len=%d files=%d", ds.Len(), ds.NumFiles())
	}
	dst := make([]float32, 4)
	for i := 0; i < 10; i++ {
		if err := ds.Sample(i, dst); err != nil {
			t.Fatal(err)
		}
		if dst[0] != float32(i) {
			t.Fatalf("sample %d tagged %v", i, dst[0])
		}
	}
	cases := []struct{ global, file, local int }{{0, 0, 0}, {2, 0, 2}, {3, 1, 0}, {7, 1, 4}, {8, 2, 0}, {9, 2, 1}}
	for _, c := range cases {
		f, l := ds.FileOf(c.global)
		if f != c.file || l != c.local {
			t.Fatalf("FileOf(%d) = (%d,%d), want (%d,%d)", c.global, f, l, c.file, c.local)
		}
	}
	if got := ds.FileSamples(1); !reflect.DeepEqual(got, []int{3, 4, 5, 6, 7}) {
		t.Fatalf("FileSamples(1) = %v", got)
	}
	all, err := ds.ReadFile(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0][0] != 8 {
		t.Fatalf("ReadFile(2) = %v", all)
	}
}

func TestOpenBundlesErrors(t *testing.T) {
	if _, err := OpenBundles(nil); err == nil {
		t.Fatal("no paths must error")
	}
	dir := t.TempDir()
	a := filepath.Join(dir, "a")
	b := filepath.Join(dir, "b")
	bundle.Write(a, 3, [][]float32{{1, 2, 3}})
	bundle.Write(b, 4, [][]float32{{1, 2, 3, 4}})
	if _, err := OpenBundles([]string{a, b}); err == nil {
		t.Fatal("mismatched widths must error")
	}
	if _, err := OpenBundles([]string{a, filepath.Join(dir, "missing")}); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestSubset(t *testing.T) {
	ds := sliceDS(t, 10, 2)
	sub, err := NewSubset(ds, []int{7, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.Dim() != 2 {
		t.Fatalf("len/dim = %d/%d", sub.Len(), sub.Dim())
	}
	dst := make([]float32, 2)
	if err := sub.Sample(1, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 300 {
		t.Fatalf("subset sample 1 = %v, want base sample 3", dst)
	}
	if err := sub.Sample(3, dst); err == nil {
		t.Fatal("out-of-range must error")
	}
	if _, err := NewSubset(ds, []int{10}); err == nil {
		t.Fatal("invalid base index must error")
	}
}

func TestPartitionContiguousCoversDisjoint(t *testing.T) {
	f := func(nRaw, partsRaw uint8) bool {
		n := int(nRaw)
		parts := int(partsRaw%8) + 1
		var all []int
		for p := 0; p < parts; p++ {
			all = append(all, PartitionContiguous(n, parts, p)...)
		}
		if len(all) != n {
			return false
		}
		for i, v := range all {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSizesBalanced(t *testing.T) {
	sizes := map[int]bool{}
	for p := 0; p < 7; p++ {
		sizes[len(PartitionContiguous(100, 7, p))] = true
	}
	// 100/7: parts of 15 and 14 only.
	if !sizes[15] || !sizes[14] || len(sizes) != 2 {
		t.Fatalf("unbalanced partition sizes: %v", sizes)
	}
}

func TestPartitionRandomDeterministicAndDisjoint(t *testing.T) {
	a := PartitionRandom(50, 4, 1, 42)
	b := PartitionRandom(50, 4, 1, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give same partition")
	}
	c := PartitionRandom(50, 4, 1, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
	seen := map[int]bool{}
	total := 0
	for p := 0; p < 4; p++ {
		part := PartitionRandom(50, 4, p, 42)
		total += len(part)
		for _, i := range part {
			if seen[i] {
				t.Fatalf("index %d in two partitions", i)
			}
			seen[i] = true
		}
	}
	if total != 50 {
		t.Fatalf("partitions cover %d of 50", total)
	}
	// A random partition should not be contiguous.
	sorted := append([]int(nil), a...)
	sort.Ints(sorted)
	contiguous := true
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1]+1 {
			contiguous = false
		}
	}
	if contiguous {
		t.Fatal("random partition came out contiguous (suspicious)")
	}
}

func TestPartitionPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { PartitionContiguous(10, 0, 0) },
		func() { PartitionContiguous(10, 3, 3) },
		func() { PartitionRandom(10, 3, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestShufflerEpochZeroIdentity(t *testing.T) {
	s := NewShuffler(6, 9)
	perm := s.Epoch(0)
	if !reflect.DeepEqual(perm, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("epoch 0 perm = %v", perm)
	}
}

func TestShufflerDeterministicPermutation(t *testing.T) {
	a := NewShuffler(100, 5).Epoch(3)
	b := NewShuffler(100, 5).Epoch(3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed,epoch) must agree")
	}
	aCopy := append([]int(nil), a...)
	c := NewShuffler(100, 5).Epoch(4)
	if reflect.DeepEqual(aCopy, c) {
		t.Fatal("different epochs should differ")
	}
	sort.Ints(aCopy)
	for i, v := range aCopy {
		if v != i {
			t.Fatal("epoch perm is not a permutation")
		}
	}
}

func TestBatches(t *testing.T) {
	perm := []int{0, 1, 2, 3, 4, 5, 6}
	b := Batches(perm, 3, false)
	if len(b) != 3 || len(b[2]) != 1 {
		t.Fatalf("batches = %v", b)
	}
	b = Batches(perm, 3, true)
	if len(b) != 2 {
		t.Fatalf("dropLast batches = %v", b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("batch size 0 must panic")
		}
	}()
	Batches(perm, 0, false)
}

func TestAssembleBatchAndSplitXY(t *testing.T) {
	ds := sliceDS(t, 6, 4)
	m, err := AssembleBatch(ds, []int{5, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("batch shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 0) != 500 || m.At(2, 3) != 203 {
		t.Fatalf("batch content wrong: %v", m)
	}
	x, y := SplitXY(m, 1)
	if x.Cols != 1 || y.Cols != 3 {
		t.Fatalf("split shapes %d/%d", x.Cols, y.Cols)
	}
	if x.At(1, 0) != 0 || y.At(1, 0) != 1 {
		t.Fatalf("split content wrong")
	}
	if _, err := AssembleBatch(ds, []int{99}); err == nil {
		t.Fatal("bad index must error")
	}
}

func TestSplitXYPanics(t *testing.T) {
	ds := sliceDS(t, 2, 3)
	m, _ := AssembleBatch(ds, []int{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("xDim out of range must panic")
		}
	}()
	SplitXY(m, 4)
}

func BenchmarkBundleDatasetRandomAccess(b *testing.B) {
	dir := b.TempDir()
	var paths []string
	for f := 0; f < 10; f++ {
		recs := make([][]float32, 100)
		for i := range recs {
			recs[i] = make([]float32, 32)
		}
		p := filepath.Join(dir, fmt.Sprintf("%d.jagb", f))
		if err := bundle.Write(p, 32, recs); err != nil {
			b.Fatal(err)
		}
		paths = append(paths, p)
	}
	ds, err := OpenBundles(paths)
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	dst := make([]float32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.Sample((i*37)%1000, dst); err != nil {
			b.Fatal(err)
		}
	}
}
