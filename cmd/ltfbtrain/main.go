// Command ltfbtrain runs a complete LTFB training session at laptop scale:
// K trainers (goroutine groups over the in-process MPI layer) train CycleGAN
// surrogates on disjoint partitions of a synthetic JAG corpus, holding
// tournaments every few steps, and the per-round population losses are
// printed as a table.
//
// Usage:
//
//	ltfbtrain -trainers 4 -ranks 2 -rounds 8 -round-steps 8 -samples 1024
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ltfb"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ltfbtrain: ")
	trainers := flag.Int("trainers", 4, "number of LTFB trainers")
	ranks := flag.Int("ranks", 1, "data-parallel ranks (simulated GPUs) per trainer")
	samples := flag.Int("samples", 512, "total training samples (partitioned across trainers)")
	batch := flag.Int("batch", 16, "mini-batch size per trainer")
	rounds := flag.Int("rounds", 6, "tournament rounds")
	roundSteps := flag.Int("round-steps", 8, "mini-batch steps between tournaments")
	seed := flag.Int64("seed", 1, "experiment seed")
	adversarial := flag.Bool("adversarial-metric", false, "judge tournaments with the local discriminator instead of validation loss")
	lrJitter := flag.Float64("lr-jitter", 0, "spread per-trainer learning rates by this factor (population-based training)")
	flag.Parse()

	cfg := core.DefaultQualityConfig(*trainers)
	cfg.RanksPerTrainer = *ranks
	cfg.TrainSamples = *samples
	cfg.BatchSize = *batch
	cfg.Rounds = *rounds
	cfg.RoundSteps = *roundSteps
	cfg.Seed = *seed
	if *adversarial {
		cfg.Metric = ltfb.MetricAdversarial
	}
	cfg.LRJitter = *lrJitter

	res, err := core.RunPopulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	tab := metrics.NewTable(
		fmt.Sprintf("LTFB: %d trainers x %d ranks, %d rounds x %d steps, %d samples",
			*trainers, *ranks, *rounds, *roundSteps, *samples),
		"round", "best_val_loss", "mean_val_loss")
	for r := range res.RoundLosses {
		tab.AddRow(r+1, res.BestSeries[r], res.MeanSeries[r])
	}
	fmt.Print(tab.Render())
	fmt.Printf("best-loss trajectory: %s\n", metrics.Sparkline(res.BestSeries))
	fmt.Printf("tournament adoptions: %d\n", res.Adoptions)
	fmt.Printf("final population-best validation loss: %.5f\n", res.FinalBest)
}
