package lint_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each fixture package seeds every violation shape the analyzer claims
// to catch (matched by // want comments) next to the corrected forms
// (which must stay silent) — the analyzer's contract, golden-file
// style.

func TestAcquireRelease(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "acquirerelease"), lint.AcquireRelease)
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "atomicfield"), lint.AtomicField)
}

func TestMetricName(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "metricname"), lint.MetricName)
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "ctxflow"), lint.CtxFlow)
}

func TestTensorAlias(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "tensoralias"), lint.TensorAlias)
}

// TestSuiteCleanOnRepo is the same gate CI runs: every analyzer over
// every package of the module, expecting zero findings. A regression
// that reintroduces a leaked pin or a malformed metric name fails
// tier-1 here, not just the CI lint job.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — loader lost the module?", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, lint.All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestAllNamesUnique pins the suite's shape: five analyzers, distinct
// names (lint:ignore comments address them by name).
func TestAllNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 5 {
		t.Errorf("suite has %d analyzers, want 5", len(seen))
	}
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", err
	}
	return filepath.Dir(strings.TrimSpace(string(out))), nil
}
