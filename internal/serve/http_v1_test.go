package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/tensor"
)

// newV1TestServer mounts a two-model registry ("alpha" seeded 42 and
// default, "beta" seeded 7) and returns it with the httptest server.
func newV1TestServer(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry()
	for name, seed := range map[string]int64{"alpha": 42, "beta": 7} {
		pool, err := NewPool([]*cyclegan.Surrogate{cyclegan.New(testModelCfg(), seed)}, false)
		if err != nil {
			t.Fatal(err)
		}
		s := NewServer(pool, Config{MaxBatch: 8, CacheSize: 16})
		if err := reg.Register(name, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.SetDefault("alpha"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewRegistryHandler(reg, HandlerConfig{}))
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return ts, reg
}

// refRow runs one row through a reference surrogate pass.
func refRow(seed int64, x []float32, invert bool) []float32 {
	ref := cyclegan.New(testModelCfg(), seed)
	xm := tensor.New(1, jag.InputDim)
	copy(xm.Row(0), x)
	var y *tensor.Matrix
	if invert {
		y = ref.Invert(xm)
	} else {
		y = ref.Predict(xm)
	}
	return append([]float32(nil), y.Row(0)...)
}

// TestV1TwoModelsIndependent drives the acceptance scenario: one
// process, two named models, predict on one and invert on the other,
// over both transports, each reply matching its own model's reference
// pass — plus the legacy /predict alias answering for the default.
func TestV1TwoModelsIndependent(t *testing.T) {
	ts, _ := newV1TestServer(t)
	ctx := context.Background()
	x := testInput(3)

	jsonClient := NewClient(ts.URL)
	binClient := NewClient(ts.URL)
	binClient.Binary = true

	for _, c := range []*Client{jsonClient, binClient} {
		outs, rowErrs, err := c.Call(ctx, "alpha", MethodPredict, [][]float32{x})
		if err != nil || rowErrs != nil {
			t.Fatalf("alpha predict (binary=%v): %v %v", c.Binary, err, rowErrs)
		}
		want := refRow(42, x, false)
		if len(outs) != 1 || len(outs[0]) != len(want) {
			t.Fatalf("alpha predict shape %dx%d", len(outs), len(outs[0]))
		}
		for j := range want {
			if outs[0][j] != want[j] {
				t.Fatalf("alpha predict differs from seed-42 reference at col %d", j)
			}
		}

		outs, rowErrs, err = c.Call(ctx, "beta", MethodInvert, [][]float32{x})
		if err != nil || rowErrs != nil {
			t.Fatalf("beta invert (binary=%v): %v %v", c.Binary, err, rowErrs)
		}
		want = refRow(7, x, true)
		if len(outs) != 1 || len(outs[0]) != jag.InputDim {
			t.Fatalf("beta invert shape %dx%d", len(outs), len(outs[0]))
		}
		for j := range want {
			if outs[0][j] != want[j] {
				t.Fatalf("beta invert differs from seed-7 reference at col %d", j)
			}
		}
	}

	// The deprecated alias answers for the default model ("alpha").
	body, _ := json.Marshal(PredictRequest{Input: x})
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /predict status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") == "" {
		t.Fatal("legacy /predict reply not marked deprecated")
	}
	var out PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	want := refRow(42, x, false)
	if len(out.Outputs) != 1 || out.Outputs[0][0] != want[0] {
		t.Fatal("legacy /predict did not answer with the default model")
	}
}

// TestV1ModelListing checks GET /v1/models: names, default marking,
// readiness, and per-method dims.
func TestV1ModelListing(t *testing.T) {
	ts, reg := newV1TestServer(t)
	models, err := NewClient(ts.URL).Models(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0].Name != "alpha" || models[1].Name != "beta" {
		t.Fatalf("listing = %+v, want sorted [alpha beta]", models)
	}
	if !models[0].Default || models[1].Default {
		t.Fatal("default flag not on alpha")
	}
	outDim := jag.Tiny8.OutputDim()
	for _, m := range models {
		if !m.Ready || m.Replicas != 1 {
			t.Fatalf("model %s: ready=%v replicas=%d", m.Name, m.Ready, m.Replicas)
		}
		if d := m.Methods[MethodPredict]; d.In != jag.InputDim || d.Out != outDim {
			t.Fatalf("model %s predict dims %+v", m.Name, d)
		}
		if d := m.Methods[MethodInvert]; d.In != jag.InputDim || d.Out != jag.InputDim {
			t.Fatalf("model %s invert dims %+v", m.Name, d)
		}
	}

	// A closed model flips Ready in the listing.
	s, _ := reg.Get("beta")
	s.Close()
	models, err = NewClient(ts.URL).Models(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if models[0].Ready != true || models[1].Ready != false {
		t.Fatalf("readiness after close = %v/%v", models[0].Ready, models[1].Ready)
	}
}

// TestV1PerModelStats checks that each model's counters are its own.
func TestV1PerModelStats(t *testing.T) {
	ts, _ := newV1TestServer(t)
	ctx := context.Background()
	c := NewClient(ts.URL)
	if _, _, err := c.Call(ctx, "alpha", MethodPredict, [][]float32{testInput(0), testInput(1)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Call(ctx, "beta", MethodInvert, [][]float32{testInput(0)}); err != nil {
		t.Fatal(err)
	}
	alpha, err := c.Stats(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	beta, err := c.Stats(ctx, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if alpha.Requests != 2 || alpha.MethodRequests[MethodPredict] != 2 {
		t.Fatalf("alpha stats = %+v, want 2 predict requests", alpha)
	}
	if beta.Requests != 1 || beta.MethodRequests[MethodInvert] != 1 {
		t.Fatalf("beta stats = %+v, want 1 invert request", beta)
	}
	if _, err := c.Stats(ctx, "missing"); err == nil {
		t.Fatal("stats for unknown model succeeded")
	}
}

// TestV1NotFoundAndVerbs covers the routing edge cases: unknown model
// and unknown method 404, wrong verb 405.
func TestV1NotFoundAndVerbs(t *testing.T) {
	ts, _ := newV1TestServer(t)
	body, _ := json.Marshal(PredictRequest{Input: testInput(0)})

	post := func(path string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/models/ghost/predict"); code != http.StatusNotFound {
		t.Fatalf("unknown model status %d, want 404", code)
	}
	if code := post("/v1/models/alpha/embed"); code != http.StatusNotFound {
		t.Fatalf("unknown method status %d, want 404", code)
	}

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/models/alpha/predict"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET call route status %d, want 405", code)
	}
	if code := get("/predict"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict status %d, want 405", code)
	}
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/models status %d, want 405", resp.StatusCode)
	}
}

// TestV1MalformedFrames posts corrupt binary bodies: every one must be
// a clean 400, never a panic or a hang.
func TestV1MalformedFrames(t *testing.T) {
	ts, _ := newV1TestServer(t)
	good, err := EncodeFrame([][]float32{testInput(0)})
	if err != nil {
		t.Fatal(err)
	}
	wrongCols, err := EncodeFrame([][]float32{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	overflow := append([]byte(nil), good...)
	overflow[8], overflow[9], overflow[10], overflow[11] = 0xff, 0xff, 0xff, 0xff
	overflow[12], overflow[13], overflow[14], overflow[15] = 0xff, 0xff, 0xff, 0xff

	cases := map[string][]byte{
		"bad magic":         append([]byte("XXXX"), good[4:]...),
		"truncated header":  good[:10],
		"truncated payload": good[:len(good)-4],
		"row/col overflow":  overflow,
		"wrong cols":        wrongCols,
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/models/alpha/predict", ContentTypeTensor, bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestV1BadDeadlineHeader rejects malformed X-Deadline-Ms values: a
// typo must not silently strip the caller's shedding protection.
func TestV1BadDeadlineHeader(t *testing.T) {
	ts, _ := newV1TestServer(t)
	body, _ := json.Marshal(PredictRequest{Input: testInput(0)})
	for _, bad := range []string{"250ms", "-1", "0", "2.5", "lots"} {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/models/alpha/predict", bytes.NewReader(body))
		req.Header.Set(DeadlineHeader, bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %q status %d, want 400", DeadlineHeader, bad, resp.StatusCode)
		}
	}
}

// TestV1BinaryRowErrorFallback sends a binary batch with one NaN row:
// the frame has no error channel, so the reply must fall back to JSON
// with the aligned per-row errors and the good row's output intact.
func TestV1BinaryRowErrorFallback(t *testing.T) {
	ts, _ := newV1TestServer(t)
	bad := testInput(1)
	bad[2] = float32(math.NaN())
	c := NewClient(ts.URL)
	c.Binary = true
	outs, rowErrs, err := c.Call(context.Background(), "alpha", MethodPredict, [][]float32{testInput(0), bad})
	if err != nil {
		t.Fatal(err)
	}
	if len(rowErrs) != 2 || rowErrs[0] != nil || rowErrs[1] == nil || rowErrs[1].Status != http.StatusBadRequest {
		t.Fatalf("row errors = %+v, want aligned [nil, 400]", rowErrs)
	}
	if len(outs) != 2 || outs[0] == nil || outs[1] != nil {
		t.Fatal("outputs not aligned with the failed row nulled")
	}
}

// TestV1HealthzPerModel checks per-model readiness and the overall-503
// contract once any registered model is closed.
func TestV1HealthzPerModel(t *testing.T) {
	ts, reg := newV1TestServer(t)
	getHealth := func() (HealthResponse, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h, resp.StatusCode
	}

	h, code := getHealth()
	if code != http.StatusOK || h.Status != "ok" || len(h.Models) != 2 {
		t.Fatalf("healthy: %+v (%d)", h, code)
	}
	if h.Models["alpha"].Status != "ok" || h.Models["beta"].Status != "ok" {
		t.Fatalf("per-model status: %+v", h.Models)
	}

	s, _ := reg.Get("beta")
	s.Close()
	h, code = getHealth()
	if code != http.StatusServiceUnavailable || h.Status != "closed" {
		t.Fatalf("one model closed: %+v (%d), want overall 503", h, code)
	}
	if h.Models["alpha"].Status != "ok" || h.Models["beta"].Status != "closed" {
		t.Fatalf("per-model readiness wrong: %+v", h.Models)
	}
}
