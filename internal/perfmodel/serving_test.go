package perfmodel

import (
	"math"
	"testing"
	"time"
)

// testCost is a plausible CPU-host calibration: 100µs per pass, 50µs
// per row.
func testCost() ServingCost { return ServingCost{PassSec: 100e-6, RowSec: 50e-6} }

func testServing() ServingScenario {
	return ServingScenario{
		Cost:     testCost(),
		Replicas: 2,
		MaxBatch: 64,
		Window:   2 * time.Millisecond,
	}
}

func TestServeFlopsPerRow(t *testing.T) {
	a := PaperArch()
	_, dec, fwd, inv, _ := a.Params()
	pred, err := a.ServeFlopsPerRow(ServePredict)
	if err != nil {
		t.Fatal(err)
	}
	if pred != 2*float64(fwd+dec) {
		t.Fatalf("predict flops = %g, want 2*(fwd+dec)", pred)
	}
	invf, err := a.ServeFlopsPerRow(ServeInvert)
	if err != nil {
		t.Fatal(err)
	}
	if invf != 2*float64(fwd+inv) {
		t.Fatalf("invert flops = %g, want 2*(fwd+inv)", invf)
	}
	// Serving is forward-only: one served predict row must cost far
	// less than one training sample (6 flops/param over 3 phases).
	if pred >= a.FlopsPerSample()/2 {
		t.Fatal("serving a row should be much cheaper than training on it")
	}
	if _, err := a.ServeFlopsPerRow("nope"); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestServingCostFromArch(t *testing.T) {
	a := PaperArch()
	c, err := ServingCostFromArch(a, ServePredict, 1e12, 20e-6)
	if err != nil {
		t.Fatal(err)
	}
	flops, _ := a.ServeFlopsPerRow(ServePredict)
	if c.PassSec != 20e-6 || c.RowSec != flops/1e12 {
		t.Fatalf("unexpected projected cost %+v", c)
	}
	if _, err := ServingCostFromArch(a, ServePredict, 0, 0); err == nil {
		t.Fatal("zero throughput must fail")
	}
}

func TestServingValidate(t *testing.T) {
	good := testServing()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*ServingScenario){
		"zero row cost":  func(s *ServingScenario) { s.Cost.RowSec = 0 },
		"no replicas":    func(s *ServingScenario) { s.Replicas = 0 },
		"no window":      func(s *ServingScenario) { s.Window = 0 },
		"hit rate 1":     func(s *ServingScenario) { s.CacheHitRate = 1 },
		"negative load":  func(s *ServingScenario) { s.OfferedQPS = -1 },
		"bulk over 1":    func(s *ServingScenario) { s.BulkFraction = 1.5 },
		"zero max batch": func(s *ServingScenario) { s.MaxBatch = 0 },
	} {
		bad := testServing()
		mutate(&bad)
		if bad.Validate() == nil {
			t.Fatalf("%s must be invalid", name)
		}
	}
}

// Capacity must scale ~linearly with replicas and improve with batching
// (a larger cap amortizes PassSec over more rows).
func TestServingCapacityScaling(t *testing.T) {
	s := testServing()
	base := s.MaxQPS()
	if base <= 0 {
		t.Fatalf("MaxQPS = %v", base)
	}
	s.Replicas = 4
	if got := s.MaxQPS(); math.Abs(got-2*base) > 1e-6*base {
		t.Fatalf("doubling replicas: MaxQPS %v -> %v, want exactly 2x", base, got)
	}
	batched, unbatched := testServing(), testServing()
	unbatched.MaxBatch = 1
	if !(batched.MaxQPS() > 1.5*unbatched.MaxQPS()) {
		t.Fatalf("batching should raise capacity: %v vs %v", batched.MaxQPS(), unbatched.MaxQPS())
	}
	// The batching benefit is exactly the amortization ratio.
	want := batched.Cost.Cost(1) / (batched.Cost.Cost(64) / 64)
	if got := batched.MaxQPS() / unbatched.MaxQPS(); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("batched/unbatched = %v, want %v", got, want)
	}
}

func TestServingCacheRaisesCapacity(t *testing.T) {
	s := testServing()
	cold := s.MaxQPS()
	s.CacheHitRate = 0.5
	if got := s.MaxQPS(); math.Abs(got-2*cold) > 1e-6*cold {
		t.Fatalf("50%% hit rate should double offered capacity: %v vs %v", got, cold)
	}
}

// Window-bound vs size-bound occupancy: at low load the window closes
// partial batches; at high load batches fill to MaxBatch first.
func TestServingOccupancyRegimes(t *testing.T) {
	s := testServing()
	s.OfferedQPS = 500 // 1 row/window on average
	low := s.Report()
	if low.Saturated {
		t.Fatal("low load saturated")
	}
	if !(low.Occupancy > 1 && low.Occupancy < 4) {
		t.Fatalf("window-bound occupancy = %v", low.Occupancy)
	}
	if math.Abs(low.FillSec-s.Window.Seconds()) > 1e-12 {
		t.Fatalf("window-bound fill = %v, want the window", low.FillSec)
	}
	s.OfferedQPS = 0.9 * s.MaxQPS()
	high := s.Report()
	if high.Saturated {
		t.Fatal("90% load saturated")
	}
	if high.Occupancy != 64 {
		t.Fatalf("size-bound occupancy = %v, want 64", high.Occupancy)
	}
	if !(high.FillSec < s.Window.Seconds()) {
		t.Fatal("a full batch must flush before the window")
	}
	if !(high.P99 > low.P99) {
		t.Fatalf("p99 should grow with load: %v vs %v", high.P99, low.P99)
	}
	if !(high.P99 > high.P50) {
		t.Fatalf("p99 %v must exceed p50 %v", high.P99, high.P50)
	}
}

func TestServingSaturation(t *testing.T) {
	s := testServing()
	s.OfferedQPS = 1.2 * s.MaxQPS()
	r := s.Report()
	if !r.Saturated || !math.IsInf(r.P99, 1) {
		t.Fatalf("overloaded scenario must saturate: %+v", r)
	}
	s.OfferedQPS = 0.95 * s.MaxQPS()
	if r := s.Report(); r.Saturated {
		t.Fatalf("sub-capacity load must not saturate: %+v", r)
	}
}

// The bulk lane pays for its preemption: at equal load its p99 must be
// no better than the interactive lane's, and the gap must widen with
// utilization.
func TestServingPriorityLanes(t *testing.T) {
	s := testServing()
	s.BulkFraction = 0.5
	s.OfferedQPS = 0.8 * s.MaxQPS()
	r := s.Report()
	if !(r.BulkP99 >= r.P99) {
		t.Fatalf("bulk p99 %v beat interactive %v", r.BulkP99, r.P99)
	}
	gapHigh := r.BulkP99 - r.P99
	s.OfferedQPS = 0.3 * s.MaxQPS()
	r = s.Report()
	gapLow := r.BulkP99 - r.P99
	if !(gapHigh > gapLow) {
		t.Fatalf("priority gap should widen with load: %v vs %v", gapHigh, gapLow)
	}
	// No bulk traffic: a hypothetical bulk row still waits behind the
	// whole interactive backlog, so its p99 stays the worse of the two.
	s.BulkFraction = 0
	r = s.Report()
	if !(r.BulkP99 >= r.P99) {
		t.Fatalf("bulk p99 %v beat interactive %v with no bulk traffic", r.BulkP99, r.P99)
	}
}

func TestFigureS1Sweep(t *testing.T) {
	reps := []int{1, 2, 4}
	wins := []time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond}
	pts := FigureS1(testCost(), 64, reps, wins, 0.6, 0, 0)
	if len(pts) != len(reps)*len(wins) {
		t.Fatalf("sweep size %d, want %d", len(pts), len(reps)*len(wins))
	}
	byRep := map[int][]FigureS1Point{}
	for _, p := range pts {
		if p.MaxQPS <= 0 || p.P50Ms <= 0 || p.P99Ms < p.P50Ms || math.IsInf(p.P99Ms, 1) {
			t.Fatalf("degenerate point %+v", p)
		}
		if p.OfferedQPS >= p.MaxQPS {
			t.Fatalf("operating point beyond capacity: %+v", p)
		}
		byRep[p.Replicas] = append(byRep[p.Replicas], p)
	}
	// Capacity grows with replicas at a fixed window.
	if !(byRep[4][0].MaxQPS > byRep[2][0].MaxQPS && byRep[2][0].MaxQPS > byRep[1][0].MaxQPS) {
		t.Fatalf("capacity not monotone in replicas: %+v", pts)
	}
	// A longer window cannot reduce capacity (MaxQPS is window-free)
	// but must raise low-load occupancy headroom — and the quoted p50
	// grows with the window at a fixed utilization only in the
	// window-bound regime; just pin that latencies stay ordered.
	for _, ps := range byRep {
		for _, p := range ps {
			if p.BulkP99Ms < p.P99Ms {
				t.Fatalf("bulk p99 beat interactive in %+v", p)
			}
		}
	}
}
