// Package reader implements LBANN-style data readers: dataset abstractions
// over in-memory and bundle-file storage, deterministic per-epoch shuffling,
// dataset partitioning (contiguous file ranges for LTFB trainers, random
// 1/k subsets for the K-independent baseline), and mini-batch assembly into
// tensors.
//
// SGD requires each mini-batch to be drawn uniformly from the whole
// dataset (Section IV-C): the per-epoch permutation guarantees that, and —
// because samples live in multi-sample bundle files in generation order —
// it is also what makes naive file-backed ingestion so expensive, which the
// data store exists to fix.
package reader

import (
	"fmt"
	"math/rand"

	"repro/internal/bundle"
	"repro/internal/tensor"
)

// Dataset is a fixed-width sample collection.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Dim returns the per-sample width.
	Dim() int
	// Sample copies sample i into dst (length Dim).
	Sample(i int, dst []float32) error
}

// FileMapped is implemented by datasets whose samples live in files; the
// data store uses it to assign preload ownership by file, and the
// performance model uses it to count file accesses.
type FileMapped interface {
	Dataset
	// NumFiles returns the number of backing files.
	NumFiles() int
	// FileOf returns the backing file of sample i and its index within it.
	FileOf(i int) (file, local int)
	// FileSamples returns the sample indices stored in the given file.
	FileSamples(file int) []int
}

// SliceDataset is an in-memory dataset.
type SliceDataset struct {
	dim  int
	data [][]float32
}

// NewSliceDataset wraps records (all of width dim) as a dataset.
func NewSliceDataset(dim int, records [][]float32) (*SliceDataset, error) {
	for i, r := range records {
		if len(r) != dim {
			return nil, fmt.Errorf("reader: record %d has width %d, want %d", i, len(r), dim)
		}
	}
	return &SliceDataset{dim: dim, data: records}, nil
}

// Len returns the number of samples.
func (d *SliceDataset) Len() int { return len(d.data) }

// Dim returns the per-sample width.
func (d *SliceDataset) Dim() int { return d.dim }

// Sample copies sample i into dst.
func (d *SliceDataset) Sample(i int, dst []float32) error {
	if i < 0 || i >= len(d.data) {
		return fmt.Errorf("reader: sample %d outside [0,%d)", i, len(d.data))
	}
	if len(dst) != d.dim {
		return fmt.Errorf("reader: dst width %d, want %d", len(dst), d.dim)
	}
	copy(dst, d.data[i])
	return nil
}

// BundleDataset exposes a set of bundle files as one dataset, with global
// sample indices spanning the files in path order — the layout of the
// paper's 10,000-file HDF5 corpus.
type BundleDataset struct {
	readers []*bundle.Reader
	starts  []int // starts[f] = global index of file f's first sample
	total   int
	dim     int
}

// OpenBundles opens every path as a bundle; all must share one sample
// width. Close the dataset when done.
func OpenBundles(paths []string) (*BundleDataset, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("reader: no bundle paths")
	}
	d := &BundleDataset{}
	for _, p := range paths {
		r, err := bundle.Open(p)
		if err != nil {
			d.Close()
			return nil, err
		}
		if len(d.readers) == 0 {
			d.dim = r.Dim()
		} else if r.Dim() != d.dim {
			r.Close()
			d.Close()
			return nil, fmt.Errorf("reader: %s has width %d, others %d", p, r.Dim(), d.dim)
		}
		d.starts = append(d.starts, d.total)
		d.total += r.NumSamples()
		d.readers = append(d.readers, r)
	}
	return d, nil
}

// Len returns the number of samples across all files.
func (d *BundleDataset) Len() int { return d.total }

// Dim returns the per-sample width.
func (d *BundleDataset) Dim() int { return d.dim }

// NumFiles returns the number of backing bundle files.
func (d *BundleDataset) NumFiles() int { return len(d.readers) }

// FileOf locates global sample i.
func (d *BundleDataset) FileOf(i int) (file, local int) {
	lo, hi := 0, len(d.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if d.starts[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, i - d.starts[lo]
}

// FileSamples returns the global indices stored in file f.
func (d *BundleDataset) FileSamples(f int) []int {
	n := d.readers[f].NumSamples()
	out := make([]int, n)
	for i := range out {
		out[i] = d.starts[f] + i
	}
	return out
}

// Sample copies global sample i into dst.
func (d *BundleDataset) Sample(i int, dst []float32) error {
	if i < 0 || i >= d.total {
		return fmt.Errorf("reader: sample %d outside [0,%d)", i, d.total)
	}
	f, local := d.FileOf(i)
	return d.readers[f].SampleInto(local, dst)
}

// ReadFile loads every sample of file f, the preload access pattern.
func (d *BundleDataset) ReadFile(f int) ([][]float32, error) {
	return d.readers[f].ReadAll()
}

// Close releases all underlying files.
func (d *BundleDataset) Close() error {
	var first error
	for _, r := range d.readers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Subset restricts a dataset to a fixed index list, renumbering samples to
// [0, len(idx)). It forwards file mapping when the base supports it, so a
// partitioned bundle corpus still exposes its file layout.
type Subset struct {
	Base Dataset
	Idx  []int
}

// NewSubset creates the restriction of base to idx. Indices must be within
// base's range.
func NewSubset(base Dataset, idx []int) (*Subset, error) {
	for _, i := range idx {
		if i < 0 || i >= base.Len() {
			return nil, fmt.Errorf("reader: subset index %d outside [0,%d)", i, base.Len())
		}
	}
	return &Subset{Base: base, Idx: idx}, nil
}

// Len returns the subset size.
func (s *Subset) Len() int { return len(s.Idx) }

// Dim returns the per-sample width.
func (s *Subset) Dim() int { return s.Base.Dim() }

// Sample copies subset sample i (base sample Idx[i]) into dst.
func (s *Subset) Sample(i int, dst []float32) error {
	if i < 0 || i >= len(s.Idx) {
		return fmt.Errorf("reader: sample %d outside [0,%d)", i, len(s.Idx))
	}
	return s.Base.Sample(s.Idx[i], dst)
}

// PartitionContiguous returns the index range of partition part of parts
// over n samples, with earlier partitions absorbing the remainder — the
// LTFB data partitioning: trainer k gets a contiguous run of files/samples.
func PartitionContiguous(n, parts, part int) []int {
	if parts < 1 || part < 0 || part >= parts {
		panic(fmt.Sprintf("reader: partition %d of %d invalid", part, parts))
	}
	base := n / parts
	rem := n % parts
	lo := part*base + min(part, rem)
	size := base
	if part < rem {
		size++
	}
	out := make([]int, size)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// PartitionRandom returns a uniformly random subset of size n/parts (plus
// remainder spread across low parts) without replacement, drawn with the
// given seed — the K-independent baseline's "random 1/k subset"
// (Section IV-E).
func PartitionRandom(n, parts, part int, seed int64) []int {
	if parts < 1 || part < 0 || part >= parts {
		panic(fmt.Sprintf("reader: partition %d of %d invalid", part, parts))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	return PartitionContiguousOf(perm, parts, part)
}

// PartitionContiguousOf slices partition part of parts out of an explicit
// index list, with the same remainder rule as PartitionContiguous.
func PartitionContiguousOf(idx []int, parts, part int) []int {
	n := len(idx)
	base := n / parts
	rem := n % parts
	lo := part*base + min(part, rem)
	size := base
	if part < rem {
		size++
	}
	return append([]int(nil), idx[lo:lo+size]...)
}

// Shuffler produces a deterministic permutation of [0,n) per epoch. All
// ranks of a trainer construct it with the same seed, so they agree on the
// batch schedule without communicating.
type Shuffler struct {
	n    int
	seed int64
	perm []int
}

// NewShuffler creates a shuffler over n samples.
func NewShuffler(n int, seed int64) *Shuffler {
	return &Shuffler{n: n, seed: seed}
}

// Epoch returns the permutation for the given epoch. Epoch 0 is the
// identity (generation order, matching the paper's first-epoch dynamic
// caching behaviour); later epochs are Fisher–Yates shuffles seeded by
// (seed, epoch).
func (s *Shuffler) Epoch(epoch int) []int {
	if cap(s.perm) < s.n {
		s.perm = make([]int, s.n)
	}
	s.perm = s.perm[:s.n]
	for i := range s.perm {
		s.perm[i] = i
	}
	if epoch > 0 {
		rng := rand.New(rand.NewSource(s.seed ^ int64(epoch)*0x9E3779B97F4A7C))
		rng.Shuffle(s.n, func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
	}
	return s.perm
}

// Batches splits perm into consecutive mini-batches of size batch; a final
// short batch is dropped when dropLast is set (the paper trains with a
// fixed mini-batch of 128).
func Batches(perm []int, batch int, dropLast bool) [][]int {
	if batch < 1 {
		panic(fmt.Sprintf("reader: batch size %d < 1", batch))
	}
	var out [][]int
	for lo := 0; lo < len(perm); lo += batch {
		hi := lo + batch
		if hi > len(perm) {
			if dropLast {
				break
			}
			hi = len(perm)
		}
		out = append(out, perm[lo:hi])
	}
	return out
}

// AssembleBatch gathers the given samples into a row-per-sample matrix.
func AssembleBatch(ds Dataset, idx []int) (*tensor.Matrix, error) {
	m := tensor.New(len(idx), ds.Dim())
	for r, i := range idx {
		if err := ds.Sample(i, m.Row(r)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// SplitXY splits a batch of flattened samples into input columns [0,xDim)
// and output columns [xDim,Dim) as two fresh matrices.
func SplitXY(batch *tensor.Matrix, xDim int) (x, y *tensor.Matrix) {
	if xDim < 0 || xDim > batch.Cols {
		panic(fmt.Sprintf("reader: xDim %d outside [0,%d]", xDim, batch.Cols))
	}
	x = tensor.New(batch.Rows, xDim)
	y = tensor.New(batch.Rows, batch.Cols-xDim)
	for r := 0; r < batch.Rows; r++ {
		row := batch.Row(r)
		copy(x.Row(r), row[:xDim])
		copy(y.Row(r), row[xDim:])
	}
	return x, y
}
