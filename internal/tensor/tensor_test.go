package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveGemm is the reference implementation Gemm is tested against.
func naiveGemm(c *Matrix, alpha float32, a *Matrix, ta Op, b *Matrix, tb Op, beta float32) {
	get := func(m *Matrix, t Op, i, j int) float32 {
		if t == Trans {
			return m.At(j, i)
		}
		return m.At(i, j)
	}
	mRows, k := a.Rows, a.Cols
	if ta == Trans {
		mRows, k = a.Cols, a.Rows
	}
	n := b.Cols
	if tb == Trans {
		n = b.Rows
	}
	for i := 0; i < mRows; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for p := 0; p < k; p++ {
				sum += float64(get(a, ta, i, p)) * float64(get(b, tb, p, j))
			}
			c.Set(i, j, beta*c.At(i, j)+alpha*float32(sum))
		}
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	FillGaussian(m, rng, 0, 1)
	return m
}

func TestGemmAllVariantsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 4, 5}, {8, 8, 8}, {17, 31, 13}, {64, 20, 48}, {5, 1, 9},
	}
	for _, ta := range []Op{NoTrans, Trans} {
		for _, tb := range []Op{NoTrans, Trans} {
			for _, sh := range shapes {
				a := randomMatrix(rng, sh.m, sh.k)
				if ta == Trans {
					a = randomMatrix(rng, sh.k, sh.m)
				}
				b := randomMatrix(rng, sh.k, sh.n)
				if tb == Trans {
					b = randomMatrix(rng, sh.n, sh.k)
				}
				c := randomMatrix(rng, sh.m, sh.n)
				want := c.Clone()
				alpha, beta := float32(0.7), float32(-0.3)
				Gemm(c, alpha, a, ta, b, tb, beta)
				naiveGemm(want, alpha, a, ta, b, tb, beta)
				if !c.ApproxEqual(want, 1e-3) {
					t.Fatalf("Gemm(ta=%v tb=%v %dx%dx%d) diverges from naive", ta, tb, sh.m, sh.k, sh.n)
				}
			}
		}
	}
}

func TestGemmBetaZeroIgnoresGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 4, 6)
	b := randomMatrix(rng, 6, 3)
	c := New(4, 3)
	for i := range c.Data {
		c.Data[i] = float32(math.NaN())
	}
	Gemm(c, 1, a, NoTrans, b, NoTrans, 0)
	if c.HasNaN() {
		t.Fatal("beta=0 must overwrite prior contents, including NaN")
	}
}

func TestGemmAlphaZeroScalesOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 4, 6)
	b := randomMatrix(rng, 6, 3)
	c := randomMatrix(rng, 4, 3)
	want := c.Clone()
	Scale(want, 0.5)
	Gemm(c, 0, a, NoTrans, b, NoTrans, 0.5)
	if !c.ApproxEqual(want, 1e-6) {
		t.Fatal("alpha=0 should reduce Gemm to C *= beta")
	}
}

func TestGemmShapePanics(t *testing.T) {
	cases := []func(){
		func() { Gemm(New(2, 2), 1, New(2, 3), NoTrans, New(4, 2), NoTrans, 0) }, // inner mismatch
		func() { Gemm(New(3, 2), 1, New(2, 3), NoTrans, New(3, 2), NoTrans, 0) }, // bad output
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 7, 7)
	id := New(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
	}
	c := New(7, 7)
	MatMul(c, a, id)
	if !c.ApproxEqual(a, 1e-6) {
		t.Fatal("A*I != A")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(rSeed, cSeed uint8) bool {
		rows := int(rSeed%16) + 1
		cols := int(cSeed%16) + 1
		rng := rand.New(rand.NewSource(int64(rSeed)<<8 | int64(cSeed)))
		m := randomMatrix(rng, rows, cols)
		return m.Transpose().Transpose().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Gemm distributes over addition in A: (A1+A2)*B == A1*B + A2*B.
func TestGemmLinearityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		m, k, n := int(seed%5)+1, int(seed%7)+1, int(seed%3)+1
		a1 := randomMatrix(rng, m, k)
		a2 := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		sum := New(m, k)
		Add(sum, a1, a2)
		left := New(m, n)
		MatMul(left, sum, b)
		right := New(m, n)
		tmp := New(m, n)
		MatMul(right, a1, b)
		MatMul(tmp, a2, b)
		Add(right, right, tmp)
		return left.ApproxEqual(right, 1e-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := FromSlice(2, 2, []float32{10, 20, 30, 40})
	dst := New(2, 2)
	Add(dst, a, b)
	if !dst.Equal(FromSlice(2, 2, []float32{11, 22, 33, 44})) {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, b, a)
	if !dst.Equal(FromSlice(2, 2, []float32{9, 18, 27, 36})) {
		t.Fatalf("Sub = %v", dst)
	}
	Hadamard(dst, a, b)
	if !dst.Equal(FromSlice(2, 2, []float32{10, 40, 90, 160})) {
		t.Fatalf("Hadamard = %v", dst)
	}
	AddScaled(dst, 0, a)
	if !dst.Equal(FromSlice(2, 2, []float32{10, 40, 90, 160})) {
		t.Fatal("AddScaled with s=0 must be a no-op")
	}
}

func TestReductions(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, -2, 3, -4, 5, -6})
	if got := Sum(m); got != -3 {
		t.Fatalf("Sum = %v, want -3", got)
	}
	if got := Mean(m); got != -0.5 {
		t.Fatalf("Mean = %v, want -0.5", got)
	}
	if got := MaxAbs(m); got != 6 {
		t.Fatalf("MaxAbs = %v, want 6", got)
	}
	cs := ColSums(m)
	want := []float32{-3, 3, -3}
	for i := range cs {
		if cs[i] != want[i] {
			t.Fatalf("ColSums = %v, want %v", cs, want)
		}
	}
	if got := Dot(m, m); math.Abs(got-91) > 1e-9 {
		t.Fatalf("Dot(m,m) = %v, want 91", got)
	}
	if got := Norm2(m); math.Abs(got-math.Sqrt(91)) > 1e-9 {
		t.Fatalf("Norm2 = %v", got)
	}
}

func TestAddRowVectorAndColSumsRoundTrip(t *testing.T) {
	m := New(3, 4)
	AddRowVector(m, []float32{1, 2, 3, 4})
	cs := ColSums(m)
	for j, v := range cs {
		if v != float32(3*(j+1)) {
			t.Fatalf("col %d sum = %v, want %v", j, v, 3*(j+1))
		}
	}
}

func TestSliceRowsAliases(t *testing.T) {
	m := FromSlice(4, 2, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	s := m.SliceRows(1, 3)
	if s.Rows != 2 || s.At(0, 0) != 3 || s.At(1, 1) != 6 {
		t.Fatalf("SliceRows gave %v", s)
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("SliceRows must alias parent storage")
	}
}

func TestReshapeAliasesAndPanics(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	r := m.Reshape(3, 2)
	if r.At(2, 1) != 6 {
		t.Fatalf("Reshape content wrong: %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape to wrong element count must panic")
		}
	}()
	m.Reshape(4, 2)
}

func TestMeanEmptyMatrix(t *testing.T) {
	if got := Mean(New(0, 5)); got != 0 {
		t.Fatalf("Mean of empty = %v, want 0", got)
	}
}

func TestFillGaussianStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New(200, 200)
	FillGaussian(m, rng, 3, 0.5)
	mean := Mean(m)
	if math.Abs(mean-3) > 0.02 {
		t.Fatalf("sample mean %v too far from 3", mean)
	}
}

func TestFillUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := New(50, 50)
	FillUniform(m, rng, -2, 5)
	for _, v := range m.Data {
		if v < -2 || v >= 5 {
			t.Fatalf("uniform sample %v outside [-2,5)", v)
		}
	}
}

func BenchmarkGemmNN128(b *testing.B) { benchGemm(b, 128, 128, 128, NoTrans, NoTrans) }
func BenchmarkGemmTN128(b *testing.B) { benchGemm(b, 128, 128, 128, Trans, NoTrans) }
func BenchmarkGemmNT128(b *testing.B) { benchGemm(b, 128, 128, 128, NoTrans, Trans) }

func benchGemm(b *testing.B, m, k, n int, ta, tb Op) {
	rng := rand.New(rand.NewSource(9))
	ar, ac := m, k
	if ta == Trans {
		ar, ac = k, m
	}
	br, bc := k, n
	if tb == Trans {
		br, bc = n, k
	}
	a := randomMatrix(rng, ar, ac)
	bm := randomMatrix(rng, br, bc)
	c := New(m, n)
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(c, 1, a, ta, bm, tb, 0)
	}
}

// BenchmarkGemmNaive provides the ablation baseline for the blocked kernel.
func BenchmarkGemmNaive128(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	a := randomMatrix(rng, 128, 128)
	bm := randomMatrix(rng, 128, 128)
	c := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveGemm(c, 1, a, NoTrans, bm, NoTrans, 0)
	}
}
