// Package bundle implements the multi-sample container files the dataset is
// packaged in. The paper stores its 10M+1M JAG samples as 10,000 HDF5 files
// of 1,000 samples each (Section II-C); this package reproduces the property
// that matters to the systems experiments — many fixed-width samples per
// file with random per-sample access — using a simple indexed binary format:
//
//	magic "JAGB" | uint32 version | uint32 sampleCount | uint32 sampleDim |
//	sampleCount × sampleDim little-endian float32
//
// Because SGD draws mini-batches uniformly from the whole dataset while
// files hold samples in generation order, a naive reader touches many files
// per batch; the data store (internal/datastore) exists to kill exactly that
// access pattern, and the performance model charges file-system costs based
// on the open/read counts this layout induces.
package bundle

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

const (
	magic      = "JAGB"
	version    = 1
	headerSize = 16
)

// HeaderSize is the fixed byte length of a bundle header.
const HeaderSize = headerSize

// SampleBytes returns the on-disk size of one sample of width dim.
func SampleBytes(dim int) int64 { return int64(4 * dim) }

// FileBytes returns the total on-disk size of a bundle holding count samples
// of width dim.
func FileBytes(count, dim int) int64 { return headerSize + int64(count)*SampleBytes(dim) }

// Write creates (or truncates) a bundle at path holding the given records,
// all of which must have width dim.
func Write(path string, dim int, records [][]float32) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bundle: create: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("bundle: close: %w", cerr)
		}
	}()
	w := &writer{f: f, dim: dim}
	if err := w.writeHeader(len(records)); err != nil {
		return err
	}
	for i, rec := range records {
		if len(rec) != dim {
			return fmt.Errorf("bundle: record %d has width %d, want %d", i, len(rec), dim)
		}
		if err := w.writeRecord(rec); err != nil {
			return err
		}
	}
	return w.flush()
}

type writer struct {
	f   *os.File
	dim int
	buf []byte
}

func (w *writer) writeHeader(count int) error {
	h := make([]byte, 0, headerSize)
	h = append(h, magic...)
	h = binary.LittleEndian.AppendUint32(h, version)
	h = binary.LittleEndian.AppendUint32(h, uint32(count))
	h = binary.LittleEndian.AppendUint32(h, uint32(w.dim))
	_, err := w.f.Write(h)
	return err
}

func (w *writer) writeRecord(rec []float32) error {
	for _, v := range rec {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, math.Float32bits(v))
	}
	// Flush in chunks so huge bundles do not hold the whole file in memory.
	if len(w.buf) >= 1<<20 {
		return w.flush()
	}
	return nil
}

func (w *writer) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Reader provides random per-sample access to one bundle file. It is safe
// for concurrent Sample calls (reads use ReadAt).
type Reader struct {
	f     *os.File
	path  string
	count int
	dim   int
}

// Open validates the header of the bundle at path and returns a reader.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bundle: open: %w", err)
	}
	var h [headerSize]byte
	if _, err := io.ReadFull(f, h[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("bundle: %s: short header: %w", path, err)
	}
	if string(h[:4]) != magic {
		f.Close()
		return nil, fmt.Errorf("bundle: %s: bad magic %q", path, h[:4])
	}
	if v := binary.LittleEndian.Uint32(h[4:8]); v != version {
		f.Close()
		return nil, fmt.Errorf("bundle: %s: unsupported version %d", path, v)
	}
	r := &Reader{
		f:     f,
		path:  path,
		count: int(binary.LittleEndian.Uint32(h[8:12])),
		dim:   int(binary.LittleEndian.Uint32(h[12:16])),
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("bundle: %s: stat: %w", path, err)
	}
	if info.Size() != FileBytes(r.count, r.dim) {
		f.Close()
		return nil, fmt.Errorf("bundle: %s: size %d, header implies %d", path, info.Size(), FileBytes(r.count, r.dim))
	}
	return r, nil
}

// NumSamples returns the number of samples in the bundle.
func (r *Reader) NumSamples() int { return r.count }

// Dim returns the per-sample width.
func (r *Reader) Dim() int { return r.dim }

// Path returns the file path the reader was opened on.
func (r *Reader) Path() string { return r.path }

// Sample reads sample i into a fresh slice.
func (r *Reader) Sample(i int) ([]float32, error) {
	out := make([]float32, r.dim)
	if err := r.SampleInto(i, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SampleInto reads sample i into dst, which must have length Dim.
func (r *Reader) SampleInto(i int, dst []float32) error {
	if i < 0 || i >= r.count {
		return fmt.Errorf("bundle: %s: sample %d outside [0,%d)", r.path, i, r.count)
	}
	if len(dst) != r.dim {
		return fmt.Errorf("bundle: %s: dst width %d, want %d", r.path, len(dst), r.dim)
	}
	raw := make([]byte, 4*r.dim)
	off := headerSize + int64(i)*SampleBytes(r.dim)
	if _, err := r.f.ReadAt(raw, off); err != nil {
		return fmt.Errorf("bundle: %s: read sample %d: %w", r.path, i, err)
	}
	for j := range dst {
		dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*j:]))
	}
	return nil
}

// ReadAll returns every sample in index order; this is the preload path,
// which touches the file once sequentially.
func (r *Reader) ReadAll() ([][]float32, error) {
	raw := make([]byte, int64(r.count)*SampleBytes(r.dim))
	if _, err := r.f.ReadAt(raw, headerSize); err != nil {
		return nil, fmt.Errorf("bundle: %s: read all: %w", r.path, err)
	}
	out := make([][]float32, r.count)
	for i := range out {
		rec := make([]float32, r.dim)
		base := i * 4 * r.dim
		for j := range rec {
			rec[j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[base+4*j:]))
		}
		out[i] = rec
	}
	return out, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }
