package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// quadratic builds a single-parameter "network" whose loss is 0.5·|w-target|²
// so optimizer convergence can be tested directly.
func quadParam(dim int) *nn.Param {
	return &nn.Param{Name: "w", W: tensor.New(1, dim), Grad: tensor.New(1, dim)}
}

func quadGrad(p *nn.Param, target []float32) float64 {
	var norm float64
	for i := range p.W.Data {
		g := p.W.Data[i] - target[i]
		p.Grad.Data[i] = g
		norm += float64(g) * float64(g)
	}
	return math.Sqrt(norm)
}

func testConverges(t *testing.T, o Optimizer, steps int, tol float64) {
	t.Helper()
	p := quadParam(4)
	p.W.Data = []float32{5, -3, 2, 9}
	target := []float32{1, 1, -1, 0}
	params := []*nn.Param{p}
	for i := 0; i < steps; i++ {
		quadGrad(p, target)
		o.Step(params)
	}
	if res := quadGrad(p, target); res > tol {
		t.Fatalf("after %d steps residual %g > %g", steps, res, tol)
	}
}

func TestSGDConverges(t *testing.T)         { testConverges(t, NewSGD(0.1, 0), 200, 1e-3) }
func TestSGDMomentumConverges(t *testing.T) { testConverges(t, NewSGD(0.05, 0.9), 300, 1e-3) }
func TestAdamConverges(t *testing.T)        { testConverges(t, NewAdam(0.1), 400, 1e-2) }

func TestSGDSingleStepExactValue(t *testing.T) {
	p := quadParam(1)
	p.W.Data[0] = 2
	p.Grad.Data[0] = 3
	NewSGD(0.5, 0).Step([]*nn.Param{p})
	if p.W.Data[0] != 0.5 {
		t.Fatalf("w = %v, want 2 - 0.5*3 = 0.5", p.W.Data[0])
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction the very first Adam step has magnitude ≈ lr,
	// independent of gradient scale.
	for _, gscale := range []float32{1e-4, 1, 1e4} {
		p := quadParam(1)
		p.Grad.Data[0] = gscale
		a := NewAdam(0.001)
		a.Step([]*nn.Param{p})
		got := math.Abs(float64(p.W.Data[0]))
		if math.Abs(got-0.001) > 1e-4 {
			t.Fatalf("first step with grad %v moved %v, want ~0.001", gscale, got)
		}
	}
}

func TestMomentumAcceleratesOnConstantGradient(t *testing.T) {
	plain := quadParam(1)
	mom := quadParam(1)
	sgd := NewSGD(0.01, 0)
	sgdM := NewSGD(0.01, 0.9)
	for i := 0; i < 10; i++ {
		plain.Grad.Data[0] = 1
		mom.Grad.Data[0] = 1
		sgd.Step([]*nn.Param{plain})
		sgdM.Step([]*nn.Param{mom})
	}
	if !(mom.W.Data[0] < plain.W.Data[0]) {
		t.Fatalf("momentum should travel farther: %v vs %v", mom.W.Data[0], plain.W.Data[0])
	}
}

func TestResetClearsState(t *testing.T) {
	p := quadParam(1)
	a := NewAdam(0.1)
	p.Grad.Data[0] = 1
	a.Step([]*nn.Param{p})
	a.Reset()
	if a.t != 0 || len(a.moment) != 0 {
		t.Fatal("Adam.Reset must clear timestep and moments")
	}
	s := NewSGD(0.1, 0.9)
	s.Step([]*nn.Param{p})
	s.Reset()
	if len(s.velocity) != 0 {
		t.Fatal("SGD.Reset must clear velocity")
	}
}

func TestSetLR(t *testing.T) {
	for _, o := range []Optimizer{NewSGD(0.1, 0), NewAdam(0.1)} {
		o.SetLR(0.42)
		if o.LR() != 0.42 {
			t.Fatalf("%T SetLR not applied", o)
		}
	}
}

func TestStepDecaySchedule(t *testing.T) {
	sched := StepDecay(0.5, 10)
	cases := []struct {
		step int
		want float64
	}{{0, 1}, {9, 1}, {10, 0.5}, {19, 0.5}, {20, 0.25}}
	for _, c := range cases {
		if got := sched(c.step, 1); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("sched(%d) = %v, want %v", c.step, got, c.want)
		}
	}
	// Non-positive interval means constant.
	if got := StepDecay(0.5, 0)(100, 3); got != 3 {
		t.Fatalf("zero-interval decay = %v, want 3", got)
	}
	o := NewSGD(1, 0)
	ApplySchedule(o, sched, 10, 1)
	if o.LR() != 0.5 {
		t.Fatalf("ApplySchedule gave %v", o.LR())
	}
}

// Training an actual tiny network with each optimizer must reduce the loss —
// an end-to-end sanity check of the Param wiring.
func TestOptimizersReduceNetworkLoss(t *testing.T) {
	for name, mk := range map[string]func() Optimizer{
		"sgd":  func() Optimizer { return NewSGD(0.05, 0.9) },
		"adam": func() Optimizer { return NewAdam(0.01) },
	} {
		rng := rand.New(rand.NewSource(5))
		net := nn.MLP("opt-"+name, []int{3, 16, 1}, nn.ActTanh, nn.ActNone, rng)
		o := mk()
		x := tensor.New(32, 3)
		tensor.FillGaussian(x, rng, 0, 1)
		target := tensor.New(32, 1)
		for i := 0; i < 32; i++ {
			v := x.At(i, 0)*x.At(i, 1) + x.At(i, 2)
			target.Set(i, 0, v)
		}
		first, _ := nn.MSE(net.Forward(x, false), target)
		for i := 0; i < 150; i++ {
			net.ZeroGrad()
			pred := net.Forward(x, true)
			_, dy := nn.MSE(pred, target)
			net.Backward(dy)
			o.Step(net.Params())
		}
		last, _ := nn.MSE(net.Forward(x, false), target)
		if last > first*0.5 {
			t.Fatalf("%s: loss %g -> %g, wanted at least 2x reduction", name, first, last)
		}
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	net := nn.MLP("bench", []int{128, 256, 128}, nn.ActReLU, nn.ActNone, rng)
	for _, p := range net.Params() {
		tensor.FillGaussian(p.Grad, rng, 0, 0.01)
	}
	a := NewAdam(0.001)
	params := net.Params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Step(params)
	}
}
