package jag

// The paper used a spectral design-of-experiments approach (Kailkhura et al.)
// to place 10M+1M simulations densely in the 5-D parameter space. We
// substitute the Halton low-discrepancy sequence: like the spectral design
// it covers the space far more uniformly than i.i.d. sampling, it is
// deterministic, and any prefix is itself well spread — which matters
// because the dataset is written to bundle files in generation order and
// partitioned contiguously across trainers.

// haltonBases are the first five primes, one radical-inverse base per input
// dimension.
var haltonBases = [InputDim]int{2, 3, 5, 7, 11}

// haltonSkip discards the first few sequence points, which are degenerate
// (0, 1/2, ...) and would cluster early samples.
const haltonSkip = 20

// RadicalInverse returns the base-b radical inverse of i, the Halton
// coordinate in [0,1).
func RadicalInverse(i, b int) float64 {
	inv := 1.0 / float64(b)
	f := inv
	var r float64
	for i > 0 {
		r += f * float64(i%b)
		i /= b
		f *= inv
	}
	return r
}

// InputAt returns the i-th point of the 5-D sampling plan. Points are
// deterministic, dense, and any contiguous range is roughly uniform over the
// cube.
func InputAt(i int) [InputDim]float64 {
	var x [InputDim]float64
	for d := 0; d < InputDim; d++ {
		x[d] = RadicalInverse(i+1+haltonSkip, haltonBases[d])
	}
	return x
}

// SimulateAt runs the simulator on the i-th plan point.
func SimulateAt(cfg Config, i int) *Sample { return Simulate(cfg, InputAt(i)) }

// Plan materializes plan points [start, start+n).
func Plan(start, n int) [][InputDim]float64 {
	out := make([][InputDim]float64, n)
	for k := range out {
		out[k] = InputAt(start + k)
	}
	return out
}
