package nn

import (
	"encoding/binary"
	"fmt"
)

// MarshalNetworks serializes a set of networks into one buffer — the LTFB
// exchange payload (Figure 6b ships the generator-side networks together):
//
//	magic "NNS1" | uint32 netCount | netCount × (uint32 len | weights blob)
func MarshalNetworks(nets []*Network) []byte {
	buf := []byte("NNS1")
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nets)))
	for _, n := range nets {
		w := n.MarshalWeights()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w)))
		buf = append(buf, w...)
	}
	return buf
}

// UnmarshalNetworks loads a MarshalNetworks buffer into nets, which must
// match in count and per-network architecture.
func UnmarshalNetworks(nets []*Network, buf []byte) error {
	if len(buf) < 8 || string(buf[:4]) != "NNS1" {
		return fmt.Errorf("nn: network-set buffer missing magic")
	}
	count := int(binary.LittleEndian.Uint32(buf[4:8]))
	if count != len(nets) {
		return fmt.Errorf("nn: buffer holds %d networks, want %d", count, len(nets))
	}
	off := 8
	for i, n := range nets {
		if len(buf) < off+4 {
			return fmt.Errorf("nn: network-set buffer truncated at net %d", i)
		}
		l := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if len(buf) < off+l {
			return fmt.Errorf("nn: network-set buffer truncated in net %d", i)
		}
		if err := n.UnmarshalWeights(buf[off : off+l]); err != nil {
			return fmt.Errorf("nn: net %d (%s): %w", i, n.Name, err)
		}
		off += l
	}
	if off != len(buf) {
		return fmt.Errorf("nn: network-set buffer has %d trailing bytes", len(buf)-off)
	}
	return nil
}
