package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The operator docs are part of the contract: a moved file or a
// renamed doc must fail tier-1, not rot silently. This test walks
// every markdown file in the repository root and docs/ and verifies
// that each relative link target exists on disk (external URLs and
// intra-page anchors are out of scope). CI additionally smoke-runs the
// commands the docs show.

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocLinksResolve(t *testing.T) {
	var docs []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, matches...)
	}
	if len(docs) < 6 {
		t.Fatalf("glob found only %v — doc layout moved?", docs)
	}
	for _, doc := range docs {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("doc named by the link check is missing: %v", err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // file.md#anchor -> file.md
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", doc, m[1], err)
			}
		}
	}
}

// The docs promise specific test and figure entry points by name; keep
// the names honest.
func TestDocNamedEntryPointsExist(t *testing.T) {
	for file, needles := range map[string][]string{
		"capacity_test.go":              {"TestServingCapacityModelVsMeasured"},
		"internal/serve/probe.go":       {"func CostProbe"},
		"internal/perfmodel/serving.go": {"type ServingScenario", "func FigureS1"},
		"cmd/figures/main.go":           {`want("S1")`},
		// docs/OBSERVABILITY.md's contract surface.
		"internal/serve/metrics.go":     {"func MetricsHandler", "jag_request_latency_seconds", "jag_stage_latency_seconds"},
		"internal/serve/stats.go":       {`StageQueueWait = "queue_wait"`, `StageEncode = "encode"`},
		"internal/serve/serve.go":       {"func (s *Server) CallTrace"},
		"internal/metrics/histogram.go": {"func LatencyBuckets"},
		"cmd/benchsnap/main.go":         {"jag-bench/v1"},
		"cmd/jagserve/main.go":          {`"debug-addr"`, `"log-format"`},
		// docs/FLEET.md's contract surface: the proxy library, its CLI
		// flags, the typed retry classification, the fleet capacity
		// model, and the tier-1 fleet validation.
		"internal/proxy/proxy.go":     {"func New", "jag_proxy_health_transitions_total"},
		"cmd/jagproxy/main.go":        {`"backend"`, `"hedge-after"`, `"rate"`},
		"internal/serve/client.go":    {"type StatusError", "func RetryableStatus"},
		"internal/perfmodel/fleet.go": {"type FleetScenario"},
		"fleet_test.go":               {"TestFleetCapacityModelVsMeasured", "TestFleetSurvivesBackendKill"},
		"bench_test.go":               {"func BenchmarkProxyOverhead"},
		// docs/STATIC_ANALYSIS.md's contract surface: the analyzer
		// suite, its CLI, the tier-1 twin of the CI gate, and the test
		// that stages the leak acquirerelease exists to catch.
		"cmd/jaglint/main.go":             {`"list"`, `"only"`},
		"internal/lint/lint.go":           {"func All", "lint:ignore"},
		"internal/lint/lint_test.go":      {"func TestSuiteCleanOnRepo"},
		"internal/serve/registry_test.go": {"func TestReplaceLeakedAcquireForcesClose"},
		".github/workflows/ci.yml":        {"static-analysis:", "race-stress:", "gofmt -s -l", "examples/fleet", "ProxyOverhead"},
	} {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, needle := range needles {
			if !strings.Contains(string(body), needle) {
				t.Errorf("%s no longer contains %q, but the docs reference it", file, needle)
			}
		}
	}
}
