package serve

import (
	"fmt"
	"time"

	"repro/internal/tensor"
)

// CostProbe calibrates the serving capacity model against the running
// binary. The perfmodel serving scenario (internal/perfmodel) predicts
// p50/p99 latency and sustainable QPS from two constants — the fixed
// cost of one forward-pass dispatch and the marginal cost of one batch
// row — and those constants are host- and model-specific: GEMM
// throughput, allocator behaviour, and cache effects all move them.
// Rather than guessing, the probe times the real model the way the
// serving worker runs it (gather rows into a batch matrix, run the
// method, scatter rows back out) and fits the affine cost model
//
//	t(B) = PassSec + B·RowSec
//
// from measured pass times at batch sizes 1 and maxBatch. Minimum-of-
// repetitions timing keeps scheduler noise out of the fit, the same way
// benchmarking harnesses do.

// ProbeResult is the calibrated cost of one model method on this host.
type ProbeResult struct {
	// Method is the probed model method.
	Method string
	// PassSec is the fixed cost of one forward-pass dispatch, seconds:
	// what a batch pays once regardless of its row count (allocation,
	// scheduling, and — when the server is configured with
	// Config.PassOverhead — the modeled kernel-launch cost, which the
	// caller must add separately since the probe times the bare model).
	PassSec float64
	// RowSec is the marginal cost of one batch row, seconds: GEMM work
	// plus the gather/scatter copies the serving worker performs.
	RowSec float64
	// Passes is the number of timed forward passes behind the fit.
	Passes int
}

// Cost returns the modeled duration of one forward pass of b rows.
func (p ProbeResult) Cost(b int) float64 { return p.PassSec + float64(b)*p.RowSec }

// QPS returns the sustainable row throughput the fit implies for a
// server flushing full batches of maxBatch rows across workers parallel
// execution units: workers·B/t(B). It is the number jagserve -probe
// publishes via Server.SetCapacityQPS for fleet routing, and matches
// perfmodel.ServingScenario.MaxQPS at zero cache hit rate.
func (p ProbeResult) QPS(maxBatch, workers int) float64 {
	if maxBatch < 1 || workers < 1 {
		return 0
	}
	c := p.Cost(maxBatch)
	if c <= 0 {
		return 0
	}
	return float64(workers) * float64(maxBatch) / c
}

// One batch size's timing loop runs at least probeMinReps passes and
// keeps sampling until probeBudget has elapsed, so a fast model gets
// many samples behind its minimum while probing a slow model stays
// bounded.
const (
	probeMinReps = 5
	probeBudget  = 150 * time.Millisecond
)

// CostProbe times method on m at batch sizes 1 and maxBatch and returns
// the fitted per-pass and per-row costs. The timed loop reproduces the
// serving worker's data path — input rows copied into a fresh batch
// matrix, one Run call, output rows copied back out — so batch-assembly
// overhead lands in the constants instead of being lost. Inputs are
// mid-cube (0.5 everywhere), matching the reload canary; forward-pass
// cost does not depend on the input values, only the shapes.
func CostProbe(m Model, method string, maxBatch int) (ProbeResult, error) {
	dims, ok := m.Dims()[method]
	if !ok {
		return ProbeResult{}, fmt.Errorf("%w %q", ErrUnknownMethod, method)
	}
	if maxBatch < 2 {
		return ProbeResult{}, fmt.Errorf("serve: probe needs maxBatch >= 2, got %d", maxBatch)
	}
	small, n1, err := timePass(m, method, dims, 1)
	if err != nil {
		return ProbeResult{}, err
	}
	large, n2, err := timePass(m, method, dims, maxBatch)
	if err != nil {
		return ProbeResult{}, err
	}
	row := (large - small) / float64(maxBatch-1)
	if row < 0 {
		// A model whose large batch timed faster than its single row is
		// pure noise at this scale; fold everything into the per-row
		// term so capacity stays finite.
		row = large / float64(maxBatch)
	}
	pass := small - row
	if pass < 0 {
		pass = 0
	}
	return ProbeResult{Method: method, PassSec: pass, RowSec: row, Passes: n1 + n2}, nil
}

// timePass returns the minimum observed duration, in seconds, of one
// worker-shaped forward pass of b rows, and how many passes it timed.
func timePass(m Model, method string, d Dims, b int) (float64, int, error) {
	rows := make([][]float32, b)
	for i := range rows {
		rows[i] = make([]float32, d.In)
		for j := range rows[i] {
			rows[i][j] = 0.5
		}
	}
	out := make([]float32, d.Out)
	best := 0.0
	reps := 0
	for start := time.Now(); reps < probeMinReps || time.Since(start) < probeBudget; reps++ {
		t0 := time.Now()
		x := tensor.New(b, d.In)
		for i, r := range rows {
			copy(x.Row(i), r)
		}
		y, err := m.Run(method, x)
		if err != nil {
			return 0, reps, fmt.Errorf("serve: probe %s: %w", method, err)
		}
		for i := 0; i < b; i++ {
			copy(out, y.Row(i))
		}
		el := time.Since(t0).Seconds()
		if reps == 0 || el < best {
			best = el
		}
		if reps >= 10_000 { // tiny models: enough signal, stop burning CPU
			break
		}
	}
	return best, reps, nil
}
