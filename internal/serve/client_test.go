package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestClientWholeRequestErrors covers the non-2xx paths where the
// whole call fails rather than individual rows: unknown model and
// unknown method must come back as an error carrying the server's
// detail and status, with no outputs and no row errors.
func TestClientWholeRequestErrors(t *testing.T) {
	ts, _ := newV1TestServer(t)
	ctx := context.Background()
	c := NewClient(ts.URL)

	outs, rowErrs, err := c.Call(ctx, "ghost", MethodPredict, [][]float32{testInput(0)})
	if err == nil || outs != nil || rowErrs != nil {
		t.Fatalf("unknown model: outs=%v rowErrs=%v err=%v, want error only", outs, rowErrs, err)
	}
	if !strings.Contains(err.Error(), "unknown model") || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown-model error lost the server detail: %v", err)
	}

	if _, _, err := c.Call(ctx, "alpha", "embed", [][]float32{testInput(0)}); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown method error = %v, want 404 detail", err)
	}

	// GET helpers share the error path.
	if _, err := c.Stats(ctx, "ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Stats unknown model error = %v", err)
	}
}

// TestClientNon2xxOpaqueBody covers a reply that is neither a
// PredictResponse nor the {"error": ...} convention — a proxy error
// page, say. The client must fail with the raw status, not decode
// garbage into outputs.
func TestClientNon2xxOpaqueBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(http.StatusBadGateway)
		_, _ = w.Write([]byte("<html>upstream sad</html>"))
	}))
	defer ts.Close()
	_, _, err := NewClient(ts.URL).Call(context.Background(), "m", MethodPredict, [][]float32{{1}})
	if err == nil || !strings.Contains(err.Error(), "502") {
		t.Fatalf("opaque 502 error = %v, want HTTP 502 detail", err)
	}
}

// TestClientTruncatedBinaryResponse feeds the client a tensor-framed
// reply whose payload stops short of the header's claim, and one whose
// row count exceeds the request's: both must surface as decode errors,
// never a short read treated as success.
func TestClientTruncatedBinaryResponse(t *testing.T) {
	frame := func(rows, cols uint32, payloadFloats int) []byte {
		buf := make([]byte, frameHeader+4*payloadFloats)
		copy(buf, frameMagic)
		binary.LittleEndian.PutUint32(buf[4:], frameVersion)
		binary.LittleEndian.PutUint32(buf[8:], rows)
		binary.LittleEndian.PutUint32(buf[12:], cols)
		return buf
	}
	cases := map[string][]byte{
		"truncated payload": frame(2, 3, 2), // claims 6 floats, ships 2
		"excess rows":       frame(3, 1, 3), // 3 rows for a 1-input call
		"bad magic":         append([]byte("WRNG"), frame(1, 1, 1)[4:]...),
	}
	for name, body := range cases {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", ContentTypeTensor)
			_, _ = w.Write(body)
		}))
		c := NewClient(ts.URL)
		c.Binary = true
		_, _, err := c.Call(context.Background(), "m", MethodPredict, [][]float32{{0.5}})
		ts.Close()
		if err == nil {
			t.Fatalf("%s: truncated/overlong binary reply accepted", name)
		}
	}
}

// TestClientJSONRowErrorAlignment drives a mixed batch through the
// real server over both transports: the reply must keep outputs and
// row errors aligned with the request rows, and an all-failed batch
// (non-200 status but a well-formed body) must still decode into row
// errors rather than a whole-request error.
func TestClientJSONRowErrorAlignment(t *testing.T) {
	ts, _ := newV1TestServer(t)
	ctx := context.Background()

	for _, useBinary := range []bool{false, true} {
		// Each transport gets the poison it can actually carry: JSON
		// cannot marshal NaN (the client fails before the wire), so it
		// ships a wrong-width row; the rectangular binary frame cannot
		// ship a ragged row, so it carries the NaN.
		var bad []float32
		if useBinary {
			bad = testInput(1)
			bad[0] = float32(math.NaN())
		} else {
			bad = []float32{0.25}
		}
		c := NewClient(ts.URL)
		c.Binary = useBinary
		outs, rowErrs, err := c.Call(ctx, "alpha", MethodPredict,
			[][]float32{testInput(0), bad, testInput(2)})
		if err != nil {
			t.Fatalf("binary=%t: %v", useBinary, err)
		}
		if len(outs) != 3 || len(rowErrs) != 3 {
			t.Fatalf("binary=%t: %d outputs / %d row errors, want 3/3", useBinary, len(outs), len(rowErrs))
		}
		if outs[0] == nil || outs[1] != nil || outs[2] == nil {
			t.Fatalf("binary=%t: outputs not aligned around the failed row", useBinary)
		}
		if rowErrs[0] != nil || rowErrs[1] == nil || rowErrs[2] != nil {
			t.Fatalf("binary=%t: row errors not aligned: %+v", useBinary, rowErrs)
		}
		if rowErrs[1].Status != http.StatusBadRequest {
			t.Fatalf("binary=%t: NaN row status %d, want 400", useBinary, rowErrs[1].Status)
		}

		// All rows failed: top-level status is 400, but the aligned
		// errors must still come through as row errors.
		outs, rowErrs, err = c.Call(ctx, "alpha", MethodPredict, [][]float32{bad, bad})
		if err != nil {
			t.Fatalf("binary=%t all-failed: %v", useBinary, err)
		}
		if len(rowErrs) != 2 || rowErrs[0] == nil || rowErrs[1] == nil {
			t.Fatalf("binary=%t all-failed: row errors %+v", useBinary, rowErrs)
		}
		if outs[0] != nil || outs[1] != nil {
			t.Fatalf("binary=%t all-failed: outputs %+v, want all null", useBinary, outs)
		}
	}
}

// TestClientContextCancelMidRequest cancels the caller's context while
// the server is still holding the request: the call must return the
// context's error instead of hanging on the reply.
func TestClientContextCancelMidRequest(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer ts.Close()
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := NewClient(ts.URL).Call(ctx, "m", MethodPredict, [][]float32{{0.5}})
	if err == nil {
		t.Fatal("cancelled call returned success")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled call error = %v, want context deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled call did not return promptly")
	}
}

// TestClientBinaryAcceptHeader pins the transport negotiation a binary
// client advertises: prefer the frame but accept the JSON fallback, so
// servers can always deliver row errors.
func TestClientBinaryAcceptHeader(t *testing.T) {
	var got http.Header
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Clone()
		_, _ = w.Write([]byte(`{"outputs":[[1]]}`))
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Binary = true
	c.Priority = Bulk
	c.DeadlineMs = 250
	if _, _, err := c.Call(context.Background(), "m", MethodPredict, [][]float32{{0.5}}); err != nil {
		t.Fatal(err)
	}
	if ct := got.Get("Content-Type"); !strings.HasPrefix(ct, ContentTypeTensor) {
		t.Fatalf("binary request Content-Type %q", ct)
	}
	accept := got.Get("Accept")
	if !strings.Contains(accept, ContentTypeTensor) || !strings.Contains(accept, "application/json") {
		t.Fatalf("binary Accept %q must allow the JSON fallback", accept)
	}
	if got.Get(PriorityHeader) != "bulk" || got.Get(DeadlineHeader) != "250" {
		t.Fatalf("option headers lost: priority=%q deadline=%q",
			got.Get(PriorityHeader), got.Get(DeadlineHeader))
	}
}

// TestClientBadFrameRequest: encoding a ragged input batch fails
// client-side before anything goes on the wire.
func TestClientBadFrameRequest(t *testing.T) {
	c := NewClient("http://unreachable.invalid")
	c.Binary = true
	if _, _, err := c.Call(context.Background(), "m", MethodPredict, [][]float32{{1, 2}, {3}}); err == nil ||
		!strings.Contains(err.Error(), "ragged") {
		t.Fatalf("ragged batch error = %v", err)
	}
}
