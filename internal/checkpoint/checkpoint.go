// Package checkpoint persists model weights to disk and restores them —
// LBANN's checkpoint/restart facility, which long LTFB campaigns on shared
// machines rely on. A checkpoint stores the serialized weights of a set of
// networks together with a step counter, so a training session (or a single
// tournament winner) can resume where it stopped.
//
// Format: magic "CKP1" | uint64 step | network-set blob (nn.MarshalNetworks).
// Files are written atomically (temp file + rename), so a crash mid-write
// never corrupts the previous checkpoint.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/nn"
)

const magic = "CKP1"

// Save writes the networks and step counter to path atomically.
func Save(path string, step int64, nets []*nn.Network) error {
	buf := []byte(magic)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(step))
	buf = append(buf, nn.MarshalNetworks(nets)...)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// Fingerprint returns the hex SHA-256 of the file at path — the
// content identity a checkpoint watcher compares across polls. Because
// Save is atomic (temp file + rename), a fingerprint never observes a
// half-written checkpoint: it hashes either the old bytes or the new
// ones.
func Fingerprint(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("checkpoint: fingerprint %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Load restores a checkpoint into nets (which must match the saved
// architecture) and returns the stored step counter.
func Load(path string, nets []*nn.Network) (step int64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	if len(buf) < 12 || string(buf[:4]) != magic {
		return 0, fmt.Errorf("checkpoint: %s is not a checkpoint file", path)
	}
	step = int64(binary.LittleEndian.Uint64(buf[4:12]))
	if err := nn.UnmarshalNetworks(nets, buf[12:]); err != nil {
		return 0, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return step, nil
}
