// Package nn implements the neural-network engine used by the reproduction:
// fully-connected layers, activations, losses, initializers, and network
// (de)serialization. It corresponds to LBANN's model layer: a model is a DAG
// of tensor operations with trainable weights; here the paper's networks are
// all feed-forward stacks (Section II-D calls each CycleGAN component "a
// standard fully-connected neural network"), so the DAG is a sequence.
//
// Mini-batches are tensor.Matrix values with one sample per row. Forward
// caches whatever each layer needs; Backward consumes the cache, accumulates
// parameter gradients, and returns the gradient with respect to the input.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is one trainable tensor together with its gradient accumulator.
// Optimizers update W in place; Backward adds into Grad.
type Param struct {
	Name string
	W    *tensor.Matrix
	Grad *tensor.Matrix
}

// newParam allocates a parameter and a zeroed gradient of the same shape.
func newParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
}

// Layer is one differentiable operation. Forward must be called before
// Backward for the same mini-batch. Layers are not safe for concurrent use;
// each trainer rank owns its own replica.
type Layer interface {
	// Forward computes the layer output for input x. training distinguishes
	// train-time behaviour (e.g. dropout) from evaluation.
	Forward(x *tensor.Matrix, training bool) *tensor.Matrix
	// Backward receives dLoss/dOutput and returns dLoss/dInput, adding any
	// parameter gradients into Params' Grad fields.
	Backward(dy *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// OutDim returns the layer's output width given its input width.
	OutDim(in int) int
}

// Linear is a fully-connected layer: y = x·W + b with W of shape In×Out.
type Linear struct {
	In, Out int
	Weight  *Param
	Bias    *Param
	x       *tensor.Matrix // cached input for Backward
}

// NewLinear creates a Linear layer with Glorot-uniform weights and zero bias.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In:     in,
		Out:    out,
		Weight: newParam(fmt.Sprintf("linear_%dx%d.w", in, out), in, out),
		Bias:   newParam(fmt.Sprintf("linear_%dx%d.b", in, out), 1, out),
	}
	GlorotUniform(l.Weight.W, rng)
	return l
}

// Forward computes y = x·W + b and caches x.
func (l *Linear) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear expects width %d, got %d", l.In, x.Cols))
	}
	l.x = x
	y := tensor.New(x.Rows, l.Out)
	tensor.MatMul(y, x, l.Weight.W)
	tensor.AddRowVector(y, l.Bias.W.Data)
	return y
}

// Backward accumulates dW = xᵀ·dy and db = column-sums(dy), and returns
// dx = dy·Wᵀ.
func (l *Linear) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	tensor.Gemm(l.Weight.Grad, 1, l.x, tensor.Trans, dy, tensor.NoTrans, 1)
	cs := tensor.ColSums(dy)
	for j, v := range cs {
		l.Bias.Grad.Data[j] += v
	}
	dx := tensor.New(dy.Rows, l.In)
	tensor.Gemm(dx, 1, dy, tensor.NoTrans, l.Weight.W, tensor.Trans, 0)
	return dx
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// OutDim returns the layer's fixed output width.
func (l *Linear) OutDim(int) int { return l.Out }

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask *tensor.Matrix // 1 where input > 0
}

// Forward computes max(0, x).
func (r *ReLU) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	y := tensor.New(x.Rows, x.Cols)
	r.mask = tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			r.mask.Data[i] = 1
		}
	}
	return y
}

// Backward gates dy by the forward-pass activation mask.
func (r *ReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(dy.Rows, dy.Cols)
	tensor.Hadamard(dx, dy, r.mask)
	return dx
}

// Params returns nil: ReLU has no trainable state.
func (r *ReLU) Params() []*Param { return nil }

// OutDim is the identity for activations.
func (r *ReLU) OutDim(in int) int { return in }

// LeakyReLU applies x for x>0 and Alpha·x otherwise; the paper-standard GAN
// activation.
type LeakyReLU struct {
	Alpha float32
	x     *tensor.Matrix
}

// Forward applies the leaky rectifier and caches the input.
func (l *LeakyReLU) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	l.x = x
	y := tensor.New(x.Rows, x.Cols)
	a := l.Alpha
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		} else {
			y.Data[i] = a * v
		}
	}
	return y
}

// Backward scales dy by 1 or Alpha depending on the cached input sign.
func (l *LeakyReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(dy.Rows, dy.Cols)
	a := l.Alpha
	for i, v := range l.x.Data {
		if v > 0 {
			dx.Data[i] = dy.Data[i]
		} else {
			dx.Data[i] = a * dy.Data[i]
		}
	}
	return dx
}

// Params returns nil: LeakyReLU has no trainable state.
func (l *LeakyReLU) Params() []*Param { return nil }

// OutDim is the identity for activations.
func (l *LeakyReLU) OutDim(in int) int { return in }

// Tanh applies the hyperbolic tangent elementwise.
type Tanh struct {
	y *tensor.Matrix
}

// Forward computes tanh(x) and caches the output.
func (t *Tanh) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	y := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = float32(math.Tanh(float64(v)))
	}
	t.y = y
	return y
}

// Backward computes dy·(1 - y²) using the cached output.
func (t *Tanh) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(dy.Rows, dy.Cols)
	for i, v := range t.y.Data {
		dx.Data[i] = dy.Data[i] * (1 - v*v)
	}
	return dx
}

// Params returns nil: Tanh has no trainable state.
func (t *Tanh) Params() []*Param { return nil }

// OutDim is the identity for activations.
func (t *Tanh) OutDim(in int) int { return in }

// Sigmoid applies the logistic function elementwise.
type Sigmoid struct {
	y *tensor.Matrix
}

// Forward computes σ(x) and caches the output.
func (s *Sigmoid) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	y := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	s.y = y
	return y
}

// Backward computes dy·y·(1-y) using the cached output.
func (s *Sigmoid) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(dy.Rows, dy.Cols)
	for i, v := range s.y.Data {
		dx.Data[i] = dy.Data[i] * v * (1 - v)
	}
	return dx
}

// Params returns nil: Sigmoid has no trainable state.
func (s *Sigmoid) Params() []*Param { return nil }

// OutDim is the identity for activations.
func (s *Sigmoid) OutDim(in int) int { return in }

// Dropout randomly zeroes a fraction Rate of activations at train time and
// rescales survivors by 1/(1-Rate) (inverted dropout); at evaluation it is
// the identity.
type Dropout struct {
	Rate float64
	Rng  *rand.Rand
	mask *tensor.Matrix
}

// Forward applies inverted dropout when training, identity otherwise.
func (d *Dropout) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	if !training || d.Rate <= 0 {
		d.mask = nil
		return x
	}
	keep := float32(1 / (1 - d.Rate))
	d.mask = tensor.New(x.Rows, x.Cols)
	y := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.Rng.Float64() >= d.Rate {
			d.mask.Data[i] = keep
			y.Data[i] = v * keep
		}
	}
	return y
}

// Backward gates dy by the dropout mask (identity if the last Forward was an
// evaluation pass).
func (d *Dropout) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return dy
	}
	dx := tensor.New(dy.Rows, dy.Cols)
	tensor.Hadamard(dx, dy, d.mask)
	return dx
}

// Params returns nil: Dropout has no trainable state.
func (d *Dropout) Params() []*Param { return nil }

// OutDim is the identity for dropout.
func (d *Dropout) OutDim(in int) int { return in }
