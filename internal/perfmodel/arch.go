// Package perfmodel regenerates the paper's epoch-time results (Figures 9,
// 10 and 11) on the simulated substrate. It composes three ingredients:
//
//   - an architecture cost model (this file) that derives per-step GEMM
//     flops and per-phase gradient-allreduce bytes from the paper-scale
//     CycleGAN layer dimensions;
//   - the netsim fabric model for compute, allreduce and data-store shuffle
//     costs on Lassen's NVLink/InfiniBand topology;
//   - the des/pfs file-system simulation for naive ingestion and data-store
//     preloading, including the GPFS contention that degrades preload time
//     at 64 trainers.
//
// Absolute seconds are not expected to match the paper (the substrate is a
// model, not the machine); the calibration targets are the paper's ratios:
// 9.36× data-parallel speedup at 16 GPUs, data-store benefits of 7.73×
// (1 GPU) and 1.31×/1.43×/1.10× (16 GPUs), and LTFB's 70.2× / ~109%
// parallel efficiency at 64 trainers. See EXPERIMENTS.md for measured
// values.
//
// serving.go extends the same treatment to the inference path: an
// analytical model of internal/serve's batching queue (batch-window
// fill, per-pass cost, replica parallelism, cache hit rate, priority
// lanes) that predicts sustainable QPS and p50/p99 latency per replica
// count and batch window — calibrated by serve.CostProbe on the running
// binary rather than by the paper, and validated against a measured
// in-process benchmark by the tier-1 capacity test.
package perfmodel

// Arch captures the paper-scale CycleGAN layer dimensions (Section II-D;
// each component is a fully-connected stack). The default instance is sized
// for the full 64×64×12-image output bundle.
type Arch struct {
	InputDim  int
	OutputDim int
	LatentDim int
	// Hidden widths; the decoder mirrors the encoder.
	EncoderHidden []int
	ForwardHidden []int
	InverseHidden []int
	DiscHidden    []int
}

// PaperArch returns the architecture used for the performance model: the
// full-resolution output bundle (12 images at 64×64 plus 15 scalars =
// 49,167 outputs) with a 20-D latent space, sized to land in the parameter
// regime implied by the paper's epoch times.
func PaperArch() Arch {
	return Arch{
		InputDim:      5,
		OutputDim:     49167,
		LatentDim:     20,
		EncoderHidden: []int{768},
		ForwardHidden: []int{256, 256},
		InverseHidden: []int{128},
		DiscHidden:    []int{256, 128},
	}
}

// mlpParams returns the trainable scalar count of a fully-connected stack
// with the given layer widths (weights plus biases).
func mlpParams(dims []int) int {
	total := 0
	for i := 0; i+1 < len(dims); i++ {
		total += dims[i]*dims[i+1] + dims[i+1]
	}
	return total
}

func (a Arch) encDims() []int {
	d := append([]int{a.OutputDim}, a.EncoderHidden...)
	return append(d, a.LatentDim)
}

func (a Arch) decDims() []int {
	d := []int{a.LatentDim}
	for i := len(a.EncoderHidden) - 1; i >= 0; i-- {
		d = append(d, a.EncoderHidden[i])
	}
	return append(d, a.OutputDim)
}

func (a Arch) fwdDims() []int {
	d := append([]int{a.InputDim}, a.ForwardHidden...)
	return append(d, a.LatentDim)
}

func (a Arch) invDims() []int {
	d := append([]int{a.LatentDim}, a.InverseHidden...)
	return append(d, a.InputDim)
}

func (a Arch) dscDims() []int {
	d := append([]int{a.LatentDim}, a.DiscHidden...)
	return append(d, 1)
}

// Params returns the per-network trainable parameter counts.
func (a Arch) Params() (enc, dec, fwd, inv, disc int) {
	return mlpParams(a.encDims()), mlpParams(a.decDims()),
		mlpParams(a.fwdDims()), mlpParams(a.invDims()), mlpParams(a.dscDims())
}

// PhaseGradBytes returns the gradient bytes allreduced per training step by
// each of the three phases (autoencoder, discriminator, generator) — one
// float32 per updated parameter.
func (a Arch) PhaseGradBytes() (ae, disc, gen float64) {
	e, d, f, i, ds := a.Params()
	return 4 * float64(e+d), 4 * float64(ds), 4 * float64(f+i+d)
}

// FlopsPerSample returns the GEMM work per sample per training step across
// all three phases. Forward+backward through a dense stack costs ~6 flops
// per parameter per sample (2 forward, 4 backward); forward-only passes
// cost 2.
func (a Arch) FlopsPerSample() float64 {
	e, d, f, i, ds := a.Params()
	ae := 6 * float64(e+d)
	// Discriminator phase: D forward+backward on real and fake batches,
	// plus forward-only passes producing the latents.
	dsc := 2*6*float64(ds) + 2*float64(e) + 2*float64(f)
	// Generator phase: F, G and the decoder forward+backward, plus the
	// discriminator traversed for the adversarial gradient.
	gen := 6*float64(f+i+d) + 6*float64(ds)
	return ae + dsc + gen
}

// TotalGradBytes returns the summed allreduce volume of one step.
func (a Arch) TotalGradBytes() float64 {
	ae, dsc, gen := a.PhaseGradBytes()
	return ae + dsc + gen
}
