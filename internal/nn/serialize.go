package nn

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Weight serialization backs the LTFB model exchange: when two trainers pair
// up they swap generator weights over the communication layer (Figure 6b), so
// a network must round-trip through a flat byte buffer. The format is
// deliberately simple and versioned:
//
//	magic "NNW1" | uint32 paramCount | for each param:
//	  uint32 rows | uint32 cols | rows*cols little-endian float32
//
// Architecture metadata is not encoded; both sides of an exchange construct
// the same architecture locally (as LBANN does) and only weights travel.

const weightsMagic = "NNW1"

// WeightsSize returns the exact byte length MarshalWeights will produce,
// which the performance model uses as the exchange volume.
func (n *Network) WeightsSize() int {
	size := 4 + 4
	for _, p := range n.Params() {
		size += 8 + 4*len(p.W.Data)
	}
	return size
}

// MarshalWeights serializes all parameters into a fresh buffer.
func (n *Network) MarshalWeights() []byte {
	buf := make([]byte, 0, n.WeightsSize())
	buf = append(buf, weightsMagic...)
	params := n.Params()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(params)))
	for _, p := range params {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.W.Rows))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.W.Cols))
		for _, v := range p.W.Data {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return buf
}

// UnmarshalWeights overwrites n's parameters with the contents of buf, which
// must have been produced by MarshalWeights on a network with identical
// architecture. It returns an error (leaving already-copied parameters
// modified) on any mismatch or truncation.
func (n *Network) UnmarshalWeights(buf []byte) error {
	if len(buf) < 8 || string(buf[:4]) != weightsMagic {
		return fmt.Errorf("nn: weight buffer missing %q magic", weightsMagic)
	}
	params := n.Params()
	count := binary.LittleEndian.Uint32(buf[4:8])
	if int(count) != len(params) {
		return fmt.Errorf("nn: weight buffer has %d params, network has %d", count, len(params))
	}
	off := 8
	for _, p := range params {
		if len(buf) < off+8 {
			return fmt.Errorf("nn: weight buffer truncated at param %q header", p.Name)
		}
		rows := int(binary.LittleEndian.Uint32(buf[off:]))
		cols := int(binary.LittleEndian.Uint32(buf[off+4:]))
		off += 8
		if rows != p.W.Rows || cols != p.W.Cols {
			return fmt.Errorf("nn: param %q shape %dx%d in buffer, want %dx%d", p.Name, rows, cols, p.W.Rows, p.W.Cols)
		}
		need := 4 * rows * cols
		if len(buf) < off+need {
			return fmt.Errorf("nn: weight buffer truncated in param %q data", p.Name)
		}
		for i := range p.W.Data {
			p.W.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4*i:]))
		}
		off += need
	}
	if off != len(buf) {
		return fmt.Errorf("nn: weight buffer has %d trailing bytes", len(buf)-off)
	}
	return nil
}
