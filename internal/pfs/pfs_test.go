package pfs

import (
	"math"
	"testing"

	"repro/internal/des"
)

func testParams() Params {
	return Params{
		NumOSTs:            4,
		OSTBandwidth:       100,
		OSTChannels:        1,
		OpenLatency:        1,
		SeekLatency:        0.5,
		ClientBandwidth:    100,
		SaturationInFlight: 2,
		Interference:       1,
	}
}

func TestValidate(t *testing.T) {
	if err := GPFSLike().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testParams()
	bad.NumOSTs = 0
	if bad.Validate() == nil {
		t.Fatal("zero OSTs must be invalid")
	}
	bad = testParams()
	bad.Interference = -1
	if bad.Validate() == nil {
		t.Fatal("negative interference must be invalid")
	}
}

func TestOpenChargesLatency(t *testing.T) {
	sim := des.New()
	fs := New(sim, testParams())
	var done float64
	fs.Open(0, func(tm float64) { done = tm })
	sim.Run()
	if done != 1 {
		t.Fatalf("open completed at %v, want 1", done)
	}
	if fs.Stats().Opens != 1 {
		t.Fatalf("opens = %d", fs.Stats().Opens)
	}
}

func TestSequentialReadBandwidth(t *testing.T) {
	sim := des.New()
	fs := New(sim, testParams())
	var done float64
	fs.ReadSequential(1, 200, func(tm float64) { done = tm })
	sim.Run()
	if math.Abs(done-2) > 1e-9 { // 200 bytes at 100 B/s
		t.Fatalf("read completed at %v, want 2", done)
	}
}

func TestRandomReadAddsSeek(t *testing.T) {
	sim := des.New()
	fs := New(sim, testParams())
	var done float64
	fs.ReadRandom(1, 100, func(tm float64) { done = tm })
	sim.Run()
	if math.Abs(done-1.5) > 1e-9 { // 0.5 seek + 1s transfer
		t.Fatalf("random read completed at %v, want 1.5", done)
	}
}

func TestClientBandwidthFloors(t *testing.T) {
	p := testParams()
	p.ClientBandwidth = 50 // slower than the OST
	sim := des.New()
	fs := New(sim, p)
	var done float64
	fs.ReadSequential(0, 100, func(tm float64) { done = tm })
	sim.Run()
	if math.Abs(done-2) > 1e-9 {
		t.Fatalf("client-capped read completed at %v, want 2", done)
	}
}

func TestSameOSTQueues(t *testing.T) {
	sim := des.New()
	fs := New(sim, testParams())
	var ends []float64
	// Files 0 and 4 map to OST 0 with 4 OSTs.
	fs.ReadSequential(0, 100, func(tm float64) { ends = append(ends, tm) })
	fs.ReadSequential(4, 100, func(tm float64) { ends = append(ends, tm) })
	sim.Run()
	if len(ends) != 2 || ends[0] != 1 || ends[1] != 2 {
		t.Fatalf("same-OST reads did not serialize: %v", ends)
	}
}

func TestDifferentOSTsParallel(t *testing.T) {
	sim := des.New()
	fs := New(sim, testParams())
	var ends []float64
	fs.ReadSequential(0, 100, func(tm float64) { ends = append(ends, tm) })
	fs.ReadSequential(1, 100, func(tm float64) { ends = append(ends, tm) })
	sim.Run()
	if len(ends) != 2 || ends[0] != 1 || ends[1] != 1 {
		t.Fatalf("different OSTs should serve in parallel: %v", ends)
	}
}

func TestInterferenceDegradesBandwidth(t *testing.T) {
	// Submit many concurrent reads to one OST: the later ones (submitted
	// while the queue is past saturation) must be served slower, so the
	// makespan exceeds the no-interference sum.
	p := testParams()
	sim := des.New()
	fs := New(sim, p)
	const n = 8
	for i := 0; i < n; i++ {
		fs.ReadSequential(0, 100, nil)
	}
	end := sim.Run()
	noInterference := float64(n) * 1.0
	if end <= noInterference+0.5 {
		t.Fatalf("makespan %v shows no interference (baseline %v)", end, noInterference)
	}

	// With the interference slope at zero, the makespan is exactly the sum.
	p.Interference = 0
	sim2 := des.New()
	fs2 := New(sim2, p)
	for i := 0; i < n; i++ {
		fs2.ReadSequential(0, 100, nil)
	}
	if end2 := sim2.Run(); math.Abs(end2-noInterference) > 1e-9 {
		t.Fatalf("zero-interference makespan %v, want %v", end2, noInterference)
	}
}

func TestAggregateScalingThenSaturation(t *testing.T) {
	// Total time for clients spread over all OSTs: doubling clients on
	// distinct OSTs up to NumOSTs should not increase makespan; far beyond
	// it, makespan grows.
	p := testParams()
	run := func(clients int) float64 {
		sim := des.New()
		fs := New(sim, p)
		for c := 0; c < clients; c++ {
			fs.ReadSequential(c, 100, nil)
		}
		return sim.Run()
	}
	if t4, t1 := run(4), run(1); t4 > t1+1e-9 {
		t.Fatalf("4 clients on 4 OSTs (%v) slower than 1 (%v)", t4, t1)
	}
	if t32, t4 := run(32), run(4); t32 <= t4 {
		t.Fatalf("32 clients (%v) should exceed 4 clients (%v)", t32, t4)
	}
}

func TestStatsAccumulate(t *testing.T) {
	sim := des.New()
	fs := New(sim, testParams())
	fs.Open(0, nil)
	fs.ReadSequential(0, 100, nil)
	fs.ReadRandom(1, 50, nil)
	sim.Run()
	st := fs.Stats()
	if st.Opens != 1 || st.Reads != 2 || st.BytesRead != 150 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOSTForNegativeAndModulo(t *testing.T) {
	sim := des.New()
	fs := New(sim, testParams())
	if fs.OSTFor(5) != 1 || fs.OSTFor(-5) != 1 {
		t.Fatalf("OSTFor mapping wrong: %d %d", fs.OSTFor(5), fs.OSTFor(-5))
	}
}

func TestNegativeReadPanics(t *testing.T) {
	sim := des.New()
	fs := New(sim, testParams())
	defer func() {
		if recover() == nil {
			t.Fatal("negative byte count must panic")
		}
	}()
	fs.ReadSequential(0, -1, nil)
}
