// Package des is a deterministic discrete-event simulation kernel. The
// reproduction uses it to model the systems side of the paper's evaluation —
// parallel file-system contention, data-store population, and epoch
// timelines — in virtual time, since the physical Lassen machine is not
// available (see README.md's package map for the substitution rationale).
//
// Events fire in non-decreasing time order; ties break by scheduling order,
// so a simulation is a pure function of its inputs. Callbacks run on the
// caller's goroutine inside Run; they may schedule further events.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Sim is one simulation instance. The zero value is not usable; call New.
type Sim struct {
	now   float64
	seq   int64
	queue eventHeap
}

// New returns an empty simulation at time 0.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Schedule runs fn at Now()+delay. Negative delays panic: the past is
// immutable in a DES.
func (s *Sim) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: invalid delay %v", delay))
	}
	s.At(s.now+delay, fn)
}

// At runs fn at absolute time t, which must not precede Now().
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: cannot schedule at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{time: t, seq: s.seq, fn: fn})
}

// Run processes events until the queue is empty and returns the final time.
func (s *Sim) Run() float64 {
	for s.queue.Len() > 0 {
		s.step()
	}
	return s.now
}

// RunUntil processes events with time ≤ t, then advances the clock to t
// (even if idle) and returns the number of events processed.
func (s *Sim) RunUntil(t float64) int {
	n := 0
	for s.queue.Len() > 0 && s.queue[0].time <= t {
		s.step()
		n++
	}
	if t > s.now {
		s.now = t
	}
	return n
}

func (s *Sim) step() {
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.time
	ev.fn()
}

// Pending returns the number of scheduled events not yet fired.
func (s *Sim) Pending() int { return s.queue.Len() }

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Server is a FIFO resource with a fixed number of identical service
// channels (e.g. one OST with k parallel I/O threads). Submit enqueues a
// job with a service duration; the job starts when a channel frees up and
// done fires at completion. Jobs start in submission order.
type Server struct {
	sim    *Sim
	freeAt []float64
	// InFlight counts jobs submitted but not yet completed; resource models
	// use it as the instantaneous load for contention effects.
	InFlight int
}

// NewServer creates a server with the given parallel capacity attached to
// sim. Capacity must be ≥ 1.
func NewServer(sim *Sim, capacity int) *Server {
	if capacity < 1 {
		panic(fmt.Sprintf("des: server capacity %d < 1", capacity))
	}
	return &Server{sim: sim, freeAt: make([]float64, capacity)}
}

// Submit enqueues a job taking dur seconds of service time. done (optional)
// fires at the completion instant with the start and end times.
func (sv *Server) Submit(dur float64, done func(start, end float64)) {
	if dur < 0 || math.IsNaN(dur) {
		panic(fmt.Sprintf("des: invalid service duration %v", dur))
	}
	// Pick the channel that frees earliest.
	best := 0
	for i, t := range sv.freeAt {
		if t < sv.freeAt[best] {
			best = i
		}
	}
	start := sv.freeAt[best]
	if start < sv.sim.now {
		start = sv.sim.now
	}
	end := start + dur
	sv.freeAt[best] = end
	sv.InFlight++
	sv.sim.At(end, func() {
		sv.InFlight--
		if done != nil {
			done(start, end)
		}
	})
}

// FreeAt returns the earliest time a channel becomes available, never before
// Now(); a caller can use it to estimate queueing delay.
func (sv *Server) FreeAt() float64 {
	best := sv.freeAt[0]
	for _, t := range sv.freeAt[1:] {
		if t < best {
			best = t
		}
	}
	if best < sv.sim.now {
		best = sv.sim.now
	}
	return best
}
