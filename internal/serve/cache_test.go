package serve

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestLRUEviction checks capacity enforcement and recency order.
func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.put("a", []float32{1})
	c.put("b", []float32{2})
	if _, ok := c.get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.put("c", []float32{3}) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// TestLRUUpdate checks that re-putting a key refreshes the value
// without growing the cache.
func TestLRUUpdate(t *testing.T) {
	c := newLRU(2)
	c.put("a", []float32{1})
	c.put("a", []float32{9})
	y, ok := c.get("a")
	if !ok || y[0] != 9 {
		t.Fatalf("got %v, want [9]", y)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

// TestQuantKey checks that nearby inputs share a key only within the
// quantization cell.
func TestQuantKey(t *testing.T) {
	a := []float32{0.5, 0.1, 0.9, 0.3, 0.7}
	b := []float32{0.5 + 1e-9, 0.1, 0.9, 0.3, 0.7}
	if quantKey(a, 1e-3) != quantKey(b, 1e-3) {
		t.Fatal("inputs in the same cell got different keys")
	}
	c := []float32{0.6, 0.1, 0.9, 0.3, 0.7}
	if quantKey(a, 1e-3) == quantKey(c, 1e-3) {
		t.Fatal("distinct inputs collided")
	}
	if quantKey(a, 1e-3) == quantKey(a[:4], 1e-3) {
		t.Fatal("different lengths collided")
	}
	// Coordinates far outside the unit cube must stay distinct (an
	// integer cell index would overflow and collapse them).
	big1 := []float32{1e30, 0.1, 0.9, 0.3, 0.7}
	big2 := []float32{2e30, 0.1, 0.9, 0.3, 0.7}
	if quantKey(big1, 1e-6) == quantKey(big2, 1e-6) {
		t.Fatal("huge distinct inputs collided")
	}
}

// TestQuantKeyNegativeZero is a regression test for -0/+0 cell
// splitting: math.Round of a small negative yields -0, whose float32
// bit pattern differs from +0, so identical grid cells straddling zero
// used to map to different keys and never share a cache entry.
func TestQuantKeyNegativeZero(t *testing.T) {
	neg := []float32{-1e-9, 0.1, 0.9, 0.3, 0.7}
	pos := []float32{1e-9, 0.1, 0.9, 0.3, 0.7}
	if quantKey(neg, 1e-3) != quantKey(pos, 1e-3) {
		t.Fatal("cells straddling zero got different keys")
	}
	nz := []float32{float32(math.Copysign(0, -1)), 0, 0, 0, 0}
	if quantKey(nz, 1e-6) != quantKey(make([]float32, 5), 1e-6) {
		t.Fatal("-0 and +0 inputs got different keys")
	}
}

// TestLRUConcurrent exercises the cache from many goroutines for the
// race detector.
func TestLRUConcurrent(t *testing.T) {
	c := newLRU(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%64)
				if y, ok := c.get(key); ok && len(y) != 1 {
					t.Errorf("corrupt value for %s", key)
					return
				}
				c.put(key, []float32{float32(i)})
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 32 {
		t.Fatalf("len = %d, want <= 32", c.len())
	}
}
