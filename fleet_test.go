package repro

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/perfmodel"
	"repro/internal/proxy"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// Fleet-level validation: N jagserve backends behind the real jagproxy
// router, measured against perfmodel.FleetScenario the way
// capacity_test.go validates the single-process serving model. The
// backends run a SLEEPING model rather than a CPU-bound one — on a
// single-core CI host a spinning fleet cannot exceed one backend's
// throughput, while sleeping replicas genuinely overlap, so the linear
// Backends× scaling the model predicts is physically reachable.
const (
	fleetBackends = 3
	fleetPass     = 5 * time.Millisecond   // per-pass sleep
	fleetRow      = 100 * time.Microsecond // per-row sleep
	fleetMaxBatch = 16
	fleetWindow   = 2 * time.Millisecond
	// fleetWithin bounds measured/predicted saturated throughput. Wider
	// than capWithin: the measured side adds the proxy hop and shares
	// one CPU with proxy, three HTTP stacks, and the load generators.
	fleetWithin = 3.5
)

// fleetModel sleeps the configured pass and per-row cost, echoing its
// input. Sleeping makes the cost model exact by construction: the
// scenario below uses the same constants as ground truth.
type fleetModel struct{}

func (fleetModel) Dims() map[string]serve.Dims {
	return map[string]serve.Dims{serve.MethodPredict: {In: 2, Out: 2}}
}

func (fleetModel) Run(method string, x *tensor.Matrix) (*tensor.Matrix, error) {
	time.Sleep(fleetPass + time.Duration(x.Rows)*fleetRow)
	y := tensor.New(x.Rows, 2)
	copy(y.Data, x.Data)
	return y, nil
}

// fleetPerBackend is one replica's scenario with the sleep constants.
func fleetPerBackend() perfmodel.ServingScenario {
	return perfmodel.ServingScenario{
		Cost:     perfmodel.ServingCost{PassSec: fleetPass.Seconds(), RowSec: fleetRow.Seconds()},
		Replicas: 1,
		MaxBatch: fleetMaxBatch,
		Window:   fleetWindow,
	}
}

// fleetBackend is one in-process jagserve replica on a real TCP port,
// killable and restartable on the same address mid-test.
type fleetBackend struct {
	addr string
	hs   *http.Server
	reg  *serve.Registry
	srv  *serve.Server
}

// startFleetBackend serves a one-model registry on addr ("" picks a
// port). The server publishes its modeled capacity as capacity_qps, so
// the proxy's capacity sweep finds real weights.
func startFleetBackend(t *testing.T, addr string) *fleetBackend {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	reg := serve.NewRegistry()
	srv := serve.NewServer(fleetModel{}, serve.Config{
		MaxBatch:   fleetMaxBatch,
		MaxDelay:   fleetWindow,
		QueueDepth: 1024,
		Workers:    1,
	})
	srv.SetCapacityQPS(fleetPerBackend().MaxQPS())
	if err := reg.Register("jag", srv); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: serve.NewRegistryHandler(reg, serve.HandlerConfig{})}
	go func() { _ = hs.Serve(ln) }()
	b := &fleetBackend{addr: ln.Addr().String(), hs: hs, reg: reg, srv: srv}
	t.Cleanup(func() {
		_ = b.hs.Close()
		b.reg.Close()
	})
	return b
}

// startFleet brings up n backends and a proxy over them, returning the
// proxy's test server plus the backends for later sabotage.
func startFleet(t *testing.T, n int, cfg proxy.Config) (*httptest.Server, *proxy.Proxy, []*fleetBackend) {
	t.Helper()
	backends := make([]*fleetBackend, n)
	urls := make([]string, n)
	for i := range backends {
		backends[i] = startFleetBackend(t, "")
		urls[i] = "http://" + backends[i].addr
	}
	p, err := proxy.New(urls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	p.Start(ctx)
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return ts, p, backends
}

// TestFleetCapacityModelVsMeasured saturates a 3-backend fleet through
// the proxy and checks the measured row throughput against
// FleetScenario.MaxQPS — and that the fleet actually beat what one
// backend could sustain, i.e. the router is spreading, not funneling.
func TestFleetCapacityModelVsMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based validation")
	}
	ts, p, backends := startFleet(t, fleetBackends, proxy.Config{
		HealthInterval: 50 * time.Millisecond,
		MaxRetries:     2,
	})
	for _, b := range p.Backends() {
		if !b.Healthy() || b.CapacityQPS() <= 0 {
			t.Fatalf("backend %s not ready before load: healthy=%t capacity=%g",
				b.Name(), b.Healthy(), b.CapacityQPS())
		}
	}

	fleet := perfmodel.FleetScenario{Backend: fleetPerBackend(), Backends: fleetBackends}
	predicted := fleet.MaxQPS()

	// Closed-loop saturation: enough in-flight rows per backend to keep
	// batches full, shipped in multi-row calls to amortize HTTP cost.
	const clients, perClient, rowsPerCall = 24, 30, 8
	inputs := make([][]float32, rowsPerCall)
	for i := range inputs {
		inputs[i] = []float32{float32(i) / rowsPerCall, 0.5}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := serve.NewClient(ts.URL)
			for i := 0; i < perClient; i++ {
				if _, rowErrs, err := cl.Call(context.Background(), "jag", serve.MethodPredict, inputs); err != nil || rowErrs != nil {
					t.Errorf("saturated call failed: err=%v rowErrs=%v", err, rowErrs)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	measured := float64(clients*perClient*rowsPerCall) / time.Since(start).Seconds()

	for i, b := range backends {
		if snap := b.srv.Stats(); snap.MeanBatch < fleetMaxBatch/4 {
			t.Fatalf("backend %d never saturated (mean batch %.1f); measurement invalid", i, snap.MeanBatch)
		}
	}
	if ratio := measured / predicted; ratio < 1/fleetWithin || ratio > fleetWithin {
		t.Fatalf("fleet model missed: measured %.0f rows/s vs predicted %.0f (ratio %.2f, tolerance %.1fx)",
			measured, predicted, ratio, fleetWithin)
	}
	// The whole point of the fleet: more than one backend's worth of
	// throughput. Sleeping replicas overlap even on one CPU, so this is
	// a real scaling check, not a tautology.
	if single := fleetPerBackend().MaxQPS(); measured < 1.2*single {
		t.Fatalf("fleet measured %.0f rows/s, not meaningfully above one backend's %.0f — router is funneling", measured, single)
	}
}

// TestFleetSurvivesBackendKill kills one backend under sustained
// traffic and requires ZERO client-visible failures: every attempt that
// dies mid-flight or lands on the dead backend must be retried onto a
// live one. The dead backend must be dropped (health transition down),
// then reinstated after it comes back on the same port.
func TestFleetSurvivesBackendKill(t *testing.T) {
	ts, p, backends := startFleet(t, fleetBackends, proxy.Config{
		HealthInterval: 25 * time.Millisecond,
		FailAfter:      1,
		RecoverAfter:   2,
		BreakerFails:   1,
		MaxRetries:     2,
	})

	var calls, failures atomic.Int64
	var firstFailure atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := serve.NewClient(ts.URL)
			inputs := [][]float32{{float32(c) / 4, 0.1}, {float32(c) / 4, 0.9}}
			for {
				select {
				case <-stop:
					return
				default:
				}
				outs, rowErrs, err := cl.Call(context.Background(), "jag", serve.MethodPredict, inputs)
				calls.Add(1)
				if err != nil || rowErrs != nil || len(outs) != len(inputs) {
					failures.Add(1)
					firstFailure.CompareAndSwap(nil, fmt.Sprintf("err=%v rowErrs=%v outs=%d", err, rowErrs, len(outs)))
				}
			}
		}(c)
	}

	victim := p.Backends()[0]
	waitFor := func(desc string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Let traffic establish, then kill backend 0 abruptly: listener and
	// every live connection die at once, mid-reply included.
	time.Sleep(200 * time.Millisecond)
	if err := backends[0].hs.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor("proxy to drop the killed backend", func() bool { return !victim.Healthy() })

	// Keep routing around the hole for a while, then resurrect the
	// backend on the SAME address and wait for reinstatement.
	time.Sleep(300 * time.Millisecond)
	backends[0] = startFleetBackend(t, backends[0].addr)
	waitFor("proxy to reinstate the recovered backend", func() bool { return victim.Healthy() })
	time.Sleep(200 * time.Millisecond) // traffic through the full fleet again

	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d calls failed across the kill (first: %v); retries must hide a dead backend",
			n, calls.Load(), firstFailure.Load())
	}
	if calls.Load() < 50 {
		t.Fatalf("only %d calls completed; not enough traffic to exercise the kill", calls.Load())
	}

	// The drop and the reinstatement must both be visible in the
	// proxy's health-transition metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{`to="down"`, `to="up"`} {
		found := false
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, "jag_proxy_health_transitions_total") &&
				strings.Contains(line, victim.Name()) && strings.Contains(line, want) &&
				!strings.HasSuffix(line, " 0") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no nonzero jag_proxy_health_transitions_total{%s} for %s in:\n%s", want, victim.Name(), body)
		}
	}
}
