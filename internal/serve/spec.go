package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cyclegan"
)

// ModelSpec is the JSON sidecar written next to a checkpoint so a
// server can rebuild the surrogate architecture before loading weights:
// checkpoint files store only the flattened parameters (nn
// serialization is shape-checked, not self-describing), so serving
// needs the cyclegan.Config that produced them.
type ModelSpec struct {
	// Model is the full architecture + geometry of the checkpointed
	// surrogate.
	Model cyclegan.Config `json:"model"`
	// Step is the training step counter at save time (informational).
	Step int64 `json:"step"`
	// Checkpoints lists the weight files this spec describes, in
	// quality order (best first) when written by ltfbtrain. Relative
	// entries are resolved against the spec file's directory, so a
	// checkpoint directory can be moved or mounted elsewhere wholesale.
	Checkpoints []string `json:"checkpoints"`
}

// SpecPath returns the conventional sidecar path for a checkpoint.
func SpecPath(checkpointPath string) string { return checkpointPath + ".spec.json" }

// SaveSpec writes the spec as indented JSON.
func SaveSpec(path string, spec ModelSpec) error {
	buf, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: marshal spec: %w", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// ResolveSpec loads a ModelSpec from a flexible path — the value of
// cmd/jagserve's -models name=path flag. path may be the spec file
// itself (*.spec.json), a checkpoint path (whose sidecar is loaded), or
// a directory containing exactly one *.spec.json (the shape ltfbtrain
// -checkpoint leaves behind).
func ResolveSpec(path string) (ModelSpec, error) {
	info, err := os.Stat(path)
	switch {
	case err != nil:
		return ModelSpec{}, fmt.Errorf("serve: %w", err)
	case info.IsDir():
		matches, err := filepath.Glob(filepath.Join(path, "*.spec.json"))
		if err != nil {
			return ModelSpec{}, fmt.Errorf("serve: %w", err)
		}
		switch len(matches) {
		case 0:
			return ModelSpec{}, fmt.Errorf("serve: no *.spec.json in %s", path)
		case 1:
			return LoadSpec(matches[0])
		default:
			return ModelSpec{}, fmt.Errorf("serve: %s holds %d specs (%s); name one explicitly",
				path, len(matches), strings.Join(matches, ", "))
		}
	case strings.HasSuffix(path, ".spec.json"):
		return LoadSpec(path)
	default:
		return LoadSpec(SpecPath(path))
	}
}

// LoadSpec reads and validates a spec written by SaveSpec.
func LoadSpec(path string) (ModelSpec, error) {
	var spec ModelSpec
	buf, err := os.ReadFile(path)
	if err != nil {
		return spec, fmt.Errorf("serve: %w", err)
	}
	if err := json.Unmarshal(buf, &spec); err != nil {
		return spec, fmt.Errorf("serve: parse spec %s: %w", path, err)
	}
	if err := spec.Model.Validate(); err != nil {
		return spec, fmt.Errorf("serve: spec %s: %w", path, err)
	}
	for i, p := range spec.Checkpoints {
		if !filepath.IsAbs(p) {
			spec.Checkpoints[i] = filepath.Join(filepath.Dir(path), p)
		}
	}
	return spec, nil
}
