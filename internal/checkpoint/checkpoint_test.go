package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func tinySurrogate(seed int64) *cyclegan.Surrogate {
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{16}
	cfg.ForwardHidden = []int{8}
	cfg.InverseHidden = []int{8}
	cfg.DiscHidden = []int{8}
	return cyclegan.New(cfg, seed)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	src := tinySurrogate(1)
	if err := Save(path, 1234, src.Nets()); err != nil {
		t.Fatal(err)
	}
	dst := tinySurrogate(2)
	step, err := Load(path, dst.Nets())
	if err != nil {
		t.Fatal(err)
	}
	if step != 1234 {
		t.Fatalf("step = %d, want 1234", step)
	}
	a := nn.MarshalNetworks(src.Nets())
	b := nn.MarshalNetworks(dst.Nets())
	if string(a) != string(b) {
		t.Fatal("weights corrupted in round trip")
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	m := tinySurrogate(3)
	if _, err := Load(filepath.Join(dir, "missing"), m.Nets()); err == nil {
		t.Fatal("missing file must error")
	}
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, []byte("not a checkpoint"), 0o644)
	if _, err := Load(bad, m.Nets()); err == nil {
		t.Fatal("bad magic must error")
	}
	// Architecture mismatch.
	path := filepath.Join(dir, "ok.ckpt")
	if err := Save(path, 1, m.Nets()); err != nil {
		t.Fatal(err)
	}
	other := cyclegan.New(cyclegan.DefaultConfig(jag.Tiny8), 1)
	if _, err := Load(path, other.Nets()); err == nil {
		t.Fatal("architecture mismatch must error")
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	m := tinySurrogate(4)
	if err := Save(path, 1, m.Nets()); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, 2, m.Nets()); err != nil {
		t.Fatal(err)
	}
	step, err := Load(path, m.Nets())
	if err != nil {
		t.Fatal(err)
	}
	if step != 2 {
		t.Fatalf("step = %d, want 2", step)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

// TestFingerprint pins the content-identity contract the serving-side
// checkpoint watcher relies on: identical weights fingerprint
// identically regardless of when they were saved, any weight change
// moves the fingerprint, and a missing file errors instead of hashing
// to something.
func TestFingerprint(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.ckpt"), filepath.Join(dir, "b.ckpt")
	m := tinySurrogate(5)
	if err := Save(a, 1, m.Nets()); err != nil {
		t.Fatal(err)
	}
	if err := Save(b, 1, m.Nets()); err != nil {
		t.Fatal(err)
	}
	fa, err := Fingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa == "" || fa != fb {
		t.Fatalf("identical checkpoints fingerprint %q vs %q", fa, fb)
	}

	// A different step counter alone is a content change: the watcher
	// must notice a re-save even when the weights round-tripped.
	if err := Save(a, 2, m.Nets()); err != nil {
		t.Fatal(err)
	}
	if fa2, err := Fingerprint(a); err != nil || fa2 == fa {
		t.Fatalf("step-only change kept fingerprint (%v)", err)
	}

	// One changed weight must move the fingerprint too.
	m.Forward.Params()[0].W.Data[0] += 1
	if err := Save(b, 1, m.Nets()); err != nil {
		t.Fatal(err)
	}
	fb2, err := Fingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fb2 == fb {
		t.Fatal("changed weights kept the same fingerprint")
	}

	if _, err := Fingerprint(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file must error")
	}
}

// Checkpoint/restart equivalence: resuming from a checkpoint must produce
// the same predictions as the model that was saved.
func TestResumeEquivalence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "resume.ckpt")
	src := tinySurrogate(7)
	// Mutate the source (simulating training), checkpoint, then restore
	// into a fresh replica and compare behaviour.
	for _, p := range src.Forward.Params() {
		for i := range p.W.Data {
			p.W.Data[i] += 0.01 * float32(i%7)
		}
	}
	if err := Save(path, 77, src.Nets()); err != nil {
		t.Fatal(err)
	}
	resumed := tinySurrogate(1234)
	if _, err := Load(path, resumed.Nets()); err != nil {
		t.Fatal(err)
	}
	s := jag.SimulateAt(jag.Tiny8, 42)
	x := tensor.FromSlice(1, jag.InputDim, s.X)
	a := src.Predict(x)
	b := resumed.Predict(x)
	if !a.Equal(b) {
		t.Fatal("resumed model predicts differently")
	}
}
