// Command jagserve serves surrogate predictions over HTTP from
// checkpoints produced by cmd/ltfbtrain — the deployment step of the
// paper's workflow, where the trained generative model stands in for
// the JAG simulator. One process serves any number of named models
// (per-geometry, per-campaign, or top-k ensembles side by side); each
// model runs behind its own internal/serve micro-batching queue and
// replica pool, and each model method ("predict", "invert") batches
// independently, so rows bound for different forward passes never mix.
//
// Every request carries a lifecycle: a priority class ("interactive",
// the default, preempts "bulk" in the batching queue — set it via the
// "priority" JSON field or the X-Priority header) and an optional
// deadline ("deadline_ms" field, X-Deadline-Ms header, or the -deadline
// flag's default). Rows whose deadline passes while still queued are
// dropped before the forward pass and reported as per-row 504 errors; a
// batch with some good and some bad rows returns 200 with an aligned
// "errors" array instead of failing wholesale.
//
// Bodies are content-negotiated: JSON ({"input":[...]} or
// {"inputs":[[...],...]}), or the binary tensor framing of
// serve/wire.go (Content-Type/Accept: application/x-jag-tensor) so
// Default64-geometry images ship as raw little-endian float32 tensors
// instead of JSON arrays.
//
// With -watch, each model's spec/checkpoint path is polled (every
// -reload-interval) and a newly written checkpoint — e.g. the next
// LTFB tournament winner saved by a concurrently running ltfbtrain —
// is hot-swapped in without dropping traffic: the replacement pool is
// canary-tested with one forward pass per method before promotion, the
// old model drains its in-flight batches and closes, and a corrupt or
// NaN-weight checkpoint is rejected while the old model keeps serving
// (the rejection shows up under "reload" in /healthz). Per-model stats
// and /healthz report the serving generation (1 + completed reloads).
// -drain-deadline bounds how long a swap waits for in-flight callers of
// the old model: past it the old model is force-closed (its remaining
// rows fail with 503) and the stats' forced_closes counter increments;
// the default of 0 waits forever.
//
// Endpoints:
//
//	GET  /v1/models                  list models: methods, dims, readiness, generation
//	POST /v1/models/{name}/{method}  batched call, JSON or binary tensor body
//	GET  /v1/models/{name}/stats     per-model latency/occupancy/cache counters + stage quantiles
//	GET  /metrics                    Prometheus text exposition, all models
//	GET  /healthz                    per-model readiness + reload state; 503 if any model closed
//	POST /predict                    deprecated alias: default model's "predict"
//	GET  /stats                      deprecated alias: default model's counters
//
// Observability (docs/OBSERVABILITY.md is the full reference): every
// request gets an X-Request-Id correlation ID (caller-supplied values
// propagate; responses echo it) and a Server-Timing header decomposing
// its latency into queue-wait, batch-assembly, and forward spans.
// -log-format text|json enables a structured access log on stderr, one
// record per request, carrying the same ID and spans. -debug-addr
// starts a second, operator-only listener with /debug/pprof/* and a
// duplicate /metrics, so profiling and scraping survive even when the
// public listener is saturated — never expose it publicly.
//
// Usage:
//
//	ltfbtrain -trainers 4 -checkpoint ckpts/fwd.ckpt -top 2
//	jagserve -models jag=ckpts/fwd.ckpt -models jag-top2=ckpts2/ -ensemble
//	jagserve -models jag=ckpts/fwd.ckpt -watch -reload-interval 5s
//	jagserve -checkpoint model.ckpt -replicas 4     # legacy: registers "default"
//	curl -d '{"input":[0.5,0.5,0.5,0.5,0.5],"scalars_only":true}' \
//	    localhost:8080/v1/models/jag/predict
//	curl -d '{"input":[0.5,0.5,0.5,0.5,0.5]}' localhost:8080/v1/models/jag/invert
//
// Each -models value is name=path, where path is a *.spec.json file, a
// checkpoint (its .spec.json sidecar is loaded), or a directory holding
// exactly one spec. The first -models entry (or the legacy "default"
// model) answers the deprecated unversioned endpoints; override with
// -default.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

// modelFlag is one parsed -models entry.
type modelFlag struct {
	name, path string
}

// samePaths reports whether a and b name the same files in the same
// order, comparing absolute forms so a relative -checkpoint value
// matches its spec-resolved absolute entry.
func samePaths(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		pa, errA := filepath.Abs(a[i])
		pb, errB := filepath.Abs(b[i])
		if errA != nil || errB != nil || pa != pb {
			return false
		}
	}
	return true
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("jagserve: ")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	var models []modelFlag
	flag.Func("models", "named model as name=path (spec file, checkpoint, or spec dir); repeatable", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		models = append(models, modelFlag{name: name, path: path})
		return nil
	})
	ckpt := flag.String("checkpoint", "", "legacy single-model checkpoint path(s), comma-separated, registered as \"default\"; overrides the spec's list")
	specPath := flag.String("spec", "", "legacy model spec path (default <first checkpoint>.spec.json)")
	defName := flag.String("default", "", "model answering the deprecated /predict and /stats aliases (default: first registered)")
	replicas := flag.Int("replicas", 1, "model replicas per model (raised to the checkpoint count if lower; ignored with -ensemble, which uses one per checkpoint)")
	ensemble := flag.Bool("ensemble", false, "average predictions across each model's checkpoints instead of round-robin")
	maxBatch := flag.Int("max-batch", 64, "max requests coalesced into one forward pass")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "max wait before flushing a partial batch")
	queueDepth := flag.Int("queue-depth", 0, "max in-flight requests per model before 503 (0 = 4*max-batch)")
	cacheSize := flag.Int("cache-size", 1024, "per-model LRU response-cache entries (0 disables)")
	probe := flag.Bool("probe", true, "cost-probe each model's predict path at startup and publish the sustainable rows/s as capacity_qps on its stats route (read by cmd/jagproxy for weighted routing)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline; rows still queued past it are dropped without a forward pass (0 disables; requests override via deadline_ms)")
	watch := flag.Bool("watch", false, "watch each model's spec/checkpoint path and hot-swap newly written checkpoints in without dropping traffic (canary-tested; a bad checkpoint is rejected and the old model keeps serving)")
	reloadInterval := flag.Duration("reload-interval", 2*time.Second, "poll period for -watch")
	drainDeadline := flag.Duration("drain-deadline", 0, "max time a hot swap waits for in-flight callers of the old model before force-closing it (counted as forced_closes in stats; 0 waits forever)")
	debugAddr := flag.String("debug-addr", "", "optional private listen address serving /debug/pprof/* and a duplicate /metrics (no auth — never expose publicly)")
	logFormat := flag.String("log-format", "", "structured access log on stderr: \"text\" or \"json\" (empty disables)")
	flag.Parse()

	var accessLog *slog.Logger
	switch *logFormat {
	case "":
	case "text":
		accessLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		accessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		log.Fatalf("-log-format %q: want \"text\" or \"json\"", *logFormat)
	}

	// entry is one fully resolved model to register. watchPath is what
	// -watch polls: the original flag value, so a directory spec keeps
	// resolving even if the spec file inside it is replaced. baseline
	// is the content fingerprint captured before the serving pool was
	// built, so a checkpoint written during the (slow) load window is
	// promoted on the first poll rather than adopted as serving.
	type entry struct {
		name      string
		spec      serve.ModelSpec
		paths     []string
		watchPath string
		baseline  string
	}
	var entries []entry

	// The legacy single-checkpoint flags register as the "default"
	// model, ahead of -models entries so old deployments keep their
	// default routing.
	if *ckpt != "" || *specPath != "" {
		var paths []string
		for _, p := range strings.Split(*ckpt, ",") {
			if p = strings.TrimSpace(p); p != "" {
				paths = append(paths, p)
			}
		}
		sp := *specPath
		if sp == "" {
			if len(paths) == 0 {
				log.Fatal("-spec given empty and no -checkpoint")
			}
			sp = serve.SpecPath(paths[0])
		}
		spec, err := serve.LoadSpec(sp)
		if err != nil {
			log.Fatal(err)
		}
		if len(paths) == 0 {
			paths = spec.Checkpoints
		}
		if len(paths) == 0 {
			log.Fatalf("spec %s lists no checkpoints and none given via -checkpoint", sp)
		}
		if *watch && !samePaths(paths, spec.Checkpoints) {
			// The reloader rebuilds from the spec's checkpoint list, so
			// a -checkpoint override it cannot see would be silently
			// dropped (and the extra files never watched) on the first
			// hot swap.
			log.Fatalf("-watch rebuilds from the checkpoint list in %s, which differs from -checkpoint %s; "+
				"point the spec at the same files or drop -checkpoint", sp, *ckpt)
		}
		entries = append(entries, entry{name: "default", spec: spec, paths: paths, watchPath: sp})
	}
	for _, m := range models {
		spec, err := serve.ResolveSpec(m.path)
		if err != nil {
			log.Fatalf("model %s: %v", m.name, err)
		}
		if len(spec.Checkpoints) == 0 {
			log.Fatalf("model %s: spec at %s lists no checkpoints", m.name, m.path)
		}
		entries = append(entries, entry{name: m.name, spec: spec, paths: spec.Checkpoints, watchPath: m.path})
	}
	if len(entries) == 0 {
		log.Fatal("need -models name=path (or legacy -checkpoint/-spec)")
	}

	cfg := serve.Config{
		MaxBatch:   *maxBatch,
		MaxDelay:   *maxDelay,
		QueueDepth: *queueDepth,
		CacheSize:  *cacheSize,
	}
	reg := serve.NewRegistry()
	reg.SetDrainDeadline(*drainDeadline)
	for i := range entries {
		e := &entries[i]
		if *watch {
			// Fingerprint before loading: if a new winner lands while
			// the checkpoints are being read, the first poll sees a
			// changed hash and promotes it.
			fp, err := serve.SpecFingerprint(e.watchPath)
			if err != nil {
				log.Fatalf("model %s: %v", e.name, err)
			}
			e.baseline = fp
		}
		pool, err := serve.NewPoolFromCheckpoints(e.spec.Model, e.paths, *replicas, *ensemble)
		if err != nil {
			log.Fatalf("model %s: %v", e.name, err)
		}
		srv := serve.NewServer(pool, cfg)
		if err := reg.Register(e.name, srv); err != nil {
			log.Fatal(err)
		}
		log.Printf("model %s: %d replica(s) of %d checkpoint(s), ensemble=%v, methods %v",
			e.name, pool.Replicas(), len(e.paths), pool.Ensemble(), srv.Methods())
		if *probe {
			// Publish this process's sustainable throughput so a fleet
			// router (cmd/jagproxy) can weight traffic by real capacity
			// instead of assuming identical replicas. Probe the predict
			// path — it is what fleet routing balances — and fall back to
			// the first method for models without one.
			method := serve.MethodPredict
			if _, ok := pool.Dims()[method]; !ok {
				method = srv.Methods()[0]
			}
			res, err := serve.CostProbe(pool, method, *maxBatch)
			if err != nil {
				log.Printf("model %s: capacity probe failed (capacity_qps stays 0): %v", e.name, err)
			} else {
				qps := res.QPS(*maxBatch, pool.Replicas())
				srv.SetCapacityQPS(qps)
				log.Printf("model %s: probed capacity %.0f rows/s (%s: pass %.3gs + %.3gs/row at B=%d, %d worker(s))",
					e.name, qps, method, res.PassSec, res.RowSec, *maxBatch, pool.Replicas())
			}
		}
	}
	if *defName != "" {
		if err := reg.SetDefault(*defName); err != nil {
			log.Fatal(err)
		}
	}

	// -watch: one reloader per model polls its spec/checkpoint path and
	// hot-swaps new LTFB winners in under live traffic. The watchers
	// stop (watchCancel) before reg.Close so a swap cannot race the
	// terminal shutdown.
	watchCtx, watchCancel := context.WithCancel(context.Background())
	defer watchCancel()
	if *watch {
		for _, e := range entries {
			rl, err := serve.NewReloader(reg, e.name, e.watchPath, serve.ReloaderConfig{
				Interval: *reloadInterval,
				Replicas: *replicas,
				Ensemble: *ensemble,
				Server:   cfg,
				Logf:     log.Printf,
				Baseline: e.baseline,
			})
			if err != nil {
				log.Fatalf("model %s: %v", e.name, err)
			}
			go rl.Run(watchCtx)
			log.Printf("model %s: watching %s (every %v)", e.name, e.watchPath, *reloadInterval)
		}
	}

	// -debug-addr: a second, operator-only listener. Its /metrics
	// duplicates the public one; /debug/pprof/* is mounted explicitly
	// (not via the pprof import side effect on DefaultServeMux) so the
	// profiles exist only on this private address.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.Handle("GET /metrics", serve.MetricsHandler(reg))
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("debug listener on %s (/metrics, /debug/pprof/)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	handler := serve.NewRegistryHandler(reg, serve.HandlerConfig{DefaultDeadline: *deadline, AccessLog: accessLog})
	// Listen before logging so "-addr :0" (fleet tests and scripts that
	// launch ephemeral backends) reports the port the kernel actually
	// bound, not the literal flag value.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: handler}
	drained := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down: draining in-flight requests")
		// Shutdown first: it stops accepting connections immediately
		// and drains the in-flight HTTP handlers, whose rows still need
		// the batching queues. Only then close the queues and workers —
		// closing them first would 503 rows the drain window could have
		// served (e.g. the later waves of a large throttled batch).
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Shutdown's only error is the deadline expiring; the process
		// exits either way, so there is nobody left to report it to.
		_ = hs.Shutdown(ctx)
		watchCancel() // no hot swaps once shutdown starts
		reg.Close()
		close(drained)
	}()

	def, _, _ := reg.Default()
	log.Printf("serving %d model(s) %v (default %s) on %s", reg.Len(), reg.Names(), def, ln.Addr())
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Serve returns the moment Shutdown is called; wait for the drain
	// to finish before letting the process exit.
	<-drained
}
