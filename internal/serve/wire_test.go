package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/jag"
)

// wireBatch builds an n-row batch of width cols with a deterministic
// value pattern covering negatives, zeros, and subnormal-ish floats.
func wireBatch(n, cols int) [][]float32 {
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = make([]float32, cols)
		for j := range rows[i] {
			rows[i][j] = float32(i*cols+j%17)/16 - 0.5
		}
	}
	return rows
}

// TestWireRoundTrip checks bitwise fidelity through encode/decode,
// including NaN payloads (the transport must not canonicalize values —
// validation is the serving layer's job).
func TestWireRoundTrip(t *testing.T) {
	rows := wireBatch(5, 9)
	rows[2][3] = float32(math.NaN())
	rows[4][0] = float32(math.Inf(-1))
	buf, err := EncodeFrame(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != frameHeader+4*5*9 {
		t.Fatalf("frame length %d, want %d", len(buf), frameHeader+4*5*9)
	}
	got, err := DecodeFrame(bytes.NewReader(buf), 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		for j := range rows[i] {
			if math.Float32bits(got[i][j]) != math.Float32bits(rows[i][j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, got[i][j], rows[i][j])
			}
		}
	}

	// Zero-row frames round-trip too (the handler rejects them later as
	// "no inputs", but the codec itself is total).
	buf, err = EncodeFrame(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeFrame(bytes.NewReader(buf), 0, 0); err != nil || len(got) != 0 {
		t.Fatalf("empty frame: %v rows, err %v", len(got), err)
	}
}

// TestWireEncodeRagged rejects batches whose rows disagree on width.
func TestWireEncodeRagged(t *testing.T) {
	if _, err := EncodeFrame([][]float32{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged batch encoded")
	}
}

// TestWireDecodeMalformed covers every validation branch: each corrupt
// frame must produce an error, never a panic or a bogus matrix.
func TestWireDecodeMalformed(t *testing.T) {
	good, err := EncodeFrame(wireBatch(3, 4))
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func(b []byte) []byte, wantSub string) {
		t.Helper()
		b := mutate(append([]byte(nil), good...))
		_, err := DecodeFrame(bytes.NewReader(b), 0, 0)
		if err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
		if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: error %q lacks %q", name, err, wantSub)
		}
	}

	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "magic")
	corrupt("bad version", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[4:], 99)
		return b
	}, "version")
	corrupt("truncated header", func(b []byte) []byte { return b[:7] }, "header")
	corrupt("truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, "truncated")
	corrupt("row/col overflow", func(b []byte) []byte {
		// 2^32-1 rows x 2^32-1 cols: the uint32 product would wrap to 1,
		// but the uint64 size check must refuse before allocating.
		binary.LittleEndian.PutUint32(b[8:], math.MaxUint32)
		binary.LittleEndian.PutUint32(b[12:], math.MaxUint32)
		return b
	}, "too large")

	// Shape limits enforced against the caller's expectation.
	if _, err := DecodeFrame(bytes.NewReader(good), 5, 0); err == nil {
		t.Fatal("wrong column count accepted")
	}
	if _, err := DecodeFrame(bytes.NewReader(good), 0, 2); err == nil {
		t.Fatal("row limit not enforced")
	}
}

// benchWireBatch is a Default64-geometry prediction batch: 16 rows of
// the full output bundle (15 scalars + 3 views x 4 channels at 64x64),
// the response payload whose JSON cost motivated the binary transport.
func benchWireBatch() [][]float32 {
	cols := jag.Default64.OutputDim()
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float32, 16)
	for i := range rows {
		rows[i] = make([]float32, cols)
		for j := range rows[i] {
			rows[i][j] = rng.Float32()
		}
	}
	return rows
}

// BenchmarkWireBinaryVsJSON/binary and /json encode and decode the same
// Default64-geometry batch through each transport; the ns/op ratio is
// the wire-format speedup (bytes/op reports the encoded payload size).
func BenchmarkWireBinaryVsJSON(b *testing.B) {
	rows := benchWireBatch()

	b.Run("binary", func(b *testing.B) {
		buf, err := EncodeFrame(rows)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(buf)), "payload_bytes")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc, err := EncodeFrame(rows)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeFrame(bytes.NewReader(enc), 0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json", func(b *testing.B) {
		buf, err := json.Marshal(rows)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(buf)), "payload_bytes")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc, err := json.Marshal(rows)
			if err != nil {
				b.Fatal(err)
			}
			var out [][]float32
			if err := json.Unmarshal(enc, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
