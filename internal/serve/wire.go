package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
)

// Binary tensor transport. At the paper's Default64 geometry one output
// bundle is ~49k float32s; as a JSON array that is several bytes of
// ASCII per value plus commas, parsed float by float. The frame below
// ships the same matrix as raw little-endian float32 with a 16-byte
// header — the content-negotiated alternative transport of the v1 HTTP
// API (Content-Type/Accept: ContentTypeTensor).
//
// Frame layout (all integers little-endian uint32):
//
//	offset  0: magic "JGT1" (4 bytes)
//	offset  4: version (currently 1)
//	offset  8: rows
//	offset 12: cols
//	offset 16: rows*cols float32 payload, row-major
//
// A frame carries one rectangular matrix: a request frame is one input
// row per prediction, a response frame one output row per input, in
// request order. Responses are only framed when every row succeeded;
// a batch with row errors falls back to the JSON body so the aligned
// per-row error semantics survive the transport switch.
const (
	// ContentTypeTensor is the media type of the binary tensor frame.
	ContentTypeTensor = "application/x-jag-tensor"

	frameMagic   = "JGT1"
	frameVersion = 1
	frameHeader  = 16

	// MaxFrameElems caps rows*cols of a decoded frame (256 MiB of
	// payload): DecodeFrame allocates the payload up front, so the
	// header's claimed size must be bounded before it is believed.
	MaxFrameElems = 1 << 26
)

// EncodeFrame renders a rectangular batch as one binary tensor frame.
// All rows must share one width; a zero-row batch encodes as an empty
// frame.
func EncodeFrame(rows [][]float32) ([]byte, error) {
	cols := 0
	if len(rows) > 0 {
		cols = len(rows[0])
	}
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("serve: ragged frame: row %d has %d cols, want %d", i, len(r), cols)
		}
	}
	if uint64(len(rows))*uint64(cols) > MaxFrameElems {
		return nil, fmt.Errorf("serve: frame too large: %d x %d elements (max %d)", len(rows), cols, MaxFrameElems)
	}
	buf := make([]byte, frameHeader+4*len(rows)*cols)
	copy(buf, frameMagic)
	binary.LittleEndian.PutUint32(buf[4:], frameVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(rows)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(cols))
	off := frameHeader
	for _, r := range rows {
		for _, v := range r {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
			off += 4
		}
	}
	return buf, nil
}

// WriteFrame encodes rows and writes the frame to w.
func WriteFrame(w io.Writer, rows [][]float32) error {
	buf, err := EncodeFrame(rows)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// DecodeFrame reads one binary tensor frame. Every declared size is
// validated before it is believed: bad magic, an unknown version, a
// rows*cols product over MaxFrameElems (which also catches uint32
// multiplication overflow, since the product is computed in uint64),
// zero-width rows, more than maxRows rows (0 = no limit), a column
// count different from wantCols (0 = any), and a payload shorter than
// the header claims are all errors, never panics. Allocation is
// bounded by bytes actually received, not by the header's claim. Rows
// are views of one backing slice.
func DecodeFrame(r io.Reader, wantCols, maxRows int) ([][]float32, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("serve: short frame header: %w", err)
	}
	if string(hdr[:4]) != frameMagic {
		return nil, fmt.Errorf("serve: bad frame magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != frameVersion {
		return nil, fmt.Errorf("serve: unsupported frame version %d (want %d)", v, frameVersion)
	}
	rows := binary.LittleEndian.Uint32(hdr[8:])
	cols := binary.LittleEndian.Uint32(hdr[12:])
	if elems := uint64(rows) * uint64(cols); elems > MaxFrameElems {
		return nil, fmt.Errorf("serve: frame too large: %d x %d elements (max %d)", rows, cols, MaxFrameElems)
	}
	if cols == 0 && rows > 0 {
		// Zero-width rows carry no payload to bound the row count, so
		// the header alone could demand billions of row slices.
		return nil, fmt.Errorf("serve: frame has %d zero-width rows", rows)
	}
	if maxRows > 0 && rows > uint32(maxRows) {
		return nil, fmt.Errorf("serve: frame has %d rows (max %d)", rows, maxRows)
	}
	if wantCols > 0 && cols != uint32(wantCols) {
		return nil, fmt.Errorf("serve: frame has %d cols, want %d", cols, wantCols)
	}
	// Read the payload in bounded chunks instead of allocating the
	// header's full claim up front: a 16-byte frame declaring
	// MaxFrameElems would otherwise demand 256 MiB before the first
	// payload byte is checked. Growth tracks bytes that actually
	// arrived, so a truncated frame costs at most ~2x what was sent.
	const decodeChunk = 1 << 20
	need := 4 * int(rows) * int(cols)
	payload := make([]byte, 0, min(need, decodeChunk))
	for len(payload) < need {
		start := len(payload)
		n := min(need-start, decodeChunk)
		payload = slices.Grow(payload, n)[:start+n]
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			return nil, fmt.Errorf("serve: truncated frame payload: %w", err)
		}
	}
	flat := make([]float32, int(rows)*int(cols))
	for i := range flat {
		flat[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	out := make([][]float32, rows)
	for i := range out {
		out[i] = flat[i*int(cols) : (i+1)*int(cols)]
	}
	return out, nil
}
