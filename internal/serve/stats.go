package serve

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Stats aggregates the serving counters behind one mutex: metrics.Meter
// is not concurrency-safe and the serving path is all concurrency.
type Stats struct {
	mu          sync.Mutex
	start       time.Time
	requests    int64
	perMethod   map[string]int64
	overloads   int64
	expired     int64
	cancelled   int64
	failures    int64
	cacheHits   int64
	cacheMisses int64
	latency     metrics.Meter // milliseconds, enqueue to scatter
	batchOccup  metrics.Meter // requests per forward pass
}

// newStats starts the throughput clock.
func newStats() *Stats {
	return &Stats{start: time.Now(), perMethod: make(map[string]int64)}
}

// request records one completed row of the named method and its
// queue-to-reply latency.
func (s *Stats) request(method string, d time.Duration) {
	s.mu.Lock()
	s.requests++
	s.perMethod[method]++
	s.latency.Add(float64(d) / float64(time.Millisecond))
	s.mu.Unlock()
}

// batch records one forward pass of n coalesced requests.
func (s *Stats) batch(n int) {
	s.mu.Lock()
	s.batchOccup.Add(float64(n))
	s.mu.Unlock()
}

// overload counts one request rejected by backpressure.
func (s *Stats) overload() {
	s.mu.Lock()
	s.overloads++
	s.mu.Unlock()
}

// expire counts one request dropped — at admission or at flush time,
// but always before a forward pass — because its deadline passed.
func (s *Stats) expire() {
	s.mu.Lock()
	s.expired++
	s.mu.Unlock()
}

// cancel counts one request dropped before a forward pass because its
// context was cancelled.
func (s *Stats) cancel() {
	s.mu.Lock()
	s.cancelled++
	s.mu.Unlock()
}

// failure counts n rows failed by an error from the model's own
// forward pass — the only error class that is the model's fault rather
// than the caller's or the queue's, so it gets its own counter and
// cannot hide as "no traffic".
func (s *Stats) failure(n int) {
	s.mu.Lock()
	s.failures += int64(n)
	s.mu.Unlock()
}

// cacheHit counts one request answered from the LRU cache.
func (s *Stats) cacheHit() {
	s.mu.Lock()
	s.cacheHits++
	s.mu.Unlock()
}

// cacheMiss counts one request that had to run the model.
func (s *Stats) cacheMiss() {
	s.mu.Lock()
	s.cacheMisses++
	s.mu.Unlock()
}

// StatsSnapshot is a consistent copy of the serving counters, shaped for
// the /stats JSON endpoint.
type StatsSnapshot struct {
	Requests int64 `json:"requests"`
	// MethodRequests splits Requests by model method ("predict",
	// "invert", ...); methods never served are absent.
	MethodRequests map[string]int64 `json:"method_requests,omitempty"`
	Batches        int              `json:"batches"`
	Overloads      int64            `json:"overloads"`
	Expired        int64            `json:"expired"`
	Cancelled      int64            `json:"cancelled"`
	// ModelFailures counts rows failed by the model's forward pass
	// itself (ErrModelFailure, HTTP 500).
	ModelFailures int64   `json:"model_failures"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	MeanBatch     float64 `json:"mean_batch"`
	MaxBatch      float64 `json:"max_batch"`
	MeanLatMs     float64 `json:"mean_latency_ms"`
	MaxLatMs      float64 `json:"max_latency_ms"`
	ThroughputPS  float64 `json:"throughput_per_sec"`
	UptimeSec     float64 `json:"uptime_sec"`
}

// snapshot captures the counters at one instant.
func (s *Stats) snapshot() StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	up := time.Since(s.start).Seconds()
	var methods map[string]int64
	if len(s.perMethod) > 0 {
		methods = make(map[string]int64, len(s.perMethod))
		for k, v := range s.perMethod {
			methods[k] = v
		}
	}
	snap := StatsSnapshot{
		Requests:       s.requests,
		MethodRequests: methods,
		Batches:        s.batchOccup.Count(),
		Overloads:      s.overloads,
		Expired:        s.expired,
		Cancelled:      s.cancelled,
		ModelFailures:  s.failures,
		CacheHits:      s.cacheHits,
		CacheMisses:    s.cacheMisses,
		MeanBatch:      s.batchOccup.Mean(),
		MaxBatch:       s.batchOccup.Max(),
		MeanLatMs:      s.latency.Mean(),
		MaxLatMs:       s.latency.Max(),
		UptimeSec:      up,
	}
	if up > 0 {
		snap.ThroughputPS = float64(s.requests+s.cacheHits) / up
	}
	return snap
}
