package kind

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/cyclegan"
	"repro/internal/datastore"
	"repro/internal/jag"
	"repro/internal/reader"
	"repro/internal/trainer"
)

func tinySurrogate(seed int64) *cyclegan.Surrogate {
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{24}
	cfg.ForwardHidden = []int{16}
	cfg.InverseHidden = []int{12}
	cfg.DiscHidden = []int{12}
	return cyclegan.New(cfg, seed)
}

func jagDataset(t testing.TB, start, n int) *reader.SliceDataset {
	t.Helper()
	recs := make([][]float32, n)
	for i := range recs {
		recs[i] = jag.SimulateAt(jag.Tiny8, start+i).Flatten()
	}
	ds, err := reader.NewSliceDataset(jag.Tiny8.SampleDim(), recs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestKIndependentSelectsBest(t *testing.T) {
	const k, ranksPer = 3, 2
	w := comm.NewWorld(k * ranksPer)
	val := jagDataset(t, 9000, 24)
	results := make([]Result, k*ranksPer)
	// Trainer 2 trains 25 steps, others 1: trainer 2 should win.
	steps := []int{1, 1, 25}
	w.Run(func(wc *comm.Comm) {
		trainerID := wc.Rank() / ranksPer
		tc := wc.Split(trainerID, 0)
		ds := jagDataset(t, trainerID*300, 48)
		store := datastore.New(tc, ds, datastore.ModeDynamic)
		tr, err := trainer.New(trainer.Config{
			ID: trainerID, BatchSize: 16, XDim: jag.InputDim, ShuffleSeed: int64(trainerID),
		}, tc, tinySurrogate(int64(trainerID)), store, ds)
		if err != nil {
			t.Error(err)
			return
		}
		m := &Member{TrainerID: trainerID, NumTrainers: k, World: wc, T: tr}
		res, err := m.Train(steps[trainerID], val, 8)
		if err != nil {
			t.Error(err)
			return
		}
		results[wc.Rank()] = res
	})
	for r, res := range results {
		if res.BestTrainer != 2 {
			t.Fatalf("rank %d selected trainer %d (losses %v), want 2", r, res.BestTrainer, res.Losses)
		}
		if len(res.Losses) != k {
			t.Fatalf("rank %d has %d losses", r, len(res.Losses))
		}
		if res.BestLoss != res.Losses[2] {
			t.Fatalf("rank %d best loss inconsistent: %+v", r, res)
		}
	}
	// All ranks agree on the full loss vector.
	for r := 1; r < k*ranksPer; r++ {
		for i := range results[0].Losses {
			if results[r].Losses[i] != results[0].Losses[i] {
				t.Fatalf("loss vectors disagree across ranks: %v vs %v", results[r].Losses, results[0].Losses)
			}
		}
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	w := comm.NewWorld(1)
	val := jagDataset(t, 100, 16)
	w.Run(func(wc *comm.Comm) {
		ds := jagDataset(t, 0, 32)
		store := datastore.New(wc, ds, datastore.ModeDynamic)
		tr, err := trainer.New(trainer.Config{BatchSize: 16, XDim: jag.InputDim}, wc, tinySurrogate(1), store, ds)
		if err != nil {
			t.Error(err)
			return
		}
		m := &Member{TrainerID: 0, NumTrainers: 0, World: wc, T: tr}
		if _, err := m.Train(1, val, 8); err == nil {
			t.Error("0 trainers must error")
		}
	})
}
