package proxy

import (
	"sync"
	"time"
)

// Per-client token-bucket rate limiting for the call routes. One bucket
// per client IP: tokens refill at rate per second up to burst, each
// admitted request spends one. A drained bucket answers 429 with a
// Retry-After telling the client exactly when the next token lands —
// graceful backpressure instead of a silent queue.

type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}}
}

// allow spends one token from key's bucket. When the bucket is dry it
// reports false and how long until one token will have refilled.
func (l *rateLimiter) allow(key string, now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / l.rate * float64(time.Second))
}

// sweep drops buckets that have been idle long enough to refill
// completely — they are indistinguishable from fresh ones, so keeping
// them only leaks memory across one-shot clients.
func (l *rateLimiter) sweep(now time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for key, b := range l.buckets {
		if now.Sub(b.last) > idle {
			delete(l.buckets, key)
		}
	}
}
