package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cyclegan"
	"repro/internal/jag"
)

// newTestHTTP starts an httptest server over a single-replica pool.
func newTestHTTP(t *testing.T) *httptest.Server {
	t.Helper()
	model := cyclegan.New(testModelCfg(), 42)
	pool, err := NewPool([]*cyclegan.Surrogate{model}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(pool, Config{MaxBatch: 8, CacheSize: 16})
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// postPredict posts a PredictRequest and decodes the reply.
func postPredict(t *testing.T, ts *httptest.Server, req PredictRequest) (PredictResponse, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out PredictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// TestHTTPPredict drives /predict with a batch and a single input.
func TestHTTPPredict(t *testing.T) {
	ts := newTestHTTP(t)
	outDim := jag.Tiny8.OutputDim()

	out, code := postPredict(t, ts, PredictRequest{
		Inputs: [][]float32{testInput(0), testInput(1)},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Outputs) != 2 || len(out.Outputs[0]) != outDim {
		t.Fatalf("got %d outputs of width %d, want 2 x %d", len(out.Outputs), len(out.Outputs[0]), outDim)
	}

	single, code := postPredict(t, ts, PredictRequest{Input: testInput(0)})
	if code != http.StatusOK || len(single.Outputs) != 1 {
		t.Fatalf("single input: status %d, %d outputs", code, len(single.Outputs))
	}
	for j, v := range single.Outputs[0] {
		if v != out.Outputs[0][j] {
			t.Fatal("single-input reply differs from batch reply for the same input")
		}
	}
}

// TestHTTPLargeBatch posts more inputs than the server's queue depth:
// the handler must throttle row submission instead of tripping its own
// backpressure and failing the whole request with 503.
func TestHTTPLargeBatch(t *testing.T) {
	model := cyclegan.New(testModelCfg(), 42)
	pool, err := NewPool([]*cyclegan.Surrogate{model}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(pool, Config{MaxBatch: 8, QueueDepth: 16})
	ts := httptest.NewServer(NewHandler(s))
	defer func() {
		ts.Close()
		s.Close()
	}()

	const n = 100 // > QueueDepth
	inputs := make([][]float32, n)
	for i := range inputs {
		inputs[i] = testInput(i)
	}
	out, code := postPredict(t, ts, PredictRequest{Inputs: inputs})
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 for batch larger than queue depth", code)
	}
	if len(out.Outputs) != n {
		t.Fatalf("got %d outputs, want %d", len(out.Outputs), n)
	}
}

// TestHTTPScalarsOnly checks the payload-trimming flag.
func TestHTTPScalarsOnly(t *testing.T) {
	ts := newTestHTTP(t)
	out, code := postPredict(t, ts, PredictRequest{Input: testInput(2), ScalarsOnly: true})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Outputs[0]) != jag.ScalarDim {
		t.Fatalf("scalars_only width %d, want %d", len(out.Outputs[0]), jag.ScalarDim)
	}
}

// TestHTTPErrors covers method, body and dimension validation.
func TestHTTPErrors(t *testing.T) {
	ts := newTestHTTP(t)

	resp, err := http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict status %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/predict", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json status %d", resp.StatusCode)
	}

	if _, code := postPredict(t, ts, PredictRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty request status %d", code)
	}
	if _, code := postPredict(t, ts, PredictRequest{Input: []float32{1}}); code != http.StatusBadRequest {
		t.Fatalf("short input status %d", code)
	}
}

// TestHTTPHealthAndStats checks the observability endpoints.
func TestHTTPHealthAndStats(t *testing.T) {
	ts := newTestHTTP(t)
	postPredict(t, ts, PredictRequest{Input: testInput(0)})
	postPredict(t, ts, PredictRequest{Input: testInput(0)}) // cache hit

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Replicas int    `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Replicas != 1 {
		t.Fatalf("health = %+v", health)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Requests != 1 || snap.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 model request and 1 cache hit", snap)
	}
}
