// Package ensemble reproduces the paper's ensemble workflow (Section II-C):
// running the JAG simulator over a space-filling sampling plan and packaging
// the results into multi-sample bundle files — 1,000 samples per file in
// the paper, 10,000 files for the 10M-sample corpus. The paper's Merlin
// system exists because JAG is so fast that scheduler overhead dominates a
// naive one-job-per-simulation workflow; this package reproduces that
// economics with a worker pool that batches simulations file-at-a-time, and
// exposes a per-task overhead knob so the benchmark can show the
// batched-vs-naive gap.
package ensemble

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/bundle"
	"repro/internal/jag"
)

// Config describes a dataset-generation campaign.
type Config struct {
	Geometry jag.Config
	// Samples is the total number of simulations; the plan is the Halton
	// sequence starting at PlanOffset.
	Samples    int
	PlanOffset int
	// SamplesPerFile sets the bundle size (the paper uses 1,000).
	SamplesPerFile int
	// OutDir receives files named jag-00000.jagb, jag-00001.jagb, ...
	OutDir string
	// Workers is the worker-pool width; 0 means one.
	Workers int
	// TaskOverhead simulates scheduler cost per dispatched task (the
	// Merlin motivation); zero for library use.
	TaskOverhead time.Duration
}

// Validate reports whether the campaign is well-formed.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.Samples < 1 || c.SamplesPerFile < 1 {
		return fmt.Errorf("ensemble: invalid sizes %+v", c)
	}
	if c.OutDir == "" {
		return fmt.Errorf("ensemble: no output directory")
	}
	return nil
}

// Result summarizes a completed campaign.
type Result struct {
	Paths   []string
	Samples int
	Elapsed time.Duration
}

// Run executes the campaign: each worker simulates and writes whole bundle
// files (the batched task granularity that keeps scheduler overhead
// amortized). Files are deterministic functions of the plan, so re-running
// a campaign reproduces identical bytes.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return nil, fmt.Errorf("ensemble: %w", err)
	}
	start := time.Now()
	files := (cfg.Samples + cfg.SamplesPerFile - 1) / cfg.SamplesPerFile
	paths := make([]string, files)
	errs := make([]error, files)

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	tasks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range tasks {
				if cfg.TaskOverhead > 0 {
					time.Sleep(cfg.TaskOverhead)
				}
				paths[f], errs[f] = writeFile(cfg, f)
			}
		}()
	}
	for f := 0; f < files; f++ {
		tasks <- f
	}
	close(tasks)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{Paths: paths, Samples: cfg.Samples, Elapsed: time.Since(start)}, nil
}

// writeFile simulates and writes one bundle file.
func writeFile(cfg Config, f int) (string, error) {
	lo := f * cfg.SamplesPerFile
	hi := lo + cfg.SamplesPerFile
	if hi > cfg.Samples {
		hi = cfg.Samples
	}
	records := make([][]float32, 0, hi-lo)
	for i := lo; i < hi; i++ {
		records = append(records, jag.SimulateAt(cfg.Geometry, cfg.PlanOffset+i).Flatten())
	}
	path := filepath.Join(cfg.OutDir, fmt.Sprintf("jag-%05d.jagb", f))
	if err := bundle.Write(path, cfg.Geometry.SampleDim(), records); err != nil {
		return "", err
	}
	return path, nil
}

// GenerateInMemory materializes n flattened samples starting at plan offset
// without touching disk — the fast path for laptop-scale experiments.
func GenerateInMemory(g jag.Config, offset, n int) [][]float32 {
	out := make([][]float32, n)
	var wg sync.WaitGroup
	workers := 4
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = jag.SimulateAt(g, offset+i).Flatten()
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
