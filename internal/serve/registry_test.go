package serve

import (
	"testing"

	"repro/internal/cyclegan"
)

// newNamedServer builds a single-replica server for registry tests.
func newNamedServer(t *testing.T, seed int64) *Server {
	t.Helper()
	pool, err := NewPool([]*cyclegan.Surrogate{cyclegan.New(testModelCfg(), seed)}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(pool, Config{MaxBatch: 4})
	t.Cleanup(s.Close)
	return s
}

// TestRegistryRegister covers naming rules, duplicates, and lookup.
func TestRegistryRegister(t *testing.T) {
	reg := NewRegistry()
	a, b := newNamedServer(t, 1), newNamedServer(t, 2)
	if err := reg.Register("jag", a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("jag", b); err == nil {
		t.Fatal("duplicate name accepted")
	}
	for _, bad := range []string{"", "has space", "a/b", "-leading", "q?x"} {
		if err := reg.Register(bad, b); err == nil {
			t.Fatalf("invalid name %q accepted", bad)
		}
	}
	if err := reg.Register("jag.top-2_v1", b); err != nil {
		t.Fatalf("valid punctuated name rejected: %v", err)
	}
	if err := reg.Register("nil", nil); err == nil {
		t.Fatal("nil server accepted")
	}

	if got, ok := reg.Get("jag"); !ok || got != a {
		t.Fatal("Get returned the wrong server")
	}
	if _, ok := reg.Get("missing"); ok {
		t.Fatal("Get found an unregistered model")
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "jag" || names[1] != "jag.top-2_v1" {
		t.Fatalf("Names = %v, want sorted pair", names)
	}
	if reg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", reg.Len())
	}
}

// TestRegistryDefault pins default semantics: first registered wins
// until SetDefault, which must name a registered model.
func TestRegistryDefault(t *testing.T) {
	reg := NewRegistry()
	if _, _, ok := reg.Default(); ok {
		t.Fatal("empty registry has a default")
	}
	a, b := newNamedServer(t, 1), newNamedServer(t, 2)
	if err := reg.Register("first", a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("second", b); err != nil {
		t.Fatal(err)
	}
	if name, s, ok := reg.Default(); !ok || name != "first" || s != a {
		t.Fatalf("default = %q, want first", name)
	}
	if err := reg.SetDefault("missing"); err == nil {
		t.Fatal("SetDefault accepted an unregistered name")
	}
	if err := reg.SetDefault("second"); err != nil {
		t.Fatal(err)
	}
	if name, s, ok := reg.Default(); !ok || name != "second" || s != b {
		t.Fatalf("default = %q, want second", name)
	}
}

// TestRegistryClose shuts every registered server down.
func TestRegistryClose(t *testing.T) {
	reg := NewRegistry()
	a, b := newNamedServer(t, 1), newNamedServer(t, 2)
	if err := reg.Register("a", a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("b", b); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	if !a.Closed() || !b.Closed() {
		t.Fatal("Close left a server running")
	}
}
