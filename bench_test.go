package repro

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/cyclegan"
	"repro/internal/datastore"
	"repro/internal/ensemble"
	"repro/internal/jag"
	"repro/internal/ltfb"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/perfmodel"
	"repro/internal/proxy"
	"repro/internal/reader"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// One benchmark per paper figure. The heavy ones run real training and take
// seconds per iteration, so `go test -bench=.` executes them once each;
// the regenerated quantities are attached as custom metrics.

// BenchmarkFig7ScalarPrediction trains the surrogate and reports the mean
// per-scalar correlation of predicted vs true observables (Figure 7's
// "ground truth mostly covered by the prediction").
func BenchmarkFig7ScalarPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cyclegan.DefaultConfig(jag.Tiny8)
		cfg.EncoderHidden = []int{48}
		cfg.ForwardHidden = []int{32, 32}
		cfg.InverseHidden = []int{16}
		cfg.DiscHidden = []int{16}
		model, err := core.TrainSurrogate(cfg, 1024, 1500, 32, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanScalarPearson(model, 32), "pearson/scalar")
	}
}

func meanScalarPearson(model *cyclegan.Surrogate, n int) float64 {
	g := model.Cfg.Geometry
	x := tensor.New(n, jag.InputDim)
	y := tensor.New(n, g.OutputDim())
	for i := 0; i < n; i++ {
		s := jag.SimulateAt(g, 6000+i)
		copy(x.Row(i), s.X)
		copy(y.Row(i), s.Output())
	}
	pred := model.Predict(x)
	var sum float64
	for sIdx := 0; sIdx < jag.ScalarDim; sIdx++ {
		truth := make([]float64, n)
		got := make([]float64, n)
		for i := 0; i < n; i++ {
			truth[i] = float64(y.At(i, sIdx))
			got[i] = float64(pred.At(i, sIdx))
		}
		sum += metrics.Pearson(truth, got)
	}
	return sum / jag.ScalarDim
}

// BenchmarkFig8ImagePrediction reports the mean per-pixel MAE of predicted
// X-ray images (Figure 8's visual comparison, quantified).
func BenchmarkFig8ImagePrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := cyclegan.DefaultConfig(jag.Tiny8)
		cfg.EncoderHidden = []int{48}
		cfg.ForwardHidden = []int{32, 32}
		cfg.InverseHidden = []int{16}
		cfg.DiscHidden = []int{16}
		model, err := core.TrainSurrogate(cfg, 1024, 1500, 32, 8)
		if err != nil {
			b.Fatal(err)
		}
		g := model.Cfg.Geometry
		x := tensor.New(16, jag.InputDim)
		y := tensor.New(16, g.OutputDim())
		for k := 0; k < 16; k++ {
			s := jag.SimulateAt(g, 6000+k)
			copy(x.Row(k), s.X)
			copy(y.Row(k), s.Output())
		}
		pred := model.Predict(x)
		var mae float64
		count := 0
		for k := 0; k < 16; k++ {
			for p := jag.ScalarDim; p < g.OutputDim(); p++ {
				d := float64(pred.At(k, p) - y.At(k, p))
				if d < 0 {
					d = -d
				}
				mae += d
				count++
			}
		}
		b.ReportMetric(mae/float64(count), "mae/pixel")
	}
}

// BenchmarkFig9DataParallelScaling regenerates the data-parallel scaling
// study and reports the 16-GPU speedup (paper: 9.36×).
func BenchmarkFig9DataParallelScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := perfmodel.Figure9()
		b.ReportMetric(pts[0].SteadyEpoch/pts[len(pts)-1].SteadyEpoch, "speedup@16gpus")
	}
}

// BenchmarkFig10DataStoreModes regenerates the data-store comparison and
// reports the paper's three benefit ratios at 16 GPUs (1.31×, 1.43×, 1.10×)
// and at 1 GPU (7.73×).
func BenchmarkFig10DataStoreModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := perfmodel.Figure10()
		get := func(g int, m datastore.Mode) float64 {
			for _, p := range pts {
				if p.GPUs == g && p.Mode == m {
					return p.SteadyEpoch
				}
			}
			return 0
		}
		b.ReportMetric(get(1, datastore.ModeNone)/get(1, datastore.ModeDynamic), "benefit@1gpu")
		b.ReportMetric(get(16, datastore.ModeNone)/get(16, datastore.ModeDynamic), "naive/dynamic@16")
		b.ReportMetric(get(16, datastore.ModeNone)/get(16, datastore.ModePreload), "naive/preload@16")
	}
}

// BenchmarkFig11LTFBScaling regenerates the headline strong-scaling study
// and reports the 64-trainer speedup and efficiency (paper: 70.2×, 109%).
func BenchmarkFig11LTFBScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := perfmodel.Figure11()
		last := pts[len(pts)-1]
		b.ReportMetric(last.Speedup, "speedup@64trainers")
		b.ReportMetric(100*last.Efficiency, "efficiency_pct")
		b.ReportMetric(last.PreloadTime/pts[3].PreloadTime, "preload64/preload32")
	}
}

// BenchmarkFig12QualityVsTrainers runs the real LTFB quality experiment and
// reports the final-round improvement of a 4-trainer population over the
// single-trainer baseline (Figure 12: above 1 and growing with trainers).
func BenchmarkFig12QualityVsTrainers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := core.Figure12Config()
		base.Rounds = 6 // shortened: the full schedule runs in cmd/figures
		run := func(k int) *core.QualityResult {
			cfg := base
			cfg.Trainers = k
			cfg.LTFB = k > 1
			res, err := core.RunPopulation(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return res
		}
		baseline := run(1)
		four := run(4)
		last := len(baseline.BestSeries) - 1
		b.ReportMetric(baseline.BestSeries[last]/four.BestSeries[last], "improvement@4trainers")
	}
}

// BenchmarkFig13LTFBvsKIndependent runs the real LTFB-vs-K-independent
// comparison at its near-convergence schedule and reports the LTFB
// advantage at 4 trainers (Figure 13: above 1, growing with k).
func BenchmarkFig13LTFBvsKIndependent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.Figure13Config()
		cfg.Rounds = 8
		cfg.Geometry.Wiggle = 1
		cfg.Model.Geometry.Wiggle = 1

		ltfbCfg := cfg
		ltfbCfg.Trainers = 4
		ltfbCfg.LTFB = true
		ltfbRes, err := core.RunPopulation(ltfbCfg)
		if err != nil {
			b.Fatal(err)
		}
		kindCfg := cfg
		kindCfg.Trainers = 4
		kindCfg.LTFB = false
		kindCfg.Partition = core.PartitionRandom
		kindRes, err := core.RunPopulation(kindCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(kindRes.FinalBest/ltfbRes.FinalBest, "ltfb_advantage@4")
	}
}

// --- Ablation benches (exchange policy and tournament interval) ---

// benchExchange measures one LTFB tournament round with the given exchange
// policy and reports the payload volume.
func benchExchange(b *testing.B, full bool) {
	cfgM := cyclegan.DefaultConfig(jag.Tiny8)
	cfgM.EncoderHidden = []int{32}
	cfgM.ForwardHidden = []int{16}
	cfgM.InverseHidden = []int{12}
	cfgM.DiscHidden = []int{12}

	recs := ensemble.GenerateInMemory(jag.Tiny8, 0, 64)
	ds, err := reader.NewSliceDataset(jag.Tiny8.SampleDim(), recs)
	if err != nil {
		b.Fatal(err)
	}
	tourn := ensemble.GenerateInMemory(jag.Tiny8, 5000, 16)
	tx := tensor.New(16, jag.InputDim)
	ty := tensor.New(16, jag.Tiny8.OutputDim())
	for i, rec := range tourn {
		copy(tx.Row(i), rec[:jag.InputDim])
		copy(ty.Row(i), rec[jag.InputDim:])
	}

	var payload int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := comm.NewWorld(2)
		w.Run(func(wc *comm.Comm) {
			tc := wc.Split(wc.Rank(), 0)
			model := cyclegan.New(cfgM, int64(wc.Rank()))
			store := datastore.New(tc, ds, datastore.ModeDynamic)
			tr, err := trainer.New(trainer.Config{BatchSize: 16, XDim: jag.InputDim, ShuffleSeed: 1}, tc, model, store, ds)
			if err != nil {
				b.Error(err)
				return
			}
			m := &ltfb.Member{
				Cfg:       ltfb.Config{NumTrainers: 2, RoundSteps: 1, PairSeed: 3, ExchangeFull: full},
				TrainerID: wc.Rank(), World: wc, T: tr,
				Scratch: cyclegan.New(cfgM, 99), TournX: tx, TournY: ty,
			}
			if _, err := m.Tournament(i); err != nil {
				b.Error(err)
			}
			if wc.Rank() == 0 {
				if full {
					payload = len(nn.MarshalNetworks(model.Nets()))
				} else {
					payload = len(nn.MarshalNetworks(model.ExchangeNets()))
				}
			}
		})
	}
	b.ReportMetric(float64(payload), "bytes/exchange")
}

// BenchmarkAblationExchangeGeneratorOnly measures the paper's generator-only
// exchange (discriminators stay local).
func BenchmarkAblationExchangeGeneratorOnly(b *testing.B) { benchExchange(b, false) }

// BenchmarkAblationExchangeFullModel measures the full-model exchange the
// paper avoids; compare bytes/exchange against generator-only.
func BenchmarkAblationExchangeFullModel(b *testing.B) { benchExchange(b, true) }

// benchInterval measures final quality at a fixed total step budget with
// the given tournament interval.
func benchInterval(b *testing.B, roundSteps int) {
	const totalSteps = 48
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultQualityConfig(4)
		cfg.TrainSamples = 512
		cfg.RoundSteps = roundSteps
		cfg.Rounds = totalSteps / roundSteps
		res, err := core.RunPopulation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FinalBest, "final_val_loss")
		b.ReportMetric(float64(res.Adoptions), "adoptions")
	}
}

// BenchmarkAblationInterval4 holds tournaments every 4 steps.
func BenchmarkAblationInterval4(b *testing.B) { benchInterval(b, 4) }

// BenchmarkAblationInterval16 holds tournaments every 16 steps.
func BenchmarkAblationInterval16(b *testing.B) { benchInterval(b, 16) }

// benchServe measures serving throughput with 64 concurrent clients;
// one op is one served request. maxBatch 1 disables coalescing (every
// request is its own forward pass), so the batched/unbatched ratio is
// the serving-side analogue of the paper's bundle-file amortization
// argument (Section II-C): fixed per-dispatch cost is paid once per
// batch instead of once per request. On CPU-only hosts the real
// per-pass cost is just allocation + scheduling hops + the flush
// timer, so — exactly like ensemble.Config.TaskOverhead models
// Merlin's per-task scheduler cost — PassOverhead models the
// kernel-launch/RPC overhead of a production accelerator deployment
// (20µs is the order of a CUDA launch plus inference-server hop).
func benchServe(b *testing.B, maxBatch int) {
	g := jag.Config{ImageSize: 4, Views: 3, Channels: 2}
	cfg := cyclegan.DefaultConfig(g)
	cfg.EncoderHidden = []int{16}
	cfg.ForwardHidden = []int{8}
	cfg.InverseHidden = []int{8}
	cfg.DiscHidden = []int{8}
	pool, err := serve.NewPool([]*cyclegan.Surrogate{cyclegan.New(cfg, 9)}, false)
	if err != nil {
		b.Fatal(err)
	}
	srv := serve.NewServer(pool, serve.Config{
		MaxBatch:     maxBatch,
		MaxDelay:     2 * time.Millisecond,
		QueueDepth:   256,
		PassOverhead: 20 * time.Microsecond,
	})
	defer srv.Close()

	// 64 persistent clients issue b.N requests total; one op is one
	// served request.
	const clients = 64
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			x := make([]float32, jag.InputDim)
			for i := c; i < b.N; i += clients {
				for d := range x {
					x[d] = float32((i*7+d*13)%997) / 997
				}
				if _, err := srv.Predict(x); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	snap := srv.Stats()
	b.ReportMetric(snap.MeanBatch, "mean_batch")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeBatched serves 64 concurrent clients through the
// micro-batching queue (one coalesced forward pass per burst).
func BenchmarkServeBatched(b *testing.B) { benchServe(b, 64) }

// BenchmarkServeUnbatched serves the same load one request per forward
// pass; compare req/s against BenchmarkServeBatched.
func BenchmarkServeUnbatched(b *testing.B) { benchServe(b, 1) }

// BenchmarkEnsembleGeneration measures the dataset-generation workflow
// (samples/op via the reported time; one op = a 512-sample campaign).
func BenchmarkEnsembleGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		recs := ensemble.GenerateInMemory(jag.Tiny8, 0, 512)
		if len(recs) != 512 {
			b.Fatal("short generation")
		}
	}
}

// BenchmarkSensitivitySweep evaluates the headline's robustness to the
// modelled mechanisms; the summary appears in EXPERIMENTS.md.
func BenchmarkSensitivitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := perfmodel.SweepHeadline(5)
		if len(pts) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkProxyOverhead measures the fleet router's per-request hop:
// the same single-row request against a jagserve backend directly and
// through jagproxy. perfmodel.FleetScenario.HopSec is the proxied
// minus direct per-op time from this benchmark.
func BenchmarkProxyOverhead(b *testing.B) {
	g := jag.Config{ImageSize: 4, Views: 3, Channels: 2}
	cfg := cyclegan.DefaultConfig(g)
	cfg.EncoderHidden = []int{16}
	cfg.ForwardHidden = []int{8}
	cfg.InverseHidden = []int{8}
	cfg.DiscHidden = []int{8}
	pool, err := serve.NewPool([]*cyclegan.Surrogate{cyclegan.New(cfg, 9)}, false)
	if err != nil {
		b.Fatal(err)
	}
	reg := serve.NewRegistry()
	if err := reg.Register("jag", serve.NewServer(pool, serve.Config{MaxBatch: 8})); err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	backend := httptest.NewServer(serve.NewRegistryHandler(reg, serve.HandlerConfig{}))
	defer backend.Close()

	p, err := proxy.New([]string{backend.URL}, proxy.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Start(ctx)
	front := httptest.NewServer(p)
	defer front.Close()

	for _, tier := range []struct{ name, url string }{
		{"direct", backend.URL},
		{"proxied", front.URL},
	} {
		b.Run(tier.name, func(b *testing.B) {
			cl := serve.NewClient(tier.url)
			x := make([]float32, jag.InputDim)
			for i := 0; i < b.N; i++ {
				for d := range x {
					x[d] = float32((i*7+d*13)%997) / 997
				}
				if _, rowErrs, err := cl.Call(context.Background(), "jag", serve.MethodPredict, [][]float32{x}); err != nil || rowErrs != nil {
					b.Fatalf("call failed: err=%v rowErrs=%v", err, rowErrs)
				}
			}
		})
	}
}
