package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, typechecked package: the unit analyzers run
// over.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves the go-list patterns in moduleDir and returns the
// matched packages parsed from source and typechecked, with imports
// satisfied by export data from the build cache (`go list -export`
// compiles what is missing). Test files are not loaded — the suite
// guards production invariants; fixtures exercising the analyzers live
// under testdata and are loaded by linttest instead.
//
// The loader shells out to the go tool only — no third-party module is
// involved — so it works in the offline CI sandbox.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	deps := map[string]*listedPkg{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		lp := p
		deps[p.ImportPath] = &lp
	}

	// -deps mixes dependencies in with the matches; re-list without it
	// to name the target packages exactly.
	targets, err := listTargets(moduleDir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exp := &exportImporter{fset: fset, deps: deps, loaded: map[string]*types.Package{}}
	var pkgs []*Package
	for _, path := range targets {
		lp, ok := deps[path]
		if !ok {
			return nil, fmt.Errorf("go list did not describe %q", path)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", path, lp.Error.Err)
		}
		if lp.Name == "main" && len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheckDir(fset, exp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and typechecks every non-test .go file of one
// directory as a single package. It is the fixture loader behind
// linttest.Run: testdata directories are invisible to go list, so the
// fixture's stdlib (and module) imports resolve through the same lazy
// export-data importer the pattern loader uses.
func LoadDir(dir string) (*Package, error) {
	entries, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !strings.HasSuffix(e, "_test.go") {
			goFiles = append(goFiles, filepath.Base(e))
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	exp := &exportImporter{fset: fset, deps: map[string]*listedPkg{}, loaded: map[string]*types.Package{}}
	return typecheckDir(fset, exp, "testdata/"+filepath.Base(dir), dir, goFiles)
}

// listTargets names the packages matching the patterns (no -deps).
func listTargets(moduleDir string, patterns []string) ([]string, error) {
	cmd := exec.Command("go", append([]string{"list"}, patterns...)...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var targets []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			targets = append(targets, line)
		}
	}
	return targets, nil
}

// typecheckDir parses the named files of one directory and typechecks
// them as a package.
func typecheckDir(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// newTypesInfo allocates the Info maps every analyzer relies on.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// exportImporter satisfies go/types imports from build-cache export
// data (the Export field of `go list -export -json`), via the standard
// library's gc importer.
type exportImporter struct {
	fset   *token.FileSet
	deps   map[string]*listedPkg
	loaded map[string]*types.Package
	gc     types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := e.loaded[path]; ok {
		return p, nil
	}
	if e.gc == nil {
		e.gc = importer.ForCompiler(e.fset, "gc", e.lookup)
	}
	p, err := e.gc.Import(path)
	if err != nil {
		return nil, err
	}
	e.loaded[path] = p
	return p, nil
}

// lookup opens the build-cache export file for one import path,
// shelling out to `go list -export` for paths the initial -deps sweep
// did not cover (e.g. stdlib imports of test fixtures).
func (e *exportImporter) lookup(path string) (io.ReadCloser, error) {
	lp, ok := e.deps[path]
	if !ok || lp.Export == "" {
		found, err := exportFileFor(path)
		if err != nil {
			return nil, fmt.Errorf("no export data for %q: %v", path, err)
		}
		lp = &listedPkg{ImportPath: path, Export: found}
		e.deps[path] = lp
	}
	return os.Open(lp.Export)
}

// exportFileFor asks the go tool for one package's export-data file.
func exportFileFor(path string) (string, error) {
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	file := strings.TrimSpace(string(out))
	if file == "" {
		return "", fmt.Errorf("go list -export %s: empty Export", path)
	}
	return file, nil
}
