package serve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cyclegan"
	"repro/internal/jag"
)

// newNamedServer builds a single-replica server for registry tests.
func newNamedServer(t *testing.T, seed int64) *Server {
	t.Helper()
	pool, err := NewPool([]*cyclegan.Surrogate{cyclegan.New(testModelCfg(), seed)}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(pool, Config{MaxBatch: 4})
	t.Cleanup(s.Close)
	return s
}

// TestRegistryRegister covers naming rules, duplicates, and lookup.
func TestRegistryRegister(t *testing.T) {
	reg := NewRegistry()
	a, b := newNamedServer(t, 1), newNamedServer(t, 2)
	if err := reg.Register("jag", a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("jag", b); err == nil {
		t.Fatal("duplicate name accepted")
	}
	for _, bad := range []string{"", "has space", "a/b", "-leading", "q?x"} {
		if err := reg.Register(bad, b); err == nil {
			t.Fatalf("invalid name %q accepted", bad)
		}
	}
	if err := reg.Register("jag.top-2_v1", b); err != nil {
		t.Fatalf("valid punctuated name rejected: %v", err)
	}
	if err := reg.Register("nil", nil); err == nil {
		t.Fatal("nil server accepted")
	}

	if got, ok := reg.Get("jag"); !ok || got != a {
		t.Fatal("Get returned the wrong server")
	}
	if _, ok := reg.Get("missing"); ok {
		t.Fatal("Get found an unregistered model")
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "jag" || names[1] != "jag.top-2_v1" {
		t.Fatalf("Names = %v, want sorted pair", names)
	}
	if reg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", reg.Len())
	}
}

// TestRegistryDefault pins default semantics: first registered wins
// until SetDefault, which must name a registered model.
func TestRegistryDefault(t *testing.T) {
	reg := NewRegistry()
	if _, _, ok := reg.Default(); ok {
		t.Fatal("empty registry has a default")
	}
	a, b := newNamedServer(t, 1), newNamedServer(t, 2)
	if err := reg.Register("first", a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("second", b); err != nil {
		t.Fatal(err)
	}
	if name, s, ok := reg.Default(); !ok || name != "first" || s != a {
		t.Fatalf("default = %q, want first", name)
	}
	if err := reg.SetDefault("missing"); err == nil {
		t.Fatal("SetDefault accepted an unregistered name")
	}
	if err := reg.SetDefault("second"); err != nil {
		t.Fatal(err)
	}
	if name, s, ok := reg.Default(); !ok || name != "second" || s != b {
		t.Fatalf("default = %q, want second", name)
	}
}

// TestRegistryClose shuts every registered server down.
func TestRegistryClose(t *testing.T) {
	reg := NewRegistry()
	a, b := newNamedServer(t, 1), newNamedServer(t, 2)
	if err := reg.Register("a", a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("b", b); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	if !a.Closed() || !b.Closed() {
		t.Fatal("Close left a server running")
	}
}

// TestReplaceDrainDeadline pins the bounded-drain contract: with a
// drain deadline set, a Replace whose old server has an Acquire holder
// that never releases returns once the deadline passes, force-closes
// the old server (its remaining Calls fail with ErrClosed), and counts
// the forced close — while a holder that releases promptly never trips
// the counter.
func TestReplaceDrainDeadline(t *testing.T) {
	reg := NewRegistry()
	reg.SetDrainDeadline(60 * time.Millisecond)
	a, b, c := newNamedServer(t, 1), newNamedServer(t, 2), newNamedServer(t, 3)
	if err := reg.Register("jag", a); err != nil {
		t.Fatal(err)
	}

	// A well-behaved holder: acquire, release, then swap. No force.
	if _, release, ok := reg.Acquire("jag"); !ok {
		t.Fatal("Acquire failed")
	} else {
		release()
	}
	if err := reg.Replace("jag", b); err != nil {
		t.Fatal(err)
	}
	if n := reg.ForcedCloses("jag"); n != 0 {
		t.Fatalf("clean drain counted as forced: %d", n)
	}
	if !a.Closed() {
		t.Fatal("clean drain left the old server open")
	}

	// A straggler that never releases: Replace must not block forever.
	held, release, ok := reg.Acquire("jag")
	if !ok || held != b {
		t.Fatal("Acquire returned the wrong server")
	}
	start := time.Now()
	if err := reg.Replace("jag", c); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 50*time.Millisecond {
		t.Fatalf("Replace returned before the drain deadline: %v", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Replace took far longer than the deadline: %v", elapsed)
	}
	if !b.Closed() {
		t.Fatal("deadline passed but the old server was not force-closed")
	}
	if n := reg.ForcedCloses("jag"); n != 1 {
		t.Fatalf("ForcedCloses = %d, want 1", n)
	}
	// The straggler sees ErrClosed, not a hang or a panic.
	if _, err := held.Predict(make([]float32, jag.InputDim)); !errors.Is(err, ErrClosed) {
		t.Fatalf("straggler Predict error = %v, want ErrClosed", err)
	}
	release() // late release is harmless
	if n := reg.ForcedCloses("jag"); n != 1 {
		t.Fatalf("late release moved the counter: %d", n)
	}
	if gen := reg.Generation("jag"); gen != 3 {
		t.Fatalf("generation = %d, want 3", gen)
	}
}

// TestReplaceLeakedAcquireForcesClose leaks an Acquire pin outright —
// the release func is discarded, the exact bug jaglint's acquirerelease
// analyzer exists to catch in production code (test files are outside
// its scope, which is what lets this test stage the failure mode).
// The pin can never be released, so Replace must block for the full
// drain deadline, then force-close the displaced server and count it.
func TestReplaceLeakedAcquireForcesClose(t *testing.T) {
	const deadline = 80 * time.Millisecond
	reg := NewRegistry()
	reg.SetDrainDeadline(deadline)
	old, next := newNamedServer(t, 1), newNamedServer(t, 2)
	if err := reg.Register("jag", old); err != nil {
		t.Fatal(err)
	}

	leaked, _, ok := reg.Acquire("jag") // release deliberately leaked
	if !ok || leaked != old {
		t.Fatal("Acquire failed")
	}

	// Replace must not return before the deadline: the leaked pin keeps
	// the drain WaitGroup open, and only the timer can end the wait.
	start := time.Now()
	if err := reg.Replace("jag", next); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < deadline {
		t.Fatalf("Replace returned in %v, before the %v drain deadline — the leaked pin should have blocked it", elapsed, deadline)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Replace took %v, far past the %v deadline", elapsed, deadline)
	}

	if !old.Closed() {
		t.Fatal("leaked pin survived the deadline: old server still open")
	}
	if n := reg.ForcedCloses("jag"); n != 1 {
		t.Fatalf("ForcedCloses = %d, want 1 after a leaked pin", n)
	}
	// The leaked holder's server is dead; calls fail fast.
	if _, err := leaked.Predict(make([]float32, jag.InputDim)); !errors.Is(err, ErrClosed) {
		t.Fatalf("leaked holder Predict error = %v, want ErrClosed", err)
	}
	// The replacement is live and unaffected by the forced close.
	if s, ok := reg.Get("jag"); !ok || s != next {
		t.Fatal("replacement server not installed")
	}
	if _, err := next.Predict(make([]float32, jag.InputDim)); err != nil {
		t.Fatalf("replacement Predict failed: %v", err)
	}
}
