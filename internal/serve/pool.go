package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/tensor"
)

// Pool holds N surrogate replicas behind per-replica locks. nn.Network
// caches forward activations inside the layers, so a replica admits one
// batch at a time; the pool is the unit of serving parallelism. In
// round-robin mode every replica answers alone (they may be copies of
// one checkpoint, or different checkpoints for cheap A/B capacity); in
// ensemble mode each batch runs through every replica and the
// predictions are averaged — the serving-side use of the LTFB insight
// that a population of tournament survivors carries more information
// than any single member (Section III-C's lineage argument).
type Pool struct {
	replicas []*cyclegan.Surrogate
	locks    []sync.Mutex
	next     atomic.Uint64
	ensemble bool
}

// NewPool wraps already-built surrogates. All replicas must share the
// same geometry. ensemble selects averaging across replicas instead of
// round-robin dispatch.
func NewPool(replicas []*cyclegan.Surrogate, ensemble bool) (*Pool, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("serve: pool needs at least one replica")
	}
	dim := replicas[0].Cfg.Geometry.OutputDim()
	for i, r := range replicas {
		if r.Cfg.Geometry.OutputDim() != dim {
			return nil, fmt.Errorf("serve: replica %d output dim %d, want %d",
				i, r.Cfg.Geometry.OutputDim(), dim)
		}
	}
	return &Pool{
		replicas: replicas,
		locks:    make([]sync.Mutex, len(replicas)),
		ensemble: ensemble,
	}, nil
}

// NewPoolFromCheckpoints builds a pool of `replicas` surrogates with
// architecture cfg, loading weights round-robin from the checkpoint
// paths (so one path replicated N times gives N identical replicas, and
// the top-k tournament checkpoints give a k-way ensemble). In ensemble
// mode the pool holds exactly one replica per checkpoint regardless of
// `replicas`: every batch runs through every replica, so duplicates
// would both bias the average toward repeated checkpoints and add pure
// wasted compute. Optimizer state is not restored — serving is
// inference-only.
func NewPoolFromCheckpoints(cfg cyclegan.Config, paths []string, replicas int, ensemble bool) (*Pool, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("serve: no checkpoint paths")
	}
	if ensemble {
		replicas = len(paths)
	} else if replicas < len(paths) {
		replicas = len(paths)
	}
	models := make([]*cyclegan.Surrogate, replicas)
	for i := range models {
		m := cyclegan.New(cfg, 0)
		if _, err := checkpoint.Load(paths[i%len(paths)], m.Nets()); err != nil {
			return nil, err
		}
		models[i] = m
	}
	return NewPool(models, ensemble)
}

// Pool implements the Model contract the Server batches over.
var _ Model = (*Pool)(nil)

// Replicas returns the pool width.
func (p *Pool) Replicas() int { return len(p.replicas) }

// Ensemble reports whether the pool averages across replicas.
func (p *Pool) Ensemble() bool { return p.ensemble }

// OutputDim returns the width of one prediction row.
func (p *Pool) OutputDim() int { return p.replicas[0].Cfg.Geometry.OutputDim() }

// Dims enumerates the surrogate's served methods: the forward pass
// ("predict": 5-D design point to output bundle) and the inverse pass
// ("invert": the self-consistency path G(F(x)), 5-D to 5-D).
func (p *Pool) Dims() map[string]Dims {
	return map[string]Dims{
		MethodPredict: {In: jag.InputDim, Out: p.OutputDim()},
		MethodInvert:  {In: jag.InputDim, Out: jag.InputDim},
	}
}

// pass returns the per-replica forward function for method.
func pass(method string) (func(*cyclegan.Surrogate, *tensor.Matrix) *tensor.Matrix, error) {
	switch method {
	case MethodPredict:
		return (*cyclegan.Surrogate).Predict, nil
	case MethodInvert:
		return (*cyclegan.Surrogate).Invert, nil
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownMethod, method)
}

// Run executes one batched pass of method. Round-robin mode locks a
// single replica; ensemble mode fans the batch out to every replica
// concurrently and averages the outputs elementwise.
func (p *Pool) Run(method string, x *tensor.Matrix) (*tensor.Matrix, error) {
	fwd, err := pass(method)
	if err != nil {
		return nil, err
	}
	if !p.ensemble || len(p.replicas) == 1 {
		i := int(p.next.Add(1)-1) % len(p.replicas)
		p.locks[i].Lock()
		defer p.locks[i].Unlock()
		return fwd(p.replicas[i], x), nil
	}

	outs := make([]*tensor.Matrix, len(p.replicas))
	var wg sync.WaitGroup
	for i := range p.replicas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.locks[i].Lock()
			defer p.locks[i].Unlock()
			outs[i] = fwd(p.replicas[i], x)
		}(i)
	}
	wg.Wait()

	// Average into a fresh matrix: outs[0] aliases replica 0's cached
	// final-layer activation (nn.Sigmoid keeps the matrix it returns for
	// the backward pass — both the decoder and the inverse net end in
	// one), so summing in place would corrupt a model that is later
	// trained or evaluated.
	sum := outs[0].Clone()
	for _, o := range outs[1:] {
		tensor.Add(sum, sum, o)
	}
	tensor.Scale(sum, 1/float32(len(p.replicas)))
	return sum, nil
}
