package proxy

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve"
)

// Active health probing and capacity refresh. The prober is the single
// authority for reinstatement: a backend dropped by either a failed
// probe or the passive breaker returns to rotation only after
// Config.RecoverAfter consecutive probe successes, so one lucky request
// cannot resurrect a flapping replica.

// maintain runs the periodic sweeps until ctx is cancelled.
func (p *Proxy) maintain(ctx context.Context) {
	health := time.NewTicker(p.cfg.HealthInterval)
	defer health.Stop()
	capacity := time.NewTicker(p.cfg.CapacityInterval)
	defer capacity.Stop()
	sweep := time.NewTicker(time.Minute)
	defer sweep.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-health.C:
			p.probeSweep(ctx)
		case <-capacity.C:
			p.capacitySweep(ctx)
		case <-sweep.C:
			if p.limiter != nil {
				p.limiter.sweep(time.Now())
			}
		}
	}
}

// probeSweep probes every backend's /healthz concurrently: a wedged
// backend must not delay the verdict on its siblings.
func (p *Proxy) probeSweep(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range p.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			p.probeOne(ctx, b)
		}(b)
	}
	wg.Wait()
}

// probeOne performs one active probe and applies the resulting health
// transition, if any. A 503 /healthz (backend reports itself closed or
// degraded) counts as a failed probe just like a connect error.
func (p *Proxy) probeOne(ctx context.Context, b *Backend) {
	pctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
	defer cancel()
	ok, detail := true, ""
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		ok, detail = false, err.Error()
	} else if resp, err := p.probeHC.Do(req); err != nil {
		ok, detail = false, err.Error()
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			ok, detail = false, fmt.Sprintf("healthz HTTP %d", resp.StatusCode)
		}
	}
	down, up := b.noteProbe(ok, detail, p.cfg.FailAfter, p.cfg.RecoverAfter)
	switch {
	case down:
		p.setHealth(b, false, "probe: "+detail)
	case up:
		p.setHealth(b, true, "probe recovered")
	}
}

// capacitySweep refreshes each backend's probed capacity from its stats
// route, seeding the weighted least-loaded router. A backend that
// cannot answer keeps its previous weight — stale beats zero, which
// would silently demote the whole fleet to power-of-two-choices.
func (p *Proxy) capacitySweep(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range p.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			p.refreshCapacity(ctx, b)
		}(b)
	}
	wg.Wait()
}

// refreshCapacity reads one backend's capacity_qps via the serve
// client. With Config.CapacityModel unset, the backend's first listed
// model stands in for the whole process — jagserve publishes the same
// probed rate per model, so any of them works.
func (p *Proxy) refreshCapacity(ctx context.Context, b *Backend) {
	cctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
	defer cancel()
	client := serve.NewClient(b.base).WithHTTPClient(p.probeHC)
	model := p.cfg.CapacityModel
	if model == "" {
		models, err := client.Models(cctx)
		if err != nil || len(models) == 0 {
			return
		}
		model = models[0].Name
	}
	stats, err := client.Stats(cctx, model)
	if err != nil {
		return
	}
	b.setCapacity(stats.CapacityQPS)
}
