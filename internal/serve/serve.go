// Package serve turns trained surrogates into an online prediction
// service — the deployment side of the paper's workflow, where the
// generative model replaces the JAG simulator for downstream consumers:
// forward prediction, inverse design, and bulk parameter sweeps.
//
// The core piece is a dynamic micro-batching queue: concurrent callers
// are coalesced into a single tensor.Matrix mini-batch, run through one
// forward pass, and the result rows scattered back to their callers.
// This is the serving-side twin of the ingest economics the paper
// exploits with Merlin and bundle files (Section II-C): per-call
// overhead dominates tiny workloads, so amortizing it across a batch is
// where the throughput lives. A batch is flushed when it reaches
// MaxBatch requests or when the oldest queued request has waited
// MaxDelay, whichever comes first.
//
// The pipeline serves any Model: a small interface exposing named
// methods (a *Pool of cyclegan replicas serves "predict" and "invert")
// with per-method tensor widths. Batches are keyed by method — each
// method has its own queue and batch loop, so rows bound for different
// forward passes never mix in one batch — while every method shares the
// server's worker pool, cache, backpressure budget, and stats.
//
// Every request has a lifecycle: it carries a context.Context and a
// Priority class. Each method's queue keeps one lane per class and the
// batcher drains Interactive strictly before Bulk, so design-space
// exploration preempts background scans. At flush time rows whose
// context is already cancelled or past its deadline are discarded
// before the forward pass — a caller that gave up never costs model
// time — and show up in the stats as expired/cancelled. The same
// Section II-C lesson again: per-task overhead spent on work nobody is
// waiting for is pure waste.
//
// Around the queue sit:
//
//   - a replica pool (pool.go) that round-robins batches across N model
//     replicas — nn.Network is not safe for concurrent use, so each
//     replica is guarded and replicas are what provide parallelism —
//     with optional ensemble averaging across replicas loaded from
//     different checkpoints (e.g. the top-k LTFB tournament finishers);
//   - a Registry (registry.go) mapping model names to independently
//     configured Servers, each with its own pool, cache, lanes, and
//     stats — one process serving several named models. The registry is
//     also the hot-swap point: Replace atomically substitutes the
//     server behind a name (Acquire holders drain first, bounded by an
//     optional drain deadline; a per-name generation counter records
//     each swap), and a Reloader (reload.go) automates it from disk —
//     polling a spec/checkpoint path by stat signature then SHA-256
//     fingerprint, canary-testing the rebuilt pool, and promoting new
//     LTFB winners with rollback on corrupt checkpoints;
//   - an LRU response cache (cache.go) keyed on (method, quantized
//     input), exploiting that surrogate queries cluster around design
//     points of interest;
//   - backpressure: the number of in-flight requests is bounded by
//     QueueDepth across all of a server's methods and lanes; excess
//     callers fail fast with ErrOverloaded instead of queueing without
//     bound;
//   - instrumentation (stats.go): counters plus lock-free streaming
//     latency histograms — end-to-end and per pipeline stage
//     (queue_wait, batch_assembly, forward, encode) — exposed as a
//     JSON snapshot with p50/p90/p99/p999 quantiles, as a Prometheus
//     exposition (metrics.go, GET /metrics), and per request as a
//     Trace returned by CallTrace. Every HTTP request carries an
//     X-Request-Id (middleware.go) and its response a Server-Timing
//     stage decomposition; docs/OBSERVABILITY.md is the reference;
//   - calibration (probe.go): CostProbe times the model's forward pass
//     through the worker's own gather/run/scatter path and fits the
//     affine per-pass/per-row cost that internal/perfmodel's serving
//     capacity model predicts QPS and latency from.
//
// http.go adds the versioned HTTP surface used by cmd/jagserve
// (/v1/models, /v1/models/{name}/{method}, per-model stats and
// reload-aware /healthz) with both JSON and binary tensor transports
// (wire.go); client.go is the matching Go client. docs/SERVING.md is
// the operator guide.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// Errors returned by the Call/Predict family.
var (
	// ErrOverloaded is returned when QueueDepth requests are already in
	// flight; callers should back off and retry (HTTP 503).
	ErrOverloaded = errors.New("serve: overloaded, queue full")
	// ErrClosed is returned once the server has been shut down.
	ErrClosed = errors.New("serve: server closed")
	// ErrExpired is returned when the request context's deadline passed
	// before the prediction completed; the row is dropped before the
	// forward pass if it is still queued (HTTP 504).
	ErrExpired = errors.New("serve: request deadline expired")
	// ErrCancelled is returned when the request context was cancelled;
	// like ErrExpired, a still-queued row never reaches the model.
	ErrCancelled = errors.New("serve: request cancelled")
	// ErrUnknownMethod is returned when a request names a method the
	// model does not serve (HTTP 404).
	ErrUnknownMethod = errors.New("serve: unknown method")
	// ErrModelFailure wraps an error returned by the model's forward
	// pass itself; the request was valid but the model could not answer
	// it (HTTP 500).
	ErrModelFailure = errors.New("serve: model failure")
)

// Names of the methods a *Pool-backed model serves. A Model may expose
// any method names; these two are the conventional vocabulary of the
// CycleGAN surrogate (http.go routes them as
// /v1/models/{name}/predict and /v1/models/{name}/invert).
const (
	// MethodPredict is the forward surrogate: 5-D inputs to output
	// bundles (scalars + images), Dec(F(x)).
	MethodPredict = "predict"
	// MethodInvert is the inverse surrogate: the self-consistency path
	// G(F(x)), inferring the inputs a design point maps back to.
	MethodInvert = "invert"
)

// Priority is a request's queue lane. The batcher drains Interactive
// strictly before Bulk, so latency-sensitive callers preempt background
// scans without a separate server.
type Priority int

const (
	// Interactive is the default class: a human (or latency-sensitive
	// system) is waiting on the answer.
	Interactive Priority = iota
	// Bulk is for background work — dataset generation, parameter
	// sweeps — that should soak up leftover capacity only.
	Bulk

	numLanes
)

// String returns the wire name of the class.
func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Bulk:
		return "bulk"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// ParsePriority maps a wire name to a Priority. The empty string is
// Interactive, matching the zero value.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(s) {
	case "", "interactive":
		return Interactive, nil
	case "bulk":
		return Bulk, nil
	}
	return 0, fmt.Errorf("serve: unknown priority %q (want interactive or bulk)", s)
}

// Dims describes the per-row input and output widths of one model
// method.
type Dims struct {
	In  int `json:"in"`
	Out int `json:"out"`
}

// Model is the serving pipeline's contract with a servable model. *Pool
// is the canonical implementation; anything exposing fixed-width named
// batch methods can stand behind a Server.
type Model interface {
	// Dims enumerates the model's methods and their per-row tensor
	// widths. The key set is the method set and must be non-empty and
	// fixed for the model's lifetime; NewServer snapshots it once.
	Dims() map[string]Dims
	// Run executes one batched forward pass of method on x (one request
	// per row) and returns a matrix with the same number of rows. The
	// queue never mixes methods in one batch, and Run must be safe for
	// concurrent use — Server runs one Run call per worker in parallel.
	Run(method string, x *tensor.Matrix) (*tensor.Matrix, error)
}

// Config tunes the serving pipeline around a loaded Model.
type Config struct {
	// MaxBatch is the largest number of requests coalesced into one
	// forward pass (default 64).
	MaxBatch int
	// MaxDelay is how long the oldest queued request may wait before a
	// partial batch is flushed (default 2ms). Latency floor vs batch
	// occupancy is the serving trade-off this knob sets.
	MaxDelay time.Duration
	// QueueDepth bounds the number of in-flight requests across all
	// methods and priority lanes; further Call requests fail with
	// ErrOverloaded (default 4*MaxBatch).
	QueueDepth int
	// Workers is the number of goroutines running forward passes; it is
	// the server's parallel width. 0 uses the model's Replicas() if it
	// has one (as *Pool does), else 1.
	Workers int
	// CacheSize is the LRU response-cache capacity in entries, shared
	// across methods; 0 disables caching.
	CacheSize int
	// CacheQuantum is the grid step inputs are snapped to when forming
	// cache keys (default 1e-6). Coarser grids trade exactness for hit
	// rate; the JAG input cube is [0,1]^5 so 1e-6 is effectively exact.
	CacheQuantum float64
	// PassOverhead simulates fixed per-dispatch cost ahead of each
	// forward pass — the GPU kernel-launch / accelerator-RPC overhead a
	// production deployment pays once per batch. Zero for library use;
	// the benchmarks use it the way ensemble.Config.TaskOverhead models
	// Merlin's per-task scheduler cost (Section II-C), to make the
	// batching economics measurable on CPU-only hosts where per-row
	// arithmetic is the only real per-pass cost.
	PassOverhead time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.CacheQuantum <= 0 {
		c.CacheQuantum = 1e-6
	}
	return c
}

// result is what the pipeline hands back to a waiting caller.
type result struct {
	y     []float32
	trace Trace
	err   error
}

// request is one queued prediction with its lifecycle and reply channel.
type request struct {
	ctx      context.Context
	x        []float32
	class    Priority
	enqueued time.Time
	resp     chan result // buffered(1): the pipeline never blocks on an abandoned caller
}

// batch is one method-homogeneous set of requests bound for a single
// forward pass.
type batch struct {
	method string
	reqs   []*request
	// flushed is when the batch loop closed the batch and handed it to
	// the workers: the end of every row's queue-wait span and the start
	// of the assembly span.
	flushed time.Time
}

// methodQueue is one method's pair of priority lanes. Batches are keyed
// by method: each queue has its own batch loop, so rows for different
// methods never share a forward pass.
type methodQueue struct {
	lanes [numLanes]chan *request
}

// Server owns the micro-batching queues in front of a Model.
type Server struct {
	cfg     Config
	model   Model
	dims    map[string]Dims
	methods []string // sorted
	cache   *lru
	stats   *Stats

	queues   map[string]*methodQueue
	batches  chan *batch
	inflight atomic.Int64
	// capacity holds the float64 bits of the probed sustainable row
	// rate (rows/s); 0 until SetCapacityQPS publishes a probe result.
	capacity atomic.Uint64

	loops  sync.WaitGroup // one batchLoop per method
	mu     sync.RWMutex   // guards closed vs in-progress queue sends
	closed bool
	wg     sync.WaitGroup // workers + batches-channel closer
}

// NewServer starts one batch loop per model method and cfg.Workers
// forward-pass workers. Close must be called to release them. The
// model's method set must be non-empty with positive dims; NewServer
// panics otherwise — a Model that cannot describe its own shapes is a
// programming error, not a runtime condition.
func NewServer(model Model, cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Workers <= 0 {
		if r, ok := model.(interface{ Replicas() int }); ok {
			cfg.Workers = r.Replicas()
		} else {
			cfg.Workers = 1
		}
	}
	src := model.Dims()
	if len(src) == 0 {
		panic("serve: model exposes no methods")
	}
	dims := make(map[string]Dims, len(src))
	methods := make([]string, 0, len(src))
	for m, d := range src {
		if m == "" || d.In <= 0 || d.Out <= 0 {
			panic(fmt.Sprintf("serve: model method %q has invalid dims %+v", m, d))
		}
		dims[m] = d
		methods = append(methods, m)
	}
	sort.Strings(methods)
	s := &Server{
		cfg:     cfg,
		model:   model,
		dims:    dims,
		methods: methods,
		stats:   newStats(),
		queues:  make(map[string]*methodQueue, len(dims)),
		batches: make(chan *batch, cfg.Workers),
	}
	if cfg.CacheSize > 0 {
		s.cache = newLRU(cfg.CacheSize)
	}
	for _, m := range methods {
		q := &methodQueue{}
		for l := range q.lanes {
			// Each lane holds QueueDepth so a send never blocks even if
			// every in-flight request lands in one lane.
			q.lanes[l] = make(chan *request, cfg.QueueDepth)
		}
		s.queues[m] = q
		s.loops.Add(1)
		go s.batchLoop(m, q)
	}
	// The batches channel has multiple senders (one loop per method);
	// close it only after every loop has exited.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.loops.Wait()
		close(s.batches)
	}()
	// Workers hold a whole batch through one forward pass, so the
	// worker count is the pipeline's parallel width.
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	return s
}

// Model returns the model the server dispatches to.
func (s *Server) Model() Model { return s.model }

// Methods returns the model's method names in sorted order.
func (s *Server) Methods() []string { return append([]string(nil), s.methods...) }

// Dims returns a copy of the per-method tensor widths.
func (s *Server) Dims() map[string]Dims {
	out := make(map[string]Dims, len(s.dims))
	for m, d := range s.dims {
		out[m] = d
	}
	return out
}

// OutputDim returns the width of "predict" result rows, or 0 if the
// model has no predict method. Kept for the single-model callers that
// predate method dispatch.
func (s *Server) OutputDim() int { return s.dims[MethodPredict].Out }

// Closed reports whether Close has been called.
func (s *Server) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Predict returns the surrogate's output bundle for one input at
// Interactive priority with no deadline. See Call.
func (s *Server) Predict(x []float32) ([]float32, error) {
	return s.Call(context.Background(), MethodPredict, x, Interactive)
}

// PredictContext is Predict with a caller-controlled lifecycle: if ctx
// is cancelled or its deadline passes while the request is queued, the
// call returns ErrCancelled/ErrExpired and the stale row is discarded
// at flush time without costing a forward pass.
func (s *Server) PredictContext(ctx context.Context, x []float32) ([]float32, error) {
	return s.Call(ctx, MethodPredict, x, Interactive)
}

// PredictPriority is PredictContext with an explicit queue lane.
func (s *Server) PredictPriority(ctx context.Context, x []float32, class Priority) ([]float32, error) {
	return s.Call(ctx, MethodPredict, x, class)
}

// Call submits one row to the named method's batching queue and blocks
// until the batched forward pass completes or ctx ends. It fails fast
// with ErrOverloaded under backpressure, with ErrUnknownMethod for a
// method outside the model's set, and serves repeated inputs from the
// LRU cache when one is configured. The returned slice is the caller's
// on a miss; on a cache hit it is the shared cached row and must not be
// mutated.
func (s *Server) Call(ctx context.Context, method string, x []float32, class Priority) ([]float32, error) {
	y, _, err := s.CallTrace(ctx, method, x, class)
	return y, err
}

// CallTrace is Call returning the request's span record as well: where
// the latency went, stage by stage (see Trace). The trace is only
// meaningful when err is nil — a rejected or dropped request never
// completed the pipeline.
func (s *Server) CallTrace(ctx context.Context, method string, x []float32, class Priority) ([]float32, Trace, error) {
	if class < 0 || class >= numLanes {
		return nil, Trace{}, fmt.Errorf("serve: unknown priority %d", class)
	}
	q, ok := s.queues[method]
	if !ok {
		return nil, Trace{}, fmt.Errorf("%w %q (model serves: %s)",
			ErrUnknownMethod, method, strings.Join(s.methods, ", "))
	}
	if want := s.dims[method].In; len(x) != want {
		return nil, Trace{}, fmt.Errorf("serve: %s input dim %d, want %d", method, len(x), want)
	}
	for _, v := range x {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, Trace{}, fmt.Errorf("serve: non-finite input %v", v)
		}
	}
	if err := ctx.Err(); err != nil {
		// Dead on arrival: reject at admission, same accounting as a
		// flush-time drop — the row never reaches the model.
		return nil, Trace{}, s.dropStale(err)
	}
	var key string
	if s.cache != nil {
		// The method is part of the key: predict and invert answers for
		// the same design point must never collide.
		key = method + "\x00" + quantKey(x, s.cfg.CacheQuantum)
		if y, ok := s.cache.get(key); ok {
			s.stats.cacheHit()
			return y, Trace{CacheHit: true}, nil
		}
	}

	if s.inflight.Add(1) > int64(s.cfg.QueueDepth) {
		s.inflight.Add(-1)
		s.stats.overload()
		return nil, Trace{}, ErrOverloaded
	}
	req := &request{ctx: ctx, x: x, class: class, enqueued: time.Now(), resp: make(chan result, 1)}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.inflight.Add(-1)
		return nil, Trace{}, ErrClosed
	}
	q.lanes[class] <- req // cannot block: inflight <= QueueDepth == cap(lane)
	s.mu.RUnlock()

	// Once admitted, the pipeline owns the request: the worker replies
	// on the buffered channel and releases the inflight slot whether or
	// not the caller is still listening.
	select {
	case res := <-req.resp:
		return s.finish(key, res)
	case <-ctx.Done():
		// The reply may have raced in just as the context ended (both
		// select cases ready picks randomly): prefer delivering
		// completed work over reporting expiry.
		select {
		case res := <-req.resp:
			return s.finish(key, res)
		default:
		}
		// The queued row is now stale; the worker discards it at flush
		// time (and does the expired/cancelled accounting there).
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, Trace{}, ErrExpired
		}
		return nil, Trace{}, ErrCancelled
	}
}

// finish unwraps a pipeline reply for its caller, caching successful
// rows under key.
func (s *Server) finish(key string, res result) ([]float32, Trace, error) {
	if res.err != nil {
		return nil, res.trace, res.err
	}
	if s.cache != nil {
		// Counted only when the model actually answered, so neither
		// overload rejections nor rows dropped as stale inflate the
		// miss rate. Cache its own copy so neither the caller nor a
		// later cache hit can mutate the other's row.
		s.stats.cacheMiss()
		s.cache.put(key, append([]float32(nil), res.y...))
	}
	return res.y, res.trace, nil
}

// dropStale counts one context-dead request and maps its context error
// to the serve error vocabulary.
func (s *Server) dropStale(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		s.stats.expire()
		return ErrExpired
	}
	s.stats.cancel()
	return ErrCancelled
}

// recvState is the outcome of one lane receive.
type recvState int

const (
	recvReq     recvState = iota // got a request
	recvTimeout                  // the flush timer fired
	recvClosed                   // both lanes closed and drained
)

// recv returns the next queued request, draining the interactive lane
// strictly before the bulk lane. A lane that turns out closed is nilled
// out in place; once both are nil recv reports recvClosed. timeout may
// be nil to block until a request arrives or the lanes close.
func recv(qi, qb *chan *request, timeout <-chan time.Time) (*request, recvState) {
	for {
		// Strict priority: take an already-waiting interactive request
		// before even looking at the bulk lane.
		if *qi != nil {
			select {
			case r, ok := <-*qi:
				if !ok {
					*qi = nil
					continue
				}
				return r, recvReq
			default:
			}
		}
		if *qi == nil && *qb == nil {
			return nil, recvClosed
		}
		// Receives from a nil channel block forever, so closed-out
		// lanes simply drop out of the select.
		select {
		case r, ok := <-*qi:
			if !ok {
				*qi = nil
				continue
			}
			return r, recvReq
		case r, ok := <-*qb:
			if !ok {
				*qb = nil
				continue
			}
			return r, recvReq
		case <-timeout:
			return nil, recvTimeout
		}
	}
}

// batchLoop coalesces one method's queued requests into batches: flush
// at MaxBatch occupancy or MaxDelay after the first request of the
// batch arrived. The interactive lane is drained before the bulk lane
// at every pull, so a bulk backlog can delay interactive work by at
// most one batch. Between batches the front of the bulk lane is reaped
// of context-dead rows — otherwise sustained interactive traffic could
// starve the bulk lane and expired bulk rows would pin QueueDepth slots
// forever, converting capacity into spurious ErrOverloaded. An alive
// row pulled by the reap leads the next batch, so the bulk lane always
// advances.
func (s *Server) batchLoop(method string, q *methodQueue) {
	defer s.loops.Done()
	qi, qb := q.lanes[Interactive], q.lanes[Bulk]
	// Go 1.23+ timer semantics: Stop/Reset discard any pending fire, so
	// no manual channel draining is needed between batches.
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	var carry *request // alive bulk row pulled by the last reap
	for {
		first := carry
		carry = nil
		if first == nil {
			var st recvState
			first, st = recv(&qi, &qb, nil)
			if st == recvClosed {
				return
			}
		}
		pending := make([]*request, 1, s.cfg.MaxBatch)
		pending[0] = first
		timer.Reset(s.cfg.MaxDelay)
	collect:
		for len(pending) < s.cfg.MaxBatch {
			r, st := recv(&qi, &qb, timer.C)
			if st != recvReq {
				break collect
			}
			pending = append(pending, r)
		}
		timer.Stop()
		s.batches <- &batch{method: method, reqs: pending, flushed: time.Now()}
		carry = s.reapBulk(&qb)
		if carry == nil && qi == nil && qb == nil {
			return
		}
	}
}

// reapBulk drains context-dead rows from the front of the bulk lane so
// they cannot hold inflight slots while strict priority starves the
// lane. The first alive row it meets is pushed back (the lane rotates
// by one, which the best-effort bulk class tolerates) so it cannot jump
// ahead of waiting interactive work. Only when the server is closed —
// the lane can no longer accept sends — is the alive row returned for
// the caller to serve in the next batch. Returns nil otherwise.
func (s *Server) reapBulk(qb *chan *request) *request {
	for *qb != nil {
		select {
		case r, ok := <-*qb:
			if !ok {
				*qb = nil
				return nil
			}
			if err := r.ctx.Err(); err != nil {
				r.resp <- result{err: s.dropStale(err)}
				s.inflight.Add(-1)
				continue
			}
			s.mu.RLock()
			if !s.closed {
				// Cannot block: r still holds an inflight slot, so the
				// lane has at least one free buffer entry.
				*qb <- r
				s.mu.RUnlock()
				return nil
			}
			s.mu.RUnlock()
			return r
		default:
			return nil
		}
	}
	return nil
}

// workerLoop discards stale rows, assembles the live remainder into one
// matrix, runs it through the model's named method, and scatters the
// rows back to the waiting callers. A batch whose rows all went stale
// skips the forward pass entirely.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	for b := range s.batches {
		live := b.reqs[:0]
		for _, r := range b.reqs {
			if err := r.ctx.Err(); err != nil {
				r.resp <- result{err: s.dropStale(err)}
				s.inflight.Add(-1)
				continue
			}
			live = append(live, r)
		}
		if len(live) == 0 {
			continue
		}
		x := tensor.New(len(live), s.dims[b.method].In)
		for i, r := range live {
			copy(x.Row(i), r.x)
		}
		// Stage spans: assembly is flush → forward start (worker wait +
		// stale reap + gather); forward is the pass itself, including
		// the modeled PassOverhead, which stands in for dispatch cost.
		// Both are per-batch properties shared by every row's trace.
		fwdStart := time.Now()
		assembly := fwdStart.Sub(b.flushed)
		if s.cfg.PassOverhead > 0 {
			// Spin rather than sleep: modeled dispatch overhead keeps
			// the execution unit busy, like a kernel launch does.
			for start := time.Now(); time.Since(start) < s.cfg.PassOverhead; {
			}
		}
		y, err := s.model.Run(b.method, x)
		fwdDur := time.Since(fwdStart)
		s.stats.observeStage(StageAssembly, assembly.Seconds())
		s.stats.observeStage(StageForward, fwdDur.Seconds())
		if err != nil {
			// The model rejected a structurally valid batch: fail its
			// rows, not the server. The method set was checked at
			// admission, so this is an internal model failure.
			err = fmt.Errorf("%w: %v", ErrModelFailure, err)
			s.stats.failure(len(live))
			for _, r := range live {
				r.resp <- result{err: err}
				s.inflight.Add(-1)
			}
			continue
		}
		now := time.Now()
		for i, r := range live {
			// Copy the row out of the batch matrix: a view would pin
			// all MaxBatch rows for as long as any caller retains its
			// result.
			out := make([]float32, y.Cols)
			copy(out, y.Row(i))
			wait := b.flushed.Sub(r.enqueued)
			s.stats.observeStage(StageQueueWait, wait.Seconds())
			s.stats.request(b.method, r.class, now.Sub(r.enqueued))
			r.resp <- result{y: out, trace: Trace{
				QueueWait: wait,
				Assembly:  assembly,
				Forward:   fwdDur,
				Batch:     len(live),
			}}
			s.inflight.Add(-1)
		}
		s.stats.batch(len(live))
	}
}

// Stats returns a consistent snapshot of the serving counters.
func (s *Server) Stats() StatsSnapshot { return s.stats.snapshot() }

// SetCapacityQPS publishes the server's probed sustainable throughput
// in rows per second — typically ProbeResult.QPS from a startup
// CostProbe. It surfaces on the stats route as capacity_qps and on
// /metrics as jag_capacity_qps, where a fleet router (cmd/jagproxy)
// reads it to weight its routing. Zero means "not probed".
func (s *Server) SetCapacityQPS(qps float64) {
	if qps < 0 || math.IsNaN(qps) || math.IsInf(qps, 0) {
		qps = 0
	}
	s.capacity.Store(math.Float64bits(qps))
}

// CapacityQPS returns the probed sustainable row rate, 0 until a probe
// published one via SetCapacityQPS.
func (s *Server) CapacityQPS() float64 { return math.Float64frombits(s.capacity.Load()) }

// Close drains the pipeline and releases the batch loops and workers.
// In-flight requests complete (stale ones are still dropped at flush);
// concurrent and later Call requests return ErrClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, q := range s.queues {
		for _, lane := range q.lanes {
			close(lane)
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}
