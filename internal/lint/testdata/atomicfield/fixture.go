// Package fixture seeds atomicfield violations and their corrected
// forms: copies of structs holding sync/atomic fields, and direct
// access to fields tagged lint:atomic.
package fixture

import "sync/atomic"

// Hist mirrors metrics.Histogram's layout: lock-free atomics plus an
// immutable bounds slice.
type Hist struct {
	count  atomic.Uint64
	bounds []float64
}

// nested embeds an atomic-holding struct by value, so it inherits the
// no-copy rule.
type nested struct {
	h  Hist
	id int
}

// tagged uses a plain uint64 under the lint:atomic contract.
type tagged struct {
	n uint64 // lint:atomic — updated from the hot path, read by scrapes
}

// snapshot is copyable: plain fields only.
type snapshot struct {
	count uint64
	sum   float64
}

// --- violations --------------------------------------------------------

func (h Hist) valueReceiver() uint64 { // want "value receiver of valueReceiver copies Hist"
	return h.count.Load()
}

func copyDeref(h *Hist) {
	c := *h // want "assignment copies Hist"
	use(&c)
}

func copyNested(n *nested) {
	c := *n // want "assignment copies nested"
	_ = c.id
}

func passByValue(h *Hist) {
	sink(*h) // want "argument copies Hist"
}

func rangeCopy(hs []Hist) {
	for _, h := range hs { // want "range element copies Hist"
		_ = h.bounds
	}
}

func directAccess(t *tagged) uint64 {
	t.n++    // want "tagged lint:atomic"
	x := t.n // want "tagged lint:atomic"
	_ = x
	return t.n // want "tagged lint:atomic"
}

// --- corrected forms (no diagnostics) ----------------------------------

func pointerReceiverOK(h *Hist) uint64 { return h.count.Load() }

func rangePointerOK(hs []*Hist) {
	for _, h := range hs {
		_ = h.bounds
	}
}

func rangeIndexOK(hs []Hist) {
	for i := range hs {
		hs[i].count.Add(1)
	}
}

func snapshotCopyOK(s snapshot) (uint64, float64) { return s.count, s.sum }

func atomicAccessOK(t *tagged) uint64 {
	atomic.AddUint64(&t.n, 1)
	return atomic.LoadUint64(&t.n)
}

func use(*Hist) {}
func sink(Hist) {}
