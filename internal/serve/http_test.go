package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cyclegan"
	"repro/internal/jag"
)

// newTestHTTP starts an httptest server over a single-replica pool.
func newTestHTTP(t *testing.T) *httptest.Server {
	t.Helper()
	model := cyclegan.New(testModelCfg(), 42)
	pool, err := NewPool([]*cyclegan.Surrogate{model}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(pool, Config{MaxBatch: 8, CacheSize: 16})
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// postPredict posts a PredictRequest and decodes the reply.
func postPredict(t *testing.T, ts *httptest.Server, req PredictRequest) (PredictResponse, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out PredictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	} else {
		// Failed batches still carry the per-row detail; error bodies
		// without it ({"error":...}) decode to the zero response.
		_ = json.NewDecoder(resp.Body).Decode(&out)
	}
	return out, resp.StatusCode
}

// TestHTTPPredict drives /predict with a batch and a single input.
func TestHTTPPredict(t *testing.T) {
	ts := newTestHTTP(t)
	outDim := jag.Tiny8.OutputDim()

	out, code := postPredict(t, ts, PredictRequest{
		Inputs: [][]float32{testInput(0), testInput(1)},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Outputs) != 2 || len(out.Outputs[0]) != outDim {
		t.Fatalf("got %d outputs of width %d, want 2 x %d", len(out.Outputs), len(out.Outputs[0]), outDim)
	}

	single, code := postPredict(t, ts, PredictRequest{Input: testInput(0)})
	if code != http.StatusOK || len(single.Outputs) != 1 {
		t.Fatalf("single input: status %d, %d outputs", code, len(single.Outputs))
	}
	for j, v := range single.Outputs[0] {
		if v != out.Outputs[0][j] {
			t.Fatal("single-input reply differs from batch reply for the same input")
		}
	}
}

// TestHTTPLargeBatch posts more inputs than the server's queue depth:
// the handler must throttle row submission instead of tripping its own
// backpressure and failing the whole request with 503.
func TestHTTPLargeBatch(t *testing.T) {
	model := cyclegan.New(testModelCfg(), 42)
	pool, err := NewPool([]*cyclegan.Surrogate{model}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(pool, Config{MaxBatch: 8, QueueDepth: 16})
	ts := httptest.NewServer(NewHandler(s))
	defer func() {
		ts.Close()
		s.Close()
	}()

	const n = 100 // > QueueDepth
	inputs := make([][]float32, n)
	for i := range inputs {
		inputs[i] = testInput(i)
	}
	out, code := postPredict(t, ts, PredictRequest{Inputs: inputs})
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 for batch larger than queue depth", code)
	}
	if len(out.Outputs) != n {
		t.Fatalf("got %d outputs, want %d", len(out.Outputs), n)
	}
}

// TestHTTPScalarsOnly checks the payload-trimming flag.
func TestHTTPScalarsOnly(t *testing.T) {
	ts := newTestHTTP(t)
	out, code := postPredict(t, ts, PredictRequest{Input: testInput(2), ScalarsOnly: true})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Outputs[0]) != jag.ScalarDim {
		t.Fatalf("scalars_only width %d, want %d", len(out.Outputs[0]), jag.ScalarDim)
	}
}

// TestHTTPErrors covers method, body and dimension validation.
func TestHTTPErrors(t *testing.T) {
	ts := newTestHTTP(t)

	resp, err := http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict status %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/predict", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json status %d", resp.StatusCode)
	}

	if _, code := postPredict(t, ts, PredictRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty request status %d", code)
	}
	if _, code := postPredict(t, ts, PredictRequest{Input: []float32{1}}); code != http.StatusBadRequest {
		t.Fatalf("short input status %d", code)
	}
}

// TestHTTPPartialRowErrors posts a batch with one poisoned row: the
// reply must be 200 with the valid rows' outputs and an aligned per-row
// error entry, instead of discarding the siblings' completed work.
func TestHTTPPartialRowErrors(t *testing.T) {
	ts := newTestHTTP(t)
	out, code := postPredict(t, ts, PredictRequest{
		Inputs: [][]float32{testInput(0), {1, 2}, testInput(1)},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 for a mixed batch", code)
	}
	if len(out.Outputs) != 3 || len(out.Errors) != 3 {
		t.Fatalf("outputs/errors = %d/%d entries, want 3/3", len(out.Outputs), len(out.Errors))
	}
	if out.Outputs[0] == nil || out.Outputs[2] == nil || out.Outputs[1] != nil {
		t.Fatalf("outputs not aligned: row1 should be the only null")
	}
	if out.Errors[0] != nil || out.Errors[2] != nil {
		t.Fatalf("errors not aligned: %+v", out.Errors)
	}
	if out.Errors[1] == nil || out.Errors[1].Status != http.StatusBadRequest {
		t.Fatalf("row 1 error = %+v, want status 400", out.Errors[1])
	}
}

// TestHTTPAllRowsFailed checks that a batch with no surviving rows
// reports the severest row status at the top level, with the per-row
// detail still in the body.
func TestHTTPAllRowsFailed(t *testing.T) {
	ts := newTestHTTP(t)
	out, code := postPredict(t, ts, PredictRequest{
		Inputs: [][]float32{{1}, {2, 3}},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 when every row is invalid", code)
	}
	if len(out.Errors) != 2 || out.Errors[0] == nil || out.Errors[1] == nil {
		t.Fatalf("per-row errors missing from failed batch: %+v", out.Errors)
	}
}

// TestHTTPDeadlineExpired posts a request whose deadline is far shorter
// than the server's flush delay: the row expires in the queue, is
// dropped before a forward pass, and surfaces as 504 with the expiry
// visible in /stats.
func TestHTTPDeadlineExpired(t *testing.T) {
	model := cyclegan.New(testModelCfg(), 42)
	pool, err := NewPool([]*cyclegan.Surrogate{model}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(pool, Config{MaxBatch: 64, MaxDelay: 300 * time.Millisecond})
	ts := httptest.NewServer(NewHandler(s))
	defer func() {
		ts.Close()
		s.Close()
	}()

	out, code := postPredict(t, ts, PredictRequest{Input: testInput(0), DeadlineMs: 10})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 for an expired deadline", code)
	}
	if len(out.Errors) != 1 || out.Errors[0] == nil || out.Errors[0].Status != http.StatusGatewayTimeout {
		t.Fatalf("row error = %+v, want status 504", out.Errors)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := s.Stats()
		if snap.Expired == 1 {
			if snap.Requests != 0 {
				t.Fatalf("expired row still ran a forward pass: %+v", snap)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expiry never reached stats: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHTTPPriority covers lane selection via body field and header, and
// rejection of unknown classes.
func TestHTTPPriority(t *testing.T) {
	ts := newTestHTTP(t)
	if _, code := postPredict(t, ts, PredictRequest{Input: testInput(0), Priority: "bulk"}); code != http.StatusOK {
		t.Fatalf("bulk priority status %d", code)
	}
	if _, code := postPredict(t, ts, PredictRequest{Input: testInput(0), Priority: "urgent"}); code != http.StatusBadRequest {
		t.Fatalf("unknown priority status %d, want 400", code)
	}

	body, _ := json.Marshal(PredictRequest{Input: testInput(0)})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/predict", bytes.NewReader(body))
	req.Header.Set(PriorityHeader, "bulk")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("header priority status %d", resp.StatusCode)
	}
}

// TestBatchStatusDeterministic pins the severity ordering of the
// all-rows-failed top-level status: 500 > 503 > 504 > 499 > 404 > 400,
// independent of row order.
func TestBatchStatusDeterministic(t *testing.T) {
	re := func(st int) *RowError { return &RowError{Status: st} }
	cases := []struct {
		rows []*RowError
		want int
	}{
		{[]*RowError{re(503), re(500)}, 500},
		{[]*RowError{re(400), re(404)}, 404},
		{[]*RowError{re(404), re(499)}, 499},
		{[]*RowError{re(400), re(503)}, 503},
		{[]*RowError{re(503), re(400)}, 503},
		{[]*RowError{re(504), re(503), re(400)}, 503},
		{[]*RowError{re(400), re(504)}, 504},
		{[]*RowError{re(504), re(499), nil}, 504},
		{[]*RowError{re(499), re(400)}, 499},
		{[]*RowError{re(400), re(400)}, 400},
	}
	for i, c := range cases {
		if got := batchStatus(c.rows); got != c.want {
			t.Errorf("case %d: batchStatus = %d, want %d", i, got, c.want)
		}
	}
}

// TestHTTPHealthzClosed checks that /healthz flips to 503/"closed" once
// the server is shut down, so load balancers stop routing to it.
func TestHTTPHealthzClosed(t *testing.T) {
	model := cyclegan.New(testModelCfg(), 42)
	pool, err := NewPool([]*cyclegan.Surrogate{model}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(pool, Config{})
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	s.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed /healthz status %d, want 503", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "closed" {
		t.Fatalf("closed /healthz status = %q, want \"closed\"", health.Status)
	}
}

// TestHTTPHealthAndStats checks the observability endpoints.
func TestHTTPHealthAndStats(t *testing.T) {
	ts := newTestHTTP(t)
	postPredict(t, ts, PredictRequest{Input: testInput(0)})
	postPredict(t, ts, PredictRequest{Input: testInput(0)}) // cache hit

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Models["default"].Status != "ok" || health.Models["default"].Replicas != 1 {
		t.Fatalf("health = %+v", health)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Requests != 1 || snap.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 model request and 1 cache hit", snap)
	}
}
