package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// Request-scoped observability: every request through the v1 handler
// gets a correlation ID (caller-supplied X-Request-Id or a fresh one),
// a span capture slot the call route fills in, and — when HandlerConfig
// carries an access logger — one structured log record tying them all
// together. The middleware is always on; only the log line is optional.

// ctxKey keys the package's context values without colliding with other
// packages' keys.
type ctxKey int

const (
	requestIDKey ctxKey = iota
	traceKey
)

// RequestID returns the correlation ID the handler assigned to (or
// propagated for) the request whose context this is, or "" outside a
// handler.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// newRequestID mints a 16-hex-digit correlation ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the platforms we run on; a zero ID
		// beats panicking in request-handling middleware.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a caller-supplied correlation ID only when
// it is short printable ASCII: anything else (header injection, binary
// junk, unbounded length) is discarded so the ID is safe to echo in a
// response header and a log line.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return ""
		}
	}
	return id
}

// traceCapture is the per-request slot serveCall deposits its merged
// span record into, so the access-log middleware — which runs outside
// serveCall — can log where the request's time went.
type traceCapture struct {
	mu     sync.Mutex
	has    bool
	t      Trace
	hasEnc bool
	enc    time.Duration
}

func (tc *traceCapture) setCall(t Trace) {
	tc.mu.Lock()
	tc.t, tc.has = t, true
	tc.mu.Unlock()
}

func (tc *traceCapture) setEncode(d time.Duration) {
	tc.mu.Lock()
	tc.enc, tc.hasEnc = d, true
	tc.mu.Unlock()
}

func (tc *traceCapture) snapshot() (t Trace, enc time.Duration, has, hasEnc bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.t, tc.enc, tc.has, tc.hasEnc
}

// traceFrom returns the request's span-capture slot, or nil when the
// handler was mounted without the middleware (direct serveCall tests).
func traceFrom(ctx context.Context) *traceCapture {
	tc, _ := ctx.Value(traceKey).(*traceCapture)
	return tc
}

// durMs renders a span for logs and headers, in float milliseconds.
func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// serverTimingValue renders a merged trace as a Server-Timing header
// value (RFC draft syntax: metric;dur=<ms>), so a browser's network
// panel — or curl -v — shows the stage decomposition with no extra
// tooling.
func serverTimingValue(t Trace) string {
	if t.CacheHit {
		return `cache;desc="hit"`
	}
	return fmt.Sprintf("queue_wait;dur=%.3f, batch_assembly;dur=%.3f, forward;dur=%.3f, batch;desc=%q",
		durMs(t.QueueWait), durMs(t.Assembly), durMs(t.Forward), fmt.Sprint(t.Batch))
}

// statusWriter records the status code and body size passing through a
// ResponseWriter, for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// withObservability wraps the handler mux with the per-request plumbing:
// assign or propagate the correlation ID, echo it on the response, stash
// it and a span-capture slot in the context, and — when logger is
// non-nil — emit one structured "request" record per request.
func withObservability(next http.Handler, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		tc := &traceCapture{}
		ctx := context.WithValue(r.Context(), requestIDKey, id)
		ctx = context.WithValue(ctx, traceKey, tc)
		r = r.WithContext(ctx)
		if logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Float64("duration_ms", durMs(time.Since(start))),
			slog.Int64("bytes", sw.bytes),
			slog.String("request_id", id),
		}
		if t, enc, has, hasEnc := tc.snapshot(); has {
			if t.CacheHit {
				attrs = append(attrs, slog.Bool("cache_hit", true))
			} else {
				attrs = append(attrs,
					slog.Float64("queue_wait_ms", durMs(t.QueueWait)),
					slog.Float64("batch_assembly_ms", durMs(t.Assembly)),
					slog.Float64("forward_ms", durMs(t.Forward)),
					slog.Int("batch", t.Batch))
			}
			if hasEnc {
				attrs = append(attrs, slog.Float64("encode_ms", durMs(enc)))
			}
		}
		logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}
