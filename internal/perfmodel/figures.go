package perfmodel

import "repro/internal/datastore"

// Figure9Point is one bar of Figure 9: steady-state epoch time of
// data-parallel training (naive dynamic loading) at a GPU count.
type Figure9Point struct {
	GPUs        int
	SteadyEpoch float64
}

// fig9GPUs are the x-axis points of Figures 9 and 10.
var fig9GPUs = []int{1, 2, 4, 8, 16}

// densePlacement packs g GPUs onto standard 4-GPU resource sets. Even a
// 1-GPU run is launched into a quarter-node resource set (jsrun-style),
// which is what makes the 1- and 2-GPU preloaded-store points of Figure 10
// run out of memory, as the paper reports.
func densePlacement(s *Scenario, g int) {
	s.GPUsPerTrainer = g
	s.GPUsPerNode = 4
}

// Figure9 regenerates the data-parallel scaling study: a single trainer on
// a 1M-sample set, dynamic loading (no data store), 1→16 GPUs.
func Figure9() []Figure9Point {
	var out []Figure9Point
	for _, g := range fig9GPUs {
		s := PaperScenario(1_000_000)
		s.Mode = datastore.ModeNone
		densePlacement(&s, g)
		r := s.Epoch()
		out = append(out, Figure9Point{GPUs: g, SteadyEpoch: r.SteadyEpoch})
	}
	return out
}

// Figure10Point is one bar group of Figure 10: first-epoch and steady-state
// epoch times for one GPU count and data-store mode.
type Figure10Point struct {
	GPUs         int
	Mode         datastore.Mode
	Feasible     bool
	InitialEpoch float64
	SteadyEpoch  float64
}

// Figure10 regenerates the data-store comparison on the 1M-sample set: the
// three ingestion configurations at 1→16 GPUs, initial and steady epochs.
// Preloaded points at 1 and 2 GPUs come back infeasible, as in the paper.
func Figure10() []Figure10Point {
	var out []Figure10Point
	for _, g := range fig9GPUs {
		for _, mode := range []datastore.Mode{datastore.ModeNone, datastore.ModeDynamic, datastore.ModePreload} {
			s := PaperScenario(1_000_000)
			s.Mode = mode
			densePlacement(&s, g)
			r := s.Epoch()
			out = append(out, Figure10Point{
				GPUs: g, Mode: mode, Feasible: r.Feasible,
				InitialEpoch: r.InitialEpoch, SteadyEpoch: r.SteadyEpoch,
			})
		}
	}
	return out
}

// Figure11Point is one x-position of Figure 11: LTFB training with k
// trainers of 16 GPUs each on the 10M-sample set.
type Figure11Point struct {
	Trainers    int
	GPUs        int
	SteadyEpoch float64 // average per-trainer steady epoch time
	PreloadTime float64 // time for all trainers to finish preloading
	Speedup     float64 // vs the 1-trainer baseline
	Efficiency  float64 // Speedup / Trainers
}

// fig11Trainers are the x-axis points of Figure 11 (16→1024 GPUs).
var fig11Trainers = []int{1, 8, 16, 32, 64}

// fig11Scenario builds the LTFB scenario for k trainers. The single-trainer
// baseline cannot hold the 10M-sample store on 4 packed nodes (the paper's
// observation), so it runs 16 nodes at 1 GPU per node; every other point
// uses 4 packed nodes per trainer.
func fig11Scenario(k int) Scenario {
	s := PaperScenario(10_000_000)
	s.ValSamples = 1_000_000
	s.Trainers = k
	s.GPUsPerTrainer = 16
	if k == 1 {
		s.GPUsPerNode = 1
	} else {
		s.GPUsPerNode = 4
	}
	return s
}

// Figure11 regenerates the LTFB strong-scaling study, including the
// superlinear speedup at 64 trainers and the preload-time rise from
// file-system interference.
func Figure11() []Figure11Point {
	base := fig11Scenario(1).Epoch()
	var out []Figure11Point
	for _, k := range fig11Trainers {
		r := fig11Scenario(k).Epoch()
		p := Figure11Point{
			Trainers:    k,
			GPUs:        16 * k,
			SteadyEpoch: r.SteadyEpoch,
			PreloadTime: r.PreloadTime,
		}
		if r.SteadyEpoch > 0 {
			p.Speedup = base.SteadyEpoch / r.SteadyEpoch
			p.Efficiency = p.Speedup / float64(k)
		}
		out = append(out, p)
	}
	return out
}

// Fig11Infeasible4NodeBaseline reports the paper's observation that a
// single trainer on 4 packed nodes cannot hold the 10M-sample data store.
func Fig11Infeasible4NodeBaseline() Report {
	s := fig11Scenario(1)
	s.GPUsPerNode = 4
	return s.Epoch()
}
