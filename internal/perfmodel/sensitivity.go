package perfmodel

import "fmt"

// Sensitivity analysis: the headline 70.2×/109% result rests on modelling
// assumptions the paper does not pin down (how much the sparse baseline's
// NIC suffers, how hard GPFS degrades under load, how fast the store's
// sample handling is). SweepHeadline perturbs each knob across a range and
// reports how the 64-trainer speedup responds, so a reader can see which
// conclusions are robust and which are calibration.

// SensitivityPoint is one knob setting and its headline outcome.
type SensitivityPoint struct {
	Knob    string
	Value   float64
	Speedup float64 // 64-trainer speedup under this setting
	Preload float64 // 64-trainer preload time, seconds
}

// knobRange builds evenly spaced values across [lo, hi].
func knobRange(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// headlineUnder evaluates the Figure 11 headline with the scenario modifier
// applied to both the baseline and the 64-trainer point.
func headlineUnder(modify func(*Scenario)) (speedup, preload float64) {
	base := fig11Scenario(1)
	modify(&base)
	big := fig11Scenario(64)
	modify(&big)
	rb := base.Epoch()
	r64 := big.Epoch()
	if r64.SteadyEpoch > 0 {
		speedup = rb.SteadyEpoch / r64.SteadyEpoch
	}
	return speedup, r64.PreloadTime
}

// SweepHeadline evaluates the headline under n settings of each modelled
// mechanism: the sparse-placement NIC penalty, the per-ring-step software
// overhead, the file-system interference slope, and the store serialization
// bandwidth.
func SweepHeadline(n int) []SensitivityPoint {
	if n < 2 {
		n = 2
	}
	var out []SensitivityPoint
	for _, v := range knobRange(0, 0.4, n) {
		v := v
		sp, pre := headlineUnder(func(s *Scenario) { s.Fabric.SparseNICPenalty = v })
		out = append(out, SensitivityPoint{Knob: "sparse_nic_penalty", Value: v, Speedup: sp, Preload: pre})
	}
	for _, v := range knobRange(0, 100e-6, n) {
		v := v
		sp, pre := headlineUnder(func(s *Scenario) { s.Fabric.StepOverhead = v })
		out = append(out, SensitivityPoint{Knob: "ring_step_overhead", Value: v, Speedup: sp, Preload: pre})
	}
	for _, v := range knobRange(0, 1.5, n) {
		v := v
		sp, pre := headlineUnder(func(s *Scenario) { s.FS.Interference = v })
		out = append(out, SensitivityPoint{Knob: "fs_interference", Value: v, Speedup: sp, Preload: pre})
	}
	for _, v := range knobRange(30e6, 120e6, n) {
		v := v
		sp, pre := headlineUnder(func(s *Scenario) { s.SerializationBW = v })
		out = append(out, SensitivityPoint{Knob: "serialization_bw", Value: v, Speedup: sp, Preload: pre})
	}
	return out
}

// SensitivitySummary renders the sweep compactly: per knob, the headline
// speedup range it induces.
func SensitivitySummary(points []SensitivityPoint) string {
	type span struct{ lo, hi float64 }
	spans := map[string]*span{}
	order := []string{}
	for _, p := range points {
		s, ok := spans[p.Knob]
		if !ok {
			spans[p.Knob] = &span{lo: p.Speedup, hi: p.Speedup}
			order = append(order, p.Knob)
			continue
		}
		if p.Speedup < s.lo {
			s.lo = p.Speedup
		}
		if p.Speedup > s.hi {
			s.hi = p.Speedup
		}
	}
	out := ""
	for _, k := range order {
		s := spans[k]
		out += fmt.Sprintf("%-20s speedup@64 in [%.1fx, %.1fx]\n", k, s.lo, s.hi)
	}
	return out
}
