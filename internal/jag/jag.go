// Package jag is a synthetic stand-in for the JAG semi-analytic ICF
// implosion simulator used to generate the paper's training data (Section
// II-B). The real JAG maps a 5-D input — laser drive strength plus the 3-D
// shape of the imploding shell — to 15 scalar observables and 12 X-ray
// images (3 lines of sight × 4 hyperspectral channels, 64×64 pixels each).
//
// This model reproduces the structure of that map with closed-form physics-
// flavoured surrogates: inputs feed a set of implosion quantities (velocity,
// stagnation radius, ion temperature, areal density), the scalars are smooth
// but strongly non-linear functions of those quantities, and each image is a
// view-projected ellipsoidal hot spot with a limb ring whose channel weights
// follow an exponential energy spectrum. As in the paper, varying the drive
// inputs moves the scalars non-linearly while varying the shape inputs
// mostly changes the images.
//
// The generator is deterministic: the same input always yields the same
// sample, so datasets are reproducible byte-for-byte. Image resolution,
// views and channels are configurable; the paper's geometry is Default64,
// while tests and laptop-scale training use smaller sizes.
package jag

import (
	"fmt"
	"math"
)

// InputDim is the dimensionality of the experiment parameter space.
const InputDim = 5

// ScalarDim is the number of scalar observables per sample.
const ScalarDim = 15

// Config fixes the output geometry of the simulator.
type Config struct {
	ImageSize int // pixels per image side
	Views     int // lines of sight
	Channels  int // hyperspectral channels per view
	// Wiggle in [0,1] adds a high-frequency component to the implosion
	// response. At 0 (the default) the map is smooth; at 1 the observables
	// oscillate across the parameter cube, so a surrogate needs dense
	// sampling to generalize — the regime that made the paper generate 10M
	// simulations and the regime where partitioned K-independent training
	// visibly degrades (Figure 13).
	Wiggle float64
}

// Default64 is the paper's geometry: 3 views × 4 channels at 64×64.
var Default64 = Config{ImageSize: 64, Views: 3, Channels: 4}

// Small16 is a reduced geometry for laptop-scale training runs.
var Small16 = Config{ImageSize: 16, Views: 3, Channels: 4}

// Tiny8 is the geometry used by fast tests: 3 views × 2 channels at 8×8.
var Tiny8 = Config{ImageSize: 8, Views: 3, Channels: 2}

// NumImages returns images per sample (views × channels).
func (c Config) NumImages() int { return c.Views * c.Channels }

// ImageDim returns the flattened length of all images of one sample.
func (c Config) ImageDim() int { return c.NumImages() * c.ImageSize * c.ImageSize }

// OutputDim returns the width of the multimodal output bundle
// (scalars followed by images).
func (c Config) OutputDim() int { return ScalarDim + c.ImageDim() }

// SampleDim returns the full flattened sample width (inputs + outputs).
func (c Config) SampleDim() int { return InputDim + c.OutputDim() }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.ImageSize < 1 || c.Views < 1 || c.Channels < 1 {
		return fmt.Errorf("jag: invalid config %+v", c)
	}
	return nil
}

// Sample is one simulated experiment: the 5-D input and the multimodal
// output bundle.
type Sample struct {
	X       []float32 // length InputDim, each in [0,1]
	Scalars []float32 // length ScalarDim, each in [0,1]
	Images  []float32 // length ImageDim, each in [0,1], view-major then channel
}

// Output returns scalars and images concatenated (scalars first), the layout
// the multimodal autoencoder trains on.
func (s *Sample) Output() []float32 {
	out := make([]float32, 0, len(s.Scalars)+len(s.Images))
	out = append(out, s.Scalars...)
	return append(out, s.Images...)
}

// Flatten encodes the sample as inputs ++ scalars ++ images.
func (s *Sample) Flatten() []float32 {
	out := make([]float32, 0, len(s.X)+len(s.Scalars)+len(s.Images))
	out = append(out, s.X...)
	out = append(out, s.Scalars...)
	return append(out, s.Images...)
}

// Unflatten decodes a buffer produced by Flatten under cfg. It returns an
// error if the length does not match the configured geometry.
func Unflatten(cfg Config, buf []float32) (*Sample, error) {
	if len(buf) != cfg.SampleDim() {
		return nil, fmt.Errorf("jag: sample length %d, want %d", len(buf), cfg.SampleDim())
	}
	s := &Sample{
		X:       append([]float32(nil), buf[:InputDim]...),
		Scalars: append([]float32(nil), buf[InputDim:InputDim+ScalarDim]...),
		Images:  append([]float32(nil), buf[InputDim+ScalarDim:]...),
	}
	return s, nil
}

// implosion holds the intermediate physical quantities the observables are
// derived from.
type implosion struct {
	drive, p2, p4, thickness, mix          float64
	velocity, radius, temp, rhoR, pressure float64
	bangTime, burnWidth, yield             float64
}

// physics evaluates the semi-analytic implosion model for input x ∈ [0,1]⁵.
// x[0]: laser drive strength, x[1]: P2 shape asymmetry, x[2]: P4/azimuthal
// shape, x[3]: shell thickness, x[4]: fuel mix fraction. wiggle adds the
// configured high-frequency response.
func physics(x [InputDim]float64, wiggle float64) implosion {
	var im implosion
	im.drive = x[0]
	im.p2 = 2*x[1] - 1 // signed asymmetry in [-1,1]
	im.p4 = 2*x[2] - 1
	im.thickness = 0.5 + x[3] // in [0.5,1.5]
	im.mix = x[4]

	// Implosion velocity rises with drive, falls with shell thickness.
	im.velocity = math.Pow(0.2+im.drive, 1.6) / math.Pow(im.thickness, 0.4)
	// Stagnation radius shrinks with velocity, grows with asymmetry (a
	// distorted shell stagnates early).
	asym2 := im.p2*im.p2 + 0.5*im.p4*im.p4
	im.radius = 0.25 + 0.35/(1+2*im.velocity) + 0.18*asym2
	// Ion temperature from PdV work, degraded by mix and asymmetry.
	im.temp = im.velocity * im.velocity * (1 - 0.6*im.mix) / (1 + 1.5*asym2)
	// Areal density grows with compression (small radius, thick shell).
	im.rhoR = im.thickness * (1 - 0.4*im.mix) / (0.3 + im.radius)
	// Stagnation pressure.
	im.pressure = im.temp * im.rhoR / (0.1 + im.radius)
	// Bang time: later for heavy shells and weak drives.
	im.bangTime = im.thickness / (0.25 + im.velocity)
	// Burn width shrinks as confinement improves.
	im.burnWidth = 0.15 + 0.4/(1+3*im.pressure)
	// Yield: the hallmark strongly non-linear response — exponential
	// sensitivity to temperature with a mix-driven cliff.
	im.yield = im.rhoR * math.Exp(3*(im.temp-0.8)) * math.Exp(-4*im.mix*asym2)
	if wiggle > 0 {
		// High-frequency ripples across the cube: several full periods per
		// axis, so sparse sampling plans alias them.
		r := wiggle
		im.radius *= 1 + 0.22*r*math.Sin(2*math.Pi*(2.3*x[0]+3.1*x[1]))
		im.temp *= 1 + 0.28*r*math.Sin(2*math.Pi*(1.7*x[3]+2.9*x[2]))
		im.yield *= 1 + 0.30*r*math.Sin(2*math.Pi*(3.7*x[0]+1.3*x[4]))
		im.rhoR *= 1 + 0.18*r*math.Sin(2*math.Pi*(2.9*x[2]+2.1*x[3]))
		im.pressure *= 1 + 0.22*r*math.Sin(2*math.Pi*(1.9*x[1]+3.3*x[4]))
	}
	return im
}

// squash maps a non-negative quantity smoothly into [0,1).
func squash(v, scale float64) float32 {
	return float32(v / (v + scale))
}

// Simulate runs the semi-analytic model on x (each coordinate clamped to
// [0,1]) and returns the full multimodal sample.
func Simulate(cfg Config, x [InputDim]float64) *Sample {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		} else if v > 1 {
			x[i] = 1
		}
	}
	im := physics(x, cfg.Wiggle)
	s := &Sample{
		X:       make([]float32, InputDim),
		Scalars: make([]float32, ScalarDim),
		Images:  make([]float32, cfg.ImageDim()),
	}
	for i, v := range x {
		s.X[i] = float32(v)
	}
	s.Scalars = scalars(im)
	renderImages(cfg, im, s.Images)
	return s
}

// scalars derives the 15 observable signatures from the implosion state.
// Every output is squashed into [0,1] so the surrogate can train without
// per-channel normalization.
func scalars(im implosion) []float32 {
	out := make([]float32, ScalarDim)
	out[0] = squash(im.yield, 1.0)                           // neutron yield
	out[1] = squash(im.temp, 0.8)                            // burn-averaged Tion
	out[2] = squash(im.bangTime, 1.2)                        // bang time
	out[3] = squash(im.burnWidth, 0.3)                       // burn width
	out[4] = squash(im.rhoR, 1.5)                            // areal density
	out[5] = squash(im.velocity, 1.0)                        // implosion velocity
	out[6] = squash(im.pressure, 1.0)                        // stagnation pressure
	out[7] = float32(0.5 + 0.5*im.p2)                        // hot-spot P2
	out[8] = float32(0.5 + 0.5*im.p4)                        // hot-spot P4
	out[9] = squash(im.radius, 0.5)                          // hot-spot radius
	out[10] = float32(im.mix)                                // mix fraction
	out[11] = squash(im.yield*im.burnWidth, 0.5)             // burn-integrated emission
	out[12] = squash(im.rhoR*im.rhoR/(0.2+im.temp), 2.0)     // downscatter ratio
	out[13] = squash(im.pressure*im.burnWidth, 0.4)          // confinement product
	out[14] = squash(im.temp/math.Max(0.05, im.radius), 3.0) // emission-weighted gradient
	return out
}

// viewAngles spreads the lines of sight over a quarter turn.
func viewAngle(view, views int) float64 {
	if views <= 1 {
		return 0
	}
	return float64(view) * math.Pi / 2 / float64(views)
}

// renderImages rasterizes one hot-spot image per (view, channel) into dst,
// which must have length cfg.ImageDim(). Layout: view-major, then channel,
// then rows.
func renderImages(cfg Config, im implosion, dst []float32) {
	n := cfg.ImageSize
	px := n * n
	for v := 0; v < cfg.Views; v++ {
		theta := viewAngle(v, cfg.Views)
		cosT, sinT := math.Cos(theta), math.Sin(theta)
		// The projected hot spot is an ellipse whose axes follow the P2/P4
		// distortion as seen from this view.
		a := im.radius * (1 + 0.55*im.p2*cosT + 0.2*im.p4)
		b := im.radius * (1 - 0.55*im.p2*cosT + 0.2*im.p4*sinT)
		if a < 0.05 {
			a = 0.05
		}
		if b < 0.05 {
			b = 0.05
		}
		ringR := im.radius * (1.6 + 0.3*im.p4*sinT)
		ringW := 0.06 + 0.1*im.burnWidth
		ringAmp := 0.35 * im.rhoR
		for c := 0; c < cfg.Channels; c++ {
			// Hyperspectral weight: channel c integrates photon energies
			// ∝ exp(-E_c/T); hotter implosions light up harder channels.
			ec := 0.4 + 0.9*float64(c)
			w := math.Exp(-ec / math.Max(0.08, im.temp))
			base := (v*cfg.Channels + c) * px
			for iy := 0; iy < n; iy++ {
				y := (float64(iy)/float64(n-1))*2 - 1
				for ix := 0; ix < n; ix++ {
					xx := (float64(ix)/float64(n-1))*2 - 1
					// Rotate into the view frame.
					xr := xx*cosT + y*sinT
					yr := -xx*sinT + y*cosT
					core := math.Exp(-math.Pow(xr*xr/(a*a)+yr*yr/(b*b), 1.3))
					r := math.Sqrt(xr*xr + yr*yr)
					dr := (r - ringR) / ringW
					ring := ringAmp * math.Exp(-dr*dr)
					val := w * (core + ring)
					if val > 1 {
						val = 1
					}
					dst[base+iy*n+ix] = float32(val)
				}
			}
		}
	}
}
