package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/cyclegan"
	"repro/internal/datastore"
	"repro/internal/ensemble"
	"repro/internal/jag"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/perfmodel"
	"repro/internal/reader"
	"repro/internal/tensor"
)

// scalarNames labels the 15 observables for the Figure 7 table, matching
// internal/jag's scalar derivations.
var scalarNames = [jag.ScalarDim]string{
	"yield", "tion", "bang_time", "burn_width", "rhoR",
	"velocity", "pressure", "p2", "p4", "radius",
	"mix", "emission", "downscatter", "confinement", "gradient",
}

// TrainSurrogate trains one surrogate (a single trainer, no tournaments) on
// trainN plan samples for the given number of steps, returning the model.
// It backs the Figure 7/8 prediction-quality reproductions.
func TrainSurrogate(cfg cyclegan.Config, trainN, steps, batch int, seed int64) (*cyclegan.Surrogate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trainN < batch || batch < 1 {
		return nil, fmt.Errorf("core: %d samples with batch %d", trainN, batch)
	}
	recs := ensemble.GenerateInMemory(cfg.Geometry, 0, trainN)
	ds, err := reader.NewSliceDataset(cfg.Geometry.SampleDim(), recs)
	if err != nil {
		return nil, err
	}
	model := cyclegan.New(cfg, seed)
	sh := reader.NewShuffler(trainN, seed)
	epoch, cursor := 0, 0
	batches := reader.Batches(sh.Epoch(0), batch, true)
	for s := 0; s < steps; s++ {
		if cursor >= len(batches) {
			epoch++
			batches = reader.Batches(sh.Epoch(epoch), batch, true)
			cursor = 0
		}
		m, err := reader.AssembleBatch(ds, batches[cursor])
		cursor++
		if err != nil {
			return nil, err
		}
		x, y := reader.SplitXY(m, jag.InputDim)
		model.TrainStep(x, y, nn.NopReducer{})
	}
	return model, nil
}

// validationPair materializes n held-out (x, y) matrices past the training
// region of the plan.
func validationPair(g jag.Config, trainN, n int) (x, y *tensor.Matrix) {
	x = tensor.New(n, jag.InputDim)
	y = tensor.New(n, g.OutputDim())
	for i := 0; i < n; i++ {
		s := jag.SimulateAt(g, trainN+1000+i)
		copy(x.Row(i), s.X)
		copy(y.Row(i), s.Output())
	}
	return
}

// Figure7 reproduces the predicted-vs-true 15-D scalar comparison: a table
// of per-scalar MAE and Pearson correlation over validation samples (the
// paper overlays 16 samples visually; correlation is the quantitative
// equivalent of "ground truth mostly covered by the prediction").
func Figure7(model *cyclegan.Surrogate, valN int) *metrics.Table {
	g := model.Cfg.Geometry
	x, y := validationPair(g, 4096, valN)
	pred := model.Predict(x)
	tab := metrics.NewTable("Figure 7 — predicted vs true scalars", "scalar", "mae", "pearson")
	for sIdx := 0; sIdx < jag.ScalarDim; sIdx++ {
		truth := make([]float64, valN)
		got := make([]float64, valN)
		for i := 0; i < valN; i++ {
			truth[i] = float64(y.At(i, sIdx))
			got[i] = float64(pred.At(i, sIdx))
		}
		tab.AddRow(scalarNames[sIdx], metrics.MAE(truth, got), metrics.Pearson(truth, got))
	}
	return tab
}

// Figure8 reproduces the predicted-vs-true image comparison: per
// (view, channel) mean absolute pixel error and correlation over validation
// samples, the quantitative form of the paper's side-by-side captures.
func Figure8(model *cyclegan.Surrogate, valN int) *metrics.Table {
	g := model.Cfg.Geometry
	x, y := validationPair(g, 4096, valN)
	pred := model.Predict(x)
	px := g.ImageSize * g.ImageSize
	tab := metrics.NewTable("Figure 8 — predicted vs true images", "view", "channel", "mae", "pearson")
	for v := 0; v < g.Views; v++ {
		for c := 0; c < g.Channels; c++ {
			base := jag.ScalarDim + (v*g.Channels+c)*px
			var truth, got []float64
			for i := 0; i < valN; i++ {
				for p := 0; p < px; p++ {
					truth = append(truth, float64(y.At(i, base+p)))
					got = append(got, float64(pred.At(i, base+p)))
				}
			}
			tab.AddRow(v, c, metrics.MAE(truth, got), metrics.Pearson(truth, got))
		}
	}
	return tab
}

// Figure9Table renders the modelled data-parallel scaling study.
func Figure9Table() *metrics.Table {
	pts := perfmodel.Figure9()
	base := pts[0].SteadyEpoch
	tab := metrics.NewTable("Figure 9 — data-parallel scaling, 1M samples, dynamic loading (steady state)",
		"gpus", "epoch_s", "speedup", "efficiency")
	for _, p := range pts {
		tab.AddRow(p.GPUs, p.SteadyEpoch, base/p.SteadyEpoch, base/p.SteadyEpoch/float64(p.GPUs))
	}
	return tab
}

// Figure10Table renders the modelled data-store comparison.
func Figure10Table() *metrics.Table {
	tab := metrics.NewTable("Figure 10 — data store modes, 1M samples",
		"gpus", "mode", "initial_epoch_s", "steady_epoch_s")
	for _, p := range perfmodel.Figure10() {
		if !p.Feasible {
			tab.AddRow(p.GPUs, p.Mode.String(), "OOM", "OOM")
			continue
		}
		tab.AddRow(p.GPUs, p.Mode.String(), p.InitialEpoch, p.SteadyEpoch)
	}
	return tab
}

// Figure11Table renders the modelled LTFB strong-scaling study, the
// headline result (70.2× at 64 trainers, ~109% efficiency).
func Figure11Table() *metrics.Table {
	tab := metrics.NewTable("Figure 11 — LTFB strong scaling, 10M samples",
		"trainers", "gpus", "epoch_s", "preload_s", "speedup", "efficiency")
	for _, p := range perfmodel.Figure11() {
		tab.AddRow(p.Trainers, p.GPUs, p.SteadyEpoch, p.PreloadTime, p.Speedup, p.Efficiency)
	}
	return tab
}

// Figure12 runs the quality-vs-trainer-count experiment for the given
// trainer counts at equal per-trainer iterations and renders the
// improvement of population-best validation loss over the single-trainer
// baseline, per tournament round.
func Figure12(counts []int, base QualityConfig) (*metrics.Table, error) {
	results := map[int]*QualityResult{}
	for _, k := range counts {
		cfg := base
		cfg.Trainers = k
		cfg.LTFB = k > 1
		res, err := RunPopulation(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: figure 12 k=%d: %w", k, err)
		}
		results[k] = res
	}
	baseline, ok := results[1]
	if !ok {
		return nil, fmt.Errorf("core: figure 12 needs the single-trainer baseline in counts")
	}
	headers := []string{"round"}
	for _, k := range counts {
		headers = append(headers, fmt.Sprintf("improvement@%dtrainers", k))
	}
	tab := metrics.NewTable("Figure 12 — quality improvement over single-trainer baseline", headers...)
	for r := 0; r < base.Rounds; r++ {
		row := []any{r + 1}
		for _, k := range counts {
			row = append(row, baseline.BestSeries[r]/results[k].BestSeries[r])
		}
		tab.AddRow(row...)
	}
	return tab, nil
}

// Figure13 compares LTFB against partitioned K-independent training at the
// given trainer counts: final global-validation loss of each approach and
// the LTFB advantage (K-independent loss divided by LTFB loss; above 1
// means LTFB wins, and the paper's claim is that the gap grows with k).
//
// The experiment runs in the regime where the paper's mechanism binds: the
// JAG response gets its high-frequency component (Wiggle=1, the reason the
// paper needed 10M simulations for coverage), LTFB partitions the corpus
// contiguously while K-independent draws random 1/k subsets (Section IV-E),
// and the schedule trains each population near convergence.
func Figure13(counts []int, base QualityConfig) (*metrics.Table, error) {
	base.Geometry.Wiggle = 1
	base.Model.Geometry.Wiggle = 1
	tab := metrics.NewTable("Figure 13 — LTFB vs partitioned K-independent (final val loss, lower is better)",
		"trainers", "ltfb_best", "kind_best", "advantage_best", "ltfb_mean", "kind_mean", "advantage_mean")
	for _, k := range counts {
		ltfbCfg := base
		ltfbCfg.Trainers = k
		ltfbCfg.LTFB = true
		ltfbCfg.Partition = PartitionContiguous
		ltfbRes, err := RunPopulation(ltfbCfg)
		if err != nil {
			return nil, fmt.Errorf("core: figure 13 ltfb k=%d: %w", k, err)
		}
		kindCfg := base
		kindCfg.Trainers = k
		kindCfg.LTFB = false
		kindCfg.Partition = PartitionRandom
		kindRes, err := RunPopulation(kindCfg)
		if err != nil {
			return nil, fmt.Errorf("core: figure 13 kind k=%d: %w", k, err)
		}
		lm := ltfbRes.MeanSeries[len(ltfbRes.MeanSeries)-1]
		km := kindRes.MeanSeries[len(kindRes.MeanSeries)-1]
		tab.AddRow(k, ltfbRes.FinalBest, kindRes.FinalBest, kindRes.FinalBest/ltfbRes.FinalBest,
			lm, km, km/lm)
	}
	return tab, nil
}

// Figure12Config returns the schedule under which the quality-vs-trainer-
// count effect emerges at laptop scale: enough steps that tournament
// selection and winner circulation outpace the single-trainer baseline.
func Figure12Config() QualityConfig {
	c := DefaultQualityConfig(1)
	c.TrainSamples = 512
	c.ValSamples = 128
	c.Rounds = 10
	c.RoundSteps = 20
	return c
}

// Figure13Config returns the near-convergence schedule Figure 13 needs
// (≈240 steps per trainer on a 512-sample corpus).
func Figure13Config() QualityConfig {
	c := DefaultQualityConfig(1)
	c.TrainSamples = 512
	c.ValSamples = 128
	c.Rounds = 12
	c.RoundSteps = 20
	return c
}

// HeadlineTable summarizes the abstract's claims against the model.
func HeadlineTable() *metrics.Table {
	pts := perfmodel.Figure11()
	last := pts[len(pts)-1]
	tab := metrics.NewTable("Headline — abstract claims", "quantity", "paper", "this repo")
	tab.AddRow("speedup, 64 trainers (1024 GPUs) vs 1 trainer (16 GPUs)", "70.2x", fmt.Sprintf("%.1fx", last.Speedup))
	tab.AddRow("parallel efficiency at 64 trainers", "109%", fmt.Sprintf("%.0f%%", 100*last.Efficiency))
	base := perfmodel.Fig11Infeasible4NodeBaseline()
	tab.AddRow("10M-sample store on 4 packed nodes", "out of memory", base.Reason)
	return tab
}

// DataStoreDemo runs the real distributed data store over bundle files on
// disk and returns per-mode traffic statistics — the executable companion
// to Figure 10's modelled times.
func DataStoreDemo(dir string, files, perFile, ranks, steps, batch int) (*metrics.Table, error) {
	res, err := ensemble.Run(ensemble.Config{
		Geometry:       jag.Tiny8,
		Samples:        files * perFile,
		SamplesPerFile: perFile,
		OutDir:         dir,
		Workers:        2,
	})
	if err != nil {
		return nil, err
	}
	tab := metrics.NewTable("Data store modes — measured traffic",
		"mode", "backing_reads", "remote_samples", "bytes_moved", "files_preread")
	for _, mode := range []datastore.Mode{datastore.ModeNone, datastore.ModeDynamic, datastore.ModePreload} {
		ds, err := reader.OpenBundles(res.Paths)
		if err != nil {
			return nil, err
		}
		stats, err := runStoreEpochs(ds, mode, ranks, steps, batch)
		ds.Close()
		if err != nil {
			return nil, err
		}
		tab.AddRow(mode.String(), stats.BackingReads, stats.RemoteSamples,
			stats.BytesSent+stats.BytesReceived, stats.FilesPreread)
	}
	return tab, nil
}

// runStoreEpochs drives a store through a deterministic batch schedule and
// sums the per-rank stats.
func runStoreEpochs(ds reader.Dataset, mode datastore.Mode, ranks, steps, batch int) (datastore.Stats, error) {
	w := comm.NewWorld(ranks)
	stores := make([]*datastore.Store, ranks)
	errs := make([]error, ranks)
	w.Run(func(c *comm.Comm) {
		s := datastore.New(c, ds, mode)
		stores[c.Rank()] = s
		if mode == datastore.ModePreload {
			if err := s.Preload(); err != nil {
				errs[c.Rank()] = err
				return
			}
		}
		sh := reader.NewShuffler(ds.Len(), 3)
		step := 0
		for epoch := 0; step < steps; epoch++ {
			for _, b := range reader.Batches(sh.Epoch(epoch), batch, true) {
				if step >= steps {
					break
				}
				parts := make([][]int, ranks)
				for r := range parts {
					parts[r] = reader.PartitionContiguousOf(b, ranks, r)
				}
				if _, err := s.Fetch(parts); err != nil {
					errs[c.Rank()] = err
					return
				}
				step++
			}
		}
	})
	var total datastore.Stats
	for r, s := range stores {
		if errs[r] != nil {
			return total, errs[r]
		}
		st := s.Stats()
		total.BackingReads += st.BackingReads
		total.RemoteSamples += st.RemoteSamples
		total.BytesSent += st.BytesSent
		total.BytesReceived += st.BytesReceived
		total.FilesPreread += st.FilesPreread
		total.LocalHits += st.LocalHits
	}
	return total, nil
}
