package perfmodel

import (
	"fmt"

	"repro/internal/datastore"
	"repro/internal/netsim"
	"repro/internal/pfs"
)

// Scenario describes one training configuration to be costed: workload,
// machine, trainer placement and data-ingestion mode.
type Scenario struct {
	Fabric netsim.Fabric
	FS     pfs.Params
	Arch   Arch

	// SampleBytes is the on-disk/in-memory size of one sample (the paper's
	// 12 64×64 float32 images + 15 scalars + 5 inputs ≈ 197 kB; 10M of
	// them ≈ the paper's 2 TB).
	SampleBytes float64
	// TrainSamples is the size of the full training set; each of Trainers
	// trainers works on TrainSamples/Trainers of it.
	TrainSamples int
	// ValSamples is the validation set size; each trainer additionally
	// holds its 1/Trainers share in its data store.
	ValSamples     int
	BatchSize      int
	SamplesPerFile int

	Trainers int
	// GPUsPerTrainer ranks make up each trainer; GPUsPerNode is the
	// placement density (4 = packed Lassen node, 1 = the sparse placement
	// of Figure 11's single-trainer baseline).
	GPUsPerTrainer int
	GPUsPerNode    int

	Mode datastore.Mode
	// DynamicImbalance inflates the steady-state shuffle of the dynamic
	// store: first-touch ownership follows the epoch-0 consumption pattern
	// and is less balanced than preload's file round-robin, which is why
	// the paper's preloaded store beats the dynamic store in steady state.
	DynamicImbalance float64
	// SerializationBW is the per-rank sample handling throughput of the
	// store exchange (Conduit node packing/unpacking), bytes/s.
	SerializationBW float64
	// UsableMemFraction is the share of a rank's memory budget the data
	// store may occupy. Ranks are launched in jsrun-style resource sets:
	// each rank's budget is NodeMemory·UsableMemFraction/GPUsPerNode, which
	// is exactly why the paper's 10M-sample single trainer fit on 16 nodes
	// at 1 GPU/node but not on 4 packed nodes.
	UsableMemFraction float64
}

// PaperScenario returns the calibrated baseline configuration for the given
// training-set size (1M for Figures 9/10, 10M for Figure 11).
func PaperScenario(trainSamples int) Scenario {
	fabric := netsim.Lassen()
	fabric.GPUFlops = 0.77e12
	fabric.SparseNICPenalty = 0.14
	fs := pfs.GPFSLike()
	fs.ClientBandwidth = 0.35e9
	return Scenario{
		Fabric:            fabric,
		FS:                fs,
		Arch:              PaperArch(),
		SampleBytes:       196688,
		TrainSamples:      trainSamples,
		ValSamples:        0,
		BatchSize:         128,
		SamplesPerFile:    1000,
		Trainers:          1,
		GPUsPerTrainer:    16,
		GPUsPerNode:       4,
		Mode:              datastore.ModePreload,
		DynamicImbalance:  1.28,
		SerializationBW:   61e6,
		UsableMemFraction: 0.8,
	}
}

// Validate reports whether the scenario is well-formed.
func (s Scenario) Validate() error {
	if err := s.Fabric.Validate(); err != nil {
		return err
	}
	if err := s.FS.Validate(); err != nil {
		return err
	}
	if s.TrainSamples < 1 || s.BatchSize < 1 || s.SamplesPerFile < 1 {
		return fmt.Errorf("perfmodel: invalid workload %+v", s)
	}
	if s.Trainers < 1 || s.GPUsPerTrainer < 1 || s.GPUsPerNode < 1 {
		return fmt.Errorf("perfmodel: invalid placement %+v", s)
	}
	if s.SampleBytes <= 0 || s.SerializationBW <= 0 || s.UsableMemFraction <= 0 {
		return fmt.Errorf("perfmodel: invalid rates %+v", s)
	}
	return nil
}

// Report is the costed result of one scenario.
type Report struct {
	Feasible bool
	// Reason explains infeasibility (data store exceeding memory budgets).
	Reason string

	StepsPerEpoch int
	// Per-step cost breakdown, seconds.
	Compute   float64
	Allreduce float64
	Shuffle   float64
	Ingest    float64
	StepTime  float64

	// Epoch-level results, seconds.
	SteadyEpoch  float64
	InitialEpoch float64
	PreloadTime  float64
}

// partitionSamples returns one trainer's training-set share.
func (s Scenario) partitionSamples() int { return s.TrainSamples / s.Trainers }

// storeBytesPerRank returns the data-store footprint of one rank.
func (s Scenario) storeBytesPerRank() float64 {
	perTrainer := float64(s.partitionSamples()+s.ValSamples/s.Trainers) * s.SampleBytes
	return perTrainer / float64(s.GPUsPerTrainer)
}

// memBudgetPerRank returns the rank's usable host-memory budget under
// resource-set allocation.
func (s Scenario) memBudgetPerRank() float64 {
	return s.Fabric.NodeMemory * s.UsableMemFraction / float64(s.GPUsPerNode)
}

// pressure returns the host-memory slowdown factor for store traffic at the
// current occupancy (the inverse of the paper's cache-effect speedup).
func (s Scenario) pressure() float64 {
	occ := s.storeBytesPerRank() / s.memBudgetPerRank()
	if occ <= 0.5 {
		return 1
	}
	return 1 + s.Fabric.MemoryPressure*(occ-0.5)/0.5
}

// shuffleTime returns the steady-state per-step data-store exchange cost:
// each rank receives its mini-batch share from peer owners (all but the
// 1/ranks locally-owned fraction), dominated by per-sample serialization,
// plus the network transfer.
func (s Scenario) shuffleTime() float64 {
	ranks := s.GPUsPerTrainer
	perRank := float64(s.BatchSize) / float64(ranks)
	if ranks == 1 {
		// Everything is local: only host staging of the batch.
		return perRank * s.SampleBytes / s.Fabric.HostBandwidth * s.pressure()
	}
	remote := perRank * float64(ranks-1) / float64(ranks)
	ser := remote * s.SampleBytes / s.SerializationBW * s.pressure()
	net := s.Fabric.IBLatency + remote*s.SampleBytes/s.Fabric.IBBandwidth
	if netsim.Nodes(ranks, s.GPUsPerNode) == 1 {
		net = s.Fabric.NVLinkLatency + remote*s.SampleBytes/s.Fabric.NVLinkBandwidth
	}
	t := ser + net
	if s.Mode == datastore.ModeDynamic {
		t *= s.DynamicImbalance
	}
	return t
}

// allreduceTime returns the summed per-step gradient allreduce cost over
// the three training phases.
func (s Scenario) allreduceTime() float64 {
	ae, dsc, gen := s.Arch.PhaseGradBytes()
	g, per := s.GPUsPerTrainer, s.GPUsPerNode
	return s.Fabric.AllreduceTime(ae, g, per) +
		s.Fabric.AllreduceTime(dsc, g, per) +
		s.Fabric.AllreduceTime(gen, g, per)
}

// Epoch costs the scenario and returns the full report.
func (s Scenario) Epoch() Report {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	r := Report{Feasible: true}
	r.StepsPerEpoch = s.partitionSamples() / s.BatchSize

	// Memory feasibility applies to the preloaded store, which must hold
	// the whole partition up front (the paper's 1–2 GPU Figure 10 points
	// and the 4-node single-trainer Figure 11 baseline).
	if s.Mode == datastore.ModePreload {
		if need, have := s.storeBytesPerRank(), s.memBudgetPerRank(); need > have {
			r.Feasible = false
			r.Reason = fmt.Sprintf("data store needs %.1f GB/rank, resource-set budget is %.1f GB", need/1e9, have/1e9)
			return r
		}
	}

	r.Compute = s.Fabric.ComputeTime(s.Arch.FlopsPerSample()*float64(s.BatchSize), s.GPUsPerTrainer)
	r.Allreduce = s.allreduceTime()

	switch s.Mode {
	case datastore.ModeNone:
		r.Ingest = s.NaiveIngestPerStep()
		r.StepTime = r.Compute + r.Allreduce + r.Ingest
		r.SteadyEpoch = float64(r.StepsPerEpoch) * r.StepTime
		r.InitialEpoch = r.SteadyEpoch
	case datastore.ModeDynamic:
		r.Ingest = s.NaiveIngestPerStep()
		r.Shuffle = s.shuffleTime()
		r.StepTime = r.Compute + r.Allreduce + r.Shuffle
		r.SteadyEpoch = float64(r.StepsPerEpoch) * r.StepTime
		// The first epoch ingests like the naive reader plus a small
		// caching overhead.
		r.InitialEpoch = float64(r.StepsPerEpoch) * (r.Compute + r.Allreduce + 1.05*r.Ingest)
	case datastore.ModePreload:
		r.Shuffle = s.shuffleTime()
		r.StepTime = r.Compute + r.Allreduce + r.Shuffle
		r.SteadyEpoch = float64(r.StepsPerEpoch) * r.StepTime
		r.PreloadTime = s.PreloadMakespan()
		r.InitialEpoch = r.PreloadTime + r.SteadyEpoch
	}
	return r
}
