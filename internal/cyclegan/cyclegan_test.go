package cyclegan

import (
	"math"
	"testing"

	"repro/internal/jag"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// tinyConfig returns a very small surrogate for fast tests.
func tinyConfig() Config {
	cfg := DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{32}
	cfg.ForwardHidden = []int{16}
	cfg.InverseHidden = []int{16}
	cfg.DiscHidden = []int{16}
	return cfg
}

// batch builds matched (x, y) matrices from the JAG plan.
func batch(cfg Config, start, n int) (x, y *tensor.Matrix) {
	g := cfg.Geometry
	x = tensor.New(n, jag.InputDim)
	y = tensor.New(n, g.OutputDim())
	for i := 0; i < n; i++ {
		s := jag.SimulateAt(g, start+i)
		copy(x.Row(i), s.X)
		copy(y.Row(i), s.Output())
	}
	return x, y
}

func TestNewDeterministic(t *testing.T) {
	a := New(tinyConfig(), 7)
	b := New(tinyConfig(), 7)
	for i, na := range a.Nets() {
		nb := b.Nets()[i]
		pa, pb := na.Params(), nb.Params()
		for j := range pa {
			if !pa[j].W.Equal(pb[j].W) {
				t.Fatalf("net %d param %d differs between same-seed replicas", i, j)
			}
		}
	}
	c := New(tinyConfig(), 8)
	if c.Forward.Params()[0].W.Equal(a.Forward.Params()[0].W) {
		t.Fatal("different seeds should give different weights")
	}
}

func TestArchitectureShapes(t *testing.T) {
	cfg := tinyConfig()
	s := New(cfg, 1)
	x, y := batch(cfg, 0, 4)
	z := s.Encoder.Forward(y, false)
	if z.Cols != cfg.LatentDim {
		t.Fatalf("encoder output width %d, want %d", z.Cols, cfg.LatentDim)
	}
	if out := s.Decoder.Forward(z, false); out.Cols != cfg.Geometry.OutputDim() {
		t.Fatalf("decoder output width %d", out.Cols)
	}
	if zf := s.Forward.Forward(x, false); zf.Cols != cfg.LatentDim {
		t.Fatalf("forward output width %d", zf.Cols)
	}
	if xr := s.Inverse.Forward(z, false); xr.Cols != jag.InputDim {
		t.Fatalf("inverse output width %d", xr.Cols)
	}
	if d := s.Disc.Forward(z, false); d.Cols != 1 {
		t.Fatalf("disc output width %d", d.Cols)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cfg := tinyConfig()
	cfg.LatentDim = 0
	if cfg.Validate() == nil {
		t.Fatal("latent 0 must be invalid")
	}
	cfg = tinyConfig()
	cfg.LR = 0
	if cfg.Validate() == nil {
		t.Fatal("lr 0 must be invalid")
	}
	cfg = tinyConfig()
	cfg.Geometry.Views = 0
	if cfg.Validate() == nil {
		t.Fatal("bad geometry must be invalid")
	}
}

func TestTrainStepReturnsAllLosses(t *testing.T) {
	cfg := tinyConfig()
	s := New(cfg, 2)
	x, y := batch(cfg, 0, 8)
	losses := s.TrainStep(x, y, nn.NopReducer{})
	for _, k := range []string{"autoencoder", "disc", "fidelity", "adversarial", "cycle"} {
		v, ok := losses[k]
		if !ok {
			t.Fatalf("missing loss %q", k)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("loss %q = %v", k, v)
		}
	}
}

func TestTrainingImprovesEval(t *testing.T) {
	cfg := tinyConfig()
	s := New(cfg, 3)
	xTr, yTr := batch(cfg, 0, 64)
	xVal, yVal := batch(cfg, 1000, 32)
	before := s.Eval(xVal, yVal)
	for step := 0; step < 60; step++ {
		s.TrainStep(xTr, yTr, nn.NopReducer{})
	}
	after := s.Eval(xVal, yVal)
	if !(after < before*0.8) {
		t.Fatalf("training did not improve eval: %v -> %v", before, after)
	}
}

func TestAutoencoderLossDecreases(t *testing.T) {
	cfg := tinyConfig()
	s := New(cfg, 4)
	x, y := batch(cfg, 0, 32)
	first := s.TrainStep(x, y, nn.NopReducer{})["autoencoder"]
	var last float64
	for i := 0; i < 40; i++ {
		last = s.TrainStep(x, y, nn.NopReducer{})["autoencoder"]
	}
	if !(last < first*0.8) {
		t.Fatalf("autoencoder loss %v -> %v", first, last)
	}
}

func TestPredictAndInvertShapes(t *testing.T) {
	cfg := tinyConfig()
	s := New(cfg, 5)
	x, _ := batch(cfg, 0, 6)
	pred := s.Predict(x)
	if pred.Rows != 6 || pred.Cols != cfg.Geometry.OutputDim() {
		t.Fatalf("Predict shape %dx%d", pred.Rows, pred.Cols)
	}
	inv := s.Invert(x)
	if inv.Rows != 6 || inv.Cols != jag.InputDim {
		t.Fatalf("Invert shape %dx%d", inv.Rows, inv.Cols)
	}
	// Sigmoid heads keep predictions in (0,1) like the data.
	for _, v := range pred.Data {
		if v < 0 || v > 1 {
			t.Fatalf("prediction %v outside [0,1]", v)
		}
	}
}

func TestCycleConsistencyImproves(t *testing.T) {
	cfg := tinyConfig()
	s := New(cfg, 6)
	x, y := batch(cfg, 0, 64)
	cycleOf := func() float64 {
		return nn.MAEValue(s.Invert(x), x)
	}
	before := cycleOf()
	for i := 0; i < 80; i++ {
		s.TrainStep(x, y, nn.NopReducer{})
	}
	if after := cycleOf(); !(after < before) {
		t.Fatalf("cycle consistency did not improve: %v -> %v", before, after)
	}
}

func TestExchangeNetsSubset(t *testing.T) {
	s := New(tinyConfig(), 7)
	ex := s.ExchangeNets()
	if len(ex) != 3 {
		t.Fatalf("exchange set has %d nets, want 3", len(ex))
	}
	names := map[string]bool{}
	for _, n := range ex {
		names[n.Name] = true
	}
	if !names["forward"] || !names["inverse"] || !names["decoder"] {
		t.Fatalf("exchange set = %v", names)
	}
	if names["disc"] || names["encoder"] {
		t.Fatal("discriminator and encoder must stay local")
	}
	// Exchange volume must be strictly smaller than the full model.
	exBytes, allBytes := 0, 0
	for _, n := range ex {
		exBytes += n.WeightsSize()
	}
	for _, n := range s.Nets() {
		allBytes += n.WeightsSize()
	}
	if exBytes >= allBytes {
		t.Fatalf("exchange %d bytes not smaller than full %d", exBytes, allBytes)
	}
}

func TestDiscriminatorLearnsToSeparate(t *testing.T) {
	// Freeze the generator implicitly by only checking D improves early:
	// after some steps D should assign higher logits to real latents than
	// fake ones on average.
	cfg := tinyConfig()
	s := New(cfg, 8)
	x, y := batch(cfg, 0, 64)
	for i := 0; i < 30; i++ {
		s.TrainStep(x, y, nn.NopReducer{})
	}
	zReal := s.Encoder.Forward(y, false)
	zFake := s.Forward.Forward(x, false)
	realMean := tensor.Mean(s.Disc.Forward(zReal, false))
	fakeMean := tensor.Mean(s.Disc.Forward(zFake, false))
	if !(realMean > fakeMean) {
		t.Fatalf("discriminator not separating: real %v vs fake %v", realMean, fakeMean)
	}
}

func TestResetOptimAllowsContinuedTraining(t *testing.T) {
	cfg := tinyConfig()
	s := New(cfg, 9)
	x, y := batch(cfg, 0, 16)
	s.TrainStep(x, y, nn.NopReducer{})
	s.ResetOptim()
	losses := s.TrainStep(x, y, nn.NopReducer{})
	if math.IsNaN(losses["fidelity"]) {
		t.Fatal("training after ResetOptim diverged")
	}
}

func TestReplicasStayIdenticalUnderSameData(t *testing.T) {
	cfg := tinyConfig()
	a := New(cfg, 10)
	b := New(cfg, 10)
	x, y := batch(cfg, 0, 16)
	for i := 0; i < 5; i++ {
		a.TrainStep(x, y, nn.NopReducer{})
		b.TrainStep(x, y, nn.NopReducer{})
	}
	pa, pb := a.Forward.Params(), b.Forward.Params()
	for i := range pa {
		if !pa[i].W.Equal(pb[i].W) {
			t.Fatal("identical replicas diverged under identical data")
		}
	}
}

func BenchmarkTrainStepTiny(b *testing.B) {
	cfg := tinyConfig()
	s := New(cfg, 11)
	x, y := batch(cfg, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TrainStep(x, y, nn.NopReducer{})
	}
}
