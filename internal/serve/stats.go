package serve

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Pipeline stage names: the spans every request passes through, each
// with its own latency histogram. Together they decompose end-to-end
// latency the same way perfmodel.ServingScenario does analytically
// (window fill, replica wait, pass cost), so an operator can see
// *where* a latency regression lives instead of only that one exists.
const (
	// StageQueueWait is enqueue → batch flush: the time a row spends in
	// its priority lane while the batch window fills (the model's
	// FillSec, plus any lane backlog).
	StageQueueWait = "queue_wait"
	// StageAssembly is batch flush → forward start: waiting for a free
	// worker (the M/D/c queue wait) plus stale-row reaping and matrix
	// gather. Recorded once per batch.
	StageAssembly = "batch_assembly"
	// StageForward is the model's batched forward pass, including any
	// modeled PassOverhead. Recorded once per batch.
	StageForward = "forward"
	// StageEncode is the HTTP response encoding span (JSON or binary
	// frame), recorded by the handler once per response. In-process
	// callers never pay it.
	StageEncode = "encode"
)

// stageNames enumerates the stages in pipeline order, for deterministic
// rendering.
var stageNames = []string{StageQueueWait, StageAssembly, StageForward, StageEncode}

// Trace is one request's span record: where its latency went, stage by
// stage. The pipeline fills it as the request moves; CallTrace returns
// it to the caller and the HTTP handler renders it as a Server-Timing
// header and a structured log field.
type Trace struct {
	// QueueWait is enqueue → batch flush (StageQueueWait).
	QueueWait time.Duration
	// Assembly is batch flush → forward start, shared by every row of
	// the batch (StageAssembly).
	Assembly time.Duration
	// Forward is the batched forward pass, shared by every row of the
	// batch (StageForward).
	Forward time.Duration
	// Batch is the number of live rows in the forward pass.
	Batch int
	// CacheHit marks a row answered from the LRU cache: no other span
	// applies.
	CacheHit bool
}

// Stats aggregates the serving counters behind one mutex, with the
// latency histograms outside it: metrics.Histogram is lock-free, so the
// hot path records observations and a concurrent /metrics scrape reads
// snapshots without either blocking the other.
type Stats struct {
	mu          sync.Mutex
	start       time.Time
	requests    int64
	perMethod   map[string]int64
	perLane     map[string]*[numLanes]int64 // method → per-lane completed rows
	overloads   int64
	expired     int64
	cancelled   int64
	failures    int64
	cacheHits   int64
	cacheMisses int64
	latency     metrics.Meter // milliseconds, enqueue to scatter
	batchOccup  metrics.Meter // requests per forward pass

	// latencyH is the end-to-end latency histogram (seconds) the
	// quantile fields of StatsSnapshot — and the capacity-model
	// validation — read from.
	latencyH *metrics.Histogram
	// stageH holds one histogram (seconds) per pipeline stage.
	stageH map[string]*metrics.Histogram
}

// newStats starts the throughput clock.
func newStats() *Stats {
	s := &Stats{
		start:     time.Now(),
		perMethod: make(map[string]int64),
		perLane:   make(map[string]*[numLanes]int64),
		latencyH:  metrics.NewHistogram(metrics.LatencyBuckets()),
		stageH:    make(map[string]*metrics.Histogram, len(stageNames)),
	}
	for _, st := range stageNames {
		s.stageH[st] = metrics.NewHistogram(metrics.LatencyBuckets())
	}
	return s
}

// request records one completed row of the named method and lane and
// its queue-to-reply latency.
func (s *Stats) request(method string, class Priority, d time.Duration) {
	s.latencyH.Observe(d.Seconds())
	s.mu.Lock()
	s.requests++
	s.perMethod[method]++
	lanes, ok := s.perLane[method]
	if !ok {
		lanes = new([numLanes]int64)
		s.perLane[method] = lanes
	}
	if class >= 0 && class < numLanes {
		lanes[class]++
	}
	s.latency.Add(float64(d) / float64(time.Millisecond))
	s.mu.Unlock()
}

// observeStage records one span of the named pipeline stage, in
// seconds. Unknown stages are dropped rather than panicking the worker.
func (s *Stats) observeStage(stage string, sec float64) {
	if h, ok := s.stageH[stage]; ok {
		h.Observe(sec)
	}
}

// batch records one forward pass of n coalesced requests.
func (s *Stats) batch(n int) {
	s.mu.Lock()
	s.batchOccup.Add(float64(n))
	s.mu.Unlock()
}

// overload counts one request rejected by backpressure.
func (s *Stats) overload() {
	s.mu.Lock()
	s.overloads++
	s.mu.Unlock()
}

// expire counts one request dropped — at admission or at flush time,
// but always before a forward pass — because its deadline passed.
func (s *Stats) expire() {
	s.mu.Lock()
	s.expired++
	s.mu.Unlock()
}

// cancel counts one request dropped before a forward pass because its
// context was cancelled.
func (s *Stats) cancel() {
	s.mu.Lock()
	s.cancelled++
	s.mu.Unlock()
}

// failure counts n rows failed by an error from the model's own
// forward pass — the only error class that is the model's fault rather
// than the caller's or the queue's, so it gets its own counter and
// cannot hide as "no traffic".
func (s *Stats) failure(n int) {
	s.mu.Lock()
	s.failures += int64(n)
	s.mu.Unlock()
}

// cacheHit counts one request answered from the LRU cache.
func (s *Stats) cacheHit() {
	s.mu.Lock()
	s.cacheHits++
	s.mu.Unlock()
}

// cacheMiss counts one request that had to run the model.
func (s *Stats) cacheMiss() {
	s.mu.Lock()
	s.cacheMisses++
	s.mu.Unlock()
}

// StageSnapshot summarizes one pipeline stage's latency histogram for
// the /stats JSON endpoint, all times in milliseconds.
type StageSnapshot struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

// stageSnapshot renders one histogram snapshot in milliseconds.
func stageSnapshot(h metrics.HistogramSnapshot) StageSnapshot {
	return StageSnapshot{
		Count:  int64(h.Count),
		MeanMs: 1e3 * h.Mean(),
		P50Ms:  1e3 * h.Quantile(0.50),
		P90Ms:  1e3 * h.Quantile(0.90),
		P99Ms:  1e3 * h.Quantile(0.99),
		P999Ms: 1e3 * h.Quantile(0.999),
	}
}

// StatsSnapshot is a consistent copy of the serving counters, shaped for
// the /stats JSON endpoint.
type StatsSnapshot struct {
	Requests int64 `json:"requests"`
	// MethodRequests splits Requests by model method ("predict",
	// "invert", ...); methods never served are absent.
	MethodRequests map[string]int64 `json:"method_requests,omitempty"`
	// LaneRequests splits MethodRequests by priority lane, method →
	// lane name → completed rows.
	LaneRequests map[string]map[string]int64 `json:"lane_requests,omitempty"`
	Batches      int                         `json:"batches"`
	Overloads    int64                       `json:"overloads"`
	Expired      int64                       `json:"expired"`
	Cancelled    int64                       `json:"cancelled"`
	// ModelFailures counts rows failed by the model's forward pass
	// itself (ErrModelFailure, HTTP 500).
	ModelFailures int64   `json:"model_failures"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	MeanBatch     float64 `json:"mean_batch"`
	MaxBatch      float64 `json:"max_batch"`
	MeanLatMs     float64 `json:"mean_latency_ms"`
	MaxLatMs      float64 `json:"max_latency_ms"`
	// LatencyP50Ms..P999Ms are end-to-end latency quantiles estimated
	// from the streaming histogram — the measured counterpart of
	// perfmodel.ServingScenario's predicted P50/P99.
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyP999Ms float64 `json:"latency_p999_ms"`
	// Stages decomposes latency by pipeline stage (queue_wait,
	// batch_assembly, forward, encode) — where the milliseconds went.
	Stages       map[string]StageSnapshot `json:"stages,omitempty"`
	ThroughputPS float64                  `json:"throughput_per_sec"`
	UptimeSec    float64                  `json:"uptime_sec"`
}

// snapshot captures the counters at one instant.
func (s *Stats) snapshot() StatsSnapshot {
	lat := s.latencyH.Snapshot()
	stages := make(map[string]StageSnapshot, len(stageNames))
	for _, st := range stageNames {
		if snap := s.stageH[st].Snapshot(); snap.Count > 0 {
			stages[st] = stageSnapshot(snap)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	up := time.Since(s.start).Seconds()
	var methods map[string]int64
	if len(s.perMethod) > 0 {
		methods = make(map[string]int64, len(s.perMethod))
		for k, v := range s.perMethod {
			methods[k] = v
		}
	}
	var lanes map[string]map[string]int64
	if len(s.perLane) > 0 {
		lanes = make(map[string]map[string]int64, len(s.perLane))
		for m, counts := range s.perLane {
			byLane := make(map[string]int64, numLanes)
			for l := Priority(0); l < numLanes; l++ {
				if counts[l] > 0 {
					byLane[l.String()] = counts[l]
				}
			}
			lanes[m] = byLane
		}
	}
	snap := StatsSnapshot{
		Requests:       s.requests,
		MethodRequests: methods,
		LaneRequests:   lanes,
		Batches:        s.batchOccup.Count(),
		Overloads:      s.overloads,
		Expired:        s.expired,
		Cancelled:      s.cancelled,
		ModelFailures:  s.failures,
		CacheHits:      s.cacheHits,
		CacheMisses:    s.cacheMisses,
		MeanBatch:      s.batchOccup.Mean(),
		MaxBatch:       s.batchOccup.Max(),
		MeanLatMs:      s.latency.Mean(),
		MaxLatMs:       s.latency.Max(),
		LatencyP50Ms:   1e3 * lat.Quantile(0.50),
		LatencyP90Ms:   1e3 * lat.Quantile(0.90),
		LatencyP99Ms:   1e3 * lat.Quantile(0.99),
		LatencyP999Ms:  1e3 * lat.Quantile(0.999),
		Stages:         stages,
		UptimeSec:      up,
	}
	if up > 0 {
		snap.ThroughputPS = float64(s.requests+s.cacheHits) / up
	}
	return snap
}

// LatencyHistogram returns a snapshot of the end-to-end request latency
// histogram (seconds), the raw-bucket form the Prometheus exposition
// renders.
func (s *Server) LatencyHistogram() metrics.HistogramSnapshot {
	return s.stats.latencyH.Snapshot()
}

// StageHistograms returns a snapshot of every pipeline-stage latency
// histogram (seconds), keyed by stage name.
func (s *Server) StageHistograms() map[string]metrics.HistogramSnapshot {
	out := make(map[string]metrics.HistogramSnapshot, len(stageNames))
	for _, st := range stageNames {
		out[st] = s.stats.stageH[st].Snapshot()
	}
	return out
}

// Inflight returns the number of requests currently admitted to the
// pipeline (queued or in a forward pass) — the live queue depth behind
// the QueueDepth backpressure bound.
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// LaneDepths returns the number of rows currently queued per priority
// lane, summed across methods — the scrape-time lane occupancy gauge.
func (s *Server) LaneDepths() map[string]int {
	out := make(map[string]int, numLanes)
	for l := Priority(0); l < numLanes; l++ {
		n := 0
		for _, q := range s.queues {
			n += len(q.lanes[l])
		}
		out[l.String()] = n
	}
	return out
}
