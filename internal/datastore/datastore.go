// Package datastore implements the paper's distributed in-memory data store
// (Section III-B): each rank of a trainer owns a shard of the training
// samples in host memory, and at every step the owners ship the samples the
// upcoming mini-batch needs to the ranks that will consume them, so that
// after the store is populated no data is read from the file system.
//
// Three modes reproduce the three configurations of Figure 10:
//
//   - ModeNone: the naive reader — every mini-batch access goes back to the
//     backing (bundle-file) dataset.
//   - ModeDynamic: samples are read from files as they are first consumed
//     (epoch 0) and cached at the consuming rank, which becomes their owner;
//     later epochs exchange cached samples instead of touching files.
//   - ModePreload: ownership is assigned by file — each backing file is read
//     once, wholly, by exactly one rank before training (the paper's
//     "minimizes the number of files each process opens concurrently").
//
// Fetch is collective over the trainer communicator and uses non-blocking
// receives so a trainer can overlap the shuffle with back-propagation, as
// LBANN does with background threads.
package datastore

import (
	"container/list"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/reader"
	"repro/internal/tensor"
)

// Mode selects the data-store behaviour.
type Mode int

// The three data-ingestion configurations of Figure 10.
const (
	ModeNone Mode = iota
	ModeDynamic
	ModePreload
)

// String names the mode as in the paper's figure legends.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "dynamic-loading"
	case ModeDynamic:
		return "data-store-dynamic"
	case ModePreload:
		return "data-store-preloaded"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Stats counts data-movement events; the performance model charges time for
// exactly these quantities.
type Stats struct {
	LocalHits     int64 // samples served from this rank's own shard
	RemoteSamples int64 // samples received from peer ranks
	BackingReads  int64 // samples read from the backing dataset
	BytesSent     int64
	BytesReceived int64
	FilesPreread  int64 // whole files read during Preload
	Evictions     int64 // samples dropped by the capacity bound
}

// Store is one rank's view of a trainer's distributed data store. All ranks
// of the trainer must perform the same sequence of collective calls
// (Preload, Fetch) with identical arguments.
type Store struct {
	c     *comm.Comm
	ds    reader.Dataset
	mode  Mode
	dim   int
	owner []int32 // sample -> owning rank; -1 while unknown (dynamic mode)
	cache map[int][]float32
	seq   int
	stats Stats

	// Capacity bound (see SetCapacity); zero means unlimited.
	capacity int
	lru      *list.List
	lruIndex map[int]*list.Element
}

// fetchTagBase keeps store traffic clear of the trainer's gradient and
// tournament tags.
const fetchTagBase = 1 << 20

// New creates this rank's store over the trainer communicator c and backing
// dataset ds.
func New(c *comm.Comm, ds reader.Dataset, mode Mode) *Store {
	s := &Store{
		c:     c,
		ds:    ds,
		mode:  mode,
		dim:   ds.Dim(),
		owner: make([]int32, ds.Len()),
		cache: map[int][]float32{},
	}
	switch mode {
	case ModeDynamic:
		for i := range s.owner {
			s.owner[i] = -1
		}
	case ModePreload:
		s.assignPreloadOwnership()
	}
	return s
}

// Mode returns the store's configured mode.
func (s *Store) Mode() Mode { return s.mode }

// Stats returns a snapshot of this rank's data-movement counters.
func (s *Store) Stats() Stats { return s.stats }

// Owner returns the owning rank of sample i, or -1 if not yet owned.
func (s *Store) Owner(i int) int { return int(s.owner[i]) }

// OwnedSamples returns how many samples this rank currently holds.
func (s *Store) OwnedSamples() int { return len(s.cache) }

// assignPreloadOwnership maps every sample to a rank: by backing file when
// the dataset is file-mapped (round-robin over files), by index otherwise.
func (s *Store) assignPreloadOwnership() {
	size := int32(s.c.Size())
	if fm, ok := s.ds.(reader.FileMapped); ok {
		for f := 0; f < fm.NumFiles(); f++ {
			o := int32(f) % size
			for _, i := range fm.FileSamples(f) {
				s.owner[i] = o
			}
		}
		return
	}
	for i := range s.owner {
		s.owner[i] = int32(i) % size
	}
}

// Preload populates this rank's shard by reading every sample it owns from
// the backing dataset, file-at-a-time when possible. It must be called on
// every rank in ModePreload before the first Fetch.
func (s *Store) Preload() error {
	if s.mode != ModePreload {
		return fmt.Errorf("datastore: Preload in mode %v", s.mode)
	}
	me := int32(s.c.Rank())
	if bd, ok := s.ds.(*reader.BundleDataset); ok {
		for f := 0; f < bd.NumFiles(); f++ {
			idx := bd.FileSamples(f)
			if len(idx) == 0 || s.owner[idx[0]] != me {
				continue
			}
			recs, err := bd.ReadFile(f)
			if err != nil {
				return err
			}
			s.stats.FilesPreread++
			for k, i := range idx {
				if err := s.admit(i, recs[k]); err != nil {
					return err
				}
				s.stats.BackingReads++
			}
		}
		return nil
	}
	for i := range s.owner {
		if s.owner[i] != me {
			continue
		}
		buf := make([]float32, s.dim)
		if err := s.ds.Sample(i, buf); err != nil {
			return err
		}
		if err := s.admit(i, buf); err != nil {
			return err
		}
		s.stats.BackingReads++
	}
	return nil
}

// Fetch is the per-step collective exchange: batchParts[r] lists the sample
// indices rank r consumes this step, identical on every rank. It returns
// this rank's samples as a row-per-sample matrix, in batchParts[rank] order.
func (s *Store) Fetch(batchParts [][]int) (*tensor.Matrix, error) {
	req, err := s.FetchAsync(batchParts)
	if err != nil {
		return nil, err
	}
	return req.Wait()
}

// Pending is an in-flight Fetch whose receives have been posted; Wait
// assembles the mini-batch. The trainer can run compute between FetchAsync
// and Wait to overlap the shuffle with the backward pass.
type Pending struct {
	store *Store
	mine  []int
	rows  map[int][]float32 // locally resolved samples
	recvs []pendingRecv
}

type pendingRecv struct {
	from    int
	samples []int
	req     *comm.Request
}

// FetchAsync starts the exchange for a mini-batch and returns a Pending.
func (s *Store) FetchAsync(batchParts [][]int) (*Pending, error) {
	if len(batchParts) != s.c.Size() {
		return nil, fmt.Errorf("datastore: %d batch parts for %d ranks", len(batchParts), s.c.Size())
	}
	me := s.c.Rank()
	tag := fetchTagBase + s.seq%(1<<15)
	s.seq++

	// Dynamic first-touch: unowned samples become owned by their consumer.
	// Every rank applies the same rule, so ownership stays consistent
	// without communication.
	if s.mode == ModeDynamic {
		for r, part := range batchParts {
			for _, i := range part {
				if s.owner[i] == -1 {
					s.owner[i] = int32(r)
				}
			}
		}
	}

	p := &Pending{store: s, mine: batchParts[me], rows: map[int][]float32{}}

	if s.mode == ModeNone {
		// Naive path: read everything this rank consumes from the files.
		for _, i := range p.mine {
			buf := make([]float32, s.dim)
			if err := s.ds.Sample(i, buf); err != nil {
				return nil, err
			}
			p.rows[i] = buf
			s.stats.BackingReads++
		}
		return p, nil
	}

	// Serve local needs and materialize first-touch reads.
	for _, i := range p.mine {
		if int(s.owner[i]) != me {
			continue
		}
		row, ok := s.cache[i]
		if !ok {
			row = make([]float32, s.dim)
			if err := s.ds.Sample(i, row); err != nil {
				return nil, err
			}
			if err := s.admit(i, row); err != nil {
				return nil, err
			}
			s.stats.BackingReads++
		} else {
			s.touch(i)
		}
		p.rows[i] = row
		s.stats.LocalHits++
	}

	// Send every sample I own that another rank consumes, one packed
	// message per destination, in the destination's batch order.
	for r, part := range batchParts {
		if r == me {
			continue
		}
		var payload []float32
		for _, i := range part {
			if int(s.owner[i]) != me {
				continue
			}
			row, ok := s.cache[i]
			if !ok {
				// Dynamic mode: a sample first consumed remotely in a prior
				// step may be owned here without being cached yet, or it may
				// have been evicted under a capacity bound.
				row = make([]float32, s.dim)
				if err := s.ds.Sample(i, row); err != nil {
					return nil, err
				}
				if err := s.admit(i, row); err != nil {
					return nil, err
				}
				s.stats.BackingReads++
			} else {
				s.touch(i)
			}
			payload = append(payload, row...)
		}
		if payload != nil {
			s.c.Send(r, tag, payload)
			s.stats.BytesSent += int64(4 * len(payload))
		}
	}

	// Post one receive per distinct remote owner of my samples.
	needed := map[int][]int{}
	for _, i := range p.mine {
		if o := int(s.owner[i]); o != me {
			needed[o] = append(needed[o], i)
		}
	}
	for o := 0; o < s.c.Size(); o++ {
		idx := needed[o]
		if idx == nil {
			continue
		}
		p.recvs = append(p.recvs, pendingRecv{from: o, samples: idx, req: s.c.Irecv(o, tag)})
	}
	return p, nil
}

// Wait completes the exchange and returns this rank's mini-batch rows in
// consumption order.
func (p *Pending) Wait() (*tensor.Matrix, error) {
	s := p.store
	for _, r := range p.recvs {
		payload := r.req.Wait()
		want := len(r.samples) * s.dim
		if len(payload) != want {
			return nil, fmt.Errorf("datastore: rank %d sent %d floats, want %d", r.from, len(payload), want)
		}
		s.stats.BytesReceived += int64(4 * len(payload))
		s.stats.RemoteSamples += int64(len(r.samples))
		for k, i := range r.samples {
			p.rows[i] = payload[k*s.dim : (k+1)*s.dim]
		}
	}
	m := tensor.New(len(p.mine), s.dim)
	for r, i := range p.mine {
		row, ok := p.rows[i]
		if !ok {
			return nil, fmt.Errorf("datastore: sample %d missing after exchange", i)
		}
		copy(m.Row(r), row)
	}
	return m, nil
}

// StoreBytes returns the approximate host-memory footprint of this rank's
// shard, which the performance model compares against node capacity.
func (s *Store) StoreBytes() float64 {
	return float64(len(s.cache)) * float64(4*s.dim)
}

// ImbalanceFactor returns max over ranks of owned samples divided by the
// balanced share — 1.0 is perfect balance. It is collective (allreduce).
// Dynamic ownership follows the epoch-0 consumption pattern and is typically
// less balanced than preload's file-round-robin, which is why the paper's
// preloaded store still beats the dynamic store in steady state.
func (s *Store) ImbalanceFactor() float64 {
	buf := []float32{float32(len(s.cache))}
	s.c.AllreduceMax(buf)
	share := float64(s.ds.Len()) / float64(s.c.Size())
	if share == 0 {
		return 1
	}
	return math.Max(1, float64(buf[0])/share)
}
