package ltfb

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestLineageBasics(t *testing.T) {
	l := NewLineage(10, 3)
	if !l.Has(3) || l.Count() != 1 {
		t.Fatalf("fresh lineage wrong: %v", l.Silos())
	}
	l.Add(7)
	l.Add(0)
	if got := l.Silos(); !reflect.DeepEqual(got, []int{0, 3, 7}) {
		t.Fatalf("silos = %v", got)
	}
	if l.Count() != 3 {
		t.Fatalf("count = %d", l.Count())
	}
	// Out-of-range ids are ignored, not panics.
	l.Add(-1)
	l.Add(1000)
	if l.Count() != 3 || l.Has(-1) || l.Has(1000) {
		t.Fatal("out-of-range ids must be ignored")
	}
}

func TestLineageMerge(t *testing.T) {
	a := NewLineage(16, 1)
	b := NewLineage(16, 9)
	b.Add(14)
	a.Merge(b)
	if got := a.Silos(); !reflect.DeepEqual(got, []int{1, 9, 14}) {
		t.Fatalf("merged silos = %v", got)
	}
	// Merge must not modify the source.
	if b.Count() != 2 {
		t.Fatal("merge modified its argument")
	}
}

func TestLineageCloneIndependent(t *testing.T) {
	a := NewLineage(8, 2)
	c := a.Clone()
	c.Add(5)
	if a.Has(5) {
		t.Fatal("clone aliases original")
	}
}

// Property: count equals the number of distinct added ids.
func TestLineageCountProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		l := make(Lineage, 32)
		distinct := map[int]bool{}
		for _, id := range ids {
			l.Add(int(id))
			distinct[int(id)] = true
		}
		return l.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The paper's exposure claim, executed: after several tournament rounds,
// adopted models carry multi-silo lineages, and lineages agree across the
// replicas of a trainer.
func TestTournamentsGrowLineage(t *testing.T) {
	cfg := Config{NumTrainers: 4, RoundSteps: 2, PairSeed: 11, Metric: MetricEval}
	members := buildPopulation(t, cfg, 1, nil, func(m *Member) {
		if _, err := m.Loop(6); err != nil {
			t.Error(err)
		}
	})
	totalExposure := 0
	adopters := 0
	for _, m := range members {
		c := m.Lineage().Count()
		if c < 1 {
			t.Fatalf("trainer %d has empty lineage", m.TrainerID)
		}
		if !m.Lineage().Has(m.TrainerID) {
			t.Fatalf("trainer %d lineage misses its own silo", m.TrainerID)
		}
		if c > 1 {
			adopters++
		}
		totalExposure += c
	}
	if adopters == 0 {
		t.Fatal("no model gained multi-silo exposure over 6 rounds of 4 trainers")
	}
	if totalExposure <= len(members) {
		t.Fatal("lineages never grew beyond the home silo")
	}
}
