// Package fixture seeds tensoralias violations and their corrected
// forms: the destination tensor passed again as an input (the PR 2
// ensemble in-place-averaging bug class).
package fixture

// Dense stands in for tensor.Matrix (gonum and gorgonia spell the same
// shape Dense, which the analyzer also recognizes).
type Dense struct{ data []float32 }

// MatMul mirrors tensor.MatMul: c must not alias a or b.
func MatMul(c, a, b *Dense) {}

// Gemm mirrors tensor.Gemm's shape with non-tensor arguments mixed in.
func Gemm(c *Dense, alpha float32, a, b *Dense) {}

// Add mirrors tensor.Add; it is on the analyzer's documented
// elementwise allowlist.
func Add(dst, a, b *Dense) {}

// Accumulate adds src into dst elementwise. lint:inplace — each index
// is written exactly once after its reads.
func Accumulate(dst, src *Dense) {}

// Normalize scales m by its own norm; the doc opts it in: it may alias
// because the reduction happens before any write.
func Normalize(dst, src *Dense) {}

type model struct {
	w   *Dense
	act *Dense
}

// --- violations --------------------------------------------------------

func selfOutput(x, y *Dense) {
	MatMul(x, x, y) // want "x is passed to MatMul as both destination and input"
}

func selfOutputGemm(x, y *Dense) {
	Gemm(x, 1.0, y, x) // want "x is passed to Gemm as both destination and input"
}

func fieldAlias(m *model, y *Dense) {
	MatMul(m.act, m.act, y) // want "m.act is passed to MatMul as both destination and input"
}

// --- corrected forms (no diagnostics) ----------------------------------

func distinctArgs(x, y, z *Dense) {
	MatMul(x, y, z)
}

func sharedInputOK(x, y *Dense) {
	MatMul(x, y, y) // squaring: the duplicated tensor is input-only
}

func distinctFieldsOK(m *model, y *Dense) {
	MatMul(m.act, m.w, y)
}

func allowlistedOK(x, y *Dense) {
	Add(x, x, y) // documented elementwise: dst may alias
}

func markedInPlaceOK(x *Dense) {
	Accumulate(x, x)
	Normalize(x, x)
}

func suppressedOK(x, y *Dense) {
	MatMul(x, x, y) // lint:ignore tensoralias kernel proven safe for this blocking
}
