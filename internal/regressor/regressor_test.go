package regressor

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/datastore"
	"repro/internal/jag"
	"repro/internal/ltfb"
	"repro/internal/nn"
	"repro/internal/reader"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// The regressor must satisfy the trainer.Model contract at compile time.
var _ trainer.Model = (*Model)(nil)

func batch(start, n int) (x, y *tensor.Matrix) {
	x = tensor.New(n, jag.InputDim)
	y = tensor.New(n, jag.Tiny8.OutputDim())
	for i := 0; i < n; i++ {
		s := jag.SimulateAt(jag.Tiny8, start+i)
		copy(x.Row(i), s.X)
		copy(y.Row(i), s.Output())
	}
	return
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig(jag.Tiny8).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(jag.Tiny8)
	bad.LR = 0
	if bad.Validate() == nil {
		t.Fatal("lr 0 must be invalid")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	m := New(DefaultConfig(jag.Tiny8), 1)
	x, y := batch(0, 64)
	xv, yv := batch(1000, 32)
	before := m.Eval(xv, yv)
	for i := 0; i < 80; i++ {
		losses := m.TrainStep(x, y, nn.NopReducer{})
		if losses["mse"] < 0 {
			t.Fatal("negative loss")
		}
	}
	after := m.Eval(xv, yv)
	if !(after < before*0.7) {
		t.Fatalf("regressor did not learn: %v -> %v", before, after)
	}
}

func TestDeterministicReplicas(t *testing.T) {
	a := New(DefaultConfig(jag.Tiny8), 5)
	b := New(DefaultConfig(jag.Tiny8), 5)
	pa, pb := a.Net.Params(), b.Net.Params()
	for i := range pa {
		if !pa[i].W.Equal(pb[i].W) {
			t.Fatal("same-seed replicas differ")
		}
	}
}

func TestExchangeNetsIsFullModel(t *testing.T) {
	m := New(DefaultConfig(jag.Tiny8), 2)
	if len(m.ExchangeNets()) != len(m.Nets()) {
		t.Fatal("traditional model must exchange everything")
	}
}

// Classic LTFB on a traditional network: the full model is exchanged and
// the weaker trainer adopts the stronger one's weights entirely.
func TestClassicLTFBOnRegressor(t *testing.T) {
	recs := make([][]float32, 64)
	for i := range recs {
		recs[i] = jag.SimulateAt(jag.Tiny8, i).Flatten()
	}
	ds, err := reader.NewSliceDataset(jag.Tiny8.SampleDim(), recs)
	if err != nil {
		t.Fatal(err)
	}
	tx, ty := batch(5000, 16)

	w := comm.NewWorld(2)
	models := make([]*Model, 2)
	results := make([]ltfb.RoundResult, 2)
	w.Run(func(wc *comm.Comm) {
		tc := wc.Split(wc.Rank(), 0)
		model := New(DefaultConfig(jag.Tiny8), int64(wc.Rank()))
		models[wc.Rank()] = model
		store := datastore.New(tc, ds, datastore.ModeDynamic)
		tr, err := trainer.New(trainer.Config{BatchSize: 16, XDim: jag.InputDim, ShuffleSeed: 1}, tc, model, store, ds)
		if err != nil {
			t.Error(err)
			return
		}
		// Trainer 0 trains 30 steps; trainer 1 none.
		if wc.Rank() == 0 {
			if err := tr.Advance(30); err != nil {
				t.Error(err)
				return
			}
		}
		m := &ltfb.Member{
			Cfg:       ltfb.Config{NumTrainers: 2, RoundSteps: 1, PairSeed: 3},
			TrainerID: wc.Rank(),
			World:     wc,
			T:         tr,
			Scratch:   New(DefaultConfig(jag.Tiny8), 99),
			TournX:    tx,
			TournY:    ty,
		}
		res, err := m.Tournament(0)
		if err != nil {
			t.Error(err)
			return
		}
		results[wc.Rank()] = res
	})
	if results[0].Adopted || !results[1].Adopted {
		t.Fatalf("adoption direction wrong: %+v", results)
	}
	a := nn.MarshalNetworks(models[0].Nets())
	b := nn.MarshalNetworks(models[1].Nets())
	if string(a) != string(b) {
		t.Fatal("classic LTFB must propagate the entire model")
	}
}
