package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// StatusError is the typed form of a whole-request HTTP failure from a
// serving backend: a non-2xx reply, or a reply that died mid-body. It
// lets callers — the jagproxy retry loop above all — branch on the
// status class with errors.As instead of parsing error strings, and
// carries the server's Retry-After hint when backpressure set one.
type StatusError struct {
	// Code is the HTTP status of the failed reply. A reply that broke
	// mid-body (connection drop, truncated frame) is reported as
	// http.StatusBadGateway: the request may never have reached a
	// forward pass, so it is safe to retry elsewhere.
	Code int
	// RetryAfter is the server's Retry-After hint, 0 when absent.
	RetryAfter time.Duration
	// Detail is the server-supplied error detail, "" for opaque bodies.
	Detail string
}

// Error renders the same text errorBody produced before this type
// existed, so messages stay stable for humans and string-matching tests.
func (e *StatusError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s (HTTP %d)", e.Detail, e.Code)
	}
	return fmt.Sprintf("HTTP %d", e.Code)
}

// Retryable reports whether the failure says "not now" rather than
// "never": the request itself was acceptable but this replica could not
// serve it, so repeating it — ideally against another replica — can
// succeed. Hard 4xx (unknown model, malformed body) stay non-retryable.
func (e *StatusError) Retryable() bool { return RetryableStatus(e.Code) }

// RetryableStatus reports whether an HTTP status from a serving backend
// is worth retrying: 429 (rate limited), 502 (broken reply), 503
// (shedding or draining), 504 (deadline passed in queue).
func RetryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// statusError builds the typed error for a failed reply, folding in the
// JSON {"error": ...} detail and the Retry-After hint when present.
func statusError(resp *http.Response, raw []byte) *StatusError {
	e := &StatusError{Code: resp.StatusCode}
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		e.Detail = body.Error
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec >= 0 {
			e.RetryAfter = time.Duration(sec) * time.Second
		}
	}
	return e
}

// Client is a small Go client for the v1 serving API — the in-process
// counterpart of cmd/jagserve's HTTP surface, sharing the wire.go frame
// codec with the server so binary transport round-trips through one
// implementation.
type Client struct {
	base string
	hc   *http.Client

	// Binary selects the tensor frame transport for call bodies and
	// replies; JSON otherwise. Either way the client accepts both reply
	// transports, so a batch with row errors (which the server always
	// reports as JSON) still decodes.
	Binary bool
	// Priority is the queue lane requests are submitted under; the zero
	// value is Interactive.
	Priority Priority
	// DeadlineMs bounds each call's time in the serving pipeline
	// (independent of the context deadline); 0 uses the server default.
	DeadlineMs int
}

// NewClient targets a server base URL such as "http://localhost:8080".
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
}

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports) and returns the receiver for chaining.
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

// Models fetches the GET /v1/models listing.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var out ModelsResponse
	if err := c.getJSON(ctx, "/v1/models", &out); err != nil {
		return nil, err
	}
	return out.Models, nil
}

// Stats fetches one model's serving counters, including its hot-swap
// generation (the counters reset when a reload swaps the generation).
func (c *Client) Stats(ctx context.Context, model string) (ModelStats, error) {
	var snap ModelStats
	err := c.getJSON(ctx, "/v1/models/"+url.PathEscape(model)+"/stats", &snap)
	return snap, err
}

// Call submits a batch of input rows to POST /v1/models/{model}/{method}
// and returns the aligned outputs. rowErrs is non-nil when some rows
// failed (aligned with inputs, nil entries for successes); err reports
// transport problems and whole-request failures such as an unknown
// model or method.
func (c *Client) Call(ctx context.Context, model, method string, inputs [][]float32) (outputs [][]float32, rowErrs []*RowError, err error) {
	u := c.base + "/v1/models/" + url.PathEscape(model) + "/" + url.PathEscape(method)
	var body []byte
	contentType := "application/json"
	if c.Binary {
		body, err = EncodeFrame(inputs)
		if err != nil {
			return nil, nil, err
		}
		contentType = ContentTypeTensor
	} else {
		body, err = json.Marshal(PredictRequest{Inputs: inputs})
		if err != nil {
			return nil, nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if c.Binary {
		// Prefer the frame but accept the JSON fallback the server uses
		// to carry aligned row errors.
		req.Header.Set("Accept", ContentTypeTensor+", application/json")
	}
	if c.Priority != Interactive {
		req.Header.Set(PriorityHeader, c.Priority.String())
	}
	if c.DeadlineMs > 0 {
		req.Header.Set(DeadlineHeader, strconv.Itoa(c.DeadlineMs))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()

	if strings.HasPrefix(resp.Header.Get("Content-Type"), ContentTypeTensor) {
		rows, err := DecodeFrame(resp.Body, 0, len(inputs))
		if err != nil {
			// A frame that stops mid-body is a broken reply, not a model
			// verdict: type it 502 so retry loops treat it like any other
			// transient replica failure.
			return nil, nil, fmt.Errorf("serve: %s %s: %w", model, method,
				&StatusError{Code: http.StatusBadGateway, Detail: "broken reply: " + err.Error()})
		}
		return rows, nil, nil
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: %s %s: %w", model, method,
			&StatusError{Code: http.StatusBadGateway, Detail: "broken reply: " + err.Error()})
	}
	var pr PredictResponse
	if jsonErr := json.Unmarshal(raw, &pr); jsonErr == nil && (resp.StatusCode == http.StatusOK || pr.Errors != nil) {
		return pr.Outputs, pr.Errors, nil
	}
	return nil, nil, fmt.Errorf("serve: %s %s: %w", model, method, statusError(resp, raw))
}

// getJSON performs one GET and decodes the JSON reply into v.
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: GET %s: %w", path, statusError(resp, raw))
	}
	return json.Unmarshal(raw, v)
}
