// Package fixture seeds ctxflow violations and their corrected forms:
// functions that receive a context must neither mint fresh root
// contexts nor drop their ctx when calling context-taking APIs.
package fixture

import "context"

// Server stands in for serve.Server.
type Server struct{}

// PredictContext mirrors serve.Server.PredictContext.
func (s *Server) PredictContext(ctx context.Context, x []float32) []float32 { return x }

// Call mirrors serve.Server.Call.
func Call(ctx context.Context, x []float32) []float32 { return x }

// --- violations --------------------------------------------------------

func dropsCtx(ctx context.Context, s *Server) {
	s.PredictContext(context.Background(), nil) // want "drops the caller's ctx"
}

func dropsCtxFree(ctx context.Context) {
	Call(context.TODO(), nil) // want "drops the caller's ctx"
}

func mintsCtx(ctx context.Context) context.Context {
	detached := context.Background() // want "severs the cancellation chain"
	return detached
}

func litWithCtx(s *Server) func(context.Context) {
	return func(ctx context.Context) {
		s.PredictContext(context.Background(), nil) // want "drops the caller's ctx"
	}
}

// --- corrected forms (no diagnostics) ----------------------------------

func passesCtx(ctx context.Context, s *Server) {
	s.PredictContext(ctx, nil)
}

func derivesCtx(ctx context.Context, s *Server) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.PredictContext(ctx, nil)
}

// rootEntryPoint has no ctx parameter: minting the root context is its
// job (main, tests, Predict-style convenience wrappers).
func rootEntryPoint(s *Server) {
	s.PredictContext(context.Background(), nil)
}

// suppressed documents a deliberate detach (fire-and-forget audit).
func suppressed(ctx context.Context, s *Server) {
	// lint:ignore ctxflow audit write must outlive the request
	s.PredictContext(context.Background(), nil)
}
