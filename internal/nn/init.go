package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// GlorotUniform fills w with samples from U(-L, L) where L = sqrt(6/(in+out))
// and in/out are the matrix dimensions. This is the standard initializer for
// tanh/sigmoid stacks and the default for Linear layers here.
func GlorotUniform(w *tensor.Matrix, rng *rand.Rand) {
	limit := math.Sqrt(6 / float64(w.Rows+w.Cols))
	tensor.FillUniform(w, rng, -limit, limit)
}

// HeNormal fills w with N(0, 2/in) samples, the standard initializer for
// ReLU stacks.
func HeNormal(w *tensor.Matrix, rng *rand.Rand) {
	std := math.Sqrt(2 / float64(w.Rows))
	tensor.FillGaussian(w, rng, 0, std)
}

// Reinitialize re-draws every weight matrix of net using init and zeroes the
// biases, leaving the architecture intact. LTFB uses this to give each
// trainer a distinct starting point in the initial-state space.
func Reinitialize(net *Network, rng *rand.Rand, init func(*tensor.Matrix, *rand.Rand)) {
	for _, l := range net.Layers {
		lin, ok := l.(*Linear)
		if !ok {
			continue
		}
		init(lin.Weight.W, rng)
		lin.Bias.W.Zero()
	}
}
