package serve

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"
)

// quantKey snaps each input coordinate to a grid of step q and packs
// the bit patterns of the snapped values into a compact string key.
// Two inputs within the same grid cell share a cache entry, so q is
// the knob between exact-match caching (tiny q) and tolerant caching
// for near-duplicate queries. Keying on the rounded value's float bits
// rather than an integer cell index keeps coordinates far outside the
// unit cube distinct (an int64 cell index would overflow and collapse
// them all onto one sentinel key).
func quantKey(x []float32, q float64) string {
	buf := make([]byte, 4*len(x))
	for i, v := range x {
		cell := float32(math.Round(float64(v)/q) * q)
		if cell == 0 {
			// math.Round of a small negative yields -0, whose float32
			// bit pattern differs from +0: without this, identical grid
			// cells straddling zero would never share a cache entry.
			cell = 0
		}
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(cell))
	}
	return string(buf)
}

// lru is a mutex-guarded fixed-capacity LRU map from quantized input
// keys to prediction rows. Values are treated as immutable: put stores
// the caller's slice and get returns it without copying, so neither
// side may mutate a row after it enters the cache.
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

// entry is one cached prediction.
type entry struct {
	key string
	y   []float32
}

// newLRU creates a cache holding at most capacity entries.
func newLRU(capacity int) *lru {
	return &lru{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached prediction for key, refreshing its recency.
func (c *lru) get(key string) ([]float32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).y, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lru) put(key string, y []float32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).y = y
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry{key: key, y: y})
	if c.order.Len() > c.cap {
		old := c.order.Back()
		c.order.Remove(old)
		delete(c.items, old.Value.(*entry).key)
	}
}

// len returns the current entry count.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
