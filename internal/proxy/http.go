package proxy

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
)

// Request/response plumbing shared by the proxy routes: building the
// forwarded request, buffering bodies, error rendering, client keying,
// and the request-ID helpers (the proxy mints IDs exactly the way the
// backend middleware does, so a trace reads the same on both hops).

// newBackendRequest clones the inbound request toward one backend: same
// method, path, and query; whitelisted headers; the pre-buffered body.
func newBackendRequest(ctx context.Context, b *Backend, r *http.Request, body []byte) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, b.base+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	for _, h := range forwardHeaders {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	return req, nil
}

// readBody buffers the inbound call body, rejecting oversized ones with
// 413. The buffered copy is what makes the request replayable across
// retries and hedges.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return nil, false
	}
	if int64(len(body)) > limit {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return nil, false
	}
	return body, true
}

// readAllBody drains and closes one backend reply.
func readAllBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// writeError renders the same JSON {"error": ...} envelope the backends
// use, so clients see one error shape fleet-wide.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

// errKind classifies a transport error for the errors_total metric.
func errKind(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "timeout"
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return "timeout"
	}
	return "conn"
}

// clientKey identifies the caller for rate limiting: the remote IP,
// ignoring the ephemeral port so one client is one bucket.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// newID mints a 16-hex-digit correlation ID, the same format the
// backend middleware uses.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeID accepts a caller-supplied correlation ID only when it is
// short printable ASCII, mirroring the backend's rule.
func sanitizeID(id string) string {
	if len(id) == 0 || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return ""
		}
	}
	return id
}

// statusWriter records the status code passing through, for the access
// log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// BaseURL returns the backend's normalized base URL.
func (b *Backend) BaseURL() string { return b.base }
