package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// MetricName makes metric registration failures a build-time report
// instead of a runtime panic. For every Registry.Counter / Gauge /
// Histogram / SetHistogram call (matched by method name on a type named
// Registry, so both internal/metrics and test stubs qualify):
//
//   - the name argument must be a compile-time string constant — the
//     registry's exposition contract hinges on a stable name set;
//   - the constant must match ^jag_[a-z0-9_]+$, the project's
//     Prometheus naming convention (docs/OBSERVABILITY.md);
//   - one name registered under two kinds (Counter then Gauge, say)
//     panics inside metrics.Registry.series today; the analyzer reports
//     the conflicting call and points at the first registration;
//   - every metrics.Labels composite literal must use constant label
//     keys matching the Prometheus label charset ^[a-z_][a-z0-9_]*$ —
//     a computed key would fork series cardinality invisibly.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric names are jag_-prefixed string constants; kinds must not collide; label keys are literals",
	Run:  runMetricName,
}

var (
	metricNameRe = regexp.MustCompile(`^jag_[a-z0-9_]+$`)
	labelKeyRe   = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// metricKinds maps registration method name to the family kind it
// creates, mirroring metrics.Registry.
var metricKinds = map[string]string{
	"Counter":      "counter",
	"Gauge":        "gauge",
	"Histogram":    "histogram",
	"SetHistogram": "histogram",
}

func runMetricName(pass *Pass) error {
	type reg struct {
		kind string
		line int
	}
	firstSeen := map[string]reg{}
	info := pass.TypesInfo

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				checkLabelsLit(pass, lit)
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := metricRegistration(info, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			nameArg := call.Args[0]
			tv := info.Types[nameArg]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(nameArg.Pos(), "metric name must be a compile-time string constant, not a computed value")
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRe.MatchString(name) {
				pass.Reportf(nameArg.Pos(), "metric name %q does not match ^jag_[a-z0-9_]+$ (project Prometheus naming convention)", name)
				return true
			}
			if prev, ok := firstSeen[name]; ok && prev.kind != kind {
				pass.Reportf(call.Pos(), "metric %q registered as a %s here but as a %s at line %d; metrics.Registry panics on kind conflicts at runtime",
					name, kind, prev.kind, prev.line)
			} else if !ok {
				firstSeen[name] = reg{kind: kind, line: pass.Fset.Position(call.Pos()).Line}
			}
			return true
		})
	}
	return nil
}

// metricRegistration reports whether call registers a metric family and
// which kind: a method from metricKinds on a receiver type named
// Registry whose first parameter is a string.
func metricRegistration(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	kind, ok := metricKinds[sel.Sel.Name]
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || namedTypeName(sig.Recv().Type()) != "Registry" {
		return "", false
	}
	if sig.Params().Len() == 0 {
		return "", false
	}
	if basic, ok := sig.Params().At(0).Type().Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
		return "", false
	}
	return kind, true
}

// checkLabelsLit validates one metrics.Labels{...} composite literal:
// constant keys in the Prometheus label charset.
func checkLabelsLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || namedTypeName(tv.Type) != "Labels" {
		return
	}
	if _, ok := tv.Type.Underlying().(*types.Map); !ok {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		ktv := pass.TypesInfo.Types[kv.Key]
		if ktv.Value == nil || ktv.Value.Kind() != constant.String {
			pass.Reportf(kv.Key.Pos(), "label key must be a literal string, not a computed value — computed keys fork series cardinality invisibly")
			continue
		}
		if key := constant.StringVal(ktv.Value); !labelKeyRe.MatchString(key) {
			pass.Reportf(kv.Key.Pos(), "label key %q does not match ^[a-z_][a-z0-9_]*$", key)
		}
	}
}
