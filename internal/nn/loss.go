package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// The CycleGAN surrogate (Section II-D) uses three loss families: mean
// absolute error for the internal- and self-consistency terms, and binary
// cross-entropy for the adversarial term. Each function returns the scalar
// loss averaged over every element of the batch together with the gradient
// with respect to pred, already scaled by 1/(rows·cols) so it can be fed
// straight into Network.Backward.

// MAE returns mean |pred-target| and its (sub)gradient sign(pred-target)/N.
func MAE(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	mustMatch(pred, target, "MAE")
	n := float64(len(pred.Data))
	grad := tensor.New(pred.Rows, pred.Cols)
	var loss float64
	inv := float32(1 / n)
	for i, p := range pred.Data {
		d := p - target.Data[i]
		if d >= 0 {
			loss += float64(d)
			grad.Data[i] = inv
		} else {
			loss -= float64(d)
			grad.Data[i] = -inv
		}
	}
	return loss / n, grad
}

// MSE returns mean (pred-target)² and gradient 2(pred-target)/N.
func MSE(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	mustMatch(pred, target, "MSE")
	n := float64(len(pred.Data))
	grad := tensor.New(pred.Rows, pred.Cols)
	var loss float64
	inv := float32(2 / n)
	for i, p := range pred.Data {
		d := p - target.Data[i]
		loss += float64(d) * float64(d)
		grad.Data[i] = inv * d
	}
	return loss / n, grad
}

// BCEWithLogits returns the numerically-stable binary cross-entropy between
// logits and targets in [0,1], with gradient (σ(logit)-target)/N. This is the
// adversarial loss used to train the discriminator and, with flipped targets,
// the generator.
func BCEWithLogits(logits, target *tensor.Matrix) (float64, *tensor.Matrix) {
	mustMatch(logits, target, "BCEWithLogits")
	n := float64(len(logits.Data))
	grad := tensor.New(logits.Rows, logits.Cols)
	inv := float32(1 / n)
	var loss float64
	for i, z := range logits.Data {
		t := target.Data[i]
		zf := float64(z)
		// max(z,0) - z*t + log(1+exp(-|z|))
		m := zf
		if m < 0 {
			m = 0
		}
		loss += m - zf*float64(t) + math.Log1p(math.Exp(-math.Abs(zf)))
		sig := float32(1 / (1 + math.Exp(-zf)))
		grad.Data[i] = inv * (sig - t)
	}
	return loss / n, grad
}

// MAEValue returns mean |pred-target| without allocating a gradient, for
// evaluation loops.
func MAEValue(pred, target *tensor.Matrix) float64 {
	mustMatch(pred, target, "MAEValue")
	var loss float64
	for i, p := range pred.Data {
		d := float64(p - target.Data[i])
		loss += math.Abs(d)
	}
	return loss / float64(len(pred.Data))
}

func mustMatch(a, b *tensor.Matrix, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
