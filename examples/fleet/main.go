// Fleet quickstart: the serving tier scaled the way the paper scales
// training — by replication. Three in-process jagserve-shaped backends
// come up on loopback ports, each probing its own capacity
// (serve.CostProbe → capacity_qps); jagproxy fronts them with active
// health probing, weighted least-loaded routing, and bounded retries.
// Traffic flows through the one front door, then one backend is killed
// mid-stream: the proxy drops it, retries hide the corpse from every
// client, and when the backend returns on the same port it is
// reinstated after consecutive probe successes. Zero failed calls
// throughout is the contract — the same one the tier-1 fleet_test.go
// enforces.
//
// Run with:
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/perfmodel"
	"repro/internal/proxy"
	"repro/internal/serve"
)

// backend is one replica: a registry + HTTP server on a real port.
type backend struct {
	addr string
	hs   *http.Server
	reg  *serve.Registry
}

// startBackend serves one tiny surrogate on addr ("" picks a port),
// probing its serving cost so the proxy can weight routing by real
// capacity.
func startBackend(addr string, seed int64) (*backend, error) {
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{32}
	cfg.ForwardHidden = []int{16}
	cfg.InverseHidden = []int{12}
	cfg.DiscHidden = []int{12}
	pool, err := serve.NewPool([]*cyclegan.Surrogate{cyclegan.New(cfg, seed)}, false)
	if err != nil {
		return nil, err
	}
	const maxBatch = 16
	srv := serve.NewServer(pool, serve.Config{MaxBatch: maxBatch, QueueDepth: 256})
	if res, err := serve.CostProbe(pool, serve.MethodPredict, maxBatch); err == nil {
		srv.SetCapacityQPS(res.QPS(maxBatch, pool.Replicas()))
	}
	reg := serve.NewRegistry()
	if err := reg.Register("jag", srv); err != nil {
		return nil, err
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: serve.NewRegistryHandler(reg, serve.HandlerConfig{})}
	go func() { _ = hs.Serve(ln) }()
	return &backend{addr: ln.Addr().String(), hs: hs, reg: reg}, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleet: ")

	// 1. Three identical replicas — what `jagserve -addr :0 -probe`
	// gives you as separate processes, condensed into one.
	var backends []*backend
	var urls []string
	for i := 0; i < 3; i++ {
		b, err := startBackend("", int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		backends = append(backends, b)
		urls = append(urls, "http://"+b.addr)
		log.Printf("backend %d up on %s", i, b.addr)
	}

	// 2. The front door: fast probing so the demo converges in
	// milliseconds where production defaults take seconds.
	p, err := proxy.New(urls, proxy.Config{
		HealthInterval: 50 * time.Millisecond,
		FailAfter:      1,
		RecoverAfter:   2,
		BreakerFails:   1,
		MaxRetries:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Start(ctx)
	front := httptest.NewServer(p)
	defer front.Close()
	for _, b := range p.Backends() {
		log.Printf("proxy sees %s: healthy=%t capacity=%.0f rows/s", b.Name(), b.Healthy(), b.CapacityQPS())
	}

	// 3. Clients talk to one URL and never learn the topology. The
	// X-Jag-Backend header names the replica that actually answered —
	// concurrent calls spread, because weighted least-loaded routing
	// scores each backend by (inflight+1)/capacity.
	const burst = 24
	answered := make(chan string, burst)
	for i := 0; i < burst; i++ {
		go func(i int) {
			resp, err := http.Post(front.URL+"/v1/models/jag/predict", "application/json",
				strings.NewReader(fmt.Sprintf(`{"input":[%g,0.5,0.5,0.5,0.5]}`, float64(i)/burst)))
			if err != nil {
				log.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("call %d: HTTP %d", i, resp.StatusCode)
			}
			answered <- resp.Header.Get("X-Jag-Backend")
		}(i)
	}
	seen := map[string]int{}
	for i := 0; i < burst; i++ {
		seen[<-answered]++
	}
	log.Printf("%d concurrent calls spread across %d backend(s): %v", burst, len(seen), seen)

	// 4. Kill a replica mid-traffic. Calls keep succeeding: attempts
	// that land on the corpse are retried onto the living.
	victim := p.Backends()[0]
	log.Printf("killing backend %s", victim.Name())
	if err := backends[0].hs.Close(); err != nil {
		log.Fatal(err)
	}
	cl := serve.NewClient(front.URL)
	failed := 0
	for i := 0; i < 40; i++ {
		x := []float32{float32(i) / 40, 0.5, 0.5, 0.5, 0.5}
		if _, rowErrs, err := cl.Call(ctx, "jag", serve.MethodPredict, [][]float32{x}); err != nil || rowErrs != nil {
			failed++
		}
	}
	waitFor := func(desc string, ok func() bool) {
		deadline := time.Now().Add(10 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				log.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitFor("proxy to drop the dead backend", func() bool { return !victim.Healthy() })
	h := p.FleetHealth()
	log.Printf("after kill: %d calls failed (want 0); fleet %s, %d/%d healthy",
		failed, h.Status, h.Healthy, len(p.Backends()))
	if failed != 0 || h.Status != "degraded" {
		log.Fatalf("failover contract broken: failed=%d status=%s", failed, h.Status)
	}

	// 5. Resurrect it on the same port; consecutive probe successes
	// reinstate it without an operator touching the proxy.
	b, err := startBackend(backends[0].addr, 100)
	if err != nil {
		log.Fatal(err)
	}
	backends[0] = b
	waitFor("reinstatement", func() bool { return victim.Healthy() })
	log.Printf("backend %s reinstated; fleet %s", victim.Name(), p.FleetHealth().Status)

	// 6. The proxy's own observability: health transitions, retries,
	// per-backend traffic — all jag_proxy_* on GET /metrics.
	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "jag_proxy_health_transitions_total") ||
			strings.HasPrefix(line, "jag_proxy_retries_total") {
			log.Print(line)
		}
	}

	// 7. Capacity planning for the fleet you just ran: the same
	// perfmodel the single-process capacity example uses, composed
	// over replicas (docs/FLEET.md walks through this).
	per := perfmodel.ServingScenario{
		Cost:     perfmodel.ServingCost{PassSec: 500e-6, RowSec: 40e-6},
		Replicas: 1, MaxBatch: 16, Window: 2 * time.Millisecond,
	}
	fleet := perfmodel.FleetScenario{Backend: per, Backends: 3, HopSec: 150e-6, Efficiency: 0.9}
	fleet.OfferedQPS = 0.6 * fleet.MaxQPS()
	r := fleet.Report()
	log.Printf("model: 3 such backends sustain %.0f rows/s; at %.0f offered, interactive p99 %.1fms",
		fleet.MaxQPS(), fleet.OfferedQPS, 1e3*r.P99)

	for _, b := range backends {
		_ = b.hs.Close()
		b.reg.Close()
	}
	log.Print("done")
}
