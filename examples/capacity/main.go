// Capacity-planning quickstart: the serving analogue of the perfmodel
// figures. The training side predicts epoch time from a calibrated cost
// model (Figures 9–11); this example does the same for the serving path
// in four steps:
//
//  1. probe — serve.CostProbe times a real replica pool's forward pass
//     on this host and fits the affine cost t(B) = PassSec + B·RowSec;
//  2. predict — perfmodel.ServingScenario turns those constants into
//     sustainable QPS and p50/p99 latency per replica count and batch
//     window (the Figure S1 sweep cmd/figures prints);
//  3. measure — the same pool goes behind a real serve.Server and 64
//     concurrent clients drive it to saturation;
//  4. compare — measured throughput lands within the model's tolerance
//     (the tier-1 capacity test in the repository root asserts this).
//
// Run with:
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/serve"
)

const (
	maxBatch = 64
	window   = 2 * time.Millisecond
)

// replicas is the pool width used for the measured comparison. The
// model's Replicas means *concurrent execution units*: on a CPU-only
// host a replica beyond GOMAXPROCS adds no parallelism (the forward
// pass is single-threaded per replica), so predicting with more
// replicas than cores would overstate capacity on purpose.
var replicas = min(4, runtime.GOMAXPROCS(0))

func main() {
	log.SetFlags(0)
	log.SetPrefix("capacity: ")

	// 1. Probe. Forward-pass cost depends on layer shapes only, so an
	// untrained model calibrates as well as a tournament winner.
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{48}
	cfg.ForwardHidden = []int{32, 32}
	cfg.InverseHidden = []int{16}
	cfg.DiscHidden = []int{16}
	models := make([]*cyclegan.Surrogate, replicas)
	for i := range models {
		models[i] = cyclegan.New(cfg, int64(i+1))
	}
	pool, err := serve.NewPool(models, false)
	if err != nil {
		log.Fatal(err)
	}
	probe, err := serve.CostProbe(pool, serve.MethodPredict, maxBatch)
	if err != nil {
		log.Fatal(err)
	}
	cost := perfmodel.ServingCost{PassSec: probe.PassSec, RowSec: probe.RowSec}
	fmt.Printf("probed %s on this host: %.1fµs/pass + %.2fµs/row (%d passes)\n",
		probe.Method, 1e6*probe.PassSec, 1e6*probe.RowSec, probe.Passes)

	// 2. Predict. One scenario per replica count at the pool's batch
	// settings; latency quoted at a 60%-utilization operating point.
	tab := metrics.NewTable("predicted serving capacity (batch cap 64, 2ms window)",
		"replicas", "max_qps", "p50_ms", "p99_ms")
	for _, rep := range []int{1, 2, 4} {
		s := perfmodel.ServingScenario{
			Cost: cost, Replicas: rep, MaxBatch: maxBatch, Window: window,
		}
		s.OfferedQPS = 0.6 * s.MaxQPS()
		r := s.Report()
		tab.AddRow(rep, r.MaxQPS, 1e3*r.P50, 1e3*r.P99)
	}
	fmt.Print(tab.Render())

	// 3. Measure. The same pool behind the real batching queue, driven
	// to saturation. Saturation needs enough closed-loop clients to keep
	// every replica's worker fed with a full batch (well over
	// MaxBatch·replicas, else the lockstep of request-wait-resubmit
	// leaves workers idle between flushes).
	srv := serve.NewServer(pool, serve.Config{
		MaxBatch: maxBatch, MaxDelay: window, QueueDepth: 1024,
	})
	defer srv.Close()
	clients, perClient := 2*maxBatch*replicas, 200
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			x := make([]float32, jag.InputDim)
			for i := 0; i < perClient; i++ {
				for d := range x {
					x[d] = float32((c*perClient+i*7+d*13)%997) / 997
				}
				if _, err := srv.Predict(x); err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	snap := srv.Stats()
	measured := float64(clients*perClient) / elapsed.Seconds()

	// 4. Compare against the saturation prediction for this pool.
	s := perfmodel.ServingScenario{Cost: cost, Replicas: replicas, MaxBatch: maxBatch, Window: window}
	predicted := s.MaxQPS()
	fmt.Printf("measured: %.0f req/s at mean batch %.1f, mean latency %.2fms (%d replica(s))\n",
		measured, snap.MeanBatch, snap.MeanLatMs, replicas)
	fmt.Printf("model:    %.0f req/s sustainable -> measured/model = %.2f\n",
		predicted, measured/predicted)
	fmt.Println("(the tier-1 capacity test asserts this ratio stays within its stated 3.3x tolerance; see EXPERIMENTS.md)")

	// The same constants also answer the planning question the ROADMAP
	// poses — how many replicas for a target load?
	target := 1e6 // rows/s, "millions of users"
	perReplica := s.MaxQPS() / float64(replicas)
	fmt.Printf("planning: %.0f QPS needs ~%.0f replicas of this model on this host "+
		"(before the LRU cache, which multiplies capacity by 1/(1-hit_rate))\n",
		target, target/perReplica)
}
