package ltfb

// Lineage tracking: the paper argues that "even though each trainer only
// exposes a model to a subset of the data, models that survive LTFB are
// likely to have been exposed to many trainers at different times, and thus
// are expected to capture the characteristics of the entire dataset"
// (Section III-C). A Lineage records exactly that exposure: the set of
// trainers (data silos) whose partitions a model has been trained on. It
// travels with the generator payload during tournaments as a fixed-size
// bitset, and merging on adoption makes exposure monotone.

// Lineage is a bitset over trainer IDs.
type Lineage []byte

// NewLineage returns a lineage over numTrainers silos containing only self.
func NewLineage(numTrainers, self int) Lineage {
	l := make(Lineage, (numTrainers+7)/8)
	l.Add(self)
	return l
}

// Add marks trainer id as visited.
func (l Lineage) Add(id int) {
	if id < 0 || id >= len(l)*8 {
		return
	}
	l[id/8] |= 1 << (id % 8)
}

// Has reports whether trainer id has been visited.
func (l Lineage) Has(id int) bool {
	if id < 0 || id >= len(l)*8 {
		return false
	}
	return l[id/8]&(1<<(id%8)) != 0
}

// Merge ors other into l; both must have the same size.
func (l Lineage) Merge(other Lineage) {
	for i := range l {
		if i < len(other) {
			l[i] |= other[i]
		}
	}
}

// Count returns the number of visited silos.
func (l Lineage) Count() int {
	n := 0
	for _, b := range l {
		for ; b != 0; b &= b - 1 {
			n++
		}
	}
	return n
}

// Silos lists the visited trainer IDs in increasing order.
func (l Lineage) Silos() []int {
	var out []int
	for id := 0; id < len(l)*8; id++ {
		if l.Has(id) {
			out = append(out, id)
		}
	}
	return out
}

// Clone returns an independent copy.
func (l Lineage) Clone() Lineage { return append(Lineage(nil), l...) }
