package repro

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// TestHotReloadUnderHTTPTraffic is the full deployment-side scenario
// the warm-reload path exists for: an HTTP server comes up on one
// checkpoint, an LTFB producer overwrites the watched checkpoint with
// a new tournament winner mid-traffic, and the serving process swaps
// it in live. Concurrent clients (both transports) must observe zero
// errors across the swap, and once the swap lands a fresh request must
// answer with the new model's output bitwise.
func TestHotReloadUnderHTTPTraffic(t *testing.T) {
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{16}
	cfg.ForwardHidden = []int{8}
	cfg.InverseHidden = []int{8}
	cfg.DiscHidden = []int{8}
	oldModel := cyclegan.New(cfg, 101)
	newModel := cyclegan.New(cfg, 202)

	// Checkpoint #1 with its spec sidecar, exactly as ltfbtrain leaves
	// them (relative checkpoint entries, resolved against the dir).
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "model.ckpt")
	if err := checkpoint.Save(ckpt, 1, oldModel.Nets()); err != nil {
		t.Fatal(err)
	}
	spec := serve.ModelSpec{Model: cfg, Step: 1, Checkpoints: []string{"model.ckpt"}}
	if err := serve.SaveSpec(serve.SpecPath(ckpt), spec); err != nil {
		t.Fatal(err)
	}

	// Serve it the way cmd/jagserve -models jag=... -watch does.
	srvCfg := serve.Config{MaxBatch: 8, MaxDelay: 500 * time.Microsecond, QueueDepth: 128}
	loaded, err := serve.ResolveSpec(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := serve.NewPoolFromCheckpoints(loaded.Model, loaded.Checkpoints, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if err := reg.Register("jag", serve.NewServer(pool, srvCfg)); err != nil {
		t.Fatal(err)
	}
	rl, err := serve.NewReloader(reg, "jag", ckpt, serve.ReloaderConfig{
		Interval: 2 * time.Millisecond,
		Server:   srvCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	watchCtx, stopWatch := context.WithCancel(context.Background())
	go rl.Run(watchCtx)
	ts := httptest.NewServer(serve.NewRegistryHandler(reg, serve.HandlerConfig{}))
	t.Cleanup(func() {
		ts.Close()
		stopWatch()
		reg.Close()
	})

	// Concurrent client traffic across the swap: every call must
	// succeed — a request caught mid-swap drains against the old model,
	// later ones answer from the new one, and nothing 503s.
	input := func(i int) []float32 {
		x := make([]float32, jag.InputDim)
		for d := range x {
			x[d] = float32((i*7+d*13)%101) / 101
		}
		return x
	}
	var (
		stop   atomic.Bool
		served atomic.Int64
		wg     sync.WaitGroup
	)
	ctx := context.Background()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := serve.NewClient(ts.URL)
			c.Binary = g%2 == 0
			for k := 0; !stop.Load(); k++ {
				outs, rowErrs, err := c.Call(ctx, "jag", serve.MethodPredict, [][]float32{input(g*16 + k%16)})
				if err != nil {
					t.Errorf("client %d: transport error during swap: %v", g, err)
					return
				}
				for i, re := range rowErrs {
					if re != nil {
						t.Errorf("client %d: row %d failed during swap: %+v", g, i, re)
						return
					}
				}
				if len(outs) != 1 || len(outs[0]) != jag.Tiny8.OutputDim() {
					t.Errorf("client %d: malformed reply shape (%d rows)", g, len(outs))
					return
				}
				served.Add(1)
			}
		}(g)
	}

	// Let traffic establish against generation 1, then the "training
	// side" drops a new tournament winner onto the watched path.
	time.Sleep(30 * time.Millisecond)
	if err := checkpoint.Save(ckpt, 2, newModel.Nets()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for reg.Generation("jag") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("reloader never swapped the new checkpoint in")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Keep hammering the freshly swapped generation before stopping.
	time.Sleep(30 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if served.Load() < 8 {
		t.Fatalf("only %d requests served across the swap", served.Load())
	}
	if st := rl.State(); st.Reloads < 1 || st.LastError != "" {
		t.Fatalf("reloader state after swap: %+v", st)
	}

	// With traffic quiesced, a single request forms a batch of one —
	// the same shape as a direct forward pass — so the served row must
	// equal the new model's prediction bitwise.
	x := input(3)
	outs, rowErrs, err := serve.NewClient(ts.URL).Call(ctx, "jag", serve.MethodPredict, [][]float32{x})
	if err != nil || rowErrs != nil {
		t.Fatalf("post-swap call: %v %v", err, rowErrs)
	}
	xm := tensor.New(1, jag.InputDim)
	copy(xm.Row(0), x)
	want := newModel.Predict(xm)
	for j, v := range outs[0] {
		if v != want.At(0, j) {
			t.Fatalf("post-swap output[%d] = %v, want new model's %v bitwise", j, v, want.At(0, j))
		}
	}
}
