package serve

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps model names to independently configured Servers — one
// process serving several surrogates (per-geometry, per-campaign, or
// top-k ensembles side by side), each with its own pool, batching
// queues, cache, and stats. The first registered model is the default
// unless SetDefault overrides it; the default is what the deprecated
// unversioned endpoints (/predict, /stats) answer for.
//
// Registration is expected at startup; Get is safe for concurrent use
// with late Register calls (e.g. a future warm-reload path).
type Registry struct {
	mu      sync.RWMutex
	servers map[string]*Server
	def     string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{servers: make(map[string]*Server)}
}

// validModelName reports whether name is usable as the {name} path
// segment of the v1 API: non-empty, URL-safe without escaping, and
// unambiguous in logs (letters, digits, '.', '_', '-'; must start with
// a letter or digit).
func validModelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case i > 0 && (c == '.' || c == '_' || c == '-'):
		default:
			return false
		}
	}
	return true
}

// Register adds a named server. The name must be URL-safe
// ([A-Za-z0-9][A-Za-z0-9._-]*) and not already taken. The first
// registered server becomes the default.
func (r *Registry) Register(name string, s *Server) error {
	if !validModelName(name) {
		return fmt.Errorf("serve: invalid model name %q", name)
	}
	if s == nil {
		return fmt.Errorf("serve: nil server for model %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.servers[name]; ok {
		return fmt.Errorf("serve: model %q already registered", name)
	}
	r.servers[name] = s
	if r.def == "" {
		r.def = name
	}
	return nil
}

// SetDefault names the model the deprecated unversioned endpoints
// answer for. The name must already be registered.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.servers[name]; !ok {
		return fmt.Errorf("serve: cannot default to unregistered model %q", name)
	}
	r.def = name
	return nil
}

// Get returns the named server.
func (r *Registry) Get(name string) (*Server, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.servers[name]
	return s, ok
}

// Default returns the default model's name and server; ok is false for
// an empty registry.
func (r *Registry) Default() (string, *Server, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.servers[r.def]
	return r.def, s, ok
}

// Names returns the registered model names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.servers))
	for n := range r.servers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.servers)
}

// Close shuts down every registered server, draining their pipelines.
func (r *Registry) Close() {
	r.mu.RLock()
	servers := make([]*Server, 0, len(r.servers))
	for _, s := range r.servers {
		servers = append(servers, s)
	}
	r.mu.RUnlock()
	for _, s := range servers {
		s.Close()
	}
}
