// ICF surrogate example: trains the CycleGAN surrogate at a higher
// resolution, regenerates the paper's prediction-quality figures (7 and 8)
// as tables, and writes ground-truth/predicted X-ray image pairs as PGM
// files for visual comparison — the workflow a domain scientist would run.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	g := jag.Config{ImageSize: 12, Views: 3, Channels: 2}
	cfg := cyclegan.DefaultConfig(g)
	cfg.EncoderHidden = []int{96, 48}
	cfg.ForwardHidden = []int{32, 32}
	cfg.InverseHidden = []int{24}
	cfg.DiscHidden = []int{24}

	fmt.Println("training ICF surrogate (512 simulations, 800 steps) ...")
	model, err := core.TrainSurrogate(cfg, 512, 800, 32, 11)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(core.Figure7(model, 16).Render())
	fmt.Println()
	fmt.Print(core.Figure8(model, 16).Render())

	// Figure 8's visual form: dump truth/prediction image pairs.
	outDir := "icf_images"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	truth := jag.SimulateAt(g, 8000)
	x := tensor.FromSlice(1, jag.InputDim, truth.X)
	pred := model.Predict(x)
	px := g.ImageSize * g.ImageSize
	for view := 0; view < g.Views; view++ {
		ch := view % g.Channels // selected channels, as in the paper's Figure 8
		base := (view*g.Channels + ch) * px
		writePGM(filepath.Join(outDir, fmt.Sprintf("truth_v%d_c%d.pgm", view, ch)),
			g.ImageSize, truth.Images[base:base+px])
		predicted := pred.Row(0)[jag.ScalarDim+base : jag.ScalarDim+base+px]
		writePGM(filepath.Join(outDir, fmt.Sprintf("pred_v%d_c%d.pgm", view, ch)),
			g.ImageSize, predicted)
	}
	fmt.Printf("\nwrote truth/prediction image pairs to %s/\n", outDir)
}

// writePGM renders a [0,1] grayscale image as a binary PGM file.
func writePGM(path string, size int, pixels []float32) {
	buf := []byte(fmt.Sprintf("P5\n%d %d\n255\n", size, size))
	for _, p := range pixels {
		v := int(p * 255)
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		buf = append(buf, byte(v))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		log.Fatal(err)
	}
}
