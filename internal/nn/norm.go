package nn

import (
	"math"

	"repro/internal/tensor"
)

// BatchNorm normalizes each feature over the mini-batch, then applies a
// learned affine transform — the standard stabilizer in GAN stacks (LBANN
// ships it as a core layer). At training time it uses batch statistics and
// maintains running estimates; at evaluation it uses the running estimates,
// so single-sample inference works.
type BatchNorm struct {
	Dim      int
	Eps      float32
	Momentum float32 // running-stat update rate, e.g. 0.1

	Gamma *Param // 1×Dim scale
	Beta  *Param // 1×Dim shift

	// Running statistics. They are not trainable parameters: evaluation on
	// a freshly constructed layer needs a training pass (or copied stats)
	// before the estimates are meaningful.
	runMean []float32
	runVar  []float32

	xhat *tensor.Matrix
	std  []float32
	// frozen marks that the last Forward used running statistics, so
	// Backward must treat them as constants.
	frozen bool
	batch  int
}

// NewBatchNorm creates a batch-norm layer over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{
		Dim:      dim,
		Eps:      1e-5,
		Momentum: 0.1,
		Gamma:    newParam("bn.gamma", 1, dim),
		Beta:     newParam("bn.beta", 1, dim),
		runMean:  make([]float32, dim),
		runVar:   make([]float32, dim),
	}
	bn.Gamma.W.Fill(1)
	for i := range bn.runVar {
		bn.runVar[i] = 1
	}
	return bn
}

// Forward normalizes x feature-wise.
func (bn *BatchNorm) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	n := x.Rows
	y := tensor.New(n, bn.Dim)
	if !training || n < 2 {
		bn.frozen = true
		bn.xhat = tensor.New(n, bn.Dim)
		bn.std = make([]float32, bn.Dim)
		for j := range bn.std {
			bn.std[j] = float32(math.Sqrt(float64(bn.runVar[j] + bn.Eps)))
		}
		for i := 0; i < n; i++ {
			row, xh, out := x.Row(i), bn.xhat.Row(i), y.Row(i)
			for j := range row {
				xh[j] = (row[j] - bn.runMean[j]) / bn.std[j]
				out[j] = bn.Gamma.W.Data[j]*xh[j] + bn.Beta.W.Data[j]
			}
		}
		return y
	}
	bn.frozen = false
	mean := make([]float32, bn.Dim)
	variance := make([]float32, bn.Dim)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	inv := 1 / float32(n)
	for j := range mean {
		mean[j] *= inv
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] *= inv
	}
	bn.std = make([]float32, bn.Dim)
	for j := range bn.std {
		bn.std[j] = float32(math.Sqrt(float64(variance[j] + bn.Eps)))
		bn.runMean[j] = (1-bn.Momentum)*bn.runMean[j] + bn.Momentum*mean[j]
		bn.runVar[j] = (1-bn.Momentum)*bn.runVar[j] + bn.Momentum*variance[j]
	}
	bn.xhat = tensor.New(n, bn.Dim)
	bn.batch = n
	for i := 0; i < n; i++ {
		row, xh, out := x.Row(i), bn.xhat.Row(i), y.Row(i)
		for j := range row {
			xh[j] = (row[j] - mean[j]) / bn.std[j]
			out[j] = bn.Gamma.W.Data[j]*xh[j] + bn.Beta.W.Data[j]
		}
	}
	return y
}

// Backward propagates through the batch-statistics normalization (the full
// coupled gradient, not the frozen-stats approximation).
func (bn *BatchNorm) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if bn.frozen {
		// Running statistics are constants: only the affine transform and
		// the fixed scaling contribute.
		dx := tensor.New(dy.Rows, bn.Dim)
		for i := 0; i < dy.Rows; i++ {
			row, xh, out := dy.Row(i), bn.xhat.Row(i), dx.Row(i)
			for j := range row {
				bn.Gamma.Grad.Data[j] += row[j] * xh[j]
				bn.Beta.Grad.Data[j] += row[j]
				out[j] = row[j] * bn.Gamma.W.Data[j] / bn.std[j]
			}
		}
		return dx
	}
	n := bn.batch
	invN := 1 / float32(n)
	dx := tensor.New(n, bn.Dim)
	sumDy := make([]float32, bn.Dim)
	sumDyXhat := make([]float32, bn.Dim)
	for i := 0; i < n; i++ {
		row, xh := dy.Row(i), bn.xhat.Row(i)
		for j := range row {
			sumDy[j] += row[j]
			sumDyXhat[j] += row[j] * xh[j]
		}
	}
	for j := range sumDy {
		bn.Beta.Grad.Data[j] += sumDy[j]
		bn.Gamma.Grad.Data[j] += sumDyXhat[j]
	}
	for i := 0; i < n; i++ {
		row, xh, out := dy.Row(i), bn.xhat.Row(i), dx.Row(i)
		for j := range row {
			out[j] = bn.Gamma.W.Data[j] / bn.std[j] * (row[j] - invN*sumDy[j] - invN*xh[j]*sumDyXhat[j])
		}
	}
	return dx
}

// Params returns the scale and shift parameters.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// OutDim is the identity for normalization layers.
func (bn *BatchNorm) OutDim(in int) int { return in }

// LayerNorm normalizes each sample over its features with a learned affine
// transform; unlike BatchNorm it has no batch coupling, so it behaves
// identically at train and evaluation time.
type LayerNorm struct {
	Dim   int
	Eps   float32
	Gamma *Param
	Beta  *Param

	xhat *tensor.Matrix
	std  []float32
}

// NewLayerNorm creates a layer-norm over dim features.
func NewLayerNorm(dim int) *LayerNorm {
	ln := &LayerNorm{
		Dim:   dim,
		Eps:   1e-5,
		Gamma: newParam("ln.gamma", 1, dim),
		Beta:  newParam("ln.beta", 1, dim),
	}
	ln.Gamma.W.Fill(1)
	return ln
}

// Forward normalizes each row of x.
func (ln *LayerNorm) Forward(x *tensor.Matrix, training bool) *tensor.Matrix {
	n := x.Rows
	y := tensor.New(n, ln.Dim)
	ln.xhat = tensor.New(n, ln.Dim)
	ln.std = make([]float32, n)
	invD := 1 / float32(ln.Dim)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean *= invD
		var variance float32
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance *= invD
		std := float32(math.Sqrt(float64(variance + ln.Eps)))
		ln.std[i] = std
		xh, out := ln.xhat.Row(i), y.Row(i)
		for j, v := range row {
			xh[j] = (v - mean) / std
			out[j] = ln.Gamma.W.Data[j]*xh[j] + ln.Beta.W.Data[j]
		}
	}
	return y
}

// Backward propagates through the per-sample normalization.
func (ln *LayerNorm) Backward(dy *tensor.Matrix) *tensor.Matrix {
	n := dy.Rows
	dx := tensor.New(n, ln.Dim)
	invD := 1 / float32(ln.Dim)
	for i := 0; i < n; i++ {
		row, xh, out := dy.Row(i), ln.xhat.Row(i), dx.Row(i)
		var sumDy, sumDyXhat float32
		for j := range row {
			g := row[j] * ln.Gamma.W.Data[j]
			sumDy += g
			sumDyXhat += g * xh[j]
			ln.Gamma.Grad.Data[j] += row[j] * xh[j]
			ln.Beta.Grad.Data[j] += row[j]
		}
		for j := range row {
			g := row[j] * ln.Gamma.W.Data[j]
			out[j] = (g - invD*sumDy - invD*xh[j]*sumDyXhat) / ln.std[i]
		}
	}
	return dx
}

// Params returns the scale and shift parameters.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// OutDim is the identity for normalization layers.
func (ln *LayerNorm) OutDim(in int) int { return in }

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm, returning the pre-clip norm. Trainers use it to keep GAN
// phases from destabilizing each other.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		v := tensor.Norm2(p.Grad)
		sq += v * v
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			tensor.Scale(p.Grad, scale)
		}
	}
	return norm
}
