// Command jagserve serves surrogate predictions over HTTP from a
// checkpoint produced by cmd/ltfbtrain — the deployment step of the
// paper's workflow, where the trained generative model stands in for
// the JAG simulator. Concurrent requests are coalesced by the
// internal/serve micro-batching queue and answered by a pool of model
// replicas, optionally ensemble-averaged across the top-k tournament
// checkpoints.
//
// Every request carries a lifecycle: a priority class ("interactive",
// the default, preempts "bulk" in the batching queue — set it via the
// "priority" JSON field or the X-Priority header) and an optional
// deadline ("deadline_ms" field, or the -deadline flag's default).
// Rows whose deadline passes while still queued are dropped before the
// forward pass and reported as per-row 504 errors; a batch with some
// good and some bad rows returns 200 with an aligned "errors" array
// instead of failing wholesale.
//
// Endpoints:
//
//	POST /predict  {"input":[5 floats]} or {"inputs":[[...],...]}
//	               (+ "scalars_only":true to drop image pixels,
//	                "priority":"bulk", "deadline_ms":250)
//	GET  /healthz  liveness + pool shape (503 "closed" after shutdown)
//	GET  /stats    latency / batch-occupancy / cache / expiry counters
//
// Usage:
//
//	ltfbtrain -trainers 4 -checkpoint model.ckpt -top 2
//	jagserve -checkpoint model.ckpt -replicas 4            # throughput: 4 copies
//	jagserve -checkpoint model.ckpt,model.2.ckpt -ensemble # quality: top-2 average
//	jagserve -checkpoint model.ckpt -deadline 250ms        # bound queue time
//	curl -d '{"input":[0.5,0.5,0.5,0.5,0.5],"scalars_only":true}' localhost:8080/predict
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jagserve: ")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	ckpt := flag.String("checkpoint", "", "checkpoint path(s), comma-separated; overrides the spec's list")
	specPath := flag.String("spec", "", "model spec path (default <first checkpoint>.spec.json)")
	replicas := flag.Int("replicas", 1, "model replicas (raised to the checkpoint count if lower; ignored with -ensemble, which uses one per checkpoint)")
	ensemble := flag.Bool("ensemble", false, "average predictions across the checkpoints instead of round-robin")
	maxBatch := flag.Int("max-batch", 64, "max requests coalesced into one forward pass")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "max wait before flushing a partial batch")
	queueDepth := flag.Int("queue-depth", 0, "max in-flight requests before 503 (0 = 4*max-batch)")
	cacheSize := flag.Int("cache-size", 1024, "LRU response-cache entries (0 disables)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline; rows still queued past it are dropped without a forward pass (0 disables; requests override via deadline_ms)")
	flag.Parse()

	var paths []string
	for _, p := range strings.Split(*ckpt, ",") {
		if p = strings.TrimSpace(p); p != "" {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 && *specPath == "" {
		log.Fatal("need -checkpoint or -spec")
	}
	sp := *specPath
	if sp == "" {
		sp = serve.SpecPath(paths[0])
	}
	spec, err := serve.LoadSpec(sp)
	if err != nil {
		log.Fatal(err)
	}
	if len(paths) == 0 {
		paths = spec.Checkpoints
	}
	if len(paths) == 0 {
		log.Fatalf("spec %s lists no checkpoints and none given via -checkpoint", sp)
	}

	pool, err := serve.NewPoolFromCheckpoints(spec.Model, paths, *replicas, *ensemble)
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.NewServer(pool, serve.Config{
		MaxBatch:   *maxBatch,
		MaxDelay:   *maxDelay,
		QueueDepth: *queueDepth,
		CacheSize:  *cacheSize,
	})

	handler := serve.NewHandlerConfig(srv, serve.HandlerConfig{DefaultDeadline: *deadline})
	hs := &http.Server{Addr: *addr, Handler: handler}
	drained := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down: draining in-flight requests")
		// Shutdown first: it stops accepting connections immediately
		// and drains the in-flight HTTP handlers, whose rows still need
		// the batching queue. Only then close the queue and workers —
		// closing it first would 503 rows the drain window could have
		// served (e.g. the later waves of a large throttled batch).
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		srv.Close()
		close(drained)
	}()

	log.Printf("serving %d replica(s) of %d checkpoint(s) (ensemble=%v, output dim %d) on %s",
		pool.Replicas(), len(paths), *ensemble, srv.OutputDim(), *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns the moment Shutdown is called; wait for the
	// drain to finish before letting the process exit.
	<-drained
}
