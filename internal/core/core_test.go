package core

import (
	"strings"
	"testing"

	"repro/internal/cyclegan"
	"repro/internal/jag"
)

func fastConfig(trainers int) QualityConfig {
	c := DefaultQualityConfig(trainers)
	c.TrainSamples = 128
	c.ValSamples = 48
	c.TournSamples = 16
	c.BatchSize = 8
	c.Rounds = 3
	c.RoundSteps = 4
	return c
}

func TestConfigValidate(t *testing.T) {
	c := DefaultQualityConfig(2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.Trainers = 0
	if bad.Validate() == nil {
		t.Fatal("0 trainers must be invalid")
	}
	bad = c
	bad.TrainSamples = 8
	if bad.Validate() == nil {
		t.Fatal("partition < batch must be invalid")
	}
	bad = c
	bad.Rounds = 0
	if bad.Validate() == nil {
		t.Fatal("0 rounds must be invalid")
	}
}

func TestRunPopulationSingleTrainer(t *testing.T) {
	res, err := RunPopulation(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundLosses) != 3 || len(res.RoundLosses[0]) != 1 {
		t.Fatalf("round losses shape wrong: %+v", res.RoundLosses)
	}
	if res.Adoptions != 0 {
		t.Fatal("single trainer cannot adopt")
	}
	if res.FinalBest <= 0 {
		t.Fatalf("final best = %v", res.FinalBest)
	}
	// Training should not make things worse over rounds.
	if res.BestSeries[len(res.BestSeries)-1] > res.BestSeries[0]*1.5 {
		t.Fatalf("loss exploded: %v", res.BestSeries)
	}
}

func TestRunPopulationLTFBDeterministic(t *testing.T) {
	a, err := RunPopulation(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPopulation(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for r := range a.RoundLosses {
		for k := range a.RoundLosses[r] {
			if a.RoundLosses[r][k] != b.RoundLosses[r][k] {
				t.Fatalf("round %d trainer %d: %v vs %v", r, k, a.RoundLosses[r][k], b.RoundLosses[r][k])
			}
		}
	}
}

func TestRunPopulationMultiRank(t *testing.T) {
	c := fastConfig(2)
	c.RanksPerTrainer = 2
	res, err := RunPopulation(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundLosses[0]) != 2 {
		t.Fatalf("expected 2 trainers, got %d", len(res.RoundLosses[0]))
	}
}

func TestRunKIndependentFinal(t *testing.T) {
	c := fastConfig(2)
	c.Partition = PartitionRandom
	res, err := RunKIndependentFinal(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTrainer < 0 || res.BestTrainer >= 2 {
		t.Fatalf("best trainer = %d", res.BestTrainer)
	}
	if res.BestLoss <= 0 {
		t.Fatalf("best loss = %v", res.BestLoss)
	}
}

func TestTrainSurrogateAndFigures78(t *testing.T) {
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{32}
	cfg.ForwardHidden = []int{16}
	cfg.InverseHidden = []int{12}
	cfg.DiscHidden = []int{12}
	model, err := TrainSurrogate(cfg, 96, 30, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	f7 := Figure7(model, 16).Render()
	if !strings.Contains(f7, "yield") || !strings.Contains(f7, "pearson") {
		t.Fatalf("figure 7 table malformed:\n%s", f7)
	}
	if got := strings.Count(f7, "\n"); got != 3+jag.ScalarDim {
		t.Fatalf("figure 7 has %d lines", got)
	}
	f8 := Figure8(model, 8).Render()
	if strings.Count(f8, "\n") != 3+jag.Tiny8.NumImages() {
		t.Fatalf("figure 8 malformed:\n%s", f8)
	}
}

func TestTrainSurrogateValidation(t *testing.T) {
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	if _, err := TrainSurrogate(cfg, 4, 1, 16, 1); err == nil {
		t.Fatal("train smaller than batch must error")
	}
}

func TestFigure12TableShape(t *testing.T) {
	tab, err := Figure12([]int{1, 2}, fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	if !strings.Contains(out, "improvement@2trainers") {
		t.Fatalf("missing column:\n%s", out)
	}
	if _, err := Figure12([]int{2}, fastConfig(1)); err == nil {
		t.Fatal("figure 12 without baseline must error")
	}
}

func TestFigure13TableShape(t *testing.T) {
	tab, err := Figure13([]int{2}, fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	if !strings.Contains(out, "advantage_best") || !strings.Contains(out, "advantage_mean") {
		t.Fatalf("missing column:\n%s", out)
	}
}

func TestPerfTablesRender(t *testing.T) {
	for name, tab := range map[string]string{
		"fig9":     Figure9Table().Render(),
		"fig10":    Figure10Table().Render(),
		"fig11":    Figure11Table().Render(),
		"headline": HeadlineTable().Render(),
	} {
		if len(tab) < 50 {
			t.Fatalf("%s table too small:\n%s", name, tab)
		}
	}
	if !strings.Contains(Figure10Table().Render(), "OOM") {
		t.Fatal("figure 10 should mark infeasible points")
	}
	if !strings.Contains(HeadlineTable().Render(), "70.2x") {
		t.Fatal("headline must quote the paper number")
	}
}

func TestDataStoreDemo(t *testing.T) {
	tab, err := DataStoreDemo(t.TempDir(), 4, 16, 2, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	for _, mode := range []string{"dynamic-loading", "data-store-dynamic", "data-store-preloaded"} {
		if !strings.Contains(out, mode) {
			t.Fatalf("missing mode %s:\n%s", mode, out)
		}
	}
}

// The paper's central quality claim, end to end at laptop scale: an LTFB
// population is at least as good as the same-shape K-independent population
// on global validation data.
func TestLTFBNotWorseThanKIndependent(t *testing.T) {
	base := fastConfig(1)
	base.Rounds = 5
	base.RoundSteps = 6

	ltfbCfg := base
	ltfbCfg.Trainers = 4
	ltfbCfg.LTFB = true
	ltfbRes, err := RunPopulation(ltfbCfg)
	if err != nil {
		t.Fatal(err)
	}
	kindCfg := base
	kindCfg.Trainers = 4
	kindCfg.LTFB = false
	kindCfg.Partition = PartitionRandom
	kindRes, err := RunPopulation(kindCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ltfbRes.FinalBest > kindRes.FinalBest*1.10 {
		t.Fatalf("LTFB (%v) markedly worse than K-independent (%v)", ltfbRes.FinalBest, kindRes.FinalBest)
	}
	if ltfbRes.Adoptions == 0 {
		t.Fatal("tournaments never adopted a model; exchange is not functioning")
	}
}

func TestTrainerLRJitter(t *testing.T) {
	c := DefaultQualityConfig(4)
	if c.trainerLR(2) != c.Model.LR {
		t.Fatal("zero jitter must keep the base LR")
	}
	c.LRJitter = 0.5
	lo := c.trainerLR(0)
	hi := c.trainerLR(3)
	if lo >= c.Model.LR || hi <= c.Model.LR {
		t.Fatalf("jitter should spread around base: %v .. %v (base %v)", lo, hi, c.Model.LR)
	}
	ratio := hi / lo
	if ratio < 2.24 || ratio > 2.26 { // (1.5)^2 = 2.25
		t.Fatalf("jitter span = %v, want 2.25", ratio)
	}
	// A jittered population still runs and stays deterministic.
	cfg := fastConfig(3)
	cfg.LRJitter = 0.4
	a, err := RunPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalBest != b.FinalBest {
		t.Fatal("jittered run not deterministic")
	}
}
