// Data-store example: generates a bundle-file corpus on disk with the
// ensemble workflow, then trains through the three ingestion configurations
// of Figure 10 — naive dynamic loading, the dynamic in-memory data store,
// and the preloaded data store — and prints the file-system and network
// traffic each one causes, alongside the modelled epoch times at paper
// scale.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "jag-bundles-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("generating 8 bundle files x 32 samples with the ensemble workflow ...")
	tab, err := core.DataStoreDemo(dir, 8, 32, 4, 24, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab.Render())
	fmt.Println(`
Reading the table:
 - dynamic-loading re-reads every sample from the bundle files each epoch
   (backing_reads keeps growing, nothing is exchanged);
 - data-store-dynamic reads each sample once (epoch 0) and then shuffles
   cached samples between ranks (remote_samples, bytes_moved);
 - data-store-preloaded reads whole files once before training
   (files_preread) and never touches the file system again.`)

	fmt.Println("\nmodelled epoch times at paper scale (Figure 10):")
	fmt.Print(core.Figure10Table().Render())
}
