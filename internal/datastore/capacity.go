package datastore

import (
	"container/list"
	"fmt"
)

// Capacity support: the paper's data store is capacity-bound — a trainer
// whose per-rank shard exceeds host memory simply cannot run in preload
// mode (Figure 10's 1–2 GPU points, Figure 11's 4-node baseline). The real
// store here reproduces both behaviours: preload fails loudly when the
// shard cannot fit, while the dynamic store degrades gracefully by evicting
// least-recently-used samples back to the file system (re-reading them on
// demand and counting the extra backing reads, so experiments can observe
// the thrash).

// SetCapacity bounds this rank's cache to maxSamples entries (0 = unlimited).
// In ModePreload the bound must admit the whole owned shard — Preload
// returns an error otherwise, mirroring the paper's out-of-memory cases.
// In ModeDynamic the store evicts least-recently-used samples once full.
func (s *Store) SetCapacity(maxSamples int) {
	s.capacity = maxSamples
	if maxSamples > 0 && s.lru == nil {
		s.lru = list.New()
		s.lruIndex = make(map[int]*list.Element, maxSamples)
	}
}

// Capacity returns the configured bound (0 = unlimited).
func (s *Store) Capacity() int { return s.capacity }

// touch marks sample i most-recently-used.
func (s *Store) touch(i int) {
	if s.capacity <= 0 {
		return
	}
	if el, ok := s.lruIndex[i]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.lruIndex[i] = s.lru.PushFront(i)
}

// admit caches row for sample i, evicting LRU entries to respect the bound.
// Preloaded ownership is never evicted implicitly; dynamic entries are.
func (s *Store) admit(i int, row []float32) error {
	if s.capacity > 0 && len(s.cache) >= s.capacity {
		if s.mode == ModePreload {
			return fmt.Errorf("datastore: rank %d over capacity (%d samples) during preload", s.c.Rank(), s.capacity)
		}
		for len(s.cache) >= s.capacity {
			back := s.lru.Back()
			if back == nil {
				break
			}
			victim := back.Value.(int)
			s.lru.Remove(back)
			delete(s.lruIndex, victim)
			delete(s.cache, victim)
			s.stats.Evictions++
		}
	}
	s.cache[i] = row
	s.touch(i)
	return nil
}
