package serve

import (
	"net/http"

	"repro/internal/metrics"
)

// Prometheus exposition for the serving stack. MetricsHandler renders
// every registered model's counters, gauges, and latency histograms in
// the Prometheus text format, one scrape at a time.
//
// The exposition is rebuilt from snapshots on every scrape rather than
// shared with the hot path: the pipeline's own instruments (lock-free
// histograms, one short-lived mutex around the counters) are read, never
// written, here — so a slow or hostile scraper cannot block a batch
// flush, and a hot swap (Registry.Replace) needs no metric re-wiring.
// Counters therefore reset when a reload swaps a model's generation,
// which Prometheus rate() absorbs as an ordinary counter reset; the
// jag_generation gauge says when that happened.
//
// Metric reference (all series carry a model label):
//
//	jag_requests_total{model,method,lane}   completed rows
//	jag_batches_total                       forward passes
//	jag_overloads_total                     rows rejected by backpressure
//	jag_expired_total, jag_cancelled_total  rows dropped before a pass
//	jag_model_failures_total                rows failed by the model itself
//	jag_cache_hits_total, jag_cache_misses_total
//	jag_cache_hit_rate                      hits/(hits+misses), 0 when idle
//	jag_queue_depth                         in-flight rows (live gauge)
//	jag_lane_depth{lane}                    queued rows per priority lane
//	jag_mean_batch                          mean rows per forward pass
//	jag_capacity_qps                        probed sustainable rows/s (0 until probed)
//	jag_model_ready                         1 while serving, 0 once closed
//	jag_generation                          hot-swap generation (1 = never swapped)
//	jag_reloads_total                       completed hot swaps
//	jag_reload_rejected_total               reload attempts rolled back
//	jag_reload_error                        1 while the last reload attempt failed
//	jag_forced_closes_total                 drains cut short by the drain deadline
//	jag_uptime_seconds                      current generation's serving time
//	jag_request_latency_seconds             end-to-end latency histogram
//	jag_stage_latency_seconds{stage}        per-stage latency histograms
//	                                        (queue_wait, batch_assembly,
//	                                        forward, encode)
//
// docs/OBSERVABILITY.md is the operator-facing reference.

// promContentType is the Prometheus text exposition media type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler serves GET /metrics for every model of a Registry.
// NewRegistryHandler mounts it on the v1 surface; mount it separately to
// scrape on a different listener (as jagserve -debug-addr does).
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := metrics.NewRegistry()
		for _, name := range reg.Names() {
			s, ok := reg.Get(name)
			if !ok {
				continue
			}
			collectModel(m, reg, name, s)
		}
		w.Header().Set("Content-Type", promContentType)
		// A write error here means the scraper hung up mid-response;
		// the exposition text is regenerated on the next scrape.
		_ = m.WritePrometheus(w)
	})
}

// collectModel fills the scrape registry with one model's series.
func collectModel(m *metrics.Registry, reg *Registry, name string, s *Server) {
	snap := s.Stats()
	l := metrics.Labels{"model": name}

	for method, lanes := range snap.LaneRequests {
		for lane, n := range lanes {
			m.Counter("jag_requests_total", "Completed rows by model, method, and priority lane.",
				metrics.Labels{"model": name, "method": method, "lane": lane}).Add(uint64(n))
		}
	}
	m.Counter("jag_batches_total", "Forward passes run.", l).Add(uint64(snap.Batches))
	m.Counter("jag_overloads_total", "Rows rejected by queue-depth backpressure.", l).Add(uint64(snap.Overloads))
	m.Counter("jag_expired_total", "Rows dropped before a forward pass: deadline passed.", l).Add(uint64(snap.Expired))
	m.Counter("jag_cancelled_total", "Rows dropped before a forward pass: context cancelled.", l).Add(uint64(snap.Cancelled))
	m.Counter("jag_model_failures_total", "Rows failed by the model's own forward pass.", l).Add(uint64(snap.ModelFailures))
	m.Counter("jag_cache_hits_total", "Rows answered from the LRU response cache.", l).Add(uint64(snap.CacheHits))
	m.Counter("jag_cache_misses_total", "Rows that ran the model and populated the cache.", l).Add(uint64(snap.CacheMisses))
	if total := snap.CacheHits + snap.CacheMisses; total > 0 {
		m.Gauge("jag_cache_hit_rate", "Cache hits over answered rows.", l).
			Set(float64(snap.CacheHits) / float64(total))
	} else {
		m.Gauge("jag_cache_hit_rate", "Cache hits over answered rows.", l).Set(0)
	}
	m.Gauge("jag_queue_depth", "Rows admitted and not yet answered.", l).Set(float64(s.Inflight()))
	for lane, depth := range s.LaneDepths() {
		m.Gauge("jag_lane_depth", "Rows queued per priority lane.",
			metrics.Labels{"model": name, "lane": lane}).Set(float64(depth))
	}
	m.Gauge("jag_mean_batch", "Mean rows per forward pass.", l).Set(snap.MeanBatch)
	m.Gauge("jag_capacity_qps", "Probed sustainable row rate (rows/s), 0 until probed.", l).
		Set(s.CapacityQPS())
	ready := 1.0
	if s.Closed() {
		ready = 0
	}
	m.Gauge("jag_model_ready", "1 while the model accepts requests.", l).Set(ready)
	m.Gauge("jag_uptime_seconds", "Serving time of the current generation.", l).Set(snap.UptimeSec)

	gen := reg.Generation(name)
	m.Gauge("jag_generation", "Hot-swap generation (1 = never swapped).", l).Set(float64(gen))
	m.Counter("jag_reloads_total", "Completed hot swaps.", l).Add(uint64(gen - 1))
	m.Counter("jag_forced_closes_total", "Hot-swap drains cut short by the drain deadline.", l).
		Add(uint64(reg.ForcedCloses(name)))
	if rs, ok := reg.ReloadState(name); ok {
		m.Counter("jag_reload_rejected_total", "Reload attempts rejected (load error or canary failure).", l).
			Add(uint64(rs.Rejections))
		failed := 0.0
		if rs.LastError != "" {
			failed = 1
		}
		m.Gauge("jag_reload_error", "1 while the most recent reload attempt failed.", l).Set(failed)
	}

	m.SetHistogram("jag_request_latency_seconds", "End-to-end request latency (enqueue to scatter).",
		l, s.LatencyHistogram())
	for stage, h := range s.StageHistograms() {
		m.SetHistogram("jag_stage_latency_seconds", "Per-stage latency: queue_wait, batch_assembly, forward, encode.",
			metrics.Labels{"model": name, "stage": stage}, h)
	}
}
