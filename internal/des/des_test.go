package des

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	end := s.Run()
	if !reflect.DeepEqual(order, []int{1, 2, 3}) {
		t.Fatalf("order = %v", order)
	}
	if end != 3 {
		t.Fatalf("end time = %v", end)
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var order []string
	s.Schedule(5, func() { order = append(order, "a") })
	s.Schedule(5, func() { order = append(order, "b") })
	s.Schedule(5, func() { order = append(order, "c") })
	s.Run()
	if !reflect.DeepEqual(order, []string{"a", "b", "c"}) {
		t.Fatalf("order = %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []float64
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(2, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if !reflect.DeepEqual(times, []float64{1, 3}) {
		t.Fatalf("times = %v", times)
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	s := New()
	s.Schedule(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past must panic")
		}
	}()
	s.At(5, func() {})
}

func TestInvalidDelayPanics(t *testing.T) {
	s := New()
	for _, d := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("delay %v must panic", d)
				}
			}()
			s.Schedule(d, func() {})
		}()
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := 0
	for i := 1; i <= 5; i++ {
		s.Schedule(float64(i), func() { fired++ })
	}
	n := s.RunUntil(3)
	if n != 3 || fired != 3 {
		t.Fatalf("RunUntil processed %d (fired %d), want 3", n, fired)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	// Advancing an idle sim moves the clock.
	s.Run()
	s.RunUntil(100)
	if s.Now() != 100 {
		t.Fatalf("idle advance gave %v", s.Now())
	}
}

func TestServerSingleChannelFIFO(t *testing.T) {
	s := New()
	sv := NewServer(s, 1)
	var spans [][2]float64
	for i := 0; i < 3; i++ {
		sv.Submit(10, func(start, end float64) { spans = append(spans, [2]float64{start, end}) })
	}
	s.Run()
	want := [][2]float64{{0, 10}, {10, 20}, {20, 30}}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("spans = %v", spans)
	}
}

func TestServerParallelChannels(t *testing.T) {
	s := New()
	sv := NewServer(s, 2)
	var ends []float64
	for i := 0; i < 4; i++ {
		sv.Submit(10, func(_, end float64) { ends = append(ends, end) })
	}
	s.Run()
	// Two channels: jobs finish at 10,10,20,20.
	if !reflect.DeepEqual(ends, []float64{10, 10, 20, 20}) {
		t.Fatalf("ends = %v", ends)
	}
}

func TestServerSubmitAfterIdle(t *testing.T) {
	s := New()
	sv := NewServer(s, 1)
	var end2 float64
	sv.Submit(5, nil)
	s.Schedule(100, func() {
		sv.Submit(5, func(start, end float64) {
			if start != 100 {
				t.Errorf("start = %v, want 100 (no service in idle gap)", start)
			}
			end2 = end
		})
	})
	s.Run()
	if end2 != 105 {
		t.Fatalf("end = %v, want 105", end2)
	}
}

func TestServerInFlight(t *testing.T) {
	s := New()
	sv := NewServer(s, 1)
	sv.Submit(10, nil)
	sv.Submit(10, nil)
	if sv.InFlight != 2 {
		t.Fatalf("InFlight = %d, want 2", sv.InFlight)
	}
	s.RunUntil(15)
	if sv.InFlight != 1 {
		t.Fatalf("InFlight after first completion = %d, want 1", sv.InFlight)
	}
	s.Run()
	if sv.InFlight != 0 {
		t.Fatalf("InFlight at end = %d", sv.InFlight)
	}
}

func TestServerFreeAt(t *testing.T) {
	s := New()
	sv := NewServer(s, 1)
	if sv.FreeAt() != 0 {
		t.Fatalf("idle FreeAt = %v", sv.FreeAt())
	}
	sv.Submit(7, nil)
	if sv.FreeAt() != 7 {
		t.Fatalf("busy FreeAt = %v, want 7", sv.FreeAt())
	}
}

func TestServerCapacityValidation(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 must panic")
		}
	}()
	NewServer(s, 0)
}

// Property: with a single channel, total makespan equals the sum of service
// durations regardless of how submissions interleave with time.
func TestServerWorkConservationProperty(t *testing.T) {
	f := func(dursRaw []uint8) bool {
		s := New()
		sv := NewServer(s, 1)
		var total float64
		for _, d := range dursRaw {
			dur := float64(d)
			total += dur
			sv.Submit(dur, nil)
		}
		end := s.Run()
		return math.Abs(end-total) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Determinism: the same program produces the same trace twice.
func TestSimulationDeterminism(t *testing.T) {
	run := func() []float64 {
		s := New()
		sv := NewServer(s, 3)
		var ends []float64
		for i := 0; i < 20; i++ {
			dur := float64((i*7)%5 + 1)
			s.Schedule(float64(i%4), func() {
				sv.Submit(dur, func(_, end float64) { ends = append(ends, end) })
			})
		}
		s.Run()
		return ends
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic traces:\n%v\n%v", a, b)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.Schedule(float64(j%17), func() {})
		}
		s.Run()
	}
}
