package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// drivePredicts pushes n distinct interactive predict rows through ts.
func drivePredicts(t *testing.T, ts *httptest.Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, status := postPredict(t, ts, PredictRequest{Input: testInput(i)})
		if status != http.StatusOK {
			t.Fatalf("predict %d: status %d", i, status)
		}
		if len(resp.Outputs) != 1 {
			t.Fatalf("predict %d: %d outputs", i, len(resp.Outputs))
		}
	}
}

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Fatalf("/metrics content-type %q, want %q", ct, promContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsExposition drives traffic through the v1 handler and
// checks that the Prometheus exposition carries the per-(model, method,
// lane) request counter, the per-stage histograms, and the serving
// gauges — the contract docs/OBSERVABILITY.md documents.
func TestMetricsExposition(t *testing.T) {
	ts := newTestHTTP(t)
	defer ts.Close()
	const n = 5
	drivePredicts(t, ts, n)
	// Repeat one row to produce a cache hit.
	if _, status := postPredict(t, ts, PredictRequest{Input: testInput(0)}); status != http.StatusOK {
		t.Fatalf("cache-hit predict: status %d", status)
	}
	text := scrape(t, ts)

	// Labels render sorted by key, so the series name is deterministic.
	for _, want := range []string{
		fmt.Sprintf(`jag_requests_total{lane="interactive",method="predict",model="default"} %d`, n),
		`# TYPE jag_requests_total counter`,
		`# TYPE jag_request_latency_seconds histogram`,
		fmt.Sprintf(`jag_request_latency_seconds_count{model="default"} %d`, n),
		`jag_request_latency_seconds_bucket{model="default",le="+Inf"}`,
		`# TYPE jag_stage_latency_seconds histogram`,
		fmt.Sprintf(`jag_stage_latency_seconds_count{model="default",stage="queue_wait"} %d`, n),
		fmt.Sprintf(`jag_stage_latency_seconds_count{model="default",stage="encode"} %d`, n+1),
		`jag_stage_latency_seconds_count{model="default",stage="forward"}`,
		`jag_stage_latency_seconds_count{model="default",stage="batch_assembly"}`,
		`jag_cache_hits_total{model="default"} 1`,
		fmt.Sprintf(`jag_cache_misses_total{model="default"} %d`, n),
		`jag_model_ready{model="default"} 1`,
		`jag_generation{model="default"} 1`,
		`jag_reloads_total{model="default"} 0`,
		`jag_lane_depth{lane="interactive",model="default"} 0`,
		`jag_queue_depth{model="default"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

// TestMetricsScrapeUnderLoad hammers the call route and /metrics
// concurrently. Under -race this doubles as proof that scrapes read the
// pipeline's instruments without racing the hot path; the assertions
// prove a scrape mid-traffic always renders a complete exposition.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	ts := newTestHTTP(t)
	defer ts.Close()
	const clients, perClient, scrapes = 4, 25, 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				postPredict(t, ts, PredictRequest{Input: testInput(c*perClient + i)})
			}
		}(c)
	}
	for i := 0; i < scrapes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			text := scrape(t, ts)
			if !strings.Contains(text, "# TYPE jag_request_latency_seconds histogram") {
				t.Error("mid-load scrape missing the latency histogram family")
			}
		}()
	}
	wg.Wait()
	final := scrape(t, ts)
	want := fmt.Sprintf(`jag_request_latency_seconds_count{model="default"} %d`, clients*perClient)
	if !strings.Contains(final, want) {
		t.Fatalf("final scrape missing %q in:\n%s", want, final)
	}
}

// TestRequestIDEcho checks the correlation-ID contract: caller-supplied
// IDs propagate to the response, absent or unprintable ones are
// replaced with a fresh 16-hex-digit ID.
func TestRequestIDEcho(t *testing.T) {
	ts := newTestHTTP(t)
	defer ts.Close()
	get := func(id string) string {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set(RequestIDHeader, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get(RequestIDHeader)
	}
	if got := get("trace-abc-123"); got != "trace-abc-123" {
		t.Fatalf("caller ID not propagated: got %q", got)
	}
	fresh := regexp.MustCompile(`^[0-9a-f]{16}$`)
	if got := get(""); !fresh.MatchString(got) {
		t.Fatalf("missing ID not replaced with a fresh one: got %q", got)
	}
	if got := get(strings.Repeat("x", 200)); !fresh.MatchString(got) {
		t.Fatalf("oversized ID not replaced: got %q", got)
	}
	// An unprintable ID never leaves Go's http client, so exercise the
	// sanitizer through the handler directly.
	s, _ := newTestServer(t, Config{MaxBatch: 1})
	h := NewHandler(s)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header[RequestIDHeader] = []string{"bad\x01id"}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); !fresh.MatchString(got) {
		t.Fatalf("unprintable ID not replaced: got %q", got)
	}
}

// TestServerTimingHeader checks that a successful call response carries
// the stage decomposition as a Server-Timing header.
func TestServerTimingHeader(t *testing.T) {
	ts := newTestHTTP(t)
	defer ts.Close()
	body, _ := json.Marshal(PredictRequest{Input: testInput(1)})
	resp, err := http.Post(ts.URL+"/v1/models/default/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := resp.Header.Get("Server-Timing")
	for _, metric := range []string{"queue_wait;dur=", "batch_assembly;dur=", "forward;dur=", "batch;desc="} {
		if !strings.Contains(st, metric) {
			t.Fatalf("Server-Timing %q missing %q", st, metric)
		}
	}
	// The identical row again: answered from cache, marked as such.
	resp2, err := http.Post(ts.URL+"/v1/models/default/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if st2 := resp2.Header.Get("Server-Timing"); !strings.Contains(st2, `cache;desc="hit"`) {
		t.Fatalf("cache-hit Server-Timing %q lacks the cache marker", st2)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output
// written from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLogJSON checks the structured access log: one JSON record
// per request, carrying the response's request ID, the status, and the
// per-stage spans for call routes.
func TestAccessLogJSON(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 4, MaxDelay: 100 * time.Microsecond})
	var logBuf syncBuffer
	h := NewHandlerConfig(s, HandlerConfig{
		AccessLog: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	body, _ := json.Marshal(PredictRequest{Input: testInput(2)})
	resp, err := http.Post(ts.URL+"/v1/models/default/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	wantID := resp.Header.Get(RequestIDHeader)

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 log record, got %d:\n%s", len(lines), logBuf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access log is not JSON: %v\n%s", err, lines[0])
	}
	if rec["msg"] != "request" || rec["method"] != "POST" ||
		rec["path"] != "/v1/models/default/predict" || rec["request_id"] != wantID {
		t.Fatalf("record fields wrong: %v", rec)
	}
	if status, _ := rec["status"].(float64); status != http.StatusOK {
		t.Fatalf("status %v, want 200", rec["status"])
	}
	for _, span := range []string{"duration_ms", "queue_wait_ms", "batch_assembly_ms", "forward_ms", "encode_ms"} {
		if _, ok := rec[span].(float64); !ok {
			t.Fatalf("record missing span %q: %v", span, rec)
		}
	}
	if batch, _ := rec["batch"].(float64); batch < 1 {
		t.Fatalf("batch %v, want >= 1", rec["batch"])
	}
}

// TestCallTraceSpans checks the in-process tracing contract: CallTrace
// returns per-stage spans that are positive, and the queue-wait span is
// bounded by the configured batch window plus scheduling slack.
func TestCallTraceSpans(t *testing.T) {
	const window = 2 * time.Millisecond
	s, _ := newTestServer(t, Config{MaxBatch: 8, MaxDelay: window, CacheSize: 16})
	y, tr, err := s.CallTrace(t.Context(), MethodPredict, testInput(9), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) == 0 {
		t.Fatal("no output")
	}
	if tr.CacheHit {
		t.Fatal("first call marked as cache hit")
	}
	if tr.Batch != 1 {
		t.Fatalf("batch %d, want 1", tr.Batch)
	}
	if tr.QueueWait <= 0 || tr.Forward <= 0 {
		t.Fatalf("non-positive spans: %+v", tr)
	}
	if tr.QueueWait > 10*window {
		t.Fatalf("queue wait %v far exceeds the %v window", tr.QueueWait, window)
	}
	// Identical row: cache hit, no pipeline spans.
	_, tr2, err := s.CallTrace(t.Context(), MethodPredict, testInput(9), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.CacheHit {
		t.Fatal("second identical call not served from cache")
	}
	if tr2.QueueWait != 0 || tr2.Forward != 0 {
		t.Fatalf("cache hit carries pipeline spans: %+v", tr2)
	}
}
