package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField guards the lock-free instruments in internal/metrics
// (and any struct built the same way). Two invariants:
//
//  1. A struct holding sync/atomic fields (atomic.Uint64 and friends,
//     directly or via an embedded struct) must never be copied: a copy
//     forks the counters, and updates to the copy are silently lost to
//     every reader of the original. Reported: value receivers on such
//     types, assignments and function arguments that copy such a value,
//     and range clauses whose element variable copies one.
//
//  2. A plain integer field tagged `// lint:atomic` is a declaration
//     that every access goes through sync/atomic functions; any direct
//     read, write, or increment is reported — only &x.field handed to a
//     sync/atomic call is allowed.
//
// Slices of atomics (e.g. Histogram's counts []atomic.Uint64) are fine
// to copy: the header copy shares the backing counters.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "structs with sync/atomic fields must not be copied; lint:atomic fields only accessed atomically",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	reportCopies(pass)
	reportDirectTaggedAccess(pass)
	return nil
}

// --- invariant 1: no copies of atomic-holding structs ------------------

// holdsAtomics reports whether t is a struct type that directly embeds
// sync/atomic values (not behind a pointer, slice, or map).
func holdsAtomics(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isAtomicType(ft) {
			return true
		}
		if arr, ok := ft.Underlying().(*types.Array); ok {
			ft = arr.Elem()
			if isAtomicType(ft) {
				return true
			}
		}
		if _, ok := ft.Underlying().(*types.Struct); ok && holdsAtomics(ft, seen) {
			return true
		}
	}
	return false
}

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// copyDiag explains one copy site.
func copyDiag(pass *Pass, pos ast.Node, what string, t types.Type) {
	name := namedTypeName(t)
	if name == "" {
		name = t.String()
	}
	pass.Reportf(pos.Pos(), "%s copies %s, which holds sync/atomic fields; updates to the copy are lost — use a pointer", what, name)
}

// copiesAtomics reports whether evaluating expr as a value copies an
// atomic-holding struct: true for variables, field selections, derefs,
// and index expressions of such a type (composite literals and calls
// construct fresh values and are exempt).
func copiesAtomics(info *types.Info, expr ast.Expr) (types.Type, bool) {
	expr = ast.Unparen(expr)
	switch expr.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return nil, false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return nil, false
	}
	if holdsAtomics(tv.Type, nil) {
		return tv.Type, true
	}
	return nil, false
}

func reportCopies(pass *Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil && len(n.Recv.List) == 1 {
					rt := info.TypeOf(n.Recv.List[0].Type)
					if rt != nil {
						if _, isPtr := rt.Underlying().(*types.Pointer); !isPtr && holdsAtomics(rt, nil) {
							copyDiag(pass, n.Recv.List[0].Type, "value receiver of "+n.Name.Name, rt)
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// `_ = v` discards the value; nothing observable is
					// forked.
					if len(n.Lhs) == len(n.Rhs) {
						if blank, ok := n.Lhs[i].(*ast.Ident); ok && blank.Name == "_" {
							continue
						}
					}
					if t, ok := copiesAtomics(info, rhs); ok {
						copyDiag(pass, rhs, "assignment", t)
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if t, ok := copiesAtomics(info, v); ok {
						copyDiag(pass, v, "assignment", t)
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if t, ok := copiesAtomics(info, arg); ok {
						copyDiag(pass, arg, "argument", t)
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if t, ok := copiesAtomics(info, res); ok {
						copyDiag(pass, res, "return", t)
					}
				}
			case *ast.RangeStmt:
				if t := rangeValueType(info, n); t != nil && holdsAtomics(t, nil) {
					copyDiag(pass, n.Value, "range element", t)
				}
			}
			return true
		})
	}
}

// rangeValueType resolves the type of the range value variable, whether
// freshly declared (:=) or pre-existing.
func rangeValueType(info *types.Info, n *ast.RangeStmt) types.Type {
	id, ok := n.Value.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj.Type()
	}
	if obj := info.Uses[id]; obj != nil {
		return obj.Type()
	}
	return nil
}

// --- invariant 2: lint:atomic-tagged fields ----------------------------

// taggedAtomicFields collects the field objects whose declaration
// carries a `// lint:atomic` comment (doc comment above or trailing
// line comment).
func taggedAtomicFields(pass *Pass) map[types.Object]bool {
	tagged := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldTaggedAtomic(field) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						tagged[obj] = true
					}
				}
			}
			return true
		})
	}
	return tagged
}

func fieldTaggedAtomic(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "lint:atomic") {
				return true
			}
		}
	}
	return false
}

func reportDirectTaggedAccess(pass *Pass) {
	tagged := taggedAtomicFields(pass)
	if len(tagged) == 0 {
		return
	}
	info := pass.TypesInfo
	inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || !tagged[selection.Obj()] {
			return true
		}
		if atomicAddressUse(info, stack) {
			return true
		}
		pass.Reportf(sel.Pos(), "field %s is tagged lint:atomic; access it through sync/atomic (&x.%s into atomic.Load/Add/Store), not directly",
			sel.Sel.Name, sel.Sel.Name)
		return true
	})
}

// atomicAddressUse reports whether the selector on top of the stack is
// used as &x.f passed directly to a sync/atomic function.
func atomicAddressUse(info *types.Info, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	unary, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	if !ok || unary.Op.String() != "&" {
		return false
	}
	for i := len(stack) - 2; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := calleeFunc(info, call)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
	}
	return false
}
