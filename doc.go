// Package repro is a from-scratch Go reproduction of "Parallelizing
// Training of Deep Generative Models on Massive Scientific Datasets"
// (Jacobs et al., CLUSTER 2019): the LTFB tournament algorithm for training
// GANs at scale, the LBANN-style training engine it extends, the
// distributed in-memory data store, and simulated substitutes for the
// hardware and data the paper used (the Lassen supercomputer, GPFS, and the
// 10M-sample JAG ICF corpus).
//
// Start with README.md for the layout, DESIGN.md for the system inventory
// and substitution rationale, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate every figure of the
// paper's evaluation section; cmd/figures prints them as tables.
package repro
