package jag

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimulateDeterministic(t *testing.T) {
	x := [InputDim]float64{0.3, 0.7, 0.1, 0.9, 0.5}
	a := Simulate(Tiny8, x)
	b := Simulate(Tiny8, x)
	for i := range a.Scalars {
		if a.Scalars[i] != b.Scalars[i] {
			t.Fatalf("scalar %d nondeterministic", i)
		}
	}
	for i := range a.Images {
		if a.Images[i] != b.Images[i] {
			t.Fatalf("pixel %d nondeterministic", i)
		}
	}
}

func TestSimulateShapesAndRanges(t *testing.T) {
	for _, cfg := range []Config{Tiny8, Small16, {ImageSize: 4, Views: 1, Channels: 1}} {
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		s := SimulateAt(cfg, 3)
		if len(s.X) != InputDim || len(s.Scalars) != ScalarDim || len(s.Images) != cfg.ImageDim() {
			t.Fatalf("cfg %+v: bad lengths %d/%d/%d", cfg, len(s.X), len(s.Scalars), len(s.Images))
		}
		for i, v := range s.Scalars {
			if v < 0 || v > 1 || math.IsNaN(float64(v)) {
				t.Fatalf("scalar %d = %v outside [0,1]", i, v)
			}
		}
		for i, v := range s.Images {
			if v < 0 || v > 1 || math.IsNaN(float64(v)) {
				t.Fatalf("pixel %d = %v outside [0,1]", i, v)
			}
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	for _, cfg := range []Config{{}, {ImageSize: 8, Views: 0, Channels: 1}, {ImageSize: -1, Views: 1, Channels: 1}} {
		if cfg.Validate() == nil {
			t.Fatalf("config %+v should be invalid", cfg)
		}
	}
}

func TestInputClamping(t *testing.T) {
	inBounds := Simulate(Tiny8, [InputDim]float64{0, 1, 0, 1, 0})
	outBounds := Simulate(Tiny8, [InputDim]float64{-3, 7, -0.5, 2, -1})
	for i := range inBounds.Scalars {
		if inBounds.Scalars[i] != outBounds.Scalars[i] {
			t.Fatal("out-of-range inputs must clamp to the cube boundary")
		}
	}
}

// The paper observes that drive parameters move the scalars non-linearly
// while shape parameters mostly change the images. Verify both sensitivity
// directions.
func TestDriveMovesScalars(t *testing.T) {
	base := [InputDim]float64{0.2, 0.5, 0.5, 0.5, 0.3}
	hot := base
	hot[0] = 0.9
	a := Simulate(Tiny8, base)
	b := Simulate(Tiny8, hot)
	var diff float64
	for i := range a.Scalars {
		diff += math.Abs(float64(a.Scalars[i] - b.Scalars[i]))
	}
	if diff < 0.5 {
		t.Fatalf("drive change moved scalars only %v", diff)
	}
}

func TestShapeMovesImages(t *testing.T) {
	base := [InputDim]float64{0.6, 0.5, 0.5, 0.5, 0.2}
	warped := base
	warped[1] = 0.95
	a := Simulate(Small16, base)
	b := Simulate(Small16, warped)
	var imgDiff float64
	for i := range a.Images {
		imgDiff += math.Abs(float64(a.Images[i] - b.Images[i]))
	}
	imgDiff /= float64(len(a.Images))
	if imgDiff < 1e-3 {
		t.Fatalf("shape change barely moved images: %v", imgDiff)
	}
}

func TestViewsDiffer(t *testing.T) {
	s := Simulate(Small16, [InputDim]float64{0.7, 0.9, 0.3, 0.4, 0.1})
	px := Small16.ImageSize * Small16.ImageSize
	view0 := s.Images[0:px]
	view1 := s.Images[Small16.Channels*px : Small16.Channels*px+px]
	var diff float64
	for i := range view0 {
		diff += math.Abs(float64(view0[i] - view1[i]))
	}
	if diff == 0 {
		t.Fatal("different lines of sight must see different projections")
	}
}

func TestChannelsFollowEnergySpectrum(t *testing.T) {
	// For a cool implosion, harder channels must carry less total signal.
	s := Simulate(Small16, [InputDim]float64{0.25, 0.5, 0.5, 0.8, 0.6})
	px := Small16.ImageSize * Small16.ImageSize
	sum := func(c int) float64 {
		var v float64
		for _, p := range s.Images[c*px : (c+1)*px] {
			v += float64(p)
		}
		return v
	}
	if !(sum(0) > sum(1) && sum(1) > sum(2)) {
		t.Fatalf("channel energies not decreasing: %v %v %v", sum(0), sum(1), sum(2))
	}
}

func TestYieldCliff(t *testing.T) {
	// Yield (scalar 0) must respond super-linearly to drive: the jump from
	// 0.8→1.0 exceeds the jump from 0.0→0.2 at fixed shape.
	at := func(d float64) float64 {
		s := Simulate(Tiny8, [InputDim]float64{d, 0.5, 0.5, 0.3, 0.1})
		return float64(s.Scalars[0])
	}
	low := at(0.2) - at(0.0)
	high := at(1.0) - at(0.8)
	if high <= low {
		t.Fatalf("yield response not super-linear: low %v, high %v", low, high)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	s := SimulateAt(Tiny8, 11)
	buf := s.Flatten()
	if len(buf) != Tiny8.SampleDim() {
		t.Fatalf("flatten length %d, want %d", len(buf), Tiny8.SampleDim())
	}
	got, err := Unflatten(Tiny8, buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.X {
		if got.X[i] != s.X[i] {
			t.Fatal("X corrupted")
		}
	}
	for i := range s.Scalars {
		if got.Scalars[i] != s.Scalars[i] {
			t.Fatal("scalars corrupted")
		}
	}
	for i := range s.Images {
		if got.Images[i] != s.Images[i] {
			t.Fatal("images corrupted")
		}
	}
	if _, err := Unflatten(Tiny8, buf[:len(buf)-1]); err == nil {
		t.Fatal("want error for truncated buffer")
	}
}

func TestOutputLayout(t *testing.T) {
	s := SimulateAt(Tiny8, 5)
	out := s.Output()
	if len(out) != Tiny8.OutputDim() {
		t.Fatalf("output length %d, want %d", len(out), Tiny8.OutputDim())
	}
	if out[0] != s.Scalars[0] || out[ScalarDim] != s.Images[0] {
		t.Fatal("output layout must be scalars then images")
	}
}

func TestRadicalInverseKnownValues(t *testing.T) {
	cases := []struct {
		i, b int
		want float64
	}{{1, 2, 0.5}, {2, 2, 0.25}, {3, 2, 0.75}, {1, 3, 1.0 / 3}, {5, 3, 7.0 / 9}}
	for _, c := range cases {
		if got := RadicalInverse(c.i, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("RadicalInverse(%d,%d) = %v, want %v", c.i, c.b, got, c.want)
		}
	}
}

func TestRadicalInverseInUnitInterval(t *testing.T) {
	f := func(i uint16, bRaw uint8) bool {
		b := int(bRaw%9) + 2
		v := RadicalInverse(int(i), b)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Low-discrepancy property: over any dimension, the first n plan points
// fill each decile of [0,1] with roughly n/10 points.
func TestPlanUniformCoverage(t *testing.T) {
	const n = 1000
	pts := Plan(0, n)
	for d := 0; d < InputDim; d++ {
		var bins [10]int
		for _, p := range pts {
			b := int(p[d] * 10)
			if b == 10 {
				b = 9
			}
			bins[b]++
		}
		for b, c := range bins {
			if c < n/10-35 || c > n/10+35 {
				t.Fatalf("dim %d decile %d has %d of %d points", d, b, c, n)
			}
		}
	}
}

// Contiguous plan ranges must each cover the space (this is what lets LTFB
// partition the dataset by file ranges without starving any trainer of a
// whole region).
func TestPlanPrefixCoverage(t *testing.T) {
	for _, start := range []int{0, 500, 5000} {
		pts := Plan(start, 200)
		for d := 0; d < InputDim; d++ {
			lo, hi := 1.0, 0.0
			for _, p := range pts {
				if p[d] < lo {
					lo = p[d]
				}
				if p[d] > hi {
					hi = p[d]
				}
			}
			if lo > 0.2 || hi < 0.8 {
				t.Fatalf("plan range starting %d leaves dim %d span [%v,%v]", start, d, lo, hi)
			}
		}
	}
}

func TestPlanDistinctPoints(t *testing.T) {
	pts := Plan(0, 500)
	seen := map[[InputDim]float64]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Fatalf("duplicate plan point %v", p)
		}
		seen[p] = true
	}
}

func BenchmarkSimulateTiny8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SimulateAt(Tiny8, i)
	}
}

func BenchmarkSimulate64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SimulateAt(Default64, i)
	}
}

func TestWiggleStaysBoundedAndDeterministic(t *testing.T) {
	cfg := Tiny8
	cfg.Wiggle = 1
	for i := 0; i < 50; i++ {
		a := SimulateAt(cfg, i)
		b := SimulateAt(cfg, i)
		for j := range a.Scalars {
			if a.Scalars[j] != b.Scalars[j] {
				t.Fatal("wiggled simulation nondeterministic")
			}
			if a.Scalars[j] < 0 || a.Scalars[j] > 1 {
				t.Fatalf("wiggled scalar %d = %v outside [0,1]", j, a.Scalars[j])
			}
		}
		for j, v := range a.Images {
			if v < 0 || v > 1 {
				t.Fatalf("wiggled pixel %d = %v outside [0,1]", j, v)
			}
		}
	}
}

func TestWiggleChangesOutputs(t *testing.T) {
	smooth := Tiny8
	rough := Tiny8
	rough.Wiggle = 1
	x := InputAt(7)
	a := Simulate(smooth, x)
	b := Simulate(rough, x)
	same := true
	for j := range a.Scalars {
		if a.Scalars[j] != b.Scalars[j] {
			same = false
		}
	}
	if same {
		t.Fatal("wiggle had no effect on scalars")
	}
}

// The high-frequency term must make nearby inputs diverge more than the
// smooth model — the aliasing property Figure 13 relies on.
func TestWiggleRaisesLocalVariation(t *testing.T) {
	variation := func(cfg Config) float64 {
		var total float64
		for i := 0; i < 30; i++ {
			x := InputAt(i)
			y := x
			y[0] += 0.05
			a := Simulate(cfg, x)
			b := Simulate(cfg, y)
			for j := range a.Scalars {
				d := float64(a.Scalars[j] - b.Scalars[j])
				if d < 0 {
					d = -d
				}
				total += d
			}
		}
		return total
	}
	rough := Tiny8
	rough.Wiggle = 1
	if !(variation(rough) > variation(Tiny8)*1.1) {
		t.Fatalf("wiggle did not raise local variation: %v vs %v", variation(rough), variation(Tiny8))
	}
}
