// Package trainer implements LBANN's trainer abstraction (Section III-A):
// a trainer is a set of ranks (simulated GPUs) that together train one model
// replica set with data-parallel SGD. Each rank holds an identical model
// replica, consumes its shard of every mini-batch from the distributed data
// store, and the replicas stay in lockstep because gradients are combined
// with a bitwise-deterministic ring allreduce before every optimizer step.
//
// Running LBANN with multiple trainers gives two levels of parallelism —
// within each trainer (this package) and between trainers (package ltfb).
package trainer

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/datastore"
	"repro/internal/nn"
	"repro/internal/reader"
	"repro/internal/tensor"
)

// Model is the contract a trainable surrogate fulfills;
// cyclegan.Surrogate implements it structurally.
type Model interface {
	// TrainStep runs one mini-batch (x inputs, y targets), reducing each
	// phase's gradients through r, and returns named loss values.
	TrainStep(x, y *tensor.Matrix, r nn.Reducer) map[string]float64
	// Eval returns the validation objective on a batch (lower is better).
	Eval(x, y *tensor.Matrix) float64
	// Nets returns every network of the model.
	Nets() []*nn.Network
	// ExchangeNets returns the networks shipped in LTFB tournaments.
	ExchangeNets() []*nn.Network
	// ResetOptim clears optimizer state after adopting foreign weights.
	ResetOptim()
}

// AllreduceReducer averages gradients across the ranks of a trainer
// communicator using the ring allreduce. All parameters are packed into one
// buffer per Reduce call, matching how Aluminum aggregates small tensors.
type AllreduceReducer struct {
	C *comm.Comm
}

// Reduce replaces every gradient with the cross-rank average.
func (r AllreduceReducer) Reduce(params []*nn.Param) {
	n := r.C.Size()
	if n == 1 {
		return
	}
	total := 0
	for _, p := range params {
		total += len(p.Grad.Data)
	}
	buf := make([]float32, total)
	off := 0
	for _, p := range params {
		copy(buf[off:], p.Grad.Data)
		off += len(p.Grad.Data)
	}
	r.C.AllreduceSum(buf)
	inv := float32(1) / float32(n)
	off = 0
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = buf[off+i] * inv
		}
		off += len(p.Grad.Data)
	}
}

// Config fixes a trainer's training loop parameters.
type Config struct {
	// ID is the trainer's index among all trainers (seeds, diagnostics).
	ID int
	// BatchSize is the global mini-batch size per step (the paper uses
	// 128); it must be at least the rank count so every rank always has
	// work.
	BatchSize int
	// XDim is the number of leading input columns in each flattened sample.
	XDim int
	// ShuffleSeed seeds the per-epoch permutations; all ranks of a trainer
	// must agree on it.
	ShuffleSeed int64
}

// Stats aggregates training progress.
type Stats struct {
	Steps  int
	Epochs int
	// Losses holds running means of the model's named losses over all
	// steps taken so far.
	Losses map[string]float64
}

// Trainer is one rank's view of a trainer. All ranks of the trainer must
// call its collective methods (Advance, RunEpoch, Evaluate) together.
type Trainer struct {
	Cfg   Config
	C     *comm.Comm
	Model Model
	Store *datastore.Store
	Data  reader.Dataset

	shuffler *reader.Shuffler
	batches  [][]int
	cursor   int
	stats    Stats
}

// New wires a trainer rank together. Every rank of the trainer passes the
// same cfg, its own communicator handle and store, and the shared (or
// identically-partitioned) dataset.
func New(cfg Config, c *comm.Comm, model Model, store *datastore.Store, data reader.Dataset) (*Trainer, error) {
	if cfg.BatchSize < c.Size() {
		return nil, fmt.Errorf("trainer %d: batch size %d smaller than %d ranks", cfg.ID, cfg.BatchSize, c.Size())
	}
	if data.Len() < cfg.BatchSize {
		return nil, fmt.Errorf("trainer %d: dataset of %d samples smaller than batch %d", cfg.ID, data.Len(), cfg.BatchSize)
	}
	if cfg.XDim < 1 || cfg.XDim >= data.Dim() {
		return nil, fmt.Errorf("trainer %d: xDim %d outside (0,%d)", cfg.ID, cfg.XDim, data.Dim())
	}
	return &Trainer{
		Cfg:      cfg,
		C:        c,
		Model:    model,
		Store:    store,
		Data:     data,
		shuffler: reader.NewShuffler(data.Len(), cfg.ShuffleSeed),
		stats:    Stats{Losses: map[string]float64{}},
	}, nil
}

// Stats returns a snapshot of training progress.
func (t *Trainer) Stats() Stats {
	out := t.stats
	out.Losses = make(map[string]float64, len(t.stats.Losses))
	for k, v := range t.stats.Losses {
		out.Losses[k] = v
	}
	return out
}

// Reducer returns the gradient reducer for this trainer's ranks.
func (t *Trainer) Reducer() nn.Reducer { return AllreduceReducer{C: t.C} }

// prepareEpoch lays out the next epoch's batch schedule. Partial trailing
// batches are dropped so every rank always receives at least one sample.
func (t *Trainer) prepareEpoch() {
	perm := t.shuffler.Epoch(t.stats.Epochs)
	t.batches = reader.Batches(perm, t.Cfg.BatchSize, true)
	t.cursor = 0
}

// StepsPerEpoch returns the number of optimizer steps one epoch takes.
func (t *Trainer) StepsPerEpoch() int { return t.Data.Len() / t.Cfg.BatchSize }

// Advance runs the next n mini-batch steps, crossing epoch boundaries as
// needed. It is collective across the trainer's ranks.
func (t *Trainer) Advance(n int) error {
	for i := 0; i < n; i++ {
		if t.batches == nil || t.cursor >= len(t.batches) {
			if t.batches != nil {
				t.stats.Epochs++
			}
			t.prepareEpoch()
		}
		batch := t.batches[t.cursor]
		t.cursor++

		parts := make([][]int, t.C.Size())
		for r := range parts {
			parts[r] = reader.PartitionContiguousOf(batch, len(parts), r)
		}
		m, err := t.Store.Fetch(parts)
		if err != nil {
			return fmt.Errorf("trainer %d rank %d: %w", t.Cfg.ID, t.C.Rank(), err)
		}
		x, y := reader.SplitXY(m, t.Cfg.XDim)
		losses := t.Model.TrainStep(x, y, t.Reducer())
		t.stats.Steps++
		for k, v := range losses {
			// Running mean over all steps.
			old := t.stats.Losses[k]
			t.stats.Losses[k] = old + (v-old)/float64(t.stats.Steps)
		}
	}
	return nil
}

// RunEpoch advances exactly one epoch's worth of steps.
func (t *Trainer) RunEpoch() error {
	if t.batches == nil || t.cursor >= len(t.batches) {
		return t.Advance(t.StepsPerEpoch())
	}
	return t.Advance(len(t.batches) - t.cursor)
}

// Evaluate computes the model's mean Eval objective over a validation
// dataset, data-parallel: each rank evaluates a contiguous shard and the
// result is allreduced, so every rank returns the same value.
func (t *Trainer) Evaluate(val reader.Dataset, batchSize int) (float64, error) {
	idx := reader.PartitionContiguous(val.Len(), t.C.Size(), t.C.Rank())
	var lossSum float64
	var rows int
	for lo := 0; lo < len(idx); lo += batchSize {
		hi := lo + batchSize
		if hi > len(idx) {
			hi = len(idx)
		}
		m, err := reader.AssembleBatch(val, idx[lo:hi])
		if err != nil {
			return 0, err
		}
		x, y := reader.SplitXY(m, t.Cfg.XDim)
		lossSum += t.Model.Eval(x, y) * float64(m.Rows)
		rows += m.Rows
	}
	buf := []float32{float32(lossSum), float32(rows)}
	t.C.AllreduceSum(buf)
	if buf[1] == 0 {
		return 0, fmt.Errorf("trainer %d: empty validation set", t.Cfg.ID)
	}
	return float64(buf[0] / buf[1]), nil
}
