// Package serve turns a trained surrogate into an online prediction
// service — the deployment side of the paper's workflow, where the
// generative model replaces the JAG simulator for downstream consumers.
//
// The core piece is a dynamic micro-batching queue: concurrent Predict
// callers are coalesced into a single tensor.Matrix mini-batch, run
// through one forward pass, and the result rows scattered back to their
// callers. This is the serving-side twin of the ingest economics the
// paper exploits with Merlin and bundle files (Section II-C): per-call
// overhead dominates tiny workloads, so amortizing it across a batch is
// where the throughput lives. A batch is flushed when it reaches
// MaxBatch requests or when the oldest queued request has waited
// MaxDelay, whichever comes first.
//
// Around the queue sit:
//
//   - a replica pool (pool.go) that round-robins batches across N model
//     replicas — nn.Network is not safe for concurrent use, so each
//     replica is guarded and replicas are what provide parallelism —
//     with optional ensemble averaging across replicas loaded from
//     different checkpoints (e.g. the top-k LTFB tournament finishers);
//   - an LRU response cache (cache.go) keyed on quantized input
//     parameters, exploiting that surrogate queries cluster around
//     design points of interest;
//   - backpressure: the number of in-flight requests is bounded by
//     QueueDepth and excess callers fail fast with ErrOverloaded
//     instead of queueing without bound;
//   - instrumentation (stats.go) built on metrics.Meter: request
//     latency, batch occupancy, throughput, cache hit/miss and
//     overload counters, exposed as a JSON-friendly snapshot.
//
// http.go adds the JSON transport used by cmd/jagserve.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jag"
	"repro/internal/tensor"
)

// Errors returned by Predict.
var (
	// ErrOverloaded is returned when QueueDepth requests are already in
	// flight; callers should back off and retry (HTTP 503).
	ErrOverloaded = errors.New("serve: overloaded, queue full")
	// ErrClosed is returned once the server has been shut down.
	ErrClosed = errors.New("serve: server closed")
)

// Config tunes the serving pipeline around a loaded Pool.
type Config struct {
	// MaxBatch is the largest number of requests coalesced into one
	// forward pass (default 64).
	MaxBatch int
	// MaxDelay is how long the oldest queued request may wait before a
	// partial batch is flushed (default 2ms). Latency floor vs batch
	// occupancy is the serving trade-off this knob sets.
	MaxDelay time.Duration
	// QueueDepth bounds the number of in-flight requests; further
	// Predict calls fail with ErrOverloaded (default 4*MaxBatch).
	QueueDepth int
	// CacheSize is the LRU response-cache capacity in entries; 0
	// disables caching.
	CacheSize int
	// CacheQuantum is the grid step inputs are snapped to when forming
	// cache keys (default 1e-6). Coarser grids trade exactness for hit
	// rate; the JAG input cube is [0,1]^5 so 1e-6 is effectively exact.
	CacheQuantum float64
	// PassOverhead simulates fixed per-dispatch cost ahead of each
	// forward pass — the GPU kernel-launch / accelerator-RPC overhead a
	// production deployment pays once per batch. Zero for library use;
	// the benchmarks use it the way ensemble.Config.TaskOverhead models
	// Merlin's per-task scheduler cost (Section II-C), to make the
	// batching economics measurable on CPU-only hosts where per-row
	// arithmetic is the only real per-pass cost.
	PassOverhead time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.CacheQuantum <= 0 {
		c.CacheQuantum = 1e-6
	}
	return c
}

// request is one queued prediction with its reply channel.
type request struct {
	x        []float32
	enqueued time.Time
	resp     chan []float32
}

// Server owns the micro-batching queue in front of a replica pool.
type Server struct {
	cfg   Config
	pool  *Pool
	cache *lru
	stats *Stats

	queue    chan *request
	batches  chan []*request
	inflight atomic.Int64

	mu     sync.RWMutex // guards closed vs in-progress queue sends
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts the batcher and one worker per pool replica. Close
// must be called to release them.
func NewServer(pool *Pool, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    pool,
		stats:   newStats(),
		queue:   make(chan *request, cfg.QueueDepth),
		batches: make(chan []*request, pool.Replicas()),
	}
	if cfg.CacheSize > 0 {
		s.cache = newLRU(cfg.CacheSize)
	}
	s.wg.Add(1)
	go s.batchLoop()
	// One worker per replica: a worker holds a whole batch through one
	// forward pass, so replica count is the pipeline's parallel width.
	for w := 0; w < pool.Replicas(); w++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	return s
}

// Pool returns the replica pool the server dispatches to.
func (s *Server) Pool() *Pool { return s.pool }

// OutputDim returns the width of prediction vectors.
func (s *Server) OutputDim() int { return s.pool.OutputDim() }

// Predict returns the surrogate's output bundle for one 5-D input. It
// blocks until the batched forward pass completes, fails fast with
// ErrOverloaded under backpressure, and serves repeated inputs from the
// LRU cache when one is configured. The returned slice is the
// caller's on a miss; on a cache hit it is the shared cached row and
// must not be mutated.
func (s *Server) Predict(x []float32) ([]float32, error) {
	if len(x) != jag.InputDim {
		return nil, fmt.Errorf("serve: input dim %d, want %d", len(x), jag.InputDim)
	}
	for _, v := range x {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("serve: non-finite input %v", v)
		}
	}
	var key string
	if s.cache != nil {
		key = quantKey(x, s.cfg.CacheQuantum)
		if y, ok := s.cache.get(key); ok {
			s.stats.cacheHit()
			return y, nil
		}
	}

	if s.inflight.Add(1) > int64(s.cfg.QueueDepth) {
		s.inflight.Add(-1)
		s.stats.overload()
		return nil, ErrOverloaded
	}
	req := &request{x: x, enqueued: time.Now(), resp: make(chan []float32, 1)}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.inflight.Add(-1)
		return nil, ErrClosed
	}
	s.queue <- req // cannot block: inflight <= QueueDepth == cap(queue)
	s.mu.RUnlock()
	if s.cache != nil {
		// Counted only once the request is admitted, so overload
		// rejections don't inflate the miss rate.
		s.stats.cacheMiss()
	}

	y := <-req.resp
	s.inflight.Add(-1)
	if y == nil {
		return nil, ErrClosed
	}
	if s.cache != nil {
		// Cache a copy: y is a view into the whole batch output matrix,
		// and caching the view would pin MaxBatch rows per entry.
		s.cache.put(key, append([]float32(nil), y...))
	}
	return y, nil
}

// batchLoop coalesces queued requests into batches: flush at MaxBatch
// occupancy or MaxDelay after the first request of the batch arrived.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	defer close(s.batches)
	// Go 1.23+ timer semantics: Stop/Reset discard any pending fire, so
	// no manual channel draining is needed between batches.
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		pending := make([]*request, 1, s.cfg.MaxBatch)
		pending[0] = first
		timer.Reset(s.cfg.MaxDelay)
		closed := false
	collect:
		for len(pending) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.queue:
				if !ok {
					closed = true
					break collect
				}
				pending = append(pending, r)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		s.batches <- pending
		if closed {
			return
		}
	}
}

// workerLoop assembles each batch into one matrix, runs it through the
// pool, and scatters the rows back to the waiting callers.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	for reqs := range s.batches {
		x := tensor.New(len(reqs), jag.InputDim)
		for i, r := range reqs {
			copy(x.Row(i), r.x)
		}
		if s.cfg.PassOverhead > 0 {
			// Spin rather than sleep: modeled dispatch overhead keeps
			// the execution unit busy, like a kernel launch does.
			for start := time.Now(); time.Since(start) < s.cfg.PassOverhead; {
			}
		}
		y := s.pool.Run(x)
		now := time.Now()
		for i, r := range reqs {
			// Copy the row out of the batch matrix: a view would pin
			// all MaxBatch rows for as long as any caller retains its
			// result.
			out := make([]float32, y.Cols)
			copy(out, y.Row(i))
			s.stats.request(now.Sub(r.enqueued))
			r.resp <- out
		}
		s.stats.batch(len(reqs))
	}
}

// Stats returns a consistent snapshot of the serving counters.
func (s *Server) Stats() StatsSnapshot { return s.stats.snapshot() }

// Close drains the pipeline and releases the batcher and workers.
// In-flight requests complete; concurrent and later Predict calls
// return ErrClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}
