package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Client is a small Go client for the v1 serving API — the in-process
// counterpart of cmd/jagserve's HTTP surface, sharing the wire.go frame
// codec with the server so binary transport round-trips through one
// implementation.
type Client struct {
	base string
	hc   *http.Client

	// Binary selects the tensor frame transport for call bodies and
	// replies; JSON otherwise. Either way the client accepts both reply
	// transports, so a batch with row errors (which the server always
	// reports as JSON) still decodes.
	Binary bool
	// Priority is the queue lane requests are submitted under; the zero
	// value is Interactive.
	Priority Priority
	// DeadlineMs bounds each call's time in the serving pipeline
	// (independent of the context deadline); 0 uses the server default.
	DeadlineMs int
}

// NewClient targets a server base URL such as "http://localhost:8080".
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
}

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports) and returns the receiver for chaining.
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

// Models fetches the GET /v1/models listing.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var out ModelsResponse
	if err := c.getJSON(ctx, "/v1/models", &out); err != nil {
		return nil, err
	}
	return out.Models, nil
}

// Stats fetches one model's serving counters, including its hot-swap
// generation (the counters reset when a reload swaps the generation).
func (c *Client) Stats(ctx context.Context, model string) (ModelStats, error) {
	var snap ModelStats
	err := c.getJSON(ctx, "/v1/models/"+url.PathEscape(model)+"/stats", &snap)
	return snap, err
}

// Call submits a batch of input rows to POST /v1/models/{model}/{method}
// and returns the aligned outputs. rowErrs is non-nil when some rows
// failed (aligned with inputs, nil entries for successes); err reports
// transport problems and whole-request failures such as an unknown
// model or method.
func (c *Client) Call(ctx context.Context, model, method string, inputs [][]float32) (outputs [][]float32, rowErrs []*RowError, err error) {
	u := c.base + "/v1/models/" + url.PathEscape(model) + "/" + url.PathEscape(method)
	var body []byte
	contentType := "application/json"
	if c.Binary {
		body, err = EncodeFrame(inputs)
		if err != nil {
			return nil, nil, err
		}
		contentType = ContentTypeTensor
	} else {
		body, err = json.Marshal(PredictRequest{Inputs: inputs})
		if err != nil {
			return nil, nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if c.Binary {
		// Prefer the frame but accept the JSON fallback the server uses
		// to carry aligned row errors.
		req.Header.Set("Accept", ContentTypeTensor+", application/json")
	}
	if c.Priority != Interactive {
		req.Header.Set(PriorityHeader, c.Priority.String())
	}
	if c.DeadlineMs > 0 {
		req.Header.Set(DeadlineHeader, strconv.Itoa(c.DeadlineMs))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()

	if strings.HasPrefix(resp.Header.Get("Content-Type"), ContentTypeTensor) {
		rows, err := DecodeFrame(resp.Body, 0, len(inputs))
		if err != nil {
			return nil, nil, err
		}
		return rows, nil, nil
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	var pr PredictResponse
	if jsonErr := json.Unmarshal(raw, &pr); jsonErr == nil && (resp.StatusCode == http.StatusOK || pr.Errors != nil) {
		return pr.Outputs, pr.Errors, nil
	}
	return nil, nil, fmt.Errorf("serve: %s %s: %s", model, method, errorBody(resp.StatusCode, raw))
}

// getJSON performs one GET and decodes the JSON reply into v.
func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: GET %s: %s", path, errorBody(resp.StatusCode, raw))
	}
	return json.Unmarshal(raw, v)
}

// errorBody renders a failed reply for error messages, preferring the
// server's JSON {"error": ...} detail over the raw status.
func errorBody(status int, raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return fmt.Sprintf("%s (HTTP %d)", e.Error, status)
	}
	return fmt.Sprintf("HTTP %d", status)
}
