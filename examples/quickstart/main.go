// Quickstart: train a small CycleGAN surrogate of the ICF simulator on
// synthetic JAG data and query it — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)

	// 1. Configure a surrogate for the tiny 8x8 geometry (3 views x 2
	//    channels) — the paper's architecture at laptop scale.
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{48}
	cfg.ForwardHidden = []int{24}
	cfg.InverseHidden = []int{16}
	cfg.DiscHidden = []int{16}

	// 2. Train it on 512 simulations for 600 steps.
	fmt.Println("training surrogate on 512 JAG simulations ...")
	model, err := core.TrainSurrogate(cfg, 512, 600, 32, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Predict an unseen experiment and compare against ground truth.
	truth := jag.SimulateAt(jag.Tiny8, 9999)
	x := tensor.FromSlice(1, jag.InputDim, truth.X)
	pred := model.Predict(x)

	fmt.Println("\ninput parameters:", truth.X)
	fmt.Println("scalar      truth    predicted")
	names := []string{"yield", "tion", "bang_time", "burn_width", "rhoR"}
	for i, n := range names {
		fmt.Printf("%-10s  %.4f   %.4f\n", n, truth.Scalars[i], pred.At(0, i))
	}

	// 4. The inverse model recovers the inputs from the latent space
	//    (the paper's self-consistency loss G(F(x)) ≈ x).
	inv := model.Invert(x)
	fmt.Println("\ninverse model round trip:")
	for i := 0; i < jag.InputDim; i++ {
		fmt.Printf("  x[%d]: %.4f -> %.4f\n", i, truth.X[i], inv.At(0, i))
	}

	// 5. Quantify: forward + inverse validation loss on held-out samples.
	xv := tensor.New(32, jag.InputDim)
	yv := tensor.New(32, jag.Tiny8.OutputDim())
	for i := 0; i < 32; i++ {
		s := jag.SimulateAt(jag.Tiny8, 5000+i)
		copy(xv.Row(i), s.X)
		copy(yv.Row(i), s.Output())
	}
	fmt.Printf("\nvalidation (fwd+inv MAE): %.5f\n", model.Eval(xv, yv))
	fmt.Printf("forward-image MAE:        %.5f\n", nn.MAEValue(model.Predict(xv), yv))
}
