// Package kind implements the partitioned K-independent training baseline
// of Section IV-E: K trainers each train a model on a random 1/K subset of
// the data with no tournaments, and the best final model is selected by
// validation loss. The paper uses it to show why LTFB's model exchange
// matters — every K-independent trainer is confined to an ever-diminishing
// slice of the data, so its generalization degrades as K grows, while LTFB
// models survive exposure to many silos.
package kind

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/reader"
	"repro/internal/trainer"
)

// Result is one trainer's view of the final selection.
type Result struct {
	TrainerID int
	// MyLoss is this trainer's final validation loss.
	MyLoss float64
	// Losses holds every trainer's final validation loss by trainer id.
	Losses []float64
	// BestTrainer is the arg-min of Losses.
	BestTrainer int
	// BestLoss is the winning validation loss.
	BestLoss float64
}

// Member is one rank's participation in a K-independent run. World ranks
// are laid out in contiguous trainer blocks, as in package ltfb.
type Member struct {
	TrainerID   int
	NumTrainers int
	World       *comm.Comm
	T           *trainer.Trainer
}

// Train advances this member's trainer the given number of steps, then
// evaluates on val and performs the global best-model selection. Collective
// across all world ranks.
func (m *Member) Train(steps int, val reader.Dataset, evalBatch int) (Result, error) {
	res := Result{TrainerID: m.TrainerID, BestTrainer: -1}
	if m.NumTrainers < 1 {
		return res, fmt.Errorf("kind: %d trainers", m.NumTrainers)
	}
	if err := m.T.Advance(steps); err != nil {
		return res, err
	}
	loss, err := m.T.Evaluate(val, evalBatch)
	if err != nil {
		return res, err
	}
	res.MyLoss = loss

	// Every world rank contributes its trainer's loss; ranks of one trainer
	// contribute identical values, so per-trainer losses can be read off
	// block-wise.
	all := m.World.AllgatherFloat64(loss)
	ranksPer := m.World.Size() / m.NumTrainers
	res.Losses = make([]float64, m.NumTrainers)
	for k := 0; k < m.NumTrainers; k++ {
		res.Losses[k] = all[k*ranksPer]
	}
	res.BestTrainer = 0
	res.BestLoss = res.Losses[0]
	for k, l := range res.Losses {
		if l < res.BestLoss {
			res.BestLoss = l
			res.BestTrainer = k
		}
	}
	return res, nil
}
