package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow keeps request lifecycles intact through the serving stack. A
// function that receives a context.Context owns part of a request's
// cancellation chain: deadlines, client disconnects, and hot-swap
// drains all flow through it. Inside such a function:
//
//   - calling context.Background() or context.TODO() severs the chain —
//     downstream work outlives the request, queued rows stop being
//     droppable, and Registry.Replace drains wait on work whose caller
//     is long gone; reported.
//   - passing context.Background()/TODO() as the context argument of a
//     callee (a PredictContext-style API whose first parameter is a
//     Context) while holding a perfectly good ctx is the same bug one
//     call later; reported.
//
// Functions without a Context parameter are exempt: entry points
// (main, tests, Predict-style convenience wrappers) legitimately mint
// root contexts.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions receiving a ctx must not mint context.Background/TODO or drop the ctx when calling ctx-taking APIs",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				// Reached only when no enclosing ctx-taking function
				// claimed this subtree (their walk stops descent), so
				// the literal is checked iff it receives its own ctx.
				if hasCtxParam(info, fn.Type) {
					checkCtxBody(pass, fn.Body)
					return false
				}
				return true
			default:
				return true
			}
			if body == nil || !hasCtxParam(info, ftype) {
				return true
			}
			checkCtxBody(pass, body)
			return false // checkCtxBody walked the subtree
		})
	}
	return nil
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(info *types.Info, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if isContextType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkCtxBody reports Background/TODO calls inside a ctx-holding
// function body. A call that feeds a ctx-taking API is reported as a
// dropped ctx; a bare minting is reported as severing the chain.
func checkCtxBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	walkWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isPkgFunc(info, call, "context", "Background", "TODO") {
			return true
		}
		if outer, ok := parentNode(stack).(*ast.CallExpr); ok {
			if fn := calleeFunc(info, outer); fn != nil {
				pass.Reportf(call.Pos(), "context.%s passed to %s drops the caller's ctx: deadlines and cancellation stop propagating — pass the ctx parameter (or a context derived from it)",
					calleeFunc(info, call).Name(), fn.Name())
				return true
			}
		}
		pass.Reportf(call.Pos(), "context.%s inside a function that already receives a ctx severs the cancellation chain — derive from the ctx parameter instead",
			calleeFunc(info, call).Name())
		return true
	})
}
