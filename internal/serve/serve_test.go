package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/tensor"
)

// testModelCfg is a tiny architecture that predicts instantly.
func testModelCfg() cyclegan.Config {
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{16}
	cfg.ForwardHidden = []int{8}
	cfg.InverseHidden = []int{8}
	cfg.DiscHidden = []int{8}
	return cfg
}

// newTestServer builds a single-replica server over a fresh surrogate.
func newTestServer(t *testing.T, cfg Config) (*Server, *cyclegan.Surrogate) {
	t.Helper()
	model := cyclegan.New(testModelCfg(), 42)
	pool, err := NewPool([]*cyclegan.Surrogate{model}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(pool, cfg)
	t.Cleanup(s.Close)
	return s, model
}

// testInput returns a deterministic in-cube input distinct per i.
func testInput(i int) []float32 {
	x := make([]float32, jag.InputDim)
	for d := range x {
		x[d] = float32((i*7+d*13)%101) / 101
	}
	return x
}

// TestPredictMatchesModel checks that a served prediction equals a
// direct forward pass of an identically-seeded reference model. With
// MaxBatch 1 the served batch has the same shape as the reference
// batch, so equality is bitwise.
func TestPredictMatchesModel(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 1})
	ref := cyclegan.New(testModelCfg(), 42)

	x := testInput(3)
	got, err := s.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	xm := tensor.New(1, jag.InputDim)
	copy(xm.Row(0), x)
	want := ref.Predict(xm)
	if len(got) != want.Cols {
		t.Fatalf("output dim %d, want %d", len(got), want.Cols)
	}
	for j, v := range got {
		if v != want.At(0, j) {
			t.Fatalf("output[%d] = %v, want %v", j, v, want.At(0, j))
		}
	}
}

// TestCallInvert checks that the invert method is dispatched to the
// model's inverse pass: with MaxBatch 1 the served row is bitwise equal
// to a direct G(F(x)) pass of an identically-seeded reference model.
func TestCallInvert(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 1})
	ref := cyclegan.New(testModelCfg(), 42)

	x := testInput(4)
	got, err := s.Call(context.Background(), MethodInvert, x, Interactive)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != jag.InputDim {
		t.Fatalf("invert output dim %d, want %d", len(got), jag.InputDim)
	}
	xm := tensor.New(1, jag.InputDim)
	copy(xm.Row(0), x)
	want := ref.Invert(xm)
	for j, v := range got {
		if v != want.At(0, j) {
			t.Fatalf("invert[%d] = %v, want %v", j, v, want.At(0, j))
		}
	}
}

// TestCallUnknownMethod checks admission-time method validation.
func TestCallUnknownMethod(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if _, err := s.Call(context.Background(), "embed", testInput(0), Interactive); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method error = %v, want ErrUnknownMethod", err)
	}
}

// TestMethodsNeverShareBatch floods predict and invert concurrently
// with MaxBatch far above the row count: every reply must have its own
// method's width (a mixed batch would scatter rows of the wrong shape)
// and the per-method stats must account for both streams.
func TestMethodsNeverShareBatch(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 64, MaxDelay: time.Millisecond})
	outDim := jag.Tiny8.OutputDim()

	const per = 24
	var wg sync.WaitGroup
	for i := 0; i < per; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			y, err := s.Call(context.Background(), MethodPredict, testInput(i), Interactive)
			if err != nil {
				t.Error(err)
				return
			}
			if len(y) != outDim {
				t.Errorf("predict row width %d, want %d", len(y), outDim)
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			y, err := s.Call(context.Background(), MethodInvert, testInput(i), Interactive)
			if err != nil {
				t.Error(err)
				return
			}
			if len(y) != jag.InputDim {
				t.Errorf("invert row width %d, want %d", len(y), jag.InputDim)
			}
		}(i)
	}
	wg.Wait()

	snap := s.Stats()
	if snap.Requests != 2*per {
		t.Fatalf("requests = %d, want %d", snap.Requests, 2*per)
	}
	if snap.MethodRequests[MethodPredict] != per || snap.MethodRequests[MethodInvert] != per {
		t.Fatalf("method split = %+v, want %d each", snap.MethodRequests, per)
	}
}

// TestInvertCacheIsolated pins the method prefix in cache keys: the
// same design point served through predict and invert must produce two
// distinct cache entries, never one method's answer for the other.
func TestInvertCacheIsolated(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 1, CacheSize: 8})
	x := testInput(6)
	fwd, err := s.Call(context.Background(), MethodPredict, x, Interactive)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := s.Call(context.Background(), MethodInvert, x, Interactive)
	if err != nil {
		t.Fatal(err)
	}
	if len(fwd) == len(inv) {
		t.Fatalf("test geometry degenerate: predict and invert widths both %d", len(fwd))
	}
	inv2, err := s.Call(context.Background(), MethodInvert, x, Interactive)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv2) != len(inv) {
		t.Fatal("cached invert row has the wrong method's width")
	}
	snap := s.Stats()
	if snap.CacheMisses != 2 || snap.CacheHits != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/2", snap.CacheHits, snap.CacheMisses)
	}
}

// failingModel is a non-Pool Model whose forward pass always errors —
// it exercises both the custom-Model path (worker count defaults to 1
// without a Replicas method) and the ErrModelFailure plumbing.
type failingModel struct{}

func (failingModel) Dims() map[string]Dims {
	return map[string]Dims{MethodPredict: {In: 2, Out: 3}}
}

func (failingModel) Run(method string, x *tensor.Matrix) (*tensor.Matrix, error) {
	return nil, errors.New("synthetic pass failure")
}

// TestModelFailure checks that a Run error fails the batch's rows with
// ErrModelFailure — and is visible in the stats, so a failing model
// cannot masquerade as an idle one.
func TestModelFailure(t *testing.T) {
	s := NewServer(failingModel{}, Config{MaxBatch: 1})
	t.Cleanup(s.Close)
	_, err := s.Call(context.Background(), MethodPredict, []float32{0.1, 0.2}, Interactive)
	if !errors.Is(err, ErrModelFailure) {
		t.Fatalf("Call error = %v, want ErrModelFailure", err)
	}
	snap := s.Stats()
	if snap.ModelFailures != 1 {
		t.Fatalf("model failures = %d, want 1", snap.ModelFailures)
	}
	if snap.Requests != 0 {
		t.Fatalf("failed row counted as a served request: %+v", snap)
	}
}

// TestFlushOnFull submits exactly MaxBatch concurrent requests under a
// long deadline: the batch must flush on occupancy, in one forward pass.
func TestFlushOnFull(t *testing.T) {
	const n = 8
	s, _ := newTestServer(t, Config{MaxBatch: n, MaxDelay: time.Minute})

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Predict(testInput(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	snap := s.Stats()
	if snap.Requests != n {
		t.Fatalf("requests = %d, want %d", snap.Requests, n)
	}
	if snap.Batches != 1 || snap.MeanBatch != n {
		t.Fatalf("batches = %d (mean %v), want 1 full batch of %d",
			snap.Batches, snap.MeanBatch, n)
	}
}

// TestFlushOnDeadline submits fewer requests than MaxBatch: the partial
// batch must flush once MaxDelay elapses rather than waiting forever.
func TestFlushOnDeadline(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 64, MaxDelay: 5 * time.Millisecond})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Predict(testInput(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	snap := s.Stats()
	if snap.Requests != 3 {
		t.Fatalf("requests = %d, want 3", snap.Requests)
	}
	if snap.MaxBatch > 3 {
		t.Fatalf("max batch = %v, want <= 3", snap.MaxBatch)
	}
}

// TestBackpressure fills QueueDepth with requests parked behind a long
// flush deadline, then checks that the next caller fails fast with
// ErrOverloaded and that the parked requests still complete.
func TestBackpressure(t *testing.T) {
	const depth = 4
	s, _ := newTestServer(t, Config{
		MaxBatch:   64,
		MaxDelay:   300 * time.Millisecond,
		QueueDepth: depth,
	})

	var wg sync.WaitGroup
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Predict(testInput(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	// Wait until all depth requests are in flight.
	deadline := time.Now().Add(2 * time.Second)
	for s.inflight.Load() < depth {
		if time.Now().After(deadline) {
			t.Fatal("requests never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Predict(testInput(99)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow Predict error = %v, want ErrOverloaded", err)
	}
	wg.Wait()

	snap := s.Stats()
	if snap.Overloads != 1 {
		t.Fatalf("overloads = %d, want 1", snap.Overloads)
	}
	if snap.Requests != depth {
		t.Fatalf("requests = %d, want %d", snap.Requests, depth)
	}
}

// TestConcurrentStress hammers the queue from many goroutines and
// verifies every response against an identically-seeded reference model
// (tolerance-based: batch shape affects nothing but is kept loose in
// case kernel blocking ever becomes shape-dependent).
func TestConcurrentStress(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 16, MaxDelay: time.Millisecond})
	// The reference model is shared across checker goroutines and
	// nn.Network is not concurrency-safe, so serialize its use.
	ref := cyclegan.New(testModelCfg(), 42)
	var refMu sync.Mutex

	const goroutines, perG = 32, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				x := testInput(g*perG + k)
				got, err := s.Predict(x)
				if err != nil {
					t.Error(err)
					return
				}
				xm := tensor.New(1, jag.InputDim)
				copy(xm.Row(0), x)
				refMu.Lock()
				want := ref.Predict(xm)
				refMu.Unlock()
				for j, v := range got {
					d := v - want.At(0, j)
					if d < 0 {
						d = -d
					}
					if d > 1e-5 {
						t.Errorf("req %d output[%d] = %v, want %v", g*perG+k, j, v, want.At(0, j))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	snap := s.Stats()
	if snap.Requests != goroutines*perG {
		t.Fatalf("requests = %d, want %d", snap.Requests, goroutines*perG)
	}
	if snap.MeanBatch <= 1 && snap.Batches == goroutines*perG {
		t.Log("warning: no coalescing observed under stress (timing-dependent)")
	}
}

// TestPassOverheadLatency checks that the modeled dispatch overhead is
// paid once per batch and shows up in the latency meter.
func TestPassOverheadLatency(t *testing.T) {
	s, _ := newTestServer(t, Config{
		MaxBatch:     4,
		MaxDelay:     time.Minute,
		PassOverhead: 500 * time.Microsecond,
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Predict(testInput(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	snap := s.Stats()
	if snap.Batches != 1 {
		t.Fatalf("batches = %d, want 1", snap.Batches)
	}
	if snap.MeanLatMs < 0.3 {
		t.Fatalf("mean latency %.3fms, want >= 0.3ms of modeled overhead", snap.MeanLatMs)
	}
}

// TestCacheAccounting checks hit/miss counters and that a cache hit
// returns the same prediction without another forward pass.
func TestCacheAccounting(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 1, CacheSize: 8})

	x := testInput(5)
	first, err := s.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := range first {
		if first[j] != second[j] {
			t.Fatalf("cached output differs at %d", j)
		}
	}

	snap := s.Stats()
	if snap.CacheMisses != 1 || snap.CacheHits != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
	if snap.Requests != 1 {
		t.Fatalf("model requests = %d, want 1 (second served from cache)", snap.Requests)
	}
}

// TestPredictAfterClose checks the ErrClosed path.
func TestPredictAfterClose(t *testing.T) {
	model := cyclegan.New(testModelCfg(), 1)
	pool, err := NewPool([]*cyclegan.Surrogate{model}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(pool, Config{})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Predict(testInput(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after Close = %v, want ErrClosed", err)
	}
}

// TestExpiredRowDroppedAtFlush parks one request behind a long flush
// deadline with a context that expires first: the caller must get
// ErrExpired, and the stale row must be discarded at flush time without
// a forward pass — visible as expired=1 with zero requests and batches.
func TestExpiredRowDroppedAtFlush(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 64, MaxDelay: 60 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := s.PredictContext(ctx, testInput(0)); !errors.Is(err, ErrExpired) {
		t.Fatalf("PredictContext = %v, want ErrExpired", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := s.Stats()
		if snap.Expired == 1 {
			if snap.Requests != 0 || snap.Batches != 0 {
				t.Fatalf("forward pass ran for an expired row: %+v", snap)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("expired row never dropped: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancelledBeforeAdmission checks that a dead-on-arrival context is
// rejected at admission and counted in the cancelled bucket.
func TestCancelledBeforeAdmission(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.PredictContext(ctx, testInput(1)); !errors.Is(err, ErrCancelled) {
		t.Fatalf("PredictContext = %v, want ErrCancelled", err)
	}
	snap := s.Stats()
	if snap.Cancelled != 1 || snap.Requests != 0 {
		t.Fatalf("cancelled/requests = %d/%d, want 1/0", snap.Cancelled, snap.Requests)
	}
}

// TestRecvPriority pins the lane-draining contract of recv: strict
// interactive-first order, bulk only when interactive is empty, timer
// fires only when both lanes are empty, recvClosed only once both lanes
// are closed and drained.
func TestRecvPriority(t *testing.T) {
	qi := make(chan *request, 4)
	qb := make(chan *request, 4)
	i1, i2 := &request{class: Interactive}, &request{class: Interactive}
	b1, b2 := &request{class: Bulk}, &request{class: Bulk}
	qb <- b1
	qb <- b2
	qi <- i1
	qi <- i2

	want := []*request{i1, i2, b1, b2}
	for k, w := range want {
		r, st := recv(&qi, &qb, nil)
		if st != recvReq || r != w {
			t.Fatalf("pull %d = %v (state %d), want request %d in interactive-first order", k, r, st, k)
		}
	}

	fired := make(chan time.Time, 1)
	fired <- time.Time{}
	// A waiting interactive request beats even an already-fired timer:
	// the fast path drains the interactive lane before the select.
	qi <- i1
	qb <- b1
	if r, st := recv(&qi, &qb, fired); st != recvReq || r != i1 {
		t.Fatalf("ready timer preempted a waiting interactive request (state %d)", st)
	}
	if r, st := recv(&qi, &qb, nil); st != recvReq || r != b1 {
		t.Fatalf("bulk request not drained (state %d)", st)
	}
	if _, st := recv(&qi, &qb, fired); st != recvTimeout {
		t.Fatalf("empty lanes with ready timer: state %d, want recvTimeout", st)
	}

	close(qi)
	close(qb)
	if _, st := recv(&qi, &qb, nil); st != recvClosed {
		t.Fatal("closed+drained lanes did not report recvClosed")
	}
	if qi != nil || qb != nil {
		t.Fatal("closed lanes were not nilled out")
	}
}

// TestReapBulk checks that context-dead rows at the front of the bulk
// lane are reaped — replied to, counted, inflight slot released — so a
// starved bulk lane cannot pin queue capacity forever, while an alive
// row is pushed back rather than jumping ahead of interactive work.
func TestReapBulk(t *testing.T) {
	s := &Server{stats: newStats()}
	qb := make(chan *request, 4)
	dead := func() *request {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		return &request{ctx: ctx, class: Bulk, resp: make(chan result, 1)}
	}
	d1, d2, d3 := dead(), dead(), dead()
	alive := &request{ctx: context.Background(), class: Bulk, resp: make(chan result, 1)}
	qb <- d1
	qb <- d2
	qb <- alive
	qb <- d3
	s.inflight.Store(4)

	if got := s.reapBulk(&qb); got != nil {
		t.Fatalf("reapBulk returned %v, want nil (alive row pushed back)", got)
	}
	for i, d := range []*request{d1, d2} {
		res := <-d.resp
		if !errors.Is(res.err, ErrCancelled) {
			t.Fatalf("dead row %d reply = %v, want ErrCancelled", i, res.err)
		}
	}
	if n := s.inflight.Load(); n != 2 {
		t.Fatalf("inflight = %d, want 2 (two dead rows released)", n)
	}
	// The alive row rotated to the back: lane is now [d3, alive].
	if len(qb) != 2 || <-qb != d3 || <-qb != alive {
		t.Fatal("alive row was not rotated behind the remaining rows")
	}
	if snap := s.stats.snapshot(); snap.Cancelled != 2 {
		t.Fatalf("cancelled = %d, want 2", snap.Cancelled)
	}

	// Once the server is closed the lane cannot accept the push-back:
	// the alive row is handed to the caller to serve in the next batch.
	s.closed = true
	qb <- alive
	if got := s.reapBulk(&qb); got != alive {
		t.Fatalf("closed-server reap = %v, want the alive row", got)
	}
	s.closed = false

	// An empty open lane yields nil without blocking; a closed drained
	// lane nils the pointer.
	empty := make(chan *request, 1)
	if r := s.reapBulk(&empty); r != nil {
		t.Fatalf("empty lane reap = %v, want nil", r)
	}
	close(empty)
	if r := s.reapBulk(&empty); r != nil || empty != nil {
		t.Fatal("closed lane not nilled out")
	}
}

// TestPriorityInteractiveFirst clogs the pipeline end to end (worker
// busy, batches channel full, batcher blocked mid-send) so that one
// bulk and one interactive request are both parked in their lanes, then
// checks the batcher serves the interactive one first. Sequencing uses
// queue introspection, not sleeps; PassOverhead keeps the pipeline
// clogged for 250ms so the setup comfortably finishes inside the
// window even under the race detector.
func TestPriorityInteractiveFirst(t *testing.T) {
	s, _ := newTestServer(t, Config{
		MaxBatch:     1,
		MaxDelay:     time.Millisecond,
		QueueDepth:   16,
		PassOverhead: 250 * time.Millisecond,
	})
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	submit := func(name string, class Priority, i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.PredictPriority(context.Background(), testInput(i), class); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}()
	}

	// Three bulk cloggers fill the single worker, the batches channel
	// (capacity = one replica) and the batcher's blocked send — their
	// relative order doesn't matter. Once all three are admitted and
	// out of the lane, nothing pulls from the lanes for the rest of the
	// clog window, so C and D park there and the batcher's next pull
	// must take interactive D before bulk C.
	lanes := &s.queues[MethodPredict].lanes
	submit("A", Bulk, 0)
	submit("B", Bulk, 1)
	submit("E", Bulk, 2)
	waitFor("cloggers to fill the pipeline", func() bool {
		return s.inflight.Load() == 3 && len(lanes[Bulk]) == 0
	})
	submit("C", Bulk, 3)
	waitFor("C to park in the bulk lane", func() bool { return len(lanes[Bulk]) == 1 })
	submit("D", Interactive, 4)
	waitFor("D to park in the interactive lane", func() bool { return len(lanes[Interactive]) == 1 })
	wg.Wait()

	pos := make(map[string]int, len(order))
	for i, name := range order {
		pos[name] = i
	}
	if len(order) != 5 {
		t.Fatalf("completed %d requests, want 5 (%v)", len(order), order)
	}
	if pos["D"] > pos["C"] {
		t.Fatalf("bulk request served before interactive: %v", order)
	}
}

// TestCloseVsPredictRace hammers the queue-admission boundary from many
// goroutines while the server shuts down concurrently; run under -race.
// Every call must end with a definite outcome from the lifecycle
// vocabulary and Close must not hang on abandoned requests.
func TestCloseVsPredictRace(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		model := cyclegan.New(testModelCfg(), 42)
		pool, err := NewPool([]*cyclegan.Surrogate{model}, false)
		if err != nil {
			t.Fatal(err)
		}
		s := NewServer(pool, Config{MaxBatch: 4, MaxDelay: 200 * time.Microsecond, QueueDepth: 8})

		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < 4; k++ {
					_, err := s.Predict(testInput(g*4 + k))
					if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrOverloaded) {
						t.Errorf("Predict during Close = %v", err)
					}
				}
			}(g)
		}
		s.Close()
		wg.Wait()

		if _, err := s.Predict(testInput(0)); !errors.Is(err, ErrClosed) {
			t.Fatalf("Predict after Close = %v, want ErrClosed", err)
		}
	}
}

// TestPredictPriorityInvalid rejects classes outside the lane set.
func TestPredictPriorityInvalid(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if _, err := s.PredictPriority(context.Background(), testInput(0), Priority(9)); err == nil {
		t.Fatal("unknown priority accepted")
	}
}

// TestParsePriority covers the wire names.
func TestParsePriority(t *testing.T) {
	for in, want := range map[string]Priority{
		"": Interactive, "interactive": Interactive, "Bulk": Bulk, "bulk": Bulk,
	} {
		got, err := ParsePriority(in)
		if err != nil || got != want {
			t.Fatalf("ParsePriority(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Fatal("unknown priority name accepted")
	}
	if Interactive.String() != "interactive" || Bulk.String() != "bulk" {
		t.Fatal("Priority.String mismatch")
	}
}

// TestPredictBadDim checks input validation.
func TestPredictBadDim(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if _, err := s.Predict([]float32{1, 2}); err == nil {
		t.Fatal("short input accepted")
	}
	nan := float32(math.NaN())
	if _, err := s.Predict([]float32{nan, 0, 0, 0, 0}); err == nil {
		t.Fatal("NaN input accepted")
	}
	inf := float32(math.Inf(1))
	if _, err := s.Predict([]float32{0, inf, 0, 0, 0}); err == nil {
		t.Fatal("Inf input accepted")
	}
}
