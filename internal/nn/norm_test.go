package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestBatchNormNormalizesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bn := NewBatchNorm(4)
	x := tensor.New(64, 4)
	tensor.FillGaussian(x, rng, 5, 3) // far from standard
	y := bn.Forward(x, true)
	// With gamma=1, beta=0 the output must be near-standardized per column.
	for j := 0; j < 4; j++ {
		var mean, varc float64
		for i := 0; i < 64; i++ {
			mean += float64(y.At(i, j))
		}
		mean /= 64
		for i := 0; i < 64; i++ {
			d := float64(y.At(i, j)) - mean
			varc += d * d
		}
		varc /= 64
		if math.Abs(mean) > 1e-4 || math.Abs(varc-1) > 1e-2 {
			t.Fatalf("column %d not standardized: mean %v var %v", j, mean, varc)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bn := NewBatchNorm(3)
	x := tensor.New(32, 3)
	tensor.FillGaussian(x, rng, 2, 1)
	for i := 0; i < 50; i++ {
		bn.Forward(x, true)
	}
	// Evaluation on a single sample must be deterministic and finite.
	one := tensor.New(1, 3)
	one.Fill(2)
	y := bn.Forward(one, false)
	if y.HasNaN() {
		t.Fatal("eval-mode output has NaN")
	}
	// After many batches of N(2,1), a sample at the mean normalizes to ~0.
	for j := 0; j < 3; j++ {
		if math.Abs(float64(y.At(0, j))) > 0.5 {
			t.Fatalf("running stats off: normalized mean sample = %v", y.Row(0))
		}
	}
}

// Gradient checks for both normalization layers through a small network.
func TestGradientCheckBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := &Network{Name: "bn", Layers: []Layer{
		NewLinear(4, 6, rng),
		NewBatchNorm(6),
		&Tanh{},
		NewLinear(6, 2, rng),
	}}
	gradCheck(t, net, MSE, 4, 2, 3e-2)
}

func TestGradientCheckLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := &Network{Name: "ln", Layers: []Layer{
		NewLinear(4, 6, rng),
		NewLayerNorm(6),
		&ReLU{},
		NewLinear(6, 2, rng),
	}}
	gradCheck(t, net, MSE, 4, 2, 3e-2)
}

func TestLayerNormPerSample(t *testing.T) {
	ln := NewLayerNorm(8)
	x := tensor.New(2, 8)
	for j := 0; j < 8; j++ {
		x.Set(0, j, float32(j))
		x.Set(1, j, float32(j)*100)
	}
	y := ln.Forward(x, true)
	// Each row standardized independently: both rows normalize to the same
	// pattern since they are affine transforms of each other.
	for j := 0; j < 8; j++ {
		if math.Abs(float64(y.At(0, j)-y.At(1, j))) > 1e-3 {
			t.Fatalf("rows normalized differently at %d: %v vs %v", j, y.At(0, j), y.At(1, j))
		}
	}
}

func TestLayerNormTrainEvalIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ln := NewLayerNorm(5)
	x := tensor.New(4, 5)
	tensor.FillGaussian(x, rng, 0, 2)
	a := ln.Forward(x, true)
	b := ln.Forward(x, false)
	if !a.Equal(b) {
		t.Fatal("layer norm must not depend on the training flag")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", 2, 2)
	p.Grad.Fill(3) // norm = sqrt(4*9) = 6
	params := []*Param{p}
	pre := ClipGradNorm(params, 3)
	if math.Abs(pre-6) > 1e-6 {
		t.Fatalf("pre-clip norm = %v, want 6", pre)
	}
	var sq float64
	for _, v := range p.Grad.Data {
		sq += float64(v) * float64(v)
	}
	if math.Abs(math.Sqrt(sq)-3) > 1e-5 {
		t.Fatalf("post-clip norm = %v, want 3", math.Sqrt(sq))
	}
	// Below the threshold nothing changes.
	p.Grad.Fill(0.1)
	ClipGradNorm(params, 3)
	if p.Grad.Data[0] != 0.1 {
		t.Fatal("clip must not touch small gradients")
	}
}

func TestNormLayersInMLPTrainable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := &Network{Name: "bn-mlp", Layers: []Layer{
		NewLinear(3, 16, rng),
		NewBatchNorm(16),
		&LeakyReLU{Alpha: 0.2},
		NewLinear(16, 1, rng),
	}}
	x := tensor.New(32, 3)
	tensor.FillGaussian(x, rng, 0, 1)
	target := tensor.New(32, 1)
	for i := 0; i < 32; i++ {
		target.Set(i, 0, x.At(i, 0)*x.At(i, 1))
	}
	first, _ := MSE(net.Forward(x, false), target)
	lr := float32(0.05)
	for step := 0; step < 200; step++ {
		net.ZeroGrad()
		pred := net.Forward(x, true)
		_, dy := MSE(pred, target)
		net.Backward(dy)
		for _, p := range net.Params() {
			tensor.AddScaled(p.W, -lr, p.Grad)
		}
	}
	last, _ := MSE(net.Forward(x, false), target)
	if last > first*0.5 {
		t.Fatalf("batch-normed net did not train: %v -> %v", first, last)
	}
}
