package nn

// Reducer combines parameter gradients across data-parallel replicas before
// an optimizer step — the hook through which a trainer injects its
// allreduce. Models call it once per optimizer phase.
type Reducer interface {
	Reduce(params []*Param)
}

// NopReducer leaves gradients untouched: single-replica training.
type NopReducer struct{}

// Reduce is a no-op.
func (NopReducer) Reduce([]*Param) {}
