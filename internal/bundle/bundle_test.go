package bundle

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func makeRecords(rng *rand.Rand, count, dim int) [][]float32 {
	recs := make([][]float32, count)
	for i := range recs {
		recs[i] = make([]float32, dim)
		for j := range recs[i] {
			recs[i][j] = float32(rng.NormFloat64())
		}
	}
	return recs
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jagb")
	rng := rand.New(rand.NewSource(1))
	recs := makeRecords(rng, 37, 11)
	if err := Write(path, 11, recs); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumSamples() != 37 || r.Dim() != 11 {
		t.Fatalf("header says %d samples x %d, want 37x11", r.NumSamples(), r.Dim())
	}
	for i := range recs {
		got, err := r.Sample(i)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != recs[i][j] {
				t.Fatalf("sample %d elem %d: got %v want %v", i, j, got[j], recs[i][j])
			}
		}
	}
}

func TestReadAllMatchesPerSample(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.jagb")
	rng := rand.New(rand.NewSource(2))
	recs := makeRecords(rng, 100, 7)
	if err := Write(path, 7, recs); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	all, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 100 {
		t.Fatalf("ReadAll returned %d samples", len(all))
	}
	for i := range all {
		for j := range all[i] {
			if all[i][j] != recs[i][j] {
				t.Fatalf("ReadAll sample %d differs", i)
			}
		}
	}
}

func TestEmptyBundle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jagb")
	if err := Write(path, 5, nil); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumSamples() != 0 {
		t.Fatalf("empty bundle has %d samples", r.NumSamples())
	}
	if _, err := r.Sample(0); err == nil {
		t.Fatal("reading from empty bundle must error")
	}
}

func TestWriteRejectsWrongWidth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.jagb")
	err := Write(path, 3, [][]float32{{1, 2, 3}, {1, 2}})
	if err == nil {
		t.Fatal("want error for mismatched record width")
	}
}

func TestSampleBoundsAndDstWidth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jagb")
	recs := makeRecords(rand.New(rand.NewSource(3)), 4, 3)
	if err := Write(path, 3, recs); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Sample(-1); err == nil {
		t.Fatal("negative index must error")
	}
	if _, err := r.Sample(4); err == nil {
		t.Fatal("out-of-range index must error")
	}
	if err := r.SampleInto(0, make([]float32, 2)); err == nil {
		t.Fatal("wrong dst width must error")
	}
}

func TestOpenRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()

	short := filepath.Join(dir, "short")
	os.WriteFile(short, []byte("JA"), 0o644)
	if _, err := Open(short); err == nil {
		t.Fatal("short header must error")
	}

	badMagic := filepath.Join(dir, "magic")
	os.WriteFile(badMagic, make([]byte, 32), 0o644)
	if _, err := Open(badMagic); err == nil {
		t.Fatal("bad magic must error")
	}

	good := filepath.Join(dir, "good")
	if err := Write(good, 2, [][]float32{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(good)
	truncated := filepath.Join(dir, "trunc")
	os.WriteFile(truncated, data[:len(data)-3], 0o644)
	if _, err := Open(truncated); err == nil {
		t.Fatal("truncated body must error")
	}

	badVersion := filepath.Join(dir, "ver")
	data2 := append([]byte(nil), data...)
	data2[4] = 99
	os.WriteFile(badVersion, data2, 0o644)
	if _, err := Open(badVersion); err == nil {
		t.Fatal("bad version must error")
	}

	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestConcurrentSampleReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.jagb")
	recs := makeRecords(rand.New(rand.NewSource(4)), 64, 9)
	if err := Write(path, 9, recs); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < 200; k++ {
				i := rng.Intn(64)
				got, err := r.Sample(i)
				if err != nil {
					errs <- err
					return
				}
				if got[0] != recs[i][0] {
					errs <- err
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFileBytesMatchesDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sz.jagb")
	recs := makeRecords(rand.New(rand.NewSource(5)), 13, 6)
	if err := Write(path, 6, recs); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != FileBytes(13, 6) {
		t.Fatalf("disk size %d, FileBytes %d", info.Size(), FileBytes(13, 6))
	}
}

// Property: any generated record set round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	n := 0
	f := func(seed int64, countRaw, dimRaw uint8) bool {
		n++
		count := int(countRaw % 20)
		dim := int(dimRaw%8) + 1
		path := filepath.Join(dir, "p", "q")
		os.MkdirAll(filepath.Dir(path), 0o755)
		recs := makeRecords(rand.New(rand.NewSource(seed)), count, dim)
		if err := Write(path, dim, recs); err != nil {
			return false
		}
		r, err := Open(path)
		if err != nil {
			return false
		}
		defer r.Close()
		all, err := r.ReadAll()
		if err != nil {
			return false
		}
		for i := range recs {
			for j := range recs[i] {
				if all[i][j] != recs[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRandomSampleAccess(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.jagb")
	recs := makeRecords(rand.New(rand.NewSource(6)), 1000, 64)
	if err := Write(path, 64, recs); err != nil {
		b.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	dst := make([]float32, 64)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.SampleInto(rng.Intn(1000), dst); err != nil {
			b.Fatal(err)
		}
	}
}
