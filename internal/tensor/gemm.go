package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// Op selects whether a GEMM operand is used as-is or transposed.
type Op bool

const (
	// NoTrans uses the operand as stored.
	NoTrans Op = false
	// Trans uses the transpose of the operand.
	Trans Op = true
)

// gemmGrain is the minimum number of output rows per parallel chunk; small
// batches run serially.
const gemmGrain = 8

// Gemm computes C = alpha*op(A)*op(B) + beta*C, the workhorse of every layer
// forward and backward pass. Shapes after applying the ops must satisfy
// op(A): m×k, op(B): k×n, C: m×n; Gemm panics otherwise. C must not alias A
// or B.
func Gemm(c *Matrix, alpha float32, a *Matrix, transA Op, b *Matrix, transB Op, beta float32) {
	m, ka := a.Rows, a.Cols
	if transA == Trans {
		m, ka = a.Cols, a.Rows
	}
	kb, n := b.Rows, b.Cols
	if transB == Trans {
		kb, n = b.Cols, b.Rows
	}
	if ka != kb {
		panic(fmt.Sprintf("tensor: Gemm inner dimension mismatch %d vs %d", ka, kb))
	}
	if c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("tensor: Gemm output shape %dx%d, want %dx%d", c.Rows, c.Cols, m, n))
	}
	if beta == 0 {
		c.Zero()
	} else if beta != 1 {
		Scale(c, beta)
	}
	if m == 0 || n == 0 || ka == 0 || alpha == 0 {
		return
	}
	switch {
	case transA == NoTrans && transB == NoTrans:
		gemmNN(c, alpha, a, b)
	case transA == Trans && transB == NoTrans:
		gemmTN(c, alpha, a, b)
	case transA == NoTrans && transB == Trans:
		gemmNT(c, alpha, a, b)
	default:
		gemmTT(c, alpha, a, b)
	}
}

// MatMul computes C = A*B, zeroing C first.
func MatMul(c, a, b *Matrix) { Gemm(c, 1, a, NoTrans, b, NoTrans, 0) }

// gemmNN: C += alpha * A*B. i-k-j loop order streams rows of B and C.
func gemmNN(c *Matrix, alpha float32, a, b *Matrix) {
	k, n := b.Rows, b.Cols
	parallel.For(0, c.Rows, gemmGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*n : (i+1)*n]
			ai := a.Data[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				s := alpha * ai[p]
				if s == 0 {
					continue
				}
				bp := b.Data[p*n : (p+1)*n]
				axpy(s, bp, ci)
			}
		}
	})
}

// gemmTN: C += alpha * Aᵀ*B where A is k×m. Used for weight gradients
// dW = Xᵀ·dY. Parallel over output rows so chunks never share C rows.
func gemmTN(c *Matrix, alpha float32, a, b *Matrix) {
	k := a.Rows
	mA := a.Cols
	n := b.Cols
	parallel.For(0, c.Rows, gemmGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				s := alpha * a.Data[p*mA+i]
				if s == 0 {
					continue
				}
				bp := b.Data[p*n : (p+1)*n]
				axpy(s, bp, ci)
			}
		}
	})
}

// gemmNT: C += alpha * A*Bᵀ where B is n×k. Used for input gradients
// dX = dY·Wᵀ. Each output element is a dot product of two rows.
func gemmNT(c *Matrix, alpha float32, a, b *Matrix) {
	k := a.Cols
	n := b.Rows
	parallel.For(0, c.Rows, gemmGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.Data[j*k : (j+1)*k]
				ci[j] += alpha * dot(ai, bj)
			}
		}
	})
}

// gemmTT: C += alpha * Aᵀ*Bᵀ. Rare; kept for completeness of the kernel set.
func gemmTT(c *Matrix, alpha float32, a, b *Matrix) {
	k := a.Rows // op(A) is a.Cols × a.Rows
	n := b.Rows
	mA := a.Cols
	kB := b.Cols
	parallel.For(0, c.Rows, gemmGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.Data[j*kB : (j+1)*kB]
				var sum float32
				for p := 0; p < k; p++ {
					sum += a.Data[p*mA+i] * bj[p]
				}
				ci[j] += alpha * sum
			}
		}
	})
}

// axpy computes y += s*x with 4-way unrolling.
func axpy(s float32, x, y []float32) {
	n := len(x)
	_ = y[n-1] // hoist the bounds check out of the unrolled loop
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += s * x[i]
		y[i+1] += s * x[i+1]
		y[i+2] += s * x[i+2]
		y[i+3] += s * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += s * x[i]
	}
}

// dot returns the inner product of x and y, which must have equal length.
func dot(x, y []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}
