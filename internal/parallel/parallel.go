// Package parallel provides a small shared-memory parallel-for used by the
// numeric kernels in this repository. It plays the role that CUDA kernels and
// OpenMP loops play inside LBANN/Hydrogen: splitting dense-math inner loops
// across the hardware's execution units.
//
// The package deliberately has no configuration beyond GOMAXPROCS; kernels
// call For with a grain size and the package decides whether running serially
// is cheaper than scheduling goroutines.
package parallel

import (
	"runtime"
	"sync"
)

// Workers reports the number of workers For will use for a sufficiently large
// loop. It equals GOMAXPROCS at call time.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// For executes fn over the half-open index range [lo, hi), splitting it into
// contiguous chunks of at least grain iterations and running chunks on up to
// GOMAXPROCS goroutines. fn receives sub-ranges [start, end) and must be safe
// to call concurrently on disjoint ranges. For blocks until every chunk has
// completed.
//
// If the range is empty For returns immediately. If the range is smaller than
// grain, or only one worker is available, fn runs once on the caller's
// goroutine — so For never costs a goroutine for small loops.
func For(lo, hi, grain int, fn func(start, end int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := Workers()
	maxChunks := (n + grain - 1) / grain
	if workers > maxChunks {
		workers = maxChunks
	}
	if workers <= 1 {
		fn(lo, hi)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := lo; start < hi; start += chunk {
		end := start + chunk
		if end > hi {
			end = hi
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n), parallelized with For using the
// given grain. It is a convenience wrapper for loops whose body is already
// chunky enough that per-index dispatch overhead does not matter.
func ForEach(n, grain int, fn func(i int)) {
	For(0, n, grain, func(start, end int) {
		for i := start; i < end; i++ {
			fn(i)
		}
	})
}
