package comm

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// runWithTimeout fails the test if the parallel section deadlocks.
func runWithTimeout(t *testing.T, w *World, fn func(c *Comm)) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		w.Run(fn)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: world did not finish in 30s")
	}
}

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	runWithTimeout(t, w, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float32{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if !reflect.DeepEqual(got, []float32{1, 2, 3}) {
				t.Errorf("got %v", got)
			}
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	runWithTimeout(t, w, func(c *Comm) {
		if c.Rank() == 0 {
			data := []float32{1, 2, 3}
			c.Send(1, 0, data)
			data[0] = 99 // must not affect the in-flight message
		} else {
			time.Sleep(10 * time.Millisecond)
			if got := c.Recv(0, 0); got[0] != 1 {
				t.Errorf("send aliased caller buffer: got %v", got)
			}
		}
	})
}

func TestNonOvertakingOrder(t *testing.T) {
	w := NewWorld(2)
	runWithTimeout(t, w, func(c *Comm) {
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 3, []float32{float32(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				got := c.Recv(0, 3)
				if got[0] != float32(i) {
					t.Errorf("message %d arrived as %v", i, got)
					return
				}
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	w := NewWorld(2)
	runWithTimeout(t, w, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []float32{5})
			c.Send(1, 4, []float32{4})
		} else {
			// Receive in the opposite order of sending.
			if got := c.Recv(0, 4); got[0] != 4 {
				t.Errorf("tag 4 got %v", got)
			}
			if got := c.Recv(0, 5); got[0] != 5 {
				t.Errorf("tag 5 got %v", got)
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	w := NewWorld(3)
	runWithTimeout(t, w, func(c *Comm) {
		switch c.Rank() {
		case 0:
			var sum float32
			for i := 0; i < 2; i++ {
				got := c.Recv(AnySource, AnyTag)
				sum += got[0]
			}
			if sum != 3 {
				t.Errorf("sum = %v, want 3", sum)
			}
		case 1:
			c.Send(0, 11, []float32{1})
		case 2:
			c.Send(0, 22, []float32{2})
		}
	})
}

func TestBytesAndFloatsSeparateTypes(t *testing.T) {
	w := NewWorld(2)
	runWithTimeout(t, w, func(c *Comm) {
		if c.Rank() == 0 {
			c.SendBytes(1, 1, []byte("hello"))
			c.Send(1, 2, []float32{42})
		} else {
			if got := string(c.RecvBytes(0, 1)); got != "hello" {
				t.Errorf("bytes got %q", got)
			}
			if got := c.Recv(0, 2); got[0] != 42 {
				t.Errorf("floats got %v", got)
			}
		}
	})
}

func TestIrecvOverlap(t *testing.T) {
	w := NewWorld(2)
	runWithTimeout(t, w, func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Irecv(1, 9)
			c.Send(1, 8, []float32{1}) // can still make progress before Wait
			if got := req.Wait(); got[0] != 123 {
				t.Errorf("Irecv got %v", got)
			}
		} else {
			c.Recv(0, 8)
			c.Send(0, 9, []float32{123})
		}
	})
}

func TestSendrecvSymmetricExchangeNoDeadlock(t *testing.T) {
	// The LTFB pattern: both partners send then receive with the same tag.
	w := NewWorld(2)
	runWithTimeout(t, w, func(c *Comm) {
		peer := 1 - c.Rank()
		got := c.Sendrecv(peer, []float32{float32(c.Rank())}, peer, 13)
		if got[0] != float32(peer) {
			t.Errorf("rank %d got %v", c.Rank(), got)
		}
		gotB := c.SendrecvBytes(peer, []byte{byte(c.Rank())}, peer, 14)
		if gotB[0] != byte(peer) {
			t.Errorf("rank %d bytes got %v", c.Rank(), gotB)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	w := NewWorld(4)
	var before, after int32
	runWithTimeout(t, w, func(c *Comm) {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		if v := atomic.LoadInt32(&before); v != 4 {
			t.Errorf("rank %d passed barrier with only %d arrivals", c.Rank(), v)
		}
		atomic.AddInt32(&after, 1)
		c.Barrier()
		if v := atomic.LoadInt32(&after); v != 4 {
			t.Errorf("second barrier leaked: %d", v)
		}
	})
}

func TestAllreduceSumMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		for _, m := range []int{1, 3, 16, 100} {
			w := NewWorld(n)
			rng := rand.New(rand.NewSource(int64(n*1000 + m)))
			inputs := make([][]float32, n)
			want := make([]float32, m)
			for r := range inputs {
				inputs[r] = make([]float32, m)
				for i := range inputs[r] {
					inputs[r][i] = float32(rng.NormFloat64())
					want[i] += inputs[r][i]
				}
			}
			results := make([][]float32, n)
			runWithTimeout(t, w, func(c *Comm) {
				buf := append([]float32(nil), inputs[c.Rank()]...)
				c.AllreduceSum(buf)
				results[c.Rank()] = buf
			})
			for r := 0; r < n; r++ {
				for i := range want {
					d := results[r][i] - want[i]
					if d < 0 {
						d = -d
					}
					if d > 1e-4 {
						t.Fatalf("n=%d m=%d rank %d elem %d: got %v want %v", n, m, r, i, results[r][i], want[i])
					}
				}
			}
			// Bitwise identity across ranks (critical for replica consistency).
			for r := 1; r < n; r++ {
				if !reflect.DeepEqual(results[0], results[r]) {
					t.Fatalf("n=%d m=%d: rank %d result differs bitwise from rank 0", n, m, r)
				}
			}
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	w := NewWorld(4)
	results := make([][]float32, 4)
	runWithTimeout(t, w, func(c *Comm) {
		buf := []float32{float32(c.Rank()), -float32(c.Rank()), 5}
		c.AllreduceMax(buf)
		results[c.Rank()] = buf
	})
	want := []float32{3, 0, 5}
	for r, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rank %d got %v want %v", r, got, want)
		}
	}
}

func TestAllreduceNaiveMatchesRing(t *testing.T) {
	const n, m = 5, 37
	w := NewWorld(n)
	rng := rand.New(rand.NewSource(77))
	inputs := make([][]float32, n)
	for r := range inputs {
		inputs[r] = make([]float32, m)
		for i := range inputs[r] {
			inputs[r][i] = float32(rng.NormFloat64())
		}
	}
	ring := make([][]float32, n)
	naive := make([][]float32, n)
	runWithTimeout(t, w, func(c *Comm) {
		buf := append([]float32(nil), inputs[c.Rank()]...)
		c.AllreduceSum(buf)
		ring[c.Rank()] = buf
		buf2 := append([]float32(nil), inputs[c.Rank()]...)
		c.AllreduceSumNaive(buf2)
		naive[c.Rank()] = buf2
	})
	for r := 0; r < n; r++ {
		for i := 0; i < m; i++ {
			d := ring[r][i] - naive[r][i]
			if d < 0 {
				d = -d
			}
			if d > 1e-4 {
				t.Fatalf("rank %d elem %d: ring %v vs naive %v", r, i, ring[r][i], naive[r][i])
			}
		}
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < n; root++ {
			w := NewWorld(n)
			results := make([][]float32, n)
			runWithTimeout(t, w, func(c *Comm) {
				buf := make([]float32, 4)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = float32(10*root + i)
					}
				}
				c.Bcast(root, buf)
				results[c.Rank()] = buf
			})
			for r := 0; r < n; r++ {
				for i := 0; i < 4; i++ {
					if results[r][i] != float32(10*root+i) {
						t.Fatalf("n=%d root=%d rank=%d: got %v", n, root, r, results[r])
					}
				}
			}
		}
	}
}

func TestBcastBytes(t *testing.T) {
	w := NewWorld(6)
	results := make([][]byte, 6)
	runWithTimeout(t, w, func(c *Comm) {
		buf := make([]byte, 5)
		if c.Rank() == 2 {
			copy(buf, "model")
		}
		c.BcastBytes(2, buf)
		results[c.Rank()] = buf
	})
	for r, got := range results {
		if string(got) != "model" {
			t.Fatalf("rank %d got %q", r, got)
		}
	}
}

func TestGather(t *testing.T) {
	w := NewWorld(4)
	runWithTimeout(t, w, func(c *Comm) {
		out := c.Gather(1, []float32{float32(c.Rank() * 10)})
		if c.Rank() == 1 {
			for r := 0; r < 4; r++ {
				if out[r][0] != float32(r*10) {
					t.Errorf("gathered[%d] = %v", r, out[r])
				}
			}
		} else if out != nil {
			t.Errorf("non-root rank %d got non-nil %v", c.Rank(), out)
		}
	})
}

func TestAllgatherFloat64(t *testing.T) {
	w := NewWorld(5)
	runWithTimeout(t, w, func(c *Comm) {
		vals := c.AllgatherFloat64(float64(c.Rank()) * 1.5)
		for r, v := range vals {
			if v != float64(r)*1.5 {
				t.Errorf("rank %d: vals[%d] = %v", c.Rank(), r, v)
			}
		}
	})
}

func TestSplitSemantics(t *testing.T) {
	// 6 ranks → colors {0,1} by parity; keys reverse the order within color.
	w := NewWorld(6)
	type res struct {
		size, rank, global int
	}
	results := make([]res, 6)
	runWithTimeout(t, w, func(c *Comm) {
		color := c.Rank() % 2
		key := -c.Rank() // reversed order
		sub := c.Split(color, key)
		results[c.Rank()] = res{size: sub.Size(), rank: sub.Rank(), global: sub.GlobalRank(sub.Rank())}
		// The sub-communicator must be fully functional.
		buf := []float32{1}
		sub.AllreduceSum(buf)
		if buf[0] != 3 {
			t.Errorf("rank %d: sub allreduce got %v, want 3", c.Rank(), buf[0])
		}
	})
	for g, r := range results {
		if r.size != 3 {
			t.Fatalf("rank %d sub size %d", g, r.size)
		}
		if r.global != g {
			t.Fatalf("rank %d global mapping broken: %d", g, r.global)
		}
	}
	// Keys were negated ranks, so the highest global rank gets local rank 0.
	if results[4].rank != 0 || results[0].rank != 2 {
		t.Fatalf("key ordering wrong: %+v", results)
	}
}

func TestSplitThenWorldStillWorks(t *testing.T) {
	w := NewWorld(4)
	runWithTimeout(t, w, func(c *Comm) {
		sub := c.Split(c.Rank()/2, 0)
		buf := []float32{1}
		sub.AllreduceSum(buf)
		c.Barrier()
		buf2 := []float32{1}
		c.AllreduceSum(buf2)
		if buf2[0] != 4 {
			t.Errorf("world allreduce after split got %v", buf2[0])
		}
	})
}

// Property: ring allreduce sums match float64 serial reduction within
// float32 tolerance for arbitrary rank counts and payloads.
func TestAllreduceProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%6) + 1
		m := int(mRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]float32, n)
		want := make([]float64, m)
		for r := range inputs {
			inputs[r] = make([]float32, m)
			for i := range inputs[r] {
				inputs[r][i] = float32(rng.Float64()*2 - 1)
				want[i] += float64(inputs[r][i])
			}
		}
		w := NewWorld(n)
		results := make([][]float32, n)
		w.Run(func(c *Comm) {
			buf := append([]float32(nil), inputs[c.Rank()]...)
			c.AllreduceSum(buf)
			results[c.Rank()] = buf
		})
		for r := 0; r < n; r++ {
			for i := 0; i < m; i++ {
				d := float64(results[r][i]) - want[i]
				if d < 0 {
					d = -d
				}
				if d > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSegBoundsPartition(t *testing.T) {
	f := func(mRaw, nRaw uint8) bool {
		m := int(mRaw)
		n := int(nRaw%16) + 1
		prev := 0
		for i := 0; i < n; i++ {
			lo, hi := segBounds(m, n, i)
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUserTagValidation(t *testing.T) {
	w := NewWorld(2)
	runWithTimeout(t, w, func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("negative user tag must panic")
			}
		}()
		c.Send(1, -5, []float32{1})
	})
}

func TestWorldRunPropagatesPanic(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Run must propagate rank panics")
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}

func BenchmarkAllreduceRing8(b *testing.B)  { benchAllreduce(b, 8, 1<<14, false) }
func BenchmarkAllreduceNaive8(b *testing.B) { benchAllreduce(b, 8, 1<<14, true) }

func benchAllreduce(b *testing.B, n, m int, naive bool) {
	w := NewWorld(n)
	b.SetBytes(int64(4 * m))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *Comm) {
			buf := make([]float32, m)
			if naive {
				c.AllreduceSumNaive(buf)
			} else {
				c.AllreduceSum(buf)
			}
		})
	}
}

func TestReduceSum(t *testing.T) {
	w := NewWorld(4)
	results := make([][]float32, 4)
	runWithTimeout(t, w, func(c *Comm) {
		buf := []float32{float32(c.Rank() + 1), 1}
		c.ReduceSum(2, buf)
		results[c.Rank()] = buf
	})
	if results[2][0] != 10 || results[2][1] != 4 {
		t.Fatalf("root buffer = %v, want [10 4]", results[2])
	}
	// Non-root buffers untouched.
	if results[0][0] != 1 || results[3][0] != 4 {
		t.Fatalf("non-root buffers modified: %v %v", results[0], results[3])
	}
}

func TestNestedSplit(t *testing.T) {
	// Split twice: 8 ranks -> 2 groups of 4 -> 4 groups of 2; all levels
	// remain functional.
	w := NewWorld(8)
	runWithTimeout(t, w, func(c *Comm) {
		half := c.Split(c.Rank()/4, 0)
		quarter := half.Split(half.Rank()/2, 0)
		if quarter.Size() != 2 {
			t.Errorf("nested split size = %d", quarter.Size())
			return
		}
		buf := []float32{1}
		quarter.AllreduceSum(buf)
		if buf[0] != 2 {
			t.Errorf("nested allreduce = %v", buf[0])
		}
		buf2 := []float32{1}
		half.AllreduceSum(buf2)
		if buf2[0] != 4 {
			t.Errorf("mid-level allreduce = %v", buf2[0])
		}
		vals := quarter.AllgatherFloat64(float64(quarter.Rank()))
		if len(vals) != 2 || vals[0] != 0 || vals[1] != 1 {
			t.Errorf("nested allgather = %v", vals)
		}
	})
}

func TestSendToSelf(t *testing.T) {
	w := NewWorld(2)
	runWithTimeout(t, w, func(c *Comm) {
		c.Send(c.Rank(), 5, []float32{float32(c.Rank())})
		got := c.Recv(c.Rank(), 5)
		if got[0] != float32(c.Rank()) {
			t.Errorf("self-send got %v", got)
		}
	})
}
