// Command jaggen runs the ensemble workflow: it executes the synthetic JAG
// simulator over the Halton sampling plan and packs the results into bundle
// files, reproducing (at configurable scale) the paper's 10,000-file HDF5
// corpus generation.
//
// Usage:
//
//	jaggen -out data/ -samples 10000 -per-file 1000 -size 16 -workers 4
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/ensemble"
	"repro/internal/jag"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jaggen: ")
	out := flag.String("out", "data", "output directory for bundle files")
	samples := flag.Int("samples", 10000, "total simulations to run")
	perFile := flag.Int("per-file", 1000, "samples per bundle file")
	size := flag.Int("size", 16, "image resolution per side")
	views := flag.Int("views", 3, "X-ray lines of sight")
	channels := flag.Int("channels", 4, "hyperspectral channels per view")
	workers := flag.Int("workers", 4, "worker pool width")
	offset := flag.Int("offset", 0, "sampling-plan offset (use a disjoint offset for validation sets)")
	flag.Parse()

	cfg := ensemble.Config{
		Geometry:       jag.Config{ImageSize: *size, Views: *views, Channels: *channels},
		Samples:        *samples,
		PlanOffset:     *offset,
		SamplesPerFile: *perFile,
		OutDir:         *out,
		Workers:        *workers,
	}
	res, err := ensemble.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d samples into %d bundle files under %s in %v\n",
		res.Samples, len(res.Paths), *out, res.Elapsed.Round(1e6))
	fmt.Printf("sample width: %d floats (%d bytes)\n", cfg.Geometry.SampleDim(), 4*cfg.Geometry.SampleDim())
}
