// Package cyclegan implements the paper's surrogate model for ICF
// experiments (Section II-D, Figure 2): a CycleGAN built from four
// fully-connected networks over a shared 20-D latent space.
//
//   - A multimodal autoencoder (encoder E, decoder Dec) embeds the output
//     bundle — 15 scalars plus all X-ray images, predicted jointly so the
//     modalities stay correlated ("internal consistency").
//   - The forward model F maps the 5-D input parameters into the latent
//     space; Dec(F(x)) is the surrogate prediction, trained with mean
//     absolute error ("surrogate fidelity").
//   - The discriminator D distinguishes encoded real outputs E(y) from
//     predicted latents F(x), trained adversarially ("physical
//     consistency").
//   - The inverse model G maps latents back to inputs with G(F(x)) ≈ x
//     ("self consistency" / cycle loss), regularizing the otherwise
//     underdetermined inverse problem.
//
// TrainStep runs the three phases (autoencoder, discriminator, generator)
// on one mini-batch, reducing each phase's gradients through the supplied
// reducer before its optimizer step — this is the hook data-parallel
// trainers use to allreduce. In LTFB tournaments only the generator side
// (F, G, and the decoder they rely on) is exchanged while discriminators
// stay local (Section III-C); ExchangeNets returns exactly that subset.
package cyclegan

import (
	"fmt"
	"math/rand"

	"repro/internal/jag"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// Config describes the surrogate architecture and optimization
// hyperparameters. The paper's experiments use batch 128, Adam, learning
// rate 0.001 (Section IV); layer widths scale with the configured JAG
// geometry.
type Config struct {
	Geometry  jag.Config
	LatentDim int
	// EncoderHidden are the widths between the output bundle and the
	// latent; the decoder mirrors them.
	EncoderHidden []int
	// ForwardHidden are the widths of F (5 → latent).
	ForwardHidden []int
	// InverseHidden are the widths of G (latent → 5).
	InverseHidden []int
	// DiscHidden are the widths of D (latent → 1 logit).
	DiscHidden []int
	LR         float64
	// Loss weights for the generator phase.
	FidelityWeight    float64
	AdversarialWeight float64
	CycleWeight       float64
	// LatentWeight scales the latent-matching term MSE(F(x), E(y)): the
	// paper's forward model maps into the latent space that the multimodal
	// autoencoder defines a priori, and this loss is what pins F to it.
	LatentWeight float64
	// ScalarWeight balances the two output modalities inside the MAE
	// losses: the 15 scalar columns are up-weighted by this factor so the
	// image pixels (which outnumber them by orders of magnitude) cannot
	// drown them out of the jointly-predicted bundle.
	ScalarWeight float64
}

// DefaultConfig returns a laptop-scale configuration for the given
// geometry, keeping the paper's latent width of 20.
func DefaultConfig(g jag.Config) Config {
	return Config{
		Geometry:          g,
		LatentDim:         20,
		EncoderHidden:     []int{128, 64},
		ForwardHidden:     []int{32, 32},
		InverseHidden:     []int{32},
		DiscHidden:        []int{32, 16},
		LR:                0.001,
		FidelityWeight:    1.0,
		AdversarialWeight: 0.3,
		CycleWeight:       1.0,
		LatentWeight:      1.0,
		ScalarWeight:      float64(g.ImageDim()) / float64(jag.ScalarDim),
	}
}

// Validate reports whether the configuration is trainable.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.LatentDim < 1 {
		return fmt.Errorf("cyclegan: latent dim %d < 1", c.LatentDim)
	}
	if c.LR <= 0 {
		return fmt.Errorf("cyclegan: learning rate %v", c.LR)
	}
	if c.ScalarWeight < 0 {
		return fmt.Errorf("cyclegan: scalar weight %v", c.ScalarWeight)
	}
	return nil
}

// Surrogate is one replica of the CycleGAN surrogate with its optimizers.
// It implements the trainer's Model contract structurally.
type Surrogate struct {
	Cfg Config

	Encoder *nn.Network
	Decoder *nn.Network
	Forward *nn.Network
	Inverse *nn.Network
	Disc    *nn.Network

	optAE   opt.Optimizer
	optDisc opt.Optimizer
	optGen  opt.Optimizer
}

// New builds a surrogate with weights drawn from seed. Two replicas built
// from the same (cfg, seed) are bitwise identical, which data-parallel
// training relies on.
func New(cfg Config, seed int64) *Surrogate {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.ScalarWeight == 0 {
		cfg.ScalarWeight = 1
	}
	rng := rand.New(rand.NewSource(seed))
	outDim := cfg.Geometry.OutputDim()

	encDims := append([]int{outDim}, cfg.EncoderHidden...)
	encDims = append(encDims, cfg.LatentDim)
	decDims := []int{cfg.LatentDim}
	for i := len(cfg.EncoderHidden) - 1; i >= 0; i-- {
		decDims = append(decDims, cfg.EncoderHidden[i])
	}
	decDims = append(decDims, outDim)
	fwdDims := append([]int{jag.InputDim}, cfg.ForwardHidden...)
	fwdDims = append(fwdDims, cfg.LatentDim)
	invDims := append([]int{cfg.LatentDim}, cfg.InverseHidden...)
	invDims = append(invDims, jag.InputDim)
	dscDims := append([]int{cfg.LatentDim}, cfg.DiscHidden...)
	dscDims = append(dscDims, 1)

	s := &Surrogate{
		Cfg:     cfg,
		Encoder: nn.MLP("encoder", encDims, nn.ActLeakyReLU, nn.ActNone, rng),
		Decoder: nn.MLP("decoder", decDims, nn.ActLeakyReLU, nn.ActSigmoid, rng),
		Forward: nn.MLP("forward", fwdDims, nn.ActLeakyReLU, nn.ActNone, rng),
		Inverse: nn.MLP("inverse", invDims, nn.ActLeakyReLU, nn.ActSigmoid, rng),
		Disc:    nn.MLP("disc", dscDims, nn.ActLeakyReLU, nn.ActNone, rng),
	}
	s.optAE = opt.NewAdam(cfg.LR)
	s.optDisc = opt.NewAdam(cfg.LR)
	s.optGen = opt.NewAdam(cfg.LR)
	return s
}

// Nets returns every network of the surrogate.
func (s *Surrogate) Nets() []*nn.Network {
	return []*nn.Network{s.Encoder, s.Decoder, s.Forward, s.Inverse, s.Disc}
}

// ExchangeNets returns the networks LTFB ships between trainers: the
// generator side (forward, inverse, decoder). The discriminator and encoder
// stay local, mimicking "educating a student with multiple teachers" and
// cutting exchange volume (Section III-C).
func (s *Surrogate) ExchangeNets() []*nn.Network {
	return []*nn.Network{s.Forward, s.Inverse, s.Decoder}
}

// weightedMAE is MAE over the output bundle with the leading ScalarDim
// columns up-weighted by w. The reported loss and the gradient are both
// normalized by the total weight, so w only redistributes attention between
// modalities.
func weightedMAE(pred, target *tensor.Matrix, w float64) (float64, *tensor.Matrix) {
	if w == 1 || pred.Cols <= jag.ScalarDim {
		return nn.MAE(pred, target)
	}
	rows, cols := pred.Rows, pred.Cols
	total := float64(rows) * (w*float64(jag.ScalarDim) + float64(cols-jag.ScalarDim))
	grad := tensor.New(rows, cols)
	var loss float64
	for r := 0; r < rows; r++ {
		pr, tr, gr := pred.Row(r), target.Row(r), grad.Row(r)
		for c := range pr {
			cw := 1.0
			if c < jag.ScalarDim {
				cw = w
			}
			d := float64(pr[c] - tr[c])
			g := float32(cw / total)
			if d >= 0 {
				loss += cw * d
				gr[c] = g
			} else {
				loss -= cw * d
				gr[c] = -g
			}
		}
	}
	return loss / total, grad
}

// aeParams returns the autoencoder's parameters.
func (s *Surrogate) aeParams() []*nn.Param {
	return append(s.Encoder.Params(), s.Decoder.Params()...)
}

// genParams returns the generator phase's parameters (F and G).
func (s *Surrogate) genParams() []*nn.Param {
	return append(s.Forward.Params(), s.Inverse.Params()...)
}

// TrainStep runs one mini-batch through the three training phases and
// returns the named loss values. x is the batch of 5-D inputs, y the
// corresponding output bundles. r reduces gradients across replicas before
// each optimizer step.
func (s *Surrogate) TrainStep(x, y *tensor.Matrix, r nn.Reducer) map[string]float64 {
	losses := make(map[string]float64, 5)

	// Phase 1 — multimodal autoencoder: Dec(E(y)) ≈ y (internal
	// consistency).
	s.Encoder.ZeroGrad()
	s.Decoder.ZeroGrad()
	z := s.Encoder.Forward(y, true)
	yRec := s.Decoder.Forward(z, true)
	aeLoss, dRec := weightedMAE(yRec, y, s.Cfg.ScalarWeight)
	losses["autoencoder"] = aeLoss
	dz := s.Decoder.Backward(dRec)
	s.Encoder.Backward(dz)
	aeP := s.aeParams()
	r.Reduce(aeP)
	s.optAE.Step(aeP)

	// Phase 2 — discriminator: real latents E(y) vs fake latents F(x)
	// (physical consistency, the adversarial term). Neither E nor F is
	// updated here.
	zReal := s.Encoder.Forward(y, false)
	zFake := s.Forward.Forward(x, false)
	s.Disc.ZeroGrad()
	logitsReal := s.Disc.Forward(zReal, true)
	ones := tensor.New(logitsReal.Rows, 1)
	ones.Fill(1)
	zeros := tensor.New(logitsReal.Rows, 1)
	lossReal, dReal := nn.BCEWithLogits(logitsReal, ones)
	s.Disc.Backward(dReal)
	logitsFake := s.Disc.Forward(zFake, true)
	lossFake, dFake := nn.BCEWithLogits(logitsFake, zeros)
	s.Disc.Backward(dFake)
	losses["disc"] = lossReal + lossFake
	dscP := s.Disc.Params()
	r.Reduce(dscP)
	s.optDisc.Step(dscP)

	// Phase 3 — generator: F (and G) trained on latent matching + fidelity
	// + adversarial + cycle. Gradients flow through Dec and D but their
	// accumulators are discarded at the start of their own phases.
	s.Forward.ZeroGrad()
	s.Inverse.ZeroGrad()
	zGen := s.Forward.Forward(x, true)

	latLoss, dLat := nn.MSE(zGen, zReal)
	losses["latent"] = latLoss
	tensor.Scale(dLat, float32(s.Cfg.LatentWeight))

	yPred := s.Decoder.Forward(zGen, false)
	fidLoss, dPred := weightedMAE(yPred, y, s.Cfg.ScalarWeight)
	losses["fidelity"] = fidLoss
	tensor.Scale(dPred, float32(s.Cfg.FidelityWeight))
	dzFid := s.Decoder.Backward(dPred)

	logitsGen := s.Disc.Forward(zGen, false)
	advLoss, dAdv := nn.BCEWithLogits(logitsGen, ones)
	losses["adversarial"] = advLoss
	tensor.Scale(dAdv, float32(s.Cfg.AdversarialWeight))
	dzAdv := s.Disc.Backward(dAdv)

	xRec := s.Inverse.Forward(zGen, true)
	cycLoss, dCyc := nn.MAE(xRec, x)
	losses["cycle"] = cycLoss
	tensor.Scale(dCyc, float32(s.Cfg.CycleWeight))
	dzCyc := s.Inverse.Backward(dCyc)

	dzTotal := tensor.New(zGen.Rows, zGen.Cols)
	tensor.Add(dzTotal, dzFid, dzAdv)
	tensor.Add(dzTotal, dzTotal, dzCyc)
	tensor.Add(dzTotal, dzTotal, dLat)
	s.Forward.Backward(dzTotal)

	genP := s.genParams()
	r.Reduce(genP)
	s.optGen.Step(genP)
	return losses
}

// Predict runs the forward surrogate: output bundles for a batch of inputs.
func (s *Surrogate) Predict(x *tensor.Matrix) *tensor.Matrix {
	return s.Decoder.Forward(s.Forward.Forward(x, false), false)
}

// Invert runs the inverse surrogate: inferred inputs for a batch of inputs'
// latents (the self-consistency path G(F(x))).
func (s *Surrogate) Invert(x *tensor.Matrix) *tensor.Matrix {
	return s.Inverse.Forward(s.Forward.Forward(x, false), false)
}

// Eval returns the validation objective the paper uses for tournaments and
// quality plots: forward loss plus inverse loss on held-out data (lower is
// better).
func (s *Surrogate) Eval(x, y *tensor.Matrix) float64 {
	z := s.Forward.Forward(x, false)
	fwd := nn.MAEValue(s.Decoder.Forward(z, false), y)
	inv := nn.MAEValue(s.Inverse.Forward(z, false), x)
	return fwd + inv
}

// AdversarialScore judges this model's generator with this model's
// discriminator: the cross-entropy of D(F(x)) against the "real" label
// (lower means the generator fools the discriminator better), plus the
// fidelity term so a degenerate generator cannot win on fooling alone. LTFB
// evaluates an incoming generator by loading it into a scratch model that
// keeps the local discriminator — "evaluate them against their local
// discriminators" (Figure 6b).
func (s *Surrogate) AdversarialScore(x, y *tensor.Matrix) float64 {
	z := s.Forward.Forward(x, false)
	logits := s.Disc.Forward(z, false)
	ones := tensor.New(logits.Rows, 1)
	ones.Fill(1)
	adv, _ := nn.BCEWithLogits(logits, ones)
	fid := nn.MAEValue(s.Decoder.Forward(z, false), y)
	return adv + fid
}

// ResetOptim clears all optimizer state, e.g. after adopting a tournament
// winner's weights.
func (s *Surrogate) ResetOptim() {
	s.optAE.Reset()
	s.optDisc.Reset()
	s.optGen.Reset()
}
