// Package metrics provides the repo's instrumentation primitives: the
// measurement and reporting helpers the experiment harness uses
// (running meters, speedup/efficiency arithmetic, per-scalar
// correlation for the prediction-quality figures, fixed-width text
// tables), plus the serving-side observability core — lock-free
// streaming latency histograms with exponential buckets and quantile
// estimation (histogram.go), and a labeled named-metric registry that
// renders the Prometheus text exposition format (registry.go).
// internal/serve builds its /metrics endpoint and per-stage tracing on
// these; docs/OBSERVABILITY.md documents the exposed surface.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Meter tracks a running mean, min and max of a scalar series. The
// mean uses Welford's incremental update, which stays accurate when a
// large offset dominates the spread (a naive sum/n loses digits there).
type Meter struct {
	n          int
	mean       float64
	minV, maxV float64
}

// Add folds one observation into the meter. NaN observations are
// dropped: a single NaN would poison the mean (and any JSON rendering
// of it) forever, which is worse than undercounting by the broken
// sample.
func (m *Meter) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if m.n == 0 {
		m.minV, m.maxV = v, v
	}
	m.n++
	m.mean += (v - m.mean) / float64(m.n)
	if v < m.minV {
		m.minV = v
	}
	if v > m.maxV {
		m.maxV = v
	}
}

// Count returns the number of observations.
func (m *Meter) Count() int { return m.n }

// Mean returns the running mean. An empty meter reports 0 by contract —
// never stale state from a previous reading.
func (m *Meter) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.mean
}

// Min returns the smallest observation, or 0 for an empty meter.
func (m *Meter) Min() float64 {
	if m.n == 0 {
		return 0
	}
	return m.minV
}

// Max returns the largest observation, or 0 for an empty meter.
func (m *Meter) Max() float64 {
	if m.n == 0 {
		return 0
	}
	return m.maxV
}

// Speedup returns baseline/t for each time in times.
func Speedup(baseline float64, times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		if t > 0 {
			out[i] = baseline / t
		}
	}
	return out
}

// Efficiency returns speedup divided by resource scale for each point —
// the paper's parallel efficiency (109% at 64 trainers).
func Efficiency(speedups, scales []float64) []float64 {
	out := make([]float64, len(speedups))
	for i := range speedups {
		if scales[i] > 0 {
			out[i] = speedups[i] / scales[i]
		}
	}
	return out
}

// Pearson returns the linear correlation of two equal-length series, or 0
// for degenerate input. The Figure 7 reproduction reports it per scalar.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// MAE returns the mean absolute difference of two equal-length series.
func MAE(a, b []float64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a))
}

// Table is a fixed-width text table for regenerated paper results.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v for non-strings and
// %.4g for floats.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// sparkChars are the eight block glyphs Sparkline maps values onto.
var sparkChars = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a compact unicode strip, for showing loss
// trajectories inline in experiment logs. An empty or constant series
// renders as mid-height blocks.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(values))
	for i, v := range values {
		idx := len(sparkChars) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkChars)-1))
		}
		out[i] = sparkChars[idx]
	}
	return string(out)
}
