// Package core is the top-level experiment harness of the reproduction: it
// wires the substrates together — JAG data generation, the distributed data
// store, data-parallel trainers, the LTFB tournament and the K-independent
// baseline — into the runnable experiments behind the paper's figures, and
// renders each figure's data as a text table.
//
// Two kinds of experiments coexist:
//
//   - Quality experiments (Figures 7, 8, 12, 13) really train CycleGAN
//     surrogates on synthetic JAG data at laptop scale, with trainers as
//     goroutine groups over the in-process MPI layer.
//   - Systems experiments (Figures 9, 10, 11) use the calibrated
//     performance model in internal/perfmodel, since they measure a
//     1024-GPU machine.
//
// Every experiment is deterministic given its config.
package core

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/cyclegan"
	"repro/internal/datastore"
	"repro/internal/ensemble"
	"repro/internal/jag"
	"repro/internal/kind"
	"repro/internal/ltfb"
	"repro/internal/reader"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// PartitionScheme selects how the training set is split across trainers.
type PartitionScheme string

// Partitioning options for the population experiments.
const (
	// PartitionContiguous gives each trainer a contiguous file/sample
	// range — how LTFB splits the corpus (Section III-C).
	PartitionContiguous PartitionScheme = "contiguous"
	// PartitionRandom gives each trainer a random 1/k subset — the
	// K-independent baseline's split (Section IV-E).
	PartitionRandom PartitionScheme = "random"
)

// QualityConfig sizes a real-training population experiment.
type QualityConfig struct {
	Geometry        jag.Config
	Model           cyclegan.Config
	Trainers        int
	RanksPerTrainer int
	// TrainSamples is the total corpus size; each trainer gets a
	// 1/Trainers partition under Partition.
	TrainSamples int
	ValSamples   int
	TournSamples int
	BatchSize    int
	Rounds       int
	RoundSteps   int
	Seed         int64
	Partition    PartitionScheme
	// LTFB toggles tournaments; false runs the partitioned K-independent
	// baseline on the same schedule.
	LTFB bool
	// Metric selects the tournament metric (ltfb.MetricEval by default).
	Metric ltfb.Metric
	// LRJitter spreads per-trainer learning rates over
	// [LR/(1+LRJitter), LR·(1+LRJitter)] — the paper initializes trainers
	// "with different weights and hyperparameters" so the population
	// explores the hyperparameter space and tournaments select good
	// settings (population-based training). Zero disables it.
	LRJitter float64
}

// trainerLR returns trainer k's learning rate under the jitter policy:
// rates are spread geometrically across the population, deterministic in k.
func (c QualityConfig) trainerLR(k int) float64 {
	if c.LRJitter <= 0 || c.Trainers == 1 {
		return c.Model.LR
	}
	span := 1 + c.LRJitter
	frac := float64(k)/float64(c.Trainers-1)*2 - 1 // in [-1, 1]
	return c.Model.LR * math.Pow(span, frac)
}

// DefaultQualityConfig returns a laptop-scale configuration used by the
// examples and benches.
func DefaultQualityConfig(trainers int) QualityConfig {
	g := jag.Tiny8
	m := cyclegan.DefaultConfig(g)
	m.EncoderHidden = []int{32}
	m.ForwardHidden = []int{16}
	m.InverseHidden = []int{12}
	m.DiscHidden = []int{12}
	return QualityConfig{
		Geometry:        g,
		Model:           m,
		Trainers:        trainers,
		RanksPerTrainer: 1,
		TrainSamples:    512,
		ValSamples:      96,
		TournSamples:    32,
		BatchSize:       16,
		Rounds:          6,
		RoundSteps:      8,
		Seed:            1,
		Partition:       PartitionContiguous,
		LTFB:            true,
	}
}

// Validate reports whether the configuration can run.
func (c QualityConfig) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Trainers < 1 || c.RanksPerTrainer < 1 {
		return fmt.Errorf("core: invalid population %d x %d", c.Trainers, c.RanksPerTrainer)
	}
	if c.TrainSamples/c.Trainers < c.BatchSize {
		return fmt.Errorf("core: partition %d smaller than batch %d", c.TrainSamples/c.Trainers, c.BatchSize)
	}
	if c.Rounds < 1 || c.RoundSteps < 1 {
		return fmt.Errorf("core: invalid schedule %d x %d", c.Rounds, c.RoundSteps)
	}
	return nil
}

// QualityResult is the outcome of a population run.
type QualityResult struct {
	// RoundLosses[r][k] is trainer k's global-validation loss after round r.
	RoundLosses [][]float64
	// BestSeries[r] is the population-best loss after round r.
	BestSeries []float64
	// MeanSeries[r] is the population-mean loss after round r.
	MeanSeries []float64
	// Adoptions counts tournament adoptions across the run (0 for the
	// K-independent baseline).
	Adoptions int
	// FinalBest is the last entry of BestSeries.
	FinalBest float64
	// Models holds each trainer's final surrogate (the rank-0 replica),
	// indexed by trainer ID — the bridge from a training run to
	// checkpointing and serving (internal/serve).
	Models []*cyclegan.Surrogate
}

// datasetFor materializes the experiment's corpus deterministically: train,
// validation and tournament sets drawn from disjoint regions of the
// sampling plan.
func datasetFor(c QualityConfig) (train, val *reader.SliceDataset, tx, ty *tensor.Matrix, err error) {
	dim := c.Geometry.SampleDim()
	train, err = reader.NewSliceDataset(dim, ensemble.GenerateInMemory(c.Geometry, 0, c.TrainSamples))
	if err != nil {
		return
	}
	val, err = reader.NewSliceDataset(dim, ensemble.GenerateInMemory(c.Geometry, c.TrainSamples, c.ValSamples))
	if err != nil {
		return
	}
	tourn := ensemble.GenerateInMemory(c.Geometry, c.TrainSamples+c.ValSamples, c.TournSamples)
	tx = tensor.New(c.TournSamples, jag.InputDim)
	ty = tensor.New(c.TournSamples, c.Geometry.OutputDim())
	for i, rec := range tourn {
		copy(tx.Row(i), rec[:jag.InputDim])
		copy(ty.Row(i), rec[jag.InputDim:])
	}
	return
}

// partitionIdx returns trainer k's sample indices under the scheme.
func partitionIdx(c QualityConfig, k int) []int {
	if c.Partition == PartitionRandom {
		return reader.PartitionRandom(c.TrainSamples, c.Trainers, k, c.Seed+7777)
	}
	return reader.PartitionContiguous(c.TrainSamples, c.Trainers, k)
}

// RunPopulation executes the configured experiment — LTFB tournaments or
// the K-independent baseline — and returns the per-round validation-loss
// trajectories.
func RunPopulation(c QualityConfig) (*QualityResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	train, val, tx, ty, err := datasetFor(c)
	if err != nil {
		return nil, err
	}

	worldSize := c.Trainers * c.RanksPerTrainer
	w := comm.NewWorld(worldSize)
	res := &QualityResult{RoundLosses: make([][]float64, c.Rounds)}
	for r := range res.RoundLosses {
		res.RoundLosses[r] = make([]float64, c.Trainers)
	}
	errs := make([]error, worldSize)
	adoptions := make([]int, c.Trainers)
	models := make([]*cyclegan.Surrogate, c.Trainers)

	w.Run(func(wc *comm.Comm) {
		trainerID := wc.Rank() / c.RanksPerTrainer
		tc := wc.Split(trainerID, 0)
		sub, err := reader.NewSubset(train, partitionIdx(c, trainerID))
		if err != nil {
			errs[wc.Rank()] = err
			return
		}
		store := datastore.New(tc, sub, datastore.ModeDynamic)
		modelCfg := c.Model
		modelCfg.LR = c.trainerLR(trainerID)
		model := cyclegan.New(modelCfg, c.Seed+int64(trainerID)*101)
		if tc.Rank() == 0 {
			models[trainerID] = model
		}
		tr, err := trainer.New(trainer.Config{
			ID:          trainerID,
			BatchSize:   c.BatchSize,
			XDim:        jag.InputDim,
			ShuffleSeed: c.Seed + int64(trainerID),
		}, tc, model, store, sub)
		if err != nil {
			errs[wc.Rank()] = err
			return
		}

		member := &ltfb.Member{
			Cfg: ltfb.Config{
				NumTrainers:       c.Trainers,
				RoundSteps:        c.RoundSteps,
				PairSeed:          c.Seed + 99,
				Metric:            c.Metric,
				ResetOptimOnAdopt: false,
			},
			TrainerID: trainerID,
			World:     wc,
			T:         tr,
			Scratch:   cyclegan.New(c.Model, 0),
			TournX:    tx,
			TournY:    ty,
		}

		for round := 0; round < c.Rounds; round++ {
			if err := tr.Advance(c.RoundSteps); err != nil {
				errs[wc.Rank()] = err
				return
			}
			if c.LTFB && c.Trainers > 1 {
				r, err := member.Tournament(round)
				if err != nil {
					errs[wc.Rank()] = err
					return
				}
				if r.Adopted && tc.Rank() == 0 {
					adoptions[trainerID]++
				}
			}
			loss, err := tr.Evaluate(val, c.BatchSize)
			if err != nil {
				errs[wc.Rank()] = err
				return
			}
			all := wc.AllgatherFloat64(loss)
			if wc.Rank() == 0 {
				for k := 0; k < c.Trainers; k++ {
					res.RoundLosses[round][k] = all[k*c.RanksPerTrainer]
				}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, a := range adoptions {
		res.Adoptions += a
	}
	for _, round := range res.RoundLosses {
		best, mean := round[0], 0.0
		for _, l := range round {
			if l < best {
				best = l
			}
			mean += l
		}
		res.BestSeries = append(res.BestSeries, best)
		res.MeanSeries = append(res.MeanSeries, mean/float64(len(round)))
	}
	res.FinalBest = res.BestSeries[len(res.BestSeries)-1]
	res.Models = models
	return res, nil
}

// RunKIndependentFinal runs the K-independent baseline with the kind
// package's one-shot API (the paper's Section IV-E selection) and returns
// the selection result observed by world rank 0.
func RunKIndependentFinal(c QualityConfig) (kind.Result, error) {
	if err := c.Validate(); err != nil {
		return kind.Result{}, err
	}
	c.LTFB = false
	train, val, _, _, err := datasetFor(c)
	if err != nil {
		return kind.Result{}, err
	}
	worldSize := c.Trainers * c.RanksPerTrainer
	w := comm.NewWorld(worldSize)
	var out kind.Result
	errs := make([]error, worldSize)
	w.Run(func(wc *comm.Comm) {
		trainerID := wc.Rank() / c.RanksPerTrainer
		tc := wc.Split(trainerID, 0)
		sub, err := reader.NewSubset(train, partitionIdx(c, trainerID))
		if err != nil {
			errs[wc.Rank()] = err
			return
		}
		store := datastore.New(tc, sub, datastore.ModeDynamic)
		model := cyclegan.New(c.Model, c.Seed+int64(trainerID)*101)
		tr, err := trainer.New(trainer.Config{
			ID: trainerID, BatchSize: c.BatchSize, XDim: jag.InputDim,
			ShuffleSeed: c.Seed + int64(trainerID),
		}, tc, model, store, sub)
		if err != nil {
			errs[wc.Rank()] = err
			return
		}
		m := &kind.Member{TrainerID: trainerID, NumTrainers: c.Trainers, World: wc, T: tr}
		res, err := m.Train(c.Rounds*c.RoundSteps, val, c.BatchSize)
		if err != nil {
			errs[wc.Rank()] = err
			return
		}
		if wc.Rank() == 0 {
			out = res
		}
	})
	for _, err := range errs {
		if err != nil {
			return kind.Result{}, err
		}
	}
	return out, nil
}
