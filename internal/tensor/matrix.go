// Package tensor implements the dense single-precision linear algebra that
// underpins the neural-network engine, playing the role of LLNL's
// Hydrogen/Elemental library in the paper's software stack (Figure 3).
//
// Matrices are row-major float32. Mini-batches are stored one sample per row,
// so a Linear layer's forward pass is a single GEMM over the whole batch.
// All O(n³) kernels are blocked and parallelized with internal/parallel.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix. The zero value is an empty
// matrix; use New or FromSlice to create one with a shape.
type Matrix struct {
	Rows, Cols int
	// Data holds the elements in row-major order: element (i,j) lives at
	// Data[i*Cols+j]. len(Data) == Rows*Cols always.
	Data []float32
}

// New returns a zeroed rows×cols matrix. It panics if either dimension is
// negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix without copying. It panics if
// len(data) != rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src's elements into m. The shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Reshape returns a view of m with a new shape covering the same backing
// storage. It panics if the element counts differ.
func (m *Matrix) Reshape(rows, cols int) *Matrix {
	if rows*cols != m.Rows*m.Cols {
		panic(fmt.Sprintf("tensor: cannot reshape %dx%d to %dx%d", m.Rows, m.Cols, rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: m.Data}
}

// SliceRows returns a view of rows [lo, hi) sharing storage with m.
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// Equal reports whether m and other have identical shape and elements.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != other.Data[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether m and other have identical shape and every
// element pair differs by at most tol (absolute).
func (m *Matrix) ApproxEqual(other *Matrix, tol float32) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - other.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or infinite.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

// String renders small matrices for debugging; large matrices render as a
// shape summary.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

func (m *Matrix) mustSameShape(other *Matrix, op string) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, other.Rows, other.Cols))
	}
}
