package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/tensor"
)

// newSeedServer builds a single-replica server over a fresh surrogate
// with the given seed and cfg.
func newSeedServer(t *testing.T, seed int64, cfg Config) *Server {
	t.Helper()
	pool, err := NewPool([]*cyclegan.Surrogate{cyclegan.New(testModelCfg(), seed)}, false)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(pool, cfg)
}

// refPredict runs one row through a fresh reference surrogate.
func refPredict(seed int64, x []float32) []float32 {
	ref := cyclegan.New(testModelCfg(), seed)
	xm := tensor.New(1, jag.InputDim)
	copy(xm.Row(0), x)
	return append([]float32(nil), ref.Predict(xm).Row(0)...)
}

// TestReplaceUnderConcurrentTraffic is the swap-under-traffic race
// test (run with -race): PredictContext traffic from both priority
// lanes hammers one registered name while the server behind it is
// replaced three times. Every admitted row must be served exactly once
// with zero errors — a drop would surface as an error or a hang, a
// double-serve as a corrupted reply — every reply must match one of
// the generations' reference models, each displaced server must be
// fully drained and closed by the time Replace returns, and the
// registry generation must be monotonic throughout.
func TestReplaceUnderConcurrentTraffic(t *testing.T) {
	const (
		seeds   = 4 // generations 1..4 use seeds 1..4
		inputs  = 6
		traffic = 8 // goroutines
	)
	cfg := Config{MaxBatch: 8, MaxDelay: 200 * time.Microsecond, QueueDepth: 256}

	// Reference outputs per generation, computed up front so checker
	// goroutines never share a reference model.
	refs := make([][][]float32, seeds+1)
	for seed := 1; seed <= seeds; seed++ {
		refs[seed] = make([][]float32, inputs)
		for i := 0; i < inputs; i++ {
			refs[seed][i] = refPredict(int64(seed), testInput(i))
		}
	}
	matchesSomeGeneration := func(i int, y []float32) bool {
		for seed := 1; seed <= seeds; seed++ {
			ok := true
			for j, v := range y {
				d := float64(v - refs[seed][i][j])
				if d > 1e-5 || d < -1e-5 {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}

	reg := NewRegistry()
	if err := reg.Register("m", newSeedServer(t, 1, cfg)); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var (
		stop   atomic.Bool
		served atomic.Int64
		wg     sync.WaitGroup
	)
	ctx := context.Background()
	for g := 0; g < traffic; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lane := Interactive
			if g%2 == 1 {
				lane = Bulk
			}
			for k := 0; !stop.Load(); k++ {
				i := (g + k) % inputs
				// The HTTP handler's protocol: pin the server against
				// the swap for exactly as long as the call needs it.
				s, release, ok := reg.Acquire("m")
				if !ok {
					t.Error("model vanished from the registry")
					return
				}
				y, err := s.PredictPriority(ctx, testInput(i), lane)
				release()
				if err != nil {
					t.Errorf("row dropped during swap (lane %v): %v", lane, err)
					return
				}
				if !matchesSomeGeneration(i, y) {
					t.Errorf("reply for input %d matches no generation's reference", i)
					return
				}
				served.Add(1)
			}
		}(g)
	}

	// Swap through generations 2..4 under full traffic.
	for seed := int64(2); seed <= seeds; seed++ {
		time.Sleep(20 * time.Millisecond)
		old, _ := reg.Get("m")
		next := newSeedServer(t, seed, cfg)
		if err := reg.Replace("m", next); err != nil {
			t.Fatalf("Replace to seed %d: %v", seed, err)
		}
		if !old.Closed() {
			t.Fatalf("generation %d server not closed when Replace returned", seed-1)
		}
		if got, _ := reg.Get("m"); got != next {
			t.Fatalf("generation %d not routing to the new server", seed)
		}
		if gen := reg.Generation("m"); gen != int64(seed) {
			t.Fatalf("generation = %d after swap %d, want monotonic increments", gen, seed-1)
		}
	}
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := served.Load(); n < seeds*traffic {
		t.Fatalf("only %d rows served across 3 swaps; traffic loop barely ran", n)
	}
}

// TestAcquirePinsAcrossReplace pins the drain contract in isolation:
// Replace routes new lookups to the replacement immediately but blocks
// until the last Acquire holder releases the displaced server, which
// stays fully usable in the meantime.
func TestAcquirePinsAcrossReplace(t *testing.T) {
	reg := NewRegistry()
	oldSrv := newSeedServer(t, 1, Config{MaxBatch: 1})
	if err := reg.Register("m", oldSrv); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	s, release, ok := reg.Acquire("m")
	if !ok || s != oldSrv {
		t.Fatal("Acquire did not return the registered server")
	}

	next := newSeedServer(t, 2, Config{MaxBatch: 1})
	done := make(chan error, 1)
	go func() { done <- reg.Replace("m", next) }()

	// New lookups route to the replacement as soon as the swap lands.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got, _ := reg.Get("m"); got == next {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("swap never routed new lookups to the replacement")
		}
		time.Sleep(time.Millisecond)
	}

	// The displaced server is pinned: Replace has not returned and the
	// held server still answers.
	select {
	case err := <-done:
		t.Fatalf("Replace returned (%v) while a holder still pins the old server", err)
	case <-time.After(20 * time.Millisecond):
	}
	if oldSrv.Closed() {
		t.Fatal("pinned server closed under the holder")
	}
	if _, err := s.Predict(testInput(0)); err != nil {
		t.Fatalf("pinned server stopped serving: %v", err)
	}

	release()
	release() // idempotent: a second call must not unblock anything twice
	if err := <-done; err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if !oldSrv.Closed() {
		t.Fatal("displaced server not closed after the last release")
	}
}

// TestReplaceValidation covers the error paths that must leave the
// registration untouched.
func TestReplaceValidation(t *testing.T) {
	reg := NewRegistry()
	a := newSeedServer(t, 1, Config{MaxBatch: 1})
	t.Cleanup(a.Close)
	if err := reg.Register("m", a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Replace("m", nil); err == nil {
		t.Fatal("nil replacement accepted")
	}
	if err := reg.Replace("ghost", newSeedServer(t, 2, Config{MaxBatch: 1})); err == nil {
		t.Fatal("replace of unregistered name accepted")
	}
	closed := newSeedServer(t, 3, Config{MaxBatch: 1})
	closed.Close()
	if err := reg.Replace("m", closed); err == nil {
		t.Fatal("closed replacement accepted")
	}
	if err := reg.Replace("m", a); err == nil {
		t.Fatal("self-replacement accepted")
	}
	if s, _ := reg.Get("m"); s != a || a.Closed() {
		t.Fatal("failed Replace disturbed the registration")
	}
	if gen := reg.Generation("m"); gen != 1 {
		t.Fatalf("failed Replace moved the generation to %d", gen)
	}
}

// TestReplaceAfterClose pins the shutdown race: a swap that loses the
// race against Registry.Close must be rejected (the caller closes its
// own server), never slipped live into a closed registry.
func TestReplaceAfterClose(t *testing.T) {
	reg := NewRegistry()
	a := newSeedServer(t, 1, Config{MaxBatch: 1})
	if err := reg.Register("m", a); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	late := newSeedServer(t, 2, Config{MaxBatch: 1})
	t.Cleanup(late.Close)
	if err := reg.Replace("m", late); err == nil {
		t.Fatal("Replace accepted into a closed registry")
	}
	if late.Closed() {
		t.Fatal("rejected server is the caller's to close, not the registry's")
	}
	if err := reg.Register("late", late); err == nil {
		t.Fatal("Register accepted into a closed registry")
	}
}

// saveTestCheckpoint writes surrogate m as a checkpoint + spec pair
// the reloader can resolve.
func saveTestCheckpoint(t *testing.T, path string, step int64, m *cyclegan.Surrogate) {
	t.Helper()
	if err := checkpoint.Save(path, step, m.Nets()); err != nil {
		t.Fatal(err)
	}
	spec := ModelSpec{Model: testModelCfg(), Step: step, Checkpoints: []string{filepath.Base(path)}}
	if err := SaveSpec(SpecPath(path), spec); err != nil {
		t.Fatal(err)
	}
}

// newWatchedServer builds a checkpoint on disk, a server loaded from
// it, and a reloader watching it; Check is driven explicitly by the
// tests for determinism.
func newWatchedServer(t *testing.T, cfg Config) (reg *Registry, rl *Reloader, ckpt string) {
	t.Helper()
	ckpt = filepath.Join(t.TempDir(), "model.ckpt")
	saveTestCheckpoint(t, ckpt, 1, cyclegan.New(testModelCfg(), 1))
	spec, err := ResolveSpec(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPoolFromCheckpoints(spec.Model, spec.Checkpoints, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	reg = NewRegistry()
	if err := reg.Register("m", NewServer(pool, cfg)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	rl, err = NewReloader(reg, "m", ckpt, ReloaderConfig{Server: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return reg, rl, ckpt
}

// TestReloaderSwapsOnNewCheckpoint drives the happy path: no change is
// a no-op, a rewrite with identical content is a no-op (fingerprint,
// not mtime, decides), and a new winner checkpoint hot-swaps the
// generation whose outputs then match the new model bitwise.
func TestReloaderSwapsOnNewCheckpoint(t *testing.T) {
	reg, rl, ckpt := newWatchedServer(t, Config{MaxBatch: 1})

	if swapped, err := rl.Check(); err != nil || swapped {
		t.Fatalf("idle check = %v, %v; want no-op", swapped, err)
	}

	// Re-save the identical model: mtime moves, content does not.
	saveTestCheckpoint(t, ckpt, 1, cyclegan.New(testModelCfg(), 1))
	if swapped, err := rl.Check(); err != nil || swapped {
		t.Fatalf("identical rewrite check = %v, %v; want no-op", swapped, err)
	}
	if gen := reg.Generation("m"); gen != 1 {
		t.Fatalf("no-op checks moved generation to %d", gen)
	}

	// A new tournament winner lands.
	saveTestCheckpoint(t, ckpt, 2, cyclegan.New(testModelCfg(), 2))
	old, _ := reg.Get("m")
	swapped, err := rl.Check()
	if err != nil || !swapped {
		t.Fatalf("new checkpoint check = %v, %v; want swap", swapped, err)
	}
	if !old.Closed() {
		t.Fatal("displaced server not closed after the swap")
	}
	if gen := reg.Generation("m"); gen != 2 {
		t.Fatalf("generation = %d after swap, want 2", gen)
	}

	// MaxBatch 1: the served row is bitwise the new model's pass.
	s, release, _ := reg.Acquire("m")
	defer release()
	x := testInput(2)
	got, err := s.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	want := refPredict(2, x)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("post-swap output[%d] = %v, want new model's %v", j, got[j], want[j])
		}
	}

	st := rl.State()
	if st.Reloads != 1 || st.Generation != 2 || st.LastError != "" || st.LastSwap.IsZero() || st.Fingerprint == "" {
		t.Fatalf("reloader state after swap: %+v", st)
	}
}

// TestReloaderBaselinePinsServingContent covers the startup race the
// Baseline option exists for: a checkpoint written between building
// the serving pool and constructing the reloader. With the baseline
// pinned to the content the pool was actually built from, the first
// poll promotes the interloper instead of silently adopting it as
// already-serving.
func TestReloaderBaselinePinsServingContent(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "model.ckpt")
	saveTestCheckpoint(t, ckpt, 1, cyclegan.New(testModelCfg(), 1))
	baseline, err := SpecFingerprint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ResolveSpec(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPoolFromCheckpoints(spec.Model, spec.Checkpoints, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Register("m", NewServer(pool, Config{MaxBatch: 1})); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)

	// The training side drops a new winner in the window.
	saveTestCheckpoint(t, ckpt, 2, cyclegan.New(testModelCfg(), 2))

	rl, err := NewReloader(reg, "m", ckpt, ReloaderConfig{Server: Config{MaxBatch: 1}, Baseline: baseline})
	if err != nil {
		t.Fatal(err)
	}
	if swapped, err := rl.Check(); err != nil || !swapped {
		t.Fatalf("first poll = %v, %v; want the interloper promoted", swapped, err)
	}
	if gen := reg.Generation("m"); gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}
}

// TestReloaderRejectsCorruptCheckpoint covers both rollback paths: a
// garbage file that fails to load, and a structurally valid checkpoint
// whose NaN weights fail the canary forward pass. In both cases the
// old generation must keep serving and the failure must be visible in
// the reload state.
func TestReloaderRejectsCorruptCheckpoint(t *testing.T) {
	reg, rl, ckpt := newWatchedServer(t, Config{MaxBatch: 1})
	serving := func() {
		t.Helper()
		s, release, ok := reg.Acquire("m")
		if !ok {
			t.Fatal("model gone")
		}
		defer release()
		if _, err := s.Predict(testInput(0)); err != nil {
			t.Fatalf("old generation stopped serving: %v", err)
		}
	}

	// Garbage bytes: fails checkpoint.Load.
	if err := os.WriteFile(ckpt, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if swapped, err := rl.Check(); err == nil || swapped {
		t.Fatalf("garbage checkpoint check = %v, %v; want rejection", swapped, err)
	}
	if gen := reg.Generation("m"); gen != 1 {
		t.Fatalf("rejected reload moved generation to %d", gen)
	}
	serving()
	if st := rl.State(); st.LastError == "" || st.Reloads != 0 {
		t.Fatalf("rejection not recorded: %+v", st)
	}

	// A stable bad file is not re-attempted — the stat signature gates
	// the retry until the next actual write — and the no-change poll
	// must NOT wipe the recorded failure while the rejected content is
	// still what's on disk (healthz keeps showing the evidence).
	if swapped, err := rl.Check(); err != nil || swapped {
		t.Fatalf("unchanged bad file re-attempted: %v, %v", swapped, err)
	}
	if st := rl.State(); st.LastError == "" {
		t.Fatal("no-change poll cleared the rejected-reload evidence")
	}

	// Valid format, poisoned weights: loads fine, canary must reject.
	poisoned := cyclegan.New(testModelCfg(), 3)
	for _, net := range poisoned.Nets() {
		for _, p := range net.Params() {
			for i := range p.W.Data {
				p.W.Data[i] = float32(math.NaN())
			}
		}
	}
	saveTestCheckpoint(t, ckpt, 3, poisoned)
	if swapped, err := rl.Check(); err == nil || swapped || !strings.Contains(err.Error(), "canary") {
		t.Fatalf("NaN checkpoint check = %v, %v; want canary rejection", swapped, err)
	}
	if gen := reg.Generation("m"); gen != 1 {
		t.Fatalf("canary-rejected reload moved generation to %d", gen)
	}
	serving()

	// Recovery: the next good checkpoint swaps and clears the error.
	saveTestCheckpoint(t, ckpt, 4, cyclegan.New(testModelCfg(), 4))
	if swapped, err := rl.Check(); err != nil || !swapped {
		t.Fatalf("recovery check = %v, %v; want swap", swapped, err)
	}
	if st := rl.State(); st.LastError != "" || st.Reloads != 1 || st.Generation != 2 {
		t.Fatalf("recovery state: %+v", st)
	}
}

// TestNewReloaderValidation: a reloader needs a registered name and
// refuses to double-watch.
func TestNewReloaderValidation(t *testing.T) {
	reg := NewRegistry()
	if _, err := NewReloader(reg, "ghost", "nowhere", ReloaderConfig{}); err == nil {
		t.Fatal("reloader attached to an unregistered model")
	}
	s := newSeedServer(t, 1, Config{MaxBatch: 1})
	t.Cleanup(s.Close)
	if err := reg.Register("m", s); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReloader(reg, "m", "nowhere", ReloaderConfig{}); err != nil {
		t.Fatalf("unreadable path must not block construction (baseline is best-effort): %v", err)
	}
	if _, err := NewReloader(reg, "m", "nowhere", ReloaderConfig{}); err == nil {
		t.Fatal("second reloader on one name accepted")
	}
	if _, ok := reg.ReloadState("m"); !ok {
		t.Fatal("reload state not reachable through the registry")
	}
}

// TestCanary pins the smoke test itself against a synthetic model:
// clean output passes, a Run error, a wrong shape, and a NaN output
// each fail with the method named.
func TestCanary(t *testing.T) {
	if err := canary(canaryModel{}); err != nil {
		t.Fatalf("healthy model failed canary: %v", err)
	}
	if err := canary(canaryModel{failRun: true}); err == nil || !strings.Contains(err.Error(), MethodPredict) {
		t.Fatalf("Run failure not caught: %v", err)
	}
	if err := canary(canaryModel{wrongShape: true}); err == nil {
		t.Fatal("wrong output shape not caught")
	}
	if err := canary(canaryModel{nanOut: true}); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN output not caught: %v", err)
	}
}

// canaryModel is a synthetic Model with switchable failure modes.
type canaryModel struct {
	failRun    bool
	wrongShape bool
	nanOut     bool
}

func (canaryModel) Dims() map[string]Dims {
	return map[string]Dims{MethodPredict: {In: 2, Out: 3}}
}

func (c canaryModel) Run(method string, x *tensor.Matrix) (*tensor.Matrix, error) {
	if c.failRun {
		return nil, errors.New("synthetic failure")
	}
	if c.wrongShape {
		return tensor.New(x.Rows, 5), nil
	}
	y := tensor.New(x.Rows, 3)
	if c.nanOut {
		y.Set(0, 1, float32(math.NaN()))
	}
	return y, nil
}

// TestV1ReloadSurfaces checks the HTTP face of a hot swap: the model
// listing and per-model stats report the new generation, and /healthz
// carries the watcher's reload state — including the last rejected
// reload while the old generation keeps serving.
func TestV1ReloadSurfaces(t *testing.T) {
	reg, rl, ckpt := newWatchedServer(t, Config{MaxBatch: 4})
	ts := httptest.NewServer(NewRegistryHandler(reg, HandlerConfig{}))
	defer ts.Close()
	ctx := context.Background()
	c := NewClient(ts.URL)

	snap, err := c.Stats(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 1 || snap.Reloads != 0 {
		t.Fatalf("fresh stats generation/reloads = %d/%d, want 1/0", snap.Generation, snap.Reloads)
	}

	saveTestCheckpoint(t, ckpt, 2, cyclegan.New(testModelCfg(), 2))
	if swapped, err := rl.Check(); err != nil || !swapped {
		t.Fatalf("check = %v, %v", swapped, err)
	}

	snap, err = c.Stats(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 2 || snap.Reloads != 1 {
		t.Fatalf("post-swap stats generation/reloads = %d/%d, want 2/1", snap.Generation, snap.Reloads)
	}
	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Generation != 2 || !models[0].Ready {
		t.Fatalf("listing after swap: %+v", models)
	}

	// A rejected reload shows up in /healthz without degrading it.
	if err := os.WriteFile(ckpt, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := rl.Check(); err == nil {
		t.Fatal("garbage accepted")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("rejected reload degraded health: %+v (%d)", h, resp.StatusCode)
	}
	mh := h.Models["m"]
	if mh.Generation != 2 || mh.Reload == nil {
		t.Fatalf("healthz missing reload state: %+v", mh)
	}
	if mh.Reload.Reloads != 1 || mh.Reload.LastError == "" || mh.Reload.Path != ckpt {
		t.Fatalf("healthz reload state: %+v", mh.Reload)
	}
}
