package serve

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Stats aggregates the serving counters behind one mutex: metrics.Meter
// is not concurrency-safe and the serving path is all concurrency.
type Stats struct {
	mu          sync.Mutex
	start       time.Time
	requests    int64
	overloads   int64
	expired     int64
	cancelled   int64
	cacheHits   int64
	cacheMisses int64
	latency     metrics.Meter // milliseconds, enqueue to scatter
	batchOccup  metrics.Meter // requests per forward pass
}

// newStats starts the throughput clock.
func newStats() *Stats { return &Stats{start: time.Now()} }

// request records one completed prediction and its queue-to-reply latency.
func (s *Stats) request(d time.Duration) {
	s.mu.Lock()
	s.requests++
	s.latency.Add(float64(d) / float64(time.Millisecond))
	s.mu.Unlock()
}

// batch records one forward pass of n coalesced requests.
func (s *Stats) batch(n int) {
	s.mu.Lock()
	s.batchOccup.Add(float64(n))
	s.mu.Unlock()
}

// overload counts one request rejected by backpressure.
func (s *Stats) overload() {
	s.mu.Lock()
	s.overloads++
	s.mu.Unlock()
}

// expire counts one request dropped — at admission or at flush time,
// but always before a forward pass — because its deadline passed.
func (s *Stats) expire() {
	s.mu.Lock()
	s.expired++
	s.mu.Unlock()
}

// cancel counts one request dropped before a forward pass because its
// context was cancelled.
func (s *Stats) cancel() {
	s.mu.Lock()
	s.cancelled++
	s.mu.Unlock()
}

// cacheHit counts one request answered from the LRU cache.
func (s *Stats) cacheHit() {
	s.mu.Lock()
	s.cacheHits++
	s.mu.Unlock()
}

// cacheMiss counts one request that had to run the model.
func (s *Stats) cacheMiss() {
	s.mu.Lock()
	s.cacheMisses++
	s.mu.Unlock()
}

// StatsSnapshot is a consistent copy of the serving counters, shaped for
// the /stats JSON endpoint.
type StatsSnapshot struct {
	Requests     int64   `json:"requests"`
	Batches      int     `json:"batches"`
	Overloads    int64   `json:"overloads"`
	Expired      int64   `json:"expired"`
	Cancelled    int64   `json:"cancelled"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	MeanBatch    float64 `json:"mean_batch"`
	MaxBatch     float64 `json:"max_batch"`
	MeanLatMs    float64 `json:"mean_latency_ms"`
	MaxLatMs     float64 `json:"max_latency_ms"`
	ThroughputPS float64 `json:"throughput_per_sec"`
	UptimeSec    float64 `json:"uptime_sec"`
}

// snapshot captures the counters at one instant.
func (s *Stats) snapshot() StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	up := time.Since(s.start).Seconds()
	snap := StatsSnapshot{
		Requests:    s.requests,
		Batches:     s.batchOccup.Count(),
		Overloads:   s.overloads,
		Expired:     s.expired,
		Cancelled:   s.cancelled,
		CacheHits:   s.cacheHits,
		CacheMisses: s.cacheMisses,
		MeanBatch:   s.batchOccup.Mean(),
		MaxBatch:    s.batchOccup.Max(),
		MeanLatMs:   s.latency.Mean(),
		MaxLatMs:    s.latency.Max(),
		UptimeSec:   up,
	}
	if up > 0 {
		snap.ThroughputPS = float64(s.requests+s.cacheHits) / up
	}
	return snap
}
