package core

import (
	"fmt"
	"time"

	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/serve"
)

// Figure S1 — the serving-capacity analogue of Figure 11. The training
// figures predict epoch time from a calibrated cost model; this one
// predicts sustainable QPS and p50/p99 latency of the internal/serve
// batching queue from constants measured on the running binary
// (serve.CostProbe), swept over replica counts and batch windows. The
// tier-1 capacity test in the repository root validates the same model
// against a measured in-process benchmark.

// figS1MaxBatch matches serve.Config's default MaxBatch.
const figS1MaxBatch = 64

// figS1Arch mirrors a cyclegan.Config as a perfmodel.Arch so the
// probed per-row cost can be converted to an effective host GEMM
// throughput (and from there projected to the paper-scale model).
func figS1Arch(cfg cyclegan.Config) perfmodel.Arch {
	return perfmodel.Arch{
		InputDim:      jag.InputDim,
		OutputDim:     cfg.Geometry.OutputDim(),
		LatentDim:     cfg.LatentDim,
		EncoderHidden: cfg.EncoderHidden,
		ForwardHidden: cfg.ForwardHidden,
		InverseHidden: cfg.InverseHidden,
		DiscHidden:    cfg.DiscHidden,
	}
}

// figS1Config is the probed surrogate: the laptop-scale Tiny8 shape the
// quality figures train. Forward-pass cost depends only on the layer
// shapes, never on the weight values, so the probe runs an untrained
// model.
func figS1Config() cyclegan.Config {
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{48}
	cfg.ForwardHidden = []int{32, 32}
	cfg.InverseHidden = []int{16}
	cfg.DiscHidden = []int{16}
	return cfg
}

// ProbeServingCost measures the serving cost constants of the Figure S1
// surrogate on this host: one untrained Tiny8-geometry model, probed
// through the same gather→Run→scatter path the serving worker uses.
func ProbeServingCost() (perfmodel.ServingCost, cyclegan.Config, error) {
	cfg := figS1Config()
	pool, err := serve.NewPool([]*cyclegan.Surrogate{cyclegan.New(cfg, 1)}, false)
	if err != nil {
		return perfmodel.ServingCost{}, cfg, err
	}
	res, err := serve.CostProbe(pool, serve.MethodPredict, figS1MaxBatch)
	if err != nil {
		return perfmodel.ServingCost{}, cfg, err
	}
	return perfmodel.ServingCost{PassSec: res.PassSec, RowSec: res.RowSec}, cfg, nil
}

// FigureS1Table renders the serving-capacity sweep for a probed cost:
// sustainable QPS and latency at a 60%-utilization operating point,
// over replica counts and batch windows.
func FigureS1Table(cost perfmodel.ServingCost) *metrics.Table {
	tab := metrics.NewTable(
		fmt.Sprintf("Figure S1 — serving capacity, probed cost/pass %.0fµs + %.1fµs/row, batch cap %d, latency at 60%% load",
			1e6*cost.PassSec, 1e6*cost.RowSec, figS1MaxBatch),
		"replicas", "window_ms", "max_qps", "offered_qps", "batch_fill", "p50_ms", "p99_ms", "bulk_p99_ms")
	pts := perfmodel.FigureS1(cost, figS1MaxBatch,
		[]int{1, 2, 4, 8},
		[]time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond},
		0.6, 0, 0.25)
	for _, p := range pts {
		tab.AddRow(p.Replicas, float64(p.Window)/1e6, p.MaxQPS, p.OfferedQPS,
			p.Occupancy, p.P50Ms, p.P99Ms, p.BulkP99Ms)
	}
	return tab
}

// FigureS1PaperTable projects the probed host throughput onto the
// paper-scale architecture (the 49k-output Default64 bundle): the
// probed RowSec and the probed model's forward-only flops give an
// effective GEMM rate for this host, and the paper arch's much larger
// per-row work is costed at that rate — the capacity-planning step the
// ROADMAP's "millions of users" target needs. Pass the cfg returned by
// ProbeServingCost.
func FigureS1PaperTable(cost perfmodel.ServingCost, probed cyclegan.Config) (*metrics.Table, error) {
	tinyFlops, err := figS1Arch(probed).ServeFlopsPerRow(perfmodel.ServePredict)
	if err != nil {
		return nil, err
	}
	hostFlops := tinyFlops / cost.RowSec
	paper, err := perfmodel.ServingCostFromArch(perfmodel.PaperArch(), perfmodel.ServePredict,
		hostFlops, cost.PassSec)
	if err != nil {
		return nil, err
	}
	tab := metrics.NewTable(
		fmt.Sprintf("Figure S1b — paper-scale projection (%.2g flops/row at %.2g flops/s/replica)",
			paper.RowSec*hostFlops, hostFlops),
		"replicas", "max_qps", "p50_ms", "p99_ms")
	for _, rep := range []int{1, 16, 64, 256} {
		s := perfmodel.ServingScenario{
			Cost:     paper,
			Replicas: rep,
			MaxBatch: figS1MaxBatch,
			Window:   2 * time.Millisecond,
		}
		s.OfferedQPS = 0.6 * s.MaxQPS()
		r := s.Report()
		tab.AddRow(rep, r.MaxQPS, 1e3*r.P50, 1e3*r.P99)
	}
	return tab, nil
}
