package perfmodel

import (
	"testing"

	"repro/internal/datastore"
)

func TestArchParamCounts(t *testing.T) {
	a := PaperArch()
	enc, dec, fwd, inv, disc := a.Params()
	// Encoder/decoder dominate: ~37.8M parameters each at 49167×768.
	if enc < 35e6 || enc > 40e6 {
		t.Fatalf("encoder params = %d", enc)
	}
	if dec < 35e6 || dec > 40e6 {
		t.Fatalf("decoder params = %d", dec)
	}
	if fwd > 1e6 || inv > 1e6 || disc > 1e6 {
		t.Fatalf("small nets too big: %d %d %d", fwd, inv, disc)
	}
	ae, dsc, gen := a.PhaseGradBytes()
	if ae != 4*float64(enc+dec) || dsc != 4*float64(disc) || gen != 4*float64(fwd+inv+dec) {
		t.Fatal("phase grad bytes inconsistent with param counts")
	}
	if a.FlopsPerSample() < 6*float64(enc+dec) {
		t.Fatal("flops must at least cover the autoencoder phase")
	}
}

func TestMLPParamsKnownValue(t *testing.T) {
	// 3→4→2: 3·4+4 + 4·2+2 = 26.
	if got := mlpParams([]int{3, 4, 2}); got != 26 {
		t.Fatalf("mlpParams = %d, want 26", got)
	}
}

func TestScenarioValidate(t *testing.T) {
	s := PaperScenario(1000)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.Trainers = 0
	if bad.Validate() == nil {
		t.Fatal("0 trainers must be invalid")
	}
	bad = s
	bad.SerializationBW = 0
	if bad.Validate() == nil {
		t.Fatal("0 serialization bandwidth must be invalid")
	}
}

func assertWindow(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Fatalf("%s = %.3f outside calibration window [%.3f, %.3f]", name, got, lo, hi)
	}
}

// Figure 9 calibration: 9.36× speedup at 16 GPUs with ~58% parallel
// efficiency, near-linear at low GPU counts, monotone throughout.
func TestFigure9Calibration(t *testing.T) {
	pts := Figure9()
	if len(pts) != 5 || pts[0].GPUs != 1 || pts[4].GPUs != 16 {
		t.Fatalf("unexpected x-axis: %+v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].SteadyEpoch >= pts[i-1].SteadyEpoch {
			t.Fatalf("epoch time not monotone: %+v", pts)
		}
	}
	base := pts[0].SteadyEpoch
	sp16 := base / pts[4].SteadyEpoch
	assertWindow(t, "fig9 speedup@16", sp16, 8.8, 10.0)
	assertWindow(t, "fig9 efficiency@16", sp16/16, 0.55, 0.63)
	assertWindow(t, "fig9 speedup@4", base/pts[2].SteadyEpoch, 3.3, 4.0)
}

// Figure 10 calibration: the data-store benefit ratios the paper reports —
// 7.73× at 1 GPU, 1.31× (dynamic) and 1.43× (preloaded) at 16 GPUs, with
// preload 1.10× over dynamic; preload infeasible at 1–2 GPUs.
func TestFigure10Calibration(t *testing.T) {
	pts := Figure10()
	get := func(g int, m datastore.Mode) Figure10Point {
		for _, p := range pts {
			if p.GPUs == g && p.Mode == m {
				return p
			}
		}
		t.Fatalf("missing point g=%d mode=%v", g, m)
		return Figure10Point{}
	}
	// Feasibility matches the paper: preload OOMs at 1 and 2 GPUs only.
	for _, g := range []int{1, 2} {
		if get(g, datastore.ModePreload).Feasible {
			t.Fatalf("preload at %d GPUs should be infeasible", g)
		}
	}
	for _, g := range []int{4, 8, 16} {
		if !get(g, datastore.ModePreload).Feasible {
			t.Fatalf("preload at %d GPUs should be feasible", g)
		}
	}
	assertWindow(t, "store benefit@1GPU",
		get(1, datastore.ModeNone).SteadyEpoch/get(1, datastore.ModeDynamic).SteadyEpoch, 7.0, 8.6)
	naive16 := get(16, datastore.ModeNone).SteadyEpoch
	dyn16 := get(16, datastore.ModeDynamic).SteadyEpoch
	pre16 := get(16, datastore.ModePreload).SteadyEpoch
	assertWindow(t, "naive/dynamic@16", naive16/dyn16, 1.24, 1.38)
	assertWindow(t, "naive/preload@16", naive16/pre16, 1.36, 1.50)
	assertWindow(t, "dynamic/preload@16", dyn16/pre16, 1.05, 1.15)
	// First-epoch ordering: preload initial beats both other initials at 16
	// GPUs; the dynamic store's first epoch costs slightly more than naive.
	if !(get(16, datastore.ModePreload).InitialEpoch < naive16) {
		t.Fatal("preload initial epoch should beat naive")
	}
	if !(get(16, datastore.ModeDynamic).InitialEpoch > naive16) {
		t.Fatal("dynamic-store first epoch should cost slightly more than naive")
	}
}

// Figure 11 calibration: 70.2× speedup at 64 trainers (≈109% efficiency),
// superlinear throughout, preload time dipping with trainer count then
// rising at 64 from file-system interference, and the 4-packed-node
// single-trainer baseline infeasible.
func TestFigure11Calibration(t *testing.T) {
	pts := Figure11()
	if len(pts) != 5 || pts[0].Trainers != 1 || pts[4].Trainers != 64 {
		t.Fatalf("unexpected x-axis: %+v", pts)
	}
	sp64 := pts[4].Speedup
	assertWindow(t, "fig11 speedup@64", sp64, 66, 75)
	assertWindow(t, "fig11 efficiency@64", pts[4].Efficiency, 1.03, 1.17)
	for _, p := range pts[1:] {
		if p.Efficiency < 1.0 {
			t.Fatalf("LTFB point lost superlinearity: %+v", p)
		}
	}
	// Preload: monotone decrease until 32 trainers, then interference rise.
	for i := 1; i < 4; i++ {
		if pts[i].PreloadTime >= pts[i-1].PreloadTime {
			t.Fatalf("preload should decrease until 32 trainers: %+v", pts)
		}
	}
	if !(pts[4].PreloadTime > pts[3].PreloadTime*1.2) {
		t.Fatalf("preload at 64 trainers should degrade: %v vs %v", pts[4].PreloadTime, pts[3].PreloadTime)
	}
	base := Fig11Infeasible4NodeBaseline()
	if base.Feasible {
		t.Fatal("10M samples on a 4-packed-node trainer must be infeasible")
	}
	if base.Reason == "" {
		t.Fatal("infeasibility must carry a reason")
	}
}

// The sparse 16-node baseline mechanism: its per-step time must exceed the
// packed 4-node configuration's by the ~10% that makes LTFB superlinear.
func TestSparseBaselinePenaltyWindow(t *testing.T) {
	sparse := fig11Scenario(1).Epoch()
	dense := fig11Scenario(64).Epoch()
	ratio := sparse.StepTime / dense.StepTime
	assertWindow(t, "sparse/dense step ratio", ratio, 1.03, 1.17)
}

func TestNaiveIngestScalesDownWithRanks(t *testing.T) {
	s := PaperScenario(1_000_000)
	s.Mode = datastore.ModeNone
	densePlacement(&s, 1)
	i1 := s.NaiveIngestPerStep()
	densePlacement(&s, 16)
	i16 := s.NaiveIngestPerStep()
	if !(i16 < i1/8) {
		t.Fatalf("ingest should parallelize: %v vs %v", i1, i16)
	}
	if !(i16 > i1/32) {
		t.Fatalf("ingest cannot super-scale: %v vs %v", i1, i16)
	}
}

func TestPreloadMakespanDeterministic(t *testing.T) {
	s := fig11Scenario(8)
	a := s.PreloadMakespan()
	b := s.PreloadMakespan()
	if a != b {
		t.Fatalf("preload makespan nondeterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("preload makespan = %v", a)
	}
}

func TestEpochReportBreakdownConsistent(t *testing.T) {
	s := PaperScenario(1_000_000)
	s.Mode = datastore.ModePreload
	densePlacement(&s, 16)
	r := s.Epoch()
	if !r.Feasible {
		t.Fatalf("unexpected infeasible: %s", r.Reason)
	}
	if r.StepsPerEpoch != 1_000_000/128 {
		t.Fatalf("steps per epoch = %d", r.StepsPerEpoch)
	}
	sum := r.Compute + r.Allreduce + r.Shuffle
	if diff := r.StepTime - sum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("step time %v != breakdown sum %v", r.StepTime, sum)
	}
	if r.InitialEpoch <= r.SteadyEpoch {
		t.Fatal("preload initial epoch must include the preload time")
	}
}

func TestPressureGrowsWithOccupancy(t *testing.T) {
	s := fig11Scenario(1) // sparse baseline: high occupancy
	high := s.pressure()
	s2 := fig11Scenario(64)
	low := s2.pressure()
	if low != 1 {
		t.Fatalf("64-trainer occupancy should be pressure-free, got %v", low)
	}
	if !(high > 1) {
		t.Fatalf("sparse baseline should see memory pressure, got %v", high)
	}
}

func BenchmarkFigure11Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Figure11()
	}
}

func TestSweepHeadline(t *testing.T) {
	pts := SweepHeadline(3)
	if len(pts) != 12 {
		t.Fatalf("sweep produced %d points, want 12", len(pts))
	}
	knobs := map[string][]SensitivityPoint{}
	for _, p := range pts {
		if p.Speedup <= 0 {
			t.Fatalf("degenerate speedup in %+v", p)
		}
		knobs[p.Knob] = append(knobs[p.Knob], p)
	}
	// The sparse-NIC penalty is the dominant superlinearity lever: speedup
	// must increase monotonically with it.
	nic := knobs["sparse_nic_penalty"]
	for i := 1; i < len(nic); i++ {
		if nic[i].Speedup <= nic[i-1].Speedup {
			t.Fatalf("speedup not monotone in NIC penalty: %+v", nic)
		}
	}
	// With zero penalty and zero step overhead, the 64-trainer run should
	// lose most of its superlinearity (close to linear scaling).
	sp, _ := headlineUnder(func(s *Scenario) {
		s.Fabric.SparseNICPenalty = 0
		s.Fabric.StepOverhead = 0
		s.Fabric.MemoryPressure = 0
	})
	if sp > 67 {
		t.Fatalf("without the modelled mechanisms speedup should be ~linear, got %v", sp)
	}
	// File-system interference moves preload time, not speedup.
	fs := knobs["fs_interference"]
	if !(fs[len(fs)-1].Preload > fs[0].Preload) {
		t.Fatalf("interference should raise preload time: %+v", fs)
	}
	if SensitivitySummary(pts) == "" {
		t.Fatal("summary empty")
	}
}
