// Serving quickstart: the full path from training to the v1 serving
// API — train two tiny surrogates, checkpoint them, register both under
// names in a serve.Registry, mount the versioned HTTP surface, and
// query it like a remote client would: list the models, run a
// binary-transport predict call against one model and an invert call
// against the other, and fall back to the deprecated /predict alias.
// Then the live-ops step: a new tournament winner overwrites the
// watched checkpoint and a serve.Reloader hot-swaps it in (canary
// forward pass before promotion, old pool drained, generation counter
// bumped) without restarting or dropping a request. This is the
// workflow cmd/ltfbtrain + cmd/jagserve -watch run across two
// processes, condensed into one.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/cyclegan"
	"repro/internal/jag"
	"repro/internal/metrics"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serving: ")

	// 1. Train two small surrogates — stand-ins for two campaigns'
	// models served side by side (see examples/ltfb_scaling for the
	// population workflow that produces real tournament winners).
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{32}
	cfg.ForwardHidden = []int{16}
	cfg.InverseHidden = []int{12}
	cfg.DiscHidden = []int{12}
	dir, err := os.MkdirTemp("", "serving-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	reg := serve.NewRegistry()
	defer reg.Close()
	ckpts := map[string]string{}
	for i, name := range []string{"campaign-a", "campaign-b"} {
		fmt.Printf("training tiny surrogate %q...\n", name)
		model, err := core.TrainSurrogate(cfg, 256, 60+60*i, 16, int64(3+i))
		if err != nil {
			log.Fatal(err)
		}

		// 2. Checkpoint with the serving spec sidecar, as ltfbtrain
		// -checkpoint does; jagserve -models would load exactly this.
		ckpt := filepath.Join(dir, name+".ckpt")
		ckpts[name] = ckpt
		if err := checkpoint.Save(ckpt, 120, model.Nets()); err != nil {
			log.Fatal(err)
		}
		spec := serve.ModelSpec{Model: cfg, Step: 120, Checkpoints: []string{ckpt}}
		if err := serve.SaveSpec(serve.SpecPath(ckpt), spec); err != nil {
			log.Fatal(err)
		}

		// 3. Load the checkpoint into a 2-replica pool behind its own
		// micro-batching queue and register it under its name. Each
		// registered model gets independent lanes, cache, and stats;
		// predict and invert batch separately inside each server.
		loaded, err := serve.ResolveSpec(ckpt)
		if err != nil {
			log.Fatal(err)
		}
		pool, err := serve.NewPoolFromCheckpoints(loaded.Model, loaded.Checkpoints, 2, false)
		if err != nil {
			log.Fatal(err)
		}
		srv := serve.NewServer(pool, serve.Config{
			MaxBatch:  32,
			MaxDelay:  2 * time.Millisecond,
			CacheSize: 256,
		})
		if err := reg.Register(name, srv); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Mount the v1 HTTP surface (what cmd/jagserve listens on) and
	// talk to it over real HTTP.
	ts := httptest.NewServer(serve.NewRegistryHandler(reg, serve.HandlerConfig{
		DefaultDeadline: time.Second,
	}))
	defer ts.Close()
	ctx := context.Background()

	cl := serve.NewClient(ts.URL)
	models, err := cl.Models(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range models {
		fmt.Printf("model %-10s default=%-5v predict %dx%d, invert %dx%d\n",
			m.Name, m.Default,
			m.Methods[serve.MethodPredict].In, m.Methods[serve.MethodPredict].Out,
			m.Methods[serve.MethodInvert].In, m.Methods[serve.MethodInvert].Out)
	}

	// 5a. A bulk design-space sweep against campaign-a over the binary
	// tensor transport: 64 rows ship as one little-endian float32 frame
	// (wire.go) instead of ~50k-element JSON arrays per row, and the
	// response comes back as a frame too.
	bin := serve.NewClient(ts.URL)
	bin.Binary = true
	bin.Priority = serve.Bulk
	sweep := make([][]float32, 64)
	for i := range sweep {
		sweep[i] = []float32{float32(i) / 64, 0.5, 0.5, 0.25, 0.75}
	}
	outs, rowErrs, err := bin.Call(ctx, "campaign-a", serve.MethodPredict, sweep)
	if err != nil {
		log.Fatal(err)
	}
	if rowErrs != nil {
		log.Fatalf("sweep rows failed: %+v", rowErrs)
	}
	fmt.Printf("binary predict sweep: %d rows x %d outputs (campaign-a)\n", len(outs), len(outs[0]))

	// 5b. Inverse design against campaign-b: the invert method runs the
	// CycleGAN's G(F(x)) self-consistency path, recovering the inputs a
	// design point maps back to — served from the same process, batched
	// separately from predict traffic.
	inv, rowErrs, err := cl.Call(ctx, "campaign-b", serve.MethodInvert, [][]float32{{0.3, 0.6, 0.5, 0.5, 0.5}})
	if err != nil {
		log.Fatal(err)
	}
	if rowErrs != nil {
		log.Fatalf("invert row failed: %+v", rowErrs)
	}
	fmt.Printf("invert [0.3 0.6 0.5 0.5 0.5] -> %.3v (campaign-b)\n", inv[0])

	// 5c. The deprecated unversioned alias still answers — against the
	// default model (the first registered) — so pre-v1 clients keep
	// working while they migrate.
	body, _ := json.Marshal(serve.PredictRequest{Input: []float32{0.5, 0.5, 0.5, 0.5, 0.5}, ScalarsOnly: true})
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var legacy serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&legacy); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("legacy /predict (Deprecation: %s): %d scalars\n",
		resp.Header.Get("Deprecation"), len(legacy.Outputs[0]))

	// 6. Hot checkpoint reload: the LTFB loop keeps promoting new
	// tournament winners, and a serving process that needs a restart to
	// pick one up is always stale. A Reloader watches the checkpoint
	// path; when a new winner lands it rebuilds the pool, smoke-tests
	// it with a canary forward pass (a corrupt or NaN checkpoint is
	// rejected and the old model keeps serving), and atomically swaps
	// it in — in-flight requests drain against the old model, new ones
	// answer from the new. cmd/jagserve runs exactly this loop under
	// -watch -reload-interval; here we poll once, explicitly.
	rl, err := serve.NewReloader(reg, "campaign-a", ckpts["campaign-a"], serve.ReloaderConfig{
		Replicas: 2,
		Server:   serve.Config{MaxBatch: 32, MaxDelay: 2 * time.Millisecond, CacheSize: 256},
	})
	if err != nil {
		log.Fatal(err)
	}
	before, _, err := cl.Call(ctx, "campaign-a", serve.MethodPredict, [][]float32{{0.5, 0.5, 0.5, 0.5, 0.5}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training a new tournament winner for campaign-a...")
	winner, err := core.TrainSurrogate(cfg, 256, 90, 16, 99)
	if err != nil {
		log.Fatal(err)
	}
	if err := checkpoint.Save(ckpts["campaign-a"], 240, winner.Nets()); err != nil {
		log.Fatal(err)
	}
	swapped, err := rl.Check()
	if err != nil {
		log.Fatal(err)
	}
	after, _, err := cl.Call(ctx, "campaign-a", serve.MethodPredict, [][]float32{{0.5, 0.5, 0.5, 0.5, 0.5}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot reload: swapped=%v generation=%d, first scalar %.4f -> %.4f (no restart, no dropped requests)\n",
		swapped, reg.Generation("campaign-a"), before[0][0], after[0][0])

	// 7. Per-model stats: each registered model owns its counters, with
	// a per-method split and the hot-swap generation (campaign-a's
	// counters restarted at the swap: each generation's server owns its
	// own stats).
	tab := metrics.NewTable("per-model serving stats",
		"model", "gen", "requests", "predict", "invert", "batches", "mean_batch", "cache_hits")
	for _, name := range reg.Names() {
		snap, err := cl.Stats(ctx, name)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(name, snap.Generation, snap.Requests,
			snap.MethodRequests[serve.MethodPredict], snap.MethodRequests[serve.MethodInvert],
			snap.Batches, snap.MeanBatch, snap.CacheHits)
	}
	fmt.Print(tab.Render())
}
