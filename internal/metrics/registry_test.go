package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// buildTestRegistry populates a registry with one of everything, with
// deterministic values, for the exposition golden test.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("jag_requests_total", "Completed rows.", Labels{"model": "jag", "method": "predict", "lane": "interactive"}).Add(42)
	r.Counter("jag_requests_total", "Completed rows.", Labels{"model": "jag", "method": "predict", "lane": "bulk"}).Add(7)
	r.Counter("jag_requests_total", "Completed rows.", Labels{"model": "jag", "method": "invert", "lane": "interactive"}).Add(3)
	r.Gauge("jag_queue_depth", "In-flight requests.", Labels{"model": "jag"}).Set(5)
	r.Gauge("jag_cache_hit_rate", "Hit fraction of answered rows.", Labels{"model": "jag"}).Set(0.25)
	h := r.Histogram("jag_stage_latency_seconds", "Per-stage latency.", []float64{0.001, 0.01, 0.1},
		Labels{"model": "jag", "stage": "forward"})
	for _, v := range []float64{0.0005, 0.002, 0.003, 0.05, 2} {
		h.Observe(v)
	}
	snap := HistogramSnapshot{Bounds: []float64{0.001, 0.01}, Counts: []uint64{1, 2, 0}, Count: 3, Sum: 0.0105}
	r.SetHistogram("jag_request_latency_seconds", "End-to-end latency.", Labels{"model": "jag"}, snap)
	return r
}

// TestPrometheusExpositionGolden pins the exact text format: families
// sorted by name, series by sorted label key, cumulative histogram
// buckets with _sum/_count. Regenerate with -update-golden after an
// intentional format change.
func TestPrometheusExpositionGolden(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if got := b.String(); got != string(want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistrySameSeriesSharedHandle(t *testing.T) {
	r := NewRegistry()
	l := Labels{"model": "a"}
	c1 := r.Counter("x_total", "", l)
	c2 := r.Counter("x_total", "", Labels{"model": "a"})
	c1.Inc()
	c2.Add(2)
	if c1.Value() != 3 {
		t.Fatalf("handles not shared: %d", c1.Value())
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict must panic")
		}
	}()
	r.Gauge("x_total", "", nil)
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lives", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q must panic", bad)
				}
			}()
			r.Counter(bad, "", nil)
		}()
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "", Labels{"path": `a"b\c` + "\nd"}).Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped: %s", b.String())
	}
}

// TestRegistryConcurrent exercises creation and updates under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c_total", "", Labels{"g": string(rune('a' + g%2))}).Inc()
				r.Histogram("h", "", []float64{1, 2}, nil).Observe(float64(i))
				var b strings.Builder
				_ = r.WritePrometheus(&b)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total", "", Labels{"g": "a"}).Value() +
		r.Counter("c_total", "", Labels{"g": "b"}).Value(); got != 800 {
		t.Fatalf("lost updates: %d", got)
	}
}
