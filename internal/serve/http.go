package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/jag"
)

// PredictRequest is the /predict JSON body: either one input or a list.
type PredictRequest struct {
	// Input is a single 5-D parameter vector.
	Input []float32 `json:"input,omitempty"`
	// Inputs is a batch of 5-D parameter vectors; each row is submitted
	// to the batching queue independently, so one HTTP batch and many
	// concurrent single-input calls coalesce identically.
	Inputs [][]float32 `json:"inputs,omitempty"`
	// ScalarsOnly trims each output row to the 15 scalar observables,
	// dropping the X-ray image pixels (which dominate the payload).
	ScalarsOnly bool `json:"scalars_only,omitempty"`
}

// PredictResponse is the /predict JSON reply, rows aligned with the
// request inputs.
type PredictResponse struct {
	Outputs [][]float32 `json:"outputs"`
}

// healthResponse is the /healthz JSON reply.
type healthResponse struct {
	Status    string `json:"status"`
	Replicas  int    `json:"replicas"`
	Ensemble  bool   `json:"ensemble"`
	OutputDim int    `json:"output_dim"`
}

// NewHandler exposes a Server over HTTP JSON: POST /predict, GET
// /healthz, GET /stats. cmd/jagserve mounts exactly this handler; tests
// drive it through httptest.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req PredictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
			return
		}
		inputs := req.Inputs
		if req.Input != nil {
			inputs = append([][]float32{req.Input}, inputs...)
		}
		if len(inputs) == 0 {
			httpError(w, http.StatusBadRequest, "no inputs")
			return
		}
		outputs := make([][]float32, len(inputs))
		errs := make([]error, len(inputs))
		// Submit rows concurrently so one HTTP batch benefits from the
		// same coalescing as independent clients — but throttled to half
		// the queue depth, so a single large batch cannot trip its own
		// backpressure (ErrOverloaded is for contention between clients,
		// not for one request's row count).
		limit := s.cfg.QueueDepth / 2
		if limit < 1 {
			limit = 1
		}
		sem := make(chan struct{}, limit)
		var wg sync.WaitGroup
		for i := range inputs {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outputs[i], errs[i] = s.Predict(inputs[i])
				<-sem
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				status := http.StatusInternalServerError
				switch {
				case errors.Is(err, ErrOverloaded):
					status = http.StatusServiceUnavailable
				case errors.Is(err, ErrClosed):
					status = http.StatusServiceUnavailable
				default:
					status = http.StatusBadRequest
				}
				httpError(w, status, err.Error())
				return
			}
		}
		if req.ScalarsOnly {
			for i, row := range outputs {
				if len(row) > jag.ScalarDim {
					outputs[i] = row[:jag.ScalarDim]
				}
			}
		}
		writeJSON(w, PredictResponse{Outputs: outputs})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, healthResponse{
			Status:    "ok",
			Replicas:  s.Pool().Replicas(),
			Ensemble:  s.Pool().Ensemble(),
			OutputDim: s.OutputDim(),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	return mux
}

// writeJSON renders v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// httpError renders a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}
