package serve

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeFrame hammers the binary tensor decoder with arbitrary
// bytes. The decoder sits on the public HTTP surface, so the contract
// under fuzzing is absolute: never panic, never trust the header's
// claimed size into an allocation the payload doesn't back, and on
// success return a rectangular matrix whose re-encoding reproduces the
// consumed bytes exactly (bit-level float fidelity, NaN payloads
// included).
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: the interesting shapes by construction.
	valid, err := EncodeFrame([][]float32{{1, 2, 3}, {4.5, -6, 7e9}})
	if err != nil {
		f.Fatal(err)
	}
	empty, err := EncodeFrame(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(empty)
	f.Add(valid[:len(valid)-5])                 // truncated payload
	f.Add(valid[:frameHeader-3])                // truncated header
	f.Add(append([]byte("XXXX"), valid[4:]...)) // bad magic

	// Huge rows×cols header with no payload behind it: the product
	// overflows uint32 and the claim must be rejected, not allocated.
	huge := append([]byte(nil), valid[:frameHeader]...)
	binary.LittleEndian.PutUint32(huge[8:], 0xffffffff)
	binary.LittleEndian.PutUint32(huge[12:], 0xffffffff)
	f.Add(huge)

	// Billions of zero-width rows: rows*cols is 0, so only the
	// dedicated guard stands between the header and a giant row-slice
	// allocation.
	zeroCols := append([]byte(nil), valid[:frameHeader]...)
	binary.LittleEndian.PutUint32(zeroCols[8:], 0xffffffff)
	binary.LittleEndian.PutUint32(zeroCols[12:], 0)
	f.Add(zeroCols)

	// Large-but-legal claim (1 MiB of elements) over a truncated body:
	// exercises the chunked payload reader.
	bigClaim := append([]byte(nil), valid[:frameHeader]...)
	binary.LittleEndian.PutUint32(bigClaim[8:], 1<<10)
	binary.LittleEndian.PutUint32(bigClaim[12:], 1<<10)
	f.Add(append(bigClaim, make([]byte, 512)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := DecodeFrame(bytes.NewReader(data), 0, 0)
		if err != nil {
			return // rejection is always a legal outcome; panics are not
		}
		cols := 0
		if len(rows) > 0 {
			cols = len(rows[0])
		}
		if uint64(len(rows))*uint64(cols) > MaxFrameElems {
			t.Fatalf("decoder accepted %d x %d elements over the %d cap", len(rows), cols, MaxFrameElems)
		}
		for i, r := range rows {
			if len(r) != cols {
				t.Fatalf("ragged decode: row %d has %d cols, want %d", i, len(r), cols)
			}
		}
		enc, err := EncodeFrame(rows)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if len(enc) > len(data) {
			t.Fatalf("decoder produced %d bytes of matrix from %d input bytes", len(enc), len(data))
		}
		if len(rows) == 0 {
			// A zero-row frame legally carries any cols claim; its
			// canonical re-encoding is the 0x0 empty frame, so the
			// headers need not match byte for byte.
			return
		}
		if !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatal("re-encoded frame differs from the consumed bytes")
		}
	})
}

// TestDecodeFrameZeroColsRows pins the zero-width-row guard outside
// the fuzzer: a header claiming billions of empty rows must be
// rejected before any allocation scales with it.
func TestDecodeFrameZeroColsRows(t *testing.T) {
	hdr := make([]byte, frameHeader)
	copy(hdr, frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], frameVersion)
	binary.LittleEndian.PutUint32(hdr[8:], 0xffffffff)
	binary.LittleEndian.PutUint32(hdr[12:], 0)
	if _, err := DecodeFrame(bytes.NewReader(hdr), 0, 0); err == nil {
		t.Fatal("zero-width rows accepted")
	}

	// rows=0 stays legal whatever cols claims: an empty batch.
	binary.LittleEndian.PutUint32(hdr[8:], 0)
	binary.LittleEndian.PutUint32(hdr[12:], 7)
	out, err := DecodeFrame(bytes.NewReader(hdr), 0, 0)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty frame: %v, %d rows", err, len(out))
	}
}

// TestDecodeFrameTruncatedLargeClaim pins the chunked reader: a header
// claiming a large payload over a short body errors cleanly, and the
// decode must not have allocated the full claim up front (verified
// here only behaviourally — the error fires after one chunk).
func TestDecodeFrameTruncatedLargeClaim(t *testing.T) {
	hdr := make([]byte, frameHeader)
	copy(hdr, frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], frameVersion)
	binary.LittleEndian.PutUint32(hdr[8:], 1<<13)
	binary.LittleEndian.PutUint32(hdr[12:], 1<<13) // 64 Mi elements, 256 MiB claim
	body := append(hdr, make([]byte, 1024)...)
	if _, err := DecodeFrame(bytes.NewReader(body), 0, 0); err == nil {
		t.Fatal("truncated 256 MiB claim accepted")
	}
}
