// Package repro is a from-scratch Go reproduction of "Parallelizing
// Training of Deep Generative Models on Massive Scientific Datasets"
// (Jacobs et al., CLUSTER 2019): the LTFB tournament algorithm for training
// GANs at scale, the LBANN-style training engine it extends, the
// distributed in-memory data store, and simulated substitutes for the
// hardware and data the paper used (the Lassen supercomputer, GPFS, and the
// 10M-sample JAG ICF corpus).
//
// Beyond training, the repository covers the deployment step the paper
// motivates: a trained surrogate replacing the JAG simulator for
// downstream consumers. internal/serve coalesces concurrent prediction
// requests into single batched forward passes (the serving-side twin of
// the paper's ingest batching), spreads them over a pool of model
// replicas with optional ensemble averaging across tournament winners,
// caches repeated design points in an LRU, and sheds overload via
// bounded backpressure. Requests have a context-aware lifecycle:
// PredictContext carries a per-call deadline, an interactive lane
// preempts bulk scans in the batching queue, rows whose caller already
// gave up are dropped before the forward pass, and /predict reports
// per-row errors so one bad row cannot fail a batch. cmd/ltfbtrain
// -checkpoint saves a trained
// population's best models; cmd/jagserve serves them over HTTP JSON
// (/predict, /healthz, /stats); examples/serving walks the whole
// train → checkpoint → serve → query path in one process.
//
// Start with README.md for the layout, DESIGN.md for the system inventory
// and substitution rationale, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate every figure of the
// paper's evaluation section; cmd/figures prints them as tables.
package repro
