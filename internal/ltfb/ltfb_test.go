package ltfb

import (
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/cyclegan"
	"repro/internal/datastore"
	"repro/internal/jag"
	"repro/internal/nn"
	"repro/internal/reader"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

func TestPairingProperties(t *testing.T) {
	f := func(kRaw uint8, seed int64, round uint8) bool {
		k := int(kRaw%10) + 2
		pairs := Pairing(k, seed, int(round))
		if len(pairs) != k/2 {
			return false
		}
		seen := map[int]bool{}
		for _, p := range pairs {
			if p[0] == p[1] || seen[p[0]] || seen[p[1]] {
				return false
			}
			if p[0] < 0 || p[0] >= k || p[1] < 0 || p[1] >= k {
				return false
			}
			seen[p[0]], seen[p[1]] = true, true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairingDeterministicAndRoundVarying(t *testing.T) {
	a := Pairing(8, 5, 3)
	b := Pairing(8, 5, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pairing must be deterministic")
		}
	}
	varied := false
	for r := 0; r < 10; r++ {
		c := Pairing(8, 5, r)
		for i := range a {
			if c[i] != a[i] {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("pairings should vary across rounds")
	}
}

func TestPairingDegenerate(t *testing.T) {
	if Pairing(1, 1, 0) != nil {
		t.Fatal("single trainer has no pairs")
	}
	if Pairing(0, 1, 0) != nil {
		t.Fatal("zero trainers has no pairs")
	}
	pairs := Pairing(5, 2, 0)
	if len(pairs) != 2 {
		t.Fatalf("5 trainers should form 2 pairs, got %d", len(pairs))
	}
	out := 0
	for id := 0; id < 5; id++ {
		if PartnerOf(pairs, id) == -1 {
			out++
		}
	}
	if out != 1 {
		t.Fatalf("%d trainers sat out, want 1", out)
	}
}

func TestConfigValidate(t *testing.T) {
	if (Config{NumTrainers: 0, RoundSteps: 1}).Validate() == nil {
		t.Fatal("0 trainers must be invalid")
	}
	if (Config{NumTrainers: 2, RoundSteps: 0}).Validate() == nil {
		t.Fatal("0 round steps must be invalid")
	}
	if (Config{NumTrainers: 2, RoundSteps: 1}).Validate() != nil {
		t.Fatal("valid config rejected")
	}
}

// tinySurrogate builds a small surrogate for tournament tests.
func tinySurrogate(seed int64) *cyclegan.Surrogate {
	cfg := cyclegan.DefaultConfig(jag.Tiny8)
	cfg.EncoderHidden = []int{24}
	cfg.ForwardHidden = []int{16}
	cfg.InverseHidden = []int{12}
	cfg.DiscHidden = []int{12}
	return cyclegan.New(cfg, seed)
}

func jagDataset(t testing.TB, start, n int) *reader.SliceDataset {
	t.Helper()
	recs := make([][]float32, n)
	for i := range recs {
		recs[i] = jag.SimulateAt(jag.Tiny8, start+i).Flatten()
	}
	ds, err := reader.NewSliceDataset(jag.Tiny8.SampleDim(), recs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func tournamentSet(t testing.TB, start, n int) (x, y *tensor.Matrix) {
	t.Helper()
	x = tensor.New(n, jag.InputDim)
	y = tensor.New(n, jag.Tiny8.OutputDim())
	for i := 0; i < n; i++ {
		s := jag.SimulateAt(jag.Tiny8, start+i)
		copy(x.Row(i), s.X)
		copy(y.Row(i), s.Output())
	}
	return x, y
}

// buildPopulation builds numTrainers trainers of ranksPer ranks each inside
// one world and runs fn on every rank's member.
func buildPopulation(t *testing.T, cfg Config, ranksPer int, preSteps []int, fn func(m *Member)) []*Member {
	t.Helper()
	worldSize := cfg.NumTrainers * ranksPer
	w := comm.NewWorld(worldSize)
	members := make([]*Member, worldSize)
	tx, ty := tournamentSet(t, 5000, 16)
	w.Run(func(wc *comm.Comm) {
		trainerID := wc.Rank() / ranksPer
		tc := wc.Split(trainerID, 0)
		ds := jagDataset(t, trainerID*512, 64)
		store := datastore.New(tc, ds, datastore.ModeDynamic)
		model := tinySurrogate(int64(100 + trainerID))
		tr, err := trainer.New(trainer.Config{
			ID: trainerID, BatchSize: 16, XDim: jag.InputDim, ShuffleSeed: int64(trainerID),
		}, tc, model, store, ds)
		if err != nil {
			t.Error(err)
			return
		}
		m := &Member{
			Cfg:       cfg,
			TrainerID: trainerID,
			World:     wc,
			T:         tr,
			Scratch:   tinySurrogate(999),
			TournX:    tx,
			TournY:    ty,
		}
		members[wc.Rank()] = m
		if preSteps != nil && preSteps[trainerID] > 0 {
			if err := tr.Advance(preSteps[trainerID]); err != nil {
				t.Error(err)
				return
			}
		}
		fn(m)
	})
	return members
}

func forwardWeights(m *Member) []byte {
	return nn.MarshalNetworks(m.T.Model.ExchangeNets())
}

func TestTournamentWinnerPropagates(t *testing.T) {
	// Trainer 0 trains 30 steps, trainer 1 gets none: trainer 0's generator
	// should win on the tournament metric and trainer 1 should adopt it.
	cfg := Config{NumTrainers: 2, RoundSteps: 1, PairSeed: 1, Metric: MetricEval}
	results := make([]RoundResult, 4)
	members := buildPopulation(t, cfg, 2, []int{30, 0}, func(m *Member) {
		res, err := m.Tournament(0)
		if err != nil {
			t.Error(err)
			return
		}
		results[m.World.Rank()] = res
	})
	if results[0].Adopted {
		t.Fatal("the stronger trainer must keep its own generator")
	}
	if !results[2].Adopted {
		t.Fatalf("the weaker trainer must adopt: %+v", results[2])
	}
	// After adoption, the exchanged nets agree across all four ranks.
	ref := forwardWeights(members[0])
	for r := 1; r < 4; r++ {
		got := forwardWeights(members[r])
		if string(got) != string(ref) {
			t.Fatalf("rank %d exchange nets differ from rank 0 after tournament", r)
		}
	}
	// Discriminators must NOT have been exchanged: trainer 1's disc stays
	// its own (it was never trained, trainer 0's was).
	d0 := nn.MarshalNetworks([]*nn.Network{members[0].T.Model.(*cyclegan.Surrogate).Disc})
	d1 := nn.MarshalNetworks([]*nn.Network{members[2].T.Model.(*cyclegan.Surrogate).Disc})
	if string(d0) == string(d1) {
		t.Fatal("discriminators should remain local to each trainer")
	}
}

func TestTournamentScoresVisibleOnAllRanks(t *testing.T) {
	cfg := Config{NumTrainers: 2, RoundSteps: 1, PairSeed: 2, Metric: MetricEval}
	results := make([]RoundResult, 4)
	buildPopulation(t, cfg, 2, []int{10, 10}, func(m *Member) {
		res, err := m.Tournament(0)
		if err != nil {
			t.Error(err)
			return
		}
		results[m.World.Rank()] = res
	})
	// Ranks of the same trainer agree on scores.
	if results[0].LocalLoss != results[1].LocalLoss || results[2].LocalLoss != results[3].LocalLoss {
		t.Fatalf("scores differ within a trainer: %+v", results)
	}
	// Cross-trainer: my local is their peer (up to float32 rounding).
	if results[0].LocalLoss != results[2].PeerLoss || results[2].LocalLoss != results[0].PeerLoss {
		t.Fatalf("cross-trainer score mismatch: %+v vs %+v", results[0], results[2])
	}
}

func TestAdversarialMetricRuns(t *testing.T) {
	cfg := Config{NumTrainers: 2, RoundSteps: 1, PairSeed: 3, Metric: MetricAdversarial}
	buildPopulation(t, cfg, 1, []int{5, 5}, func(m *Member) {
		res, err := m.Tournament(0)
		if err != nil {
			t.Error(err)
			return
		}
		if res.LocalLoss <= 0 || res.PeerLoss <= 0 {
			t.Errorf("adversarial scores not populated: %+v", res)
		}
	})
}

func TestExchangeFullShipsEverything(t *testing.T) {
	cfg := Config{NumTrainers: 2, RoundSteps: 1, PairSeed: 4, Metric: MetricEval, ExchangeFull: true}
	members := buildPopulation(t, cfg, 1, []int{20, 0}, func(m *Member) {
		if _, err := m.Tournament(0); err != nil {
			t.Error(err)
		}
	})
	// With full exchange the weaker trainer's discriminator also matches.
	d0 := nn.MarshalNetworks([]*nn.Network{members[0].T.Model.(*cyclegan.Surrogate).Disc})
	d1 := nn.MarshalNetworks([]*nn.Network{members[1].T.Model.(*cyclegan.Surrogate).Disc})
	if string(d0) != string(d1) {
		t.Fatal("ExchangeFull must ship the discriminator too")
	}
}

func TestOddTrainerCountSitsOut(t *testing.T) {
	cfg := Config{NumTrainers: 3, RoundSteps: 1, PairSeed: 7, Metric: MetricEval}
	results := make([]RoundResult, 3)
	buildPopulation(t, cfg, 1, nil, func(m *Member) {
		res, err := m.Tournament(0)
		if err != nil {
			t.Error(err)
			return
		}
		results[m.TrainerID] = res
	})
	out := 0
	for _, r := range results {
		if r.Partner == -1 {
			out++
			if r.Adopted {
				t.Fatal("a sitting-out trainer cannot adopt")
			}
		}
	}
	if out != 1 {
		t.Fatalf("%d trainers sat out, want 1", out)
	}
}

func TestLoopAlternatesTrainingAndTournaments(t *testing.T) {
	cfg := Config{NumTrainers: 2, RoundSteps: 2, PairSeed: 8, Metric: MetricEval, ResetOptimOnAdopt: true}
	var logged []RoundResult
	buildPopulation(t, cfg, 1, nil, func(m *Member) {
		logs, err := m.Loop(3)
		if err != nil {
			t.Error(err)
			return
		}
		if m.TrainerID == 0 {
			logged = logs
		}
	})
	if len(logged) != 3 {
		t.Fatalf("loop logged %d rounds, want 3", len(logged))
	}
	for i, r := range logged {
		if r.Round != i {
			t.Fatalf("round numbering wrong: %+v", logged)
		}
	}
}

func TestLoopRejectsInvalidConfig(t *testing.T) {
	m := &Member{Cfg: Config{NumTrainers: 0, RoundSteps: 1}}
	if _, err := m.Loop(1); err == nil {
		t.Fatal("invalid config must error")
	}
}

// A model without an AdversarialScorer must fall back to MetricEval instead
// of failing — the regressor path.
func TestAdversarialMetricFallsBackToEval(t *testing.T) {
	cfg := Config{NumTrainers: 2, RoundSteps: 1, PairSeed: 21, Metric: MetricAdversarial}
	buildPopulation(t, cfg, 1, []int{15, 0}, func(m *Member) {
		// Wrap the model view so the scorer interface is hidden.
		res, err := m.Tournament(0)
		if err != nil {
			t.Error(err)
			return
		}
		if res.LocalLoss <= 0 {
			t.Errorf("scores missing under adversarial metric: %+v", res)
		}
	})
}

// Repeated tournaments across many rounds keep every trainer functional and
// the scores finite — a soak test of the exchange machinery.
func TestManyRoundsSoak(t *testing.T) {
	cfg := Config{NumTrainers: 4, RoundSteps: 1, PairSeed: 31, Metric: MetricEval, ResetOptimOnAdopt: true}
	buildPopulation(t, cfg, 1, nil, func(m *Member) {
		logs, err := m.Loop(10)
		if err != nil {
			t.Error(err)
			return
		}
		for _, r := range logs {
			if r.Partner >= 0 && (r.LocalLoss <= 0 || r.PeerLoss <= 0) {
				t.Errorf("degenerate scores in round %d: %+v", r.Round, r)
				return
			}
		}
	})
}
