// Package opt implements the stochastic-gradient optimizers used to train
// the surrogate models. The paper's experiments use Adam with an initial
// learning rate of 0.001 and mini-batches of 128 (Section IV); SGD with
// momentum is provided as the classic baseline and for the ablation benches.
//
// Optimizer state (momentum buffers, Adam moments) is keyed per parameter and
// lives with the trainer, not the model: when LTFB replaces a model's weights
// after a lost tournament, the trainer may either keep or reset that state
// (see Reset), mirroring the choice LBANN faces when a migrated model resumes
// under a new trainer.
package opt

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients. Step
// consumes the gradients but does not clear them; callers zero gradients at
// the start of each mini-batch.
type Optimizer interface {
	// Step applies one update to every parameter.
	Step(params []*nn.Param)
	// LR returns the current base learning rate.
	LR() float64
	// SetLR replaces the base learning rate (used by schedules).
	SetLR(lr float64)
	// Reset discards all per-parameter state, as after a model swap.
	Reset()
}

// SGD is stochastic gradient descent with classical momentum:
// v ← μ·v − lr·g; w ← w + v.
type SGD struct {
	Rate     float64
	Momentum float64
	velocity map[*nn.Param]*tensor.Matrix
}

// NewSGD returns an SGD optimizer with the given rate and momentum μ∈[0,1).
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{Rate: lr, Momentum: momentum, velocity: make(map[*nn.Param]*tensor.Matrix)}
}

// Step applies one momentum-SGD update.
func (s *SGD) Step(params []*nn.Param) {
	lr := float32(s.Rate)
	mu := float32(s.Momentum)
	for _, p := range params {
		if mu == 0 {
			tensor.AddScaled(p.W, -lr, p.Grad)
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.W.Rows, p.W.Cols)
			s.velocity[p] = v
		}
		for i := range v.Data {
			v.Data[i] = mu*v.Data[i] - lr*p.Grad.Data[i]
			p.W.Data[i] += v.Data[i]
		}
	}
}

// LR returns the current learning rate.
func (s *SGD) LR() float64 { return s.Rate }

// SetLR replaces the learning rate.
func (s *SGD) SetLR(lr float64) { s.Rate = lr }

// Reset clears all momentum buffers.
func (s *SGD) Reset() { s.velocity = make(map[*nn.Param]*tensor.Matrix) }

// Adam is the Kingma–Ba optimizer with bias-corrected first and second
// moments; the paper's configuration uses lr=0.001 with the standard betas.
type Adam struct {
	Rate   float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	t      int
	moment map[*nn.Param]*adamState
}

type adamState struct {
	m, v *tensor.Matrix
}

// NewAdam returns Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{Rate: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, moment: make(map[*nn.Param]*adamState)}
}

// Step applies one Adam update, advancing the shared timestep.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	lr := a.Rate * math.Sqrt(c2) / c1
	b1 := float32(a.Beta1)
	b2 := float32(a.Beta2)
	eps := float32(a.Eps)
	step := float32(lr)
	for _, p := range params {
		st, ok := a.moment[p]
		if !ok {
			st = &adamState{m: tensor.New(p.W.Rows, p.W.Cols), v: tensor.New(p.W.Rows, p.W.Cols)}
			a.moment[p] = st
		}
		for i, g := range p.Grad.Data {
			m := b1*st.m.Data[i] + (1-b1)*g
			v := b2*st.v.Data[i] + (1-b2)*g*g
			st.m.Data[i] = m
			st.v.Data[i] = v
			p.W.Data[i] -= step * m / (float32(math.Sqrt(float64(v))) + eps)
		}
	}
}

// LR returns the current learning rate.
func (a *Adam) LR() float64 { return a.Rate }

// SetLR replaces the learning rate.
func (a *Adam) SetLR(lr float64) { a.Rate = lr }

// Reset clears the moment estimates and the timestep.
func (a *Adam) Reset() {
	a.t = 0
	a.moment = make(map[*nn.Param]*adamState)
}

// StepDecay returns a schedule that multiplies base by factor every interval
// steps — the classic staircase decay LBANN applies between epochs. Apply it
// with ApplySchedule.
func StepDecay(factor float64, interval int) func(step int, base float64) float64 {
	return func(step int, base float64) float64 {
		if interval <= 0 {
			return base
		}
		return base * math.Pow(factor, float64(step/interval))
	}
}

// ApplySchedule sets o's learning rate to schedule(step, base).
func ApplySchedule(o Optimizer, schedule func(step int, base float64) float64, step int, base float64) {
	o.SetLR(schedule(step, base))
}
